// memsweep sweeps the Sequence Number Cache design space for one workload —
// a self-serve version of the paper's Figures 6 and 7 for any benchmark.
//
// It answers the deployment question the paper's Section 5.2/5.3 answers
// for SPEC: how big and how associative does the SNC need to be for *your*
// workload before the one-time-pad scheme reaches its ~1% promise?
//
// Run with `go run ./examples/memsweep [benchmark]` (default mcf).
package main

import (
	"fmt"
	"log"
	"os"

	"secureproc"
	"secureproc/internal/stats"
)

func main() {
	bench := "mcf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const scale = 0.3

	base, err := secureproc.RunBenchmark(bench, secureproc.Baseline, scale)
	if err != nil {
		log.Fatal(err)
	}
	xom, err := secureproc.RunBenchmark(bench, secureproc.XOM, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: XOM costs %.2f%% — now shrink it with an SNC:\n\n",
		bench, secureproc.Slowdown(xom, base))

	t := stats.NewTable("SNC design space (LRU)",
		"size", "assoc", "coverage", "slowdown%", "snc-traffic%")
	for _, kb := range []int{16, 32, 64, 128, 256} {
		for _, ways := range []int{0, 32} {
			cfg := secureproc.DefaultConfig()
			cfg.Scheme = secureproc.OTPLRU
			cfg.SNC.SizeBytes = kb << 10
			cfg.SNC.Ways = ways
			r, err := secureproc.RunBenchmarkConfig(bench, cfg, scale)
			if err != nil {
				log.Fatal(err)
			}
			assoc := "full"
			if ways != 0 {
				assoc = fmt.Sprintf("%d-way", ways)
			}
			t.AddRow(
				fmt.Sprintf("%dKB", kb),
				assoc,
				fmt.Sprintf("%dMB", cfg.SNC.CoverageBytes()>>20),
				fmt.Sprintf("%.2f", secureproc.Slowdown(r, base)),
				fmt.Sprintf("%.2f", stats.Pct(r.SNCTraffic(), r.DemandTraffic())),
			)
		}
	}
	fmt.Print(t.String())
	fmt.Println("\ncoverage = entries × 128B line; once it exceeds the workload's")
	fmt.Println("miss footprint, the residual collapses to the +1-cycle XOR.")
}
