// tamperdetect mounts the three memory attacks of the XOM threat model
// (paper Section 2.2) against a MAC-protected memory and shows each one
// being detected:
//
//	spoofing  — overwrite a line with chosen bytes
//	splicing  — swap two valid ciphertext lines
//	replay    — restore a stale (line, MAC) snapshot
//
// It also shows why replay specifically needs the sequence numbers the SNC
// already maintains for the one-time-pad scheme.
//
// Run with `go run ./examples/tamperdetect`.
package main

import (
	"bytes"
	"fmt"
	"log"

	"secureproc/internal/integrity"
)

func main() {
	store, err := integrity.NewProtectedStore([]byte("chip-secret"), 128)
	if err != nil {
		log.Fatal(err)
	}

	balance := func(v byte) []byte { return bytes.Repeat([]byte{v}, 128) }

	// The program writes an account balance of 100 at 0x1000 and a
	// different record at 0x2000.
	must(store.Write(0x1000, balance(100)))
	must(store.Write(0x2000, balance(7)))
	fmt.Println("wrote two protected lines")

	// --- spoofing ---
	store.TamperSpoof(0x1000, balance(255))
	if _, err := store.Read(0x1000); err != nil {
		fmt.Printf("spoofing: %v\n", err)
	} else {
		log.Fatal("spoofing went undetected!")
	}
	must(store.Write(0x1000, balance(100))) // repair

	// --- splicing ---
	store.TamperSplice(0x1000, 0x2000)
	if _, err := store.Read(0x1000); err != nil {
		fmt.Printf("splicing: %v\n", err)
	} else {
		log.Fatal("splicing went undetected!")
	}
	store.TamperSplice(0x1000, 0x2000) // swap back

	// --- replay ---
	oldCT, oldMAC := store.Snapshot(0x1000) // adversary saves balance=100
	must(store.Write(0x1000, balance(5)))   // program spends it
	store.TamperReplay(0x1000, oldCT, oldMAC)
	if _, err := store.Read(0x1000); err != nil {
		fmt.Printf("replay:   %v\n", err)
	} else {
		log.Fatal("replay went undetected!")
	}

	// Why the sequence number matters: the stale pair is self-consistent.
	v, _ := integrity.NewVerifier([]byte("chip-secret"), 128)
	if err := v.Check(0x1000, 1, oldCT, oldMAC); err == nil {
		fmt.Println("\nnote: the stale (line, MAC) pair verifies under its ORIGINAL")
		fmt.Println("sequence number — only the chip-held counter (the same number")
		fmt.Println("the SNC caches for pad generation) exposes the replay.")
	}

	verified, failed := store.Stats()
	fmt.Printf("\nverifier stats: %d ok, %d tampered\n", verified, failed)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
