// multiprogram runs two benchmarks time-sliced through one secure machine
// — the Section 4.3 experiment end to end. Both context-switch policies run
// on the same pair so their trade is visible side by side:
//
//   - switch=flush (option 1): the SNC is flushed with encryption at every
//     task switch. Safe, simple, but each switch pays a spill burst on the
//     bus, and the resuming task refetches its sequence numbers through
//     query misses.
//   - switch=pid (option 2): SNC entries carry an 8-bit process ID tag and
//     survive switches. Zero switch traffic — the cost moved into capacity
//     (the tag bits shrink the SNC from 32K to 21.8K entries) and
//     cache-style contention between the co-scheduled tasks.
//
// Run with `go run ./examples/multiprogram [benchA benchB [quantum]]`
// (default mcf gzip 50000).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"secureproc/internal/sched"
	"secureproc/internal/sim"
)

func main() {
	benchA, benchB := "mcf", "gzip"
	quantum := uint64(50_000)
	if len(os.Args) > 2 {
		benchA, benchB = os.Args[1], os.Args[2]
	}
	if len(os.Args) > 3 {
		q, err := strconv.ParseUint(os.Args[3], 10, 64)
		if err != nil {
			log.Fatalf("bad quantum %q: %v", os.Args[3], err)
		}
		quantum = q
	}
	const scale = 0.1

	fmt.Printf("time-slicing %s + %s, %d-instruction quantum, SNC-LRU:\n\n", benchA, benchB, quantum)
	for _, policy := range []string{"flush", "pid"} {
		ref, err := sim.SchemeByName("snc-lru:switch=" + policy)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Scheme = ref
		res, err := sched.RunBenchmarks(sched.Config{Sim: cfg, Quantum: quantum, Scale: scale},
			[]string{benchA, benchB})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Render())
		fmt.Println()
	}
	fmt.Println("flush pays spill traffic at every switch and query misses on resume;")
	fmt.Println("pid pays nothing at the switch — its cost is the smaller tagged SNC")
	fmt.Println("and the tasks evicting each other's entries while co-resident.")
}
