// execdriven runs a real SSA-32 program — assembled from source below —
// through the timing simulator under every protection scheme: the paper's
// execution-driven SimpleScalar methodology, end to end. The program's
// *answer* never changes; only its cycles do.
//
// The kernel is a store-then-rescan histogram over a 1MB buffer (one write pass, 24 read passes): enough L2
// misses to make the crypto path visible, with a data footprint the default
// 64KB SNC comfortably covers.
//
// Run with `go run ./examples/execdriven`.
package main

import (
	"fmt"
	"log"

	"secureproc/internal/sim"
	"secureproc/internal/stats"
)

const kernel = `
	# Pass 1: write i*7 to every line of a 1MB buffer.
	li   s0, 0x200000      # base
	li   s1, 8192          # lines
	li   s2, 0             # i
	li   s3, 0             # addr cursor
write:
	beq  s2, s1, rescan
	li   t0, 7
	mul  t1, s2, t0
	add  t2, s0, s3
	sw   t1, 0(t2)
	addi s3, s3, 128
	addi s2, s2, 1
	jal  r0, write

	# Pass 2..25: read every line back 24 times, summing.
rescan:
	li   s4, 24            # passes
	li   s5, 0             # checksum
pass:
	beq  s4, r0, done
	li   s2, 0
	li   s3, 0
scan:
	beq  s2, s1, next
	add  t2, s0, s3
	lw   t1, 0(t2)
	add  s5, s5, t1
	addi s3, s3, 128
	addi s2, s2, 1
	jal  r0, scan
next:
	addi s4, s4, -1
	jal  r0, pass
done:
	mv   a0, s5
	li   r1, 0
	sys  r1                # exit with the checksum
`

func main() {
	// Every scheme in the registry, in registration order (baseline first):
	// new registrations show up here without touching this example.
	var base sim.ProgramResult
	t := stats.NewTable("execution-driven: 1MB histogram kernel (real SSA-32 program)",
		"scheme", "exit-code", "instrs", "cycles", "IPC", "slowdown%")
	for i, name := range sim.SchemeNames() {
		cfg := sim.DefaultConfig()
		cfg.Scheme = sim.SchemeRef{Name: name}
		pr, err := sim.RunProgramSource(cfg, kernel, 0x1000, 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = pr
		} else if pr.ExitCode != base.ExitCode {
			log.Fatalf("scheme %v changed the program's answer: %d != %d",
				name, pr.ExitCode, base.ExitCode)
		}
		t.AddRow(pr.Scheme, fmt.Sprint(pr.ExitCode), fmt.Sprint(pr.Instructions),
			fmt.Sprint(pr.Cycles), fmt.Sprintf("%.2f", pr.IPC()),
			fmt.Sprintf("%.2f", sim.Slowdown(pr.Result, base.Result)))
	}
	fmt.Print(t.String())
	fmt.Println("\nsame answer every time; only the memory-path cycles differ.")
	fmt.Println("(no fast-forward here, so SNC-LRU pays Algorithm 1's cold")
	fmt.Println("sequence-number fetches on first touch — which is why NoRepl,")
	fmt.Println("which skips them, briefly wins on this short kernel. The warmed,")
	fmt.Println("trace-driven runs in EXPERIMENTS.md show the steady state the")
	fmt.Println("paper reports, where LRU is the clear winner.)")
}
