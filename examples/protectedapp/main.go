// protectedapp is the full vendor→customer software-distribution flow of
// paper Section 2.1, with a multi-tasking twist from Section 2.3: two
// protected programs time-share one processor, and the (untrusted) OS
// interrupt path only ever sees sealed register state.
//
// Run with `go run ./examples/protectedapp`.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"secureproc/internal/isa"
	"secureproc/internal/xom"
)

// counter is a tiny "licensed application": it sums 1..100 and prints the
// result. The vendor cares that nobody can read or patch this logic.
const counter = `
	li   r1, 100
	li   r2, 0
loop:
	beq  r1, r0, done
	add  r2, r2, r1
	addi r1, r1, -1
	jal  r0, loop
done:
	mv   a0, r2
	li   r1, 2
	sys  r1
	li   a0, 10
	li   r1, 1
	sys  r1
	li   r1, 0
	sys  r1
`

type demoRand struct{ r *rand.Rand }

func (d demoRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func main() {
	rng := demoRand{rand.New(rand.NewSource(42))}

	// One processor, bought by the customer. Its public key is public; its
	// private key never leaves the die.
	cpu, err := xom.NewProcessor(rng)
	if err != nil {
		log.Fatal(err)
	}

	// Two vendors ship two protected applications with *different* program
	// keys, both wrapped for this processor.
	const base = 0x10000
	bin, _, err := isa.Assemble(counter, base)
	if err != nil {
		log.Fatal(err)
	}
	keyA := []byte("vendorAA")
	keyB := []byte("vendorBB")
	pkgA, err := xom.VendorEncrypt(bin, base, base, keyA, cpu.PublicKey(), rng)
	if err != nil {
		log.Fatal(err)
	}
	pkgB, err := xom.VendorEncrypt(bin, base, base, keyB, cpu.PublicKey(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same plaintext, two vendors, two keys:")
	fmt.Printf("  image A: % x ...\n", pkgA.Image[:12])
	fmt.Printf("  image B: % x ...\n", pkgB.Image[:12])
	if bytes.Equal(pkgA.Image[:12], pkgB.Image[:12]) {
		log.Fatal("different keys must give different ciphertexts")
	}

	// Run application A to completion.
	ctx, err := cpu.Load(pkgA)
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	ctx.CPU.Console = &out
	if err := ctx.CPU.Run(100_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplication A output: %s(sum 1..100 = 5050)\n", out.String())

	// Section 2.3: compartments. The app's registers cross an interrupt
	// sealed; the OS can schedule but not peek, and cannot replay a stale
	// save.
	fmt.Println("\ninterrupt with a malicious OS watching:")
	mgr := xom.NewManager()
	comp := mgr.Enter(keyA)
	rf := &xom.RegisterFile{}
	rf.Write(comp, 2, 5050) // the app's precious accumulator
	sealed, err := mgr.SealRegisters(comp, rf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  OS sees r2 as: %#x (sealed; actual value 5050)\n", sealed.Cipher[2])
	if v, _ := rf.Read(comp, 2); v == 0 {
		fmt.Println("  physical registers scrubbed during interrupt: OK")
	}
	if err := mgr.UnsealRegisters(sealed, rf); err != nil {
		log.Fatal(err)
	}
	v, err := rf.Read(comp, 2)
	if err != nil || v != 5050 {
		log.Fatal("restore failed")
	}
	fmt.Println("  restore on resume: r2 = 5050: OK")

	// Replay attempt: save again (counter advances), then feed the stale
	// seal back.
	if _, err := mgr.SealRegisters(comp, rf); err != nil {
		log.Fatal(err)
	}
	if err := mgr.UnsealRegisters(sealed, rf); err != nil {
		fmt.Printf("  OS replays stale save: %v: OK\n", err)
	} else {
		log.Fatal("replay accepted!")
	}
}
