// Quickstart: the package's two faces in ~60 lines.
//
//  1. Timing: how much does memory encryption cost? Run one benchmark
//     under every scheme in the registry — the insecure baseline, XOM, the
//     paper's OTP+SNC schemes, and the integrity/precompute extensions.
//  2. Function: what do the bytes look like? Encrypt a line with a one-time
//     pad and watch the ciphertext change on every rewrite.
//
// Run with `go run ./examples/quickstart`.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"secureproc"
)

func main() {
	// --- 1. Timing: a single benchmark under every registered scheme. ---
	const bench = "art" // the paper's worst case for XOM
	cmp, err := secureproc.Compare(bench, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s:\n", bench)
	fmt.Printf("  baseline      %d cycles\n", cmp.Baseline.Cycles)
	schemes := make([]string, 0, len(cmp.ByScheme))
	for name := range cmp.ByScheme {
		schemes = append(schemes, name)
	}
	sort.Strings(schemes)
	for _, scheme := range schemes {
		fmt.Printf("  %-12s +%.2f%% slowdown\n", scheme, cmp.SlowdownOf(scheme))
	}
	fmt.Println("  (XOM pays mem+crypto serially; OTP overlaps them: MAX(mem,crypto)+1;")
	fmt.Println("   OTP+MAC adds overlapped integrity checks, OTP-Pre buffers pads)")

	// --- 2. Function: real counter-mode encryption of a memory line. ---
	pm, err := secureproc.NewProtectedMemory(secureproc.CipherDES, []byte("8bytekey"), 128)
	if err != nil {
		log.Fatal(err)
	}
	line := bytes.Repeat([]byte{0x00}, 128) // all zeroes: worst case for ECB
	const addr = 0x4000

	if err := pm.WriteLineOTP(addr, line); err != nil {
		log.Fatal(err)
	}
	ct1, _ := pm.RawLine(addr)
	if err := pm.WriteLineOTP(addr, line); err != nil { // same value, same address
		log.Fatal(err)
	}
	ct2, _ := pm.RawLine(addr)

	fmt.Printf("\nplaintext line:        % x ...\n", line[:8])
	fmt.Printf("ciphertext (write #1): % x ...\n", ct1[:8])
	fmt.Printf("ciphertext (write #2): % x ...   <- same data, fresh pad (seq=%d)\n", ct2[:8], pm.Seq(addr))
	if bytes.Equal(ct1, ct2) {
		log.Fatal("pads did not mutate!")
	}
	back, err := pm.ReadLine(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypts back to:      % x ... (round trip %v)\n", back[:8], bytes.Equal(back, line))
}
