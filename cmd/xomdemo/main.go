// Command xomdemo walks through the paper's end-to-end story on real bytes:
//
//  1. A vendor assembles an SSA-32 program and encrypts it with a one-time
//     pad keyed by a DES program key Ks (seeds = virtual addresses,
//     Section 3.4.1).
//  2. Ks is wrapped under the target processor's RSA public key and the
//     package shipped.
//  3. The target processor unwraps Ks internally and executes the program,
//     decrypting each fetch; external memory only ever sees ciphertext.
//  4. A second processor (different private key) cannot run the package.
//
// Run it with `go run ./cmd/xomdemo`.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"secureproc/internal/isa"
	"secureproc/internal/xom"
)

const program = `
	# Compute fib(15) iteratively, print it, exit with it.
	li   r1, 15
	li   r2, 0
	li   r3, 1
loop:
	beq  r1, r0, done
	add  r4, r2, r3
	mv   r2, r3
	mv   r3, r4
	addi r1, r1, -1
	jal  r0, loop
done:
	mv   a0, r2
	li   r1, 2
	sys  r1            # print integer
	li   a0, 10
	li   r1, 1
	sys  r1            # newline
	mv   a0, r2
	li   r1, 0
	sys  r1            # exit fib(15)
`

type demoRand struct{ r *rand.Rand }

func (d demoRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func main() {
	rng := demoRand{rand.New(rand.NewSource(2003))} // deterministic demo
	const base = 0x10000

	fmt.Println("== vendor side ==")
	binary, _, err := isa.Assemble(program, base)
	check(err)
	fmt.Printf("assembled %d bytes of SSA-32 code\n", len(binary))
	fmt.Printf("first instruction (plaintext):  %s\n", isa.Disassemble(word(binary, 0)))

	cpuA, err := xom.NewProcessor(rng)
	check(err)
	ks := []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}
	pkg, err := xom.VendorEncrypt(binary, base, base, ks, cpuA.PublicKey(), rng)
	check(err)
	fmt.Printf("encrypted image: %d bytes, key wrapped under processor A's public key\n", len(pkg.Image))
	fmt.Printf("first instruction (ciphertext): %s   <- adversary's view\n", isa.Disassemble(word(pkg.Image, 0)))

	fmt.Println("\n== processor A (the target) ==")
	ctx, err := cpuA.Load(pkg)
	check(err)
	ctx.CPU.Console = os.Stdout
	fmt.Print("console output: ")
	check(ctx.CPU.Run(100_000))
	fmt.Printf("exit code: %d (fib(15) = 610)\n", ctx.CPU.ExitCode)
	raw, err := ctx.RawMemoryLine(base)
	check(err)
	fmt.Printf("external DRAM still holds ciphertext: % x ...\n", raw[:16])

	fmt.Println("\n== processor B (a pirate's machine) ==")
	cpuB, err := xom.NewProcessor(rng)
	check(err)
	if ctxB, err := cpuB.Load(pkg); err != nil {
		fmt.Printf("load refused: %v\n", err)
	} else if err := ctxB.CPU.Run(100_000); err != nil {
		fmt.Printf("execution trapped on garbage instructions: %v\n", err)
	} else {
		fmt.Println("unexpected: the package ran (this should not happen)")
		os.Exit(1)
	}
	fmt.Println("\nthe same bytes run on their target processor and nowhere else.")
}

func word(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xomdemo:", err)
		os.Exit(1)
	}
}
