// Command secvet is the repo's custom vet suite: four analyzers that
// make the codebase's hardest-won invariants compile-time properties —
//
//	hotpathalloc  no heap allocation reachable from the simulation hot path
//	wireenvelope  every HTTP error speaks the api error envelope
//	detachedctx   context.Background/TODO only at audited detachment seams
//	determinism   no wall clocks / unseeded rand / map iteration in golden-feeding code
//
// Standalone (the canonical mode — whole-program, so hotpathalloc sees
// cross-package reachability):
//
//	go run ./cmd/secvet ./...        # or: go tool secvet ./...
//
// It also speaks the `go vet -vettool` unit protocol (per-package, so
// hotpathalloc reachability stops at package boundaries there):
//
//	go build -o /tmp/secvet ./cmd/secvet
//	go vet -vettool=/tmp/secvet ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"secureproc/internal/analysis"
	"secureproc/internal/analysis/detachedctx"
	"secureproc/internal/analysis/determinism"
	"secureproc/internal/analysis/hotpathalloc"
	"secureproc/internal/analysis/wireenvelope"
)

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	wireenvelope.Analyzer,
	detachedctx.Analyzer,
	determinism.Analyzer,
}

func main() {
	// `go vet -vettool` probes the tool's flag set first ("-flags", a
	// JSON list) to learn which vet flags it may forward. secvet takes
	// none.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	versionFlag := flag.String("V", "", "print version (go vet tool protocol; only -V=full is meaningful)")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: secvet [packages]   (default ./...)\n       secvet unit.cfg     (go vet -vettool protocol)\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitMode(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads the whole module (whole-program reachability) and
// prints findings to stdout.
func standalone(patterns []string) int {
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secvet:", err)
		return 2
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secvet:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "secvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// unitMode implements the `go vet -vettool` per-package protocol: read
// the unit config, analyze the one package, report findings on stderr
// (exit 2, vet's diagnostic convention) and write the facts file the go
// command expects (empty — the suite exchanges no facts).
func unitMode(cfgFile string) int {
	prog, vetxOutput, vetxOnly, err := analysis.LoadUnit(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secvet:", err)
		return 1
	}
	if vetxOutput != "" {
		if err := os.WriteFile(vetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "secvet:", err)
			return 1
		}
	}
	if vetxOnly {
		return 0
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion implements the -V=full handshake the go command performs
// before trusting a vettool: "name version <content-id>". The content
// id is a hash of the executable so rebuilding secvet invalidates vet's
// action cache.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version unknown\n", name)
		return
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Printf("%s version unknown\n", name)
		return
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Printf("%s version unknown\n", name)
		return
	}
	fmt.Printf("%s version secsim-%x\n", name, h.Sum(nil)[:12])
}
