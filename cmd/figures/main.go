// Command figures regenerates the paper's evaluation (Figures 3, 5-10),
// printing paper-vs-measured tables for every series, plus the
// integrity-overhead extension figI1 (measured only — the paper scopes
// integrity verification out).
//
// Usage:
//
//	figures [-scale 1.0] [-fig fig5] [-jobs N] [-seq] [-list]
//
// With no -fig flag every figure is regenerated (simulations are shared
// between figures). -scale trades trace length for runtime; warmup always
// runs in full so cache/SNC state is faithful at any scale.
//
// Simulations fan out over a worker pool (-jobs, default GOMAXPROCS; -seq
// forces the sequential path). Figure tables go to stdout and are
// byte-identical regardless of parallelism; per-figure wall-clock and the
// run summary go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"secureproc/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (fraction of native trace length)")
	fig := flag.String("fig", "", "single figure to regenerate (fig3, fig5, ..., fig10, figI1; see -list)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run simulations sequentially (same as -jobs 1)")
	list := flag.Bool("list", false, "list regenerable figures and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "figures: -scale must be positive")
		os.Exit(1)
	}
	runner := experiments.NewRunner(*scale)
	runner.Jobs = *jobs
	if *seq {
		runner.Jobs = 1
	}
	start := time.Now()
	if *fig != "" {
		fr, err := runner.ByName(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(fr.Render())
	} else {
		// Regenerate figure by figure so the per-figure timing below is
		// meaningful; each figure's simulations still fan out over the
		// pool, and runs are memoized across figures.
		for _, n := range experiments.Names() {
			figStart := time.Now()
			before := runner.CachedRuns()
			fr, err := runner.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(fr.Render())
			fmt.Println()
			fmt.Fprintf(os.Stderr, "[%s: %.2fs, +%d simulations, %d memoized total]\n",
				n, time.Since(figStart).Seconds(), runner.CachedRuns()-before, runner.CachedRuns())
		}
	}
	effJobs := runner.Jobs
	if effJobs <= 0 {
		effJobs = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "(%d simulations, %.1fs, scale %.2f, jobs %d)\n",
		runner.Simulations(), time.Since(start).Seconds(), *scale, effJobs)
}
