// Command figures regenerates the paper's evaluation (Figures 3, 5-10),
// printing paper-vs-measured tables for every series.
//
// Usage:
//
//	figures [-scale 1.0] [-fig fig5] [-list]
//
// With no -fig flag every figure is regenerated (simulations are shared
// between figures). -scale trades trace length for runtime; warmup always
// runs in full so cache/SNC state is faithful at any scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"secureproc/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (fraction of native trace length)")
	fig := flag.String("fig", "", "single figure to regenerate (fig3, fig5, ..., fig10)")
	list := flag.Bool("list", false, "list regenerable figures and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	runner := experiments.NewRunner(*scale)
	start := time.Now()
	if *fig != "" {
		fr, err := runner.ByName(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(fr.Render())
	} else {
		for _, fr := range runner.All() {
			fmt.Print(fr.Render())
			fmt.Println()
		}
	}
	fmt.Printf("(%d simulations, %.1fs, scale %.2f)\n",
		runner.CachedRuns(), time.Since(start).Seconds(), *scale)
}
