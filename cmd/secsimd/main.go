// Command secsimd serves the simulation engine over HTTP: a long-lived
// process in front of the experiment layer's singleflight memo, so
// concurrent clients asking for the same configuration share one
// simulation and repeated requests are answered from the LRU-bounded
// cache.
//
// Usage:
//
//	secsimd [-addr :8080] [-scale 1.0] [-jobs N] [-simjobs K|auto]
//	        [-memo-capacity 0] [-trace-capacity 0] [-drain 30s]
//	        [-store DIR] [-maxadmit 0] [-stream]
//	        [-peers host:port,... -self host:port] [-hoplimit 3]
//	        [-batchwindow 0]
//
// With -simjobs K > 1, a single uncached simulation may split its measured
// phase into K speculative epochs and run them on idle -jobs slots (see
// /metrics "speculation"); results are byte-identical to serial runs.
// "-simjobs auto" sizes the split from observed idle slots instead of a
// fixed K.
//
// With -maxadmit N > 0, at most N simulation requests (/v1/run, /v1/sweep,
// /v1/figures) are admitted concurrently; request N+1 is rejected
// immediately with 429 and a Retry-After estimate instead of queueing
// unboundedly. Admitted work is scheduled weighted-fair per client
// (X-Client-ID header, else remote host), so one bulk sweep cannot starve
// interactive /v1/run calls.
//
// With -stream, /v1/sweep answers as an NDJSON stream by default — one
// line per result the moment its simulation lands, then a trailer.
// Individual requests opt in or out with the "stream" field or an
// "Accept: application/x-ndjson" header regardless of the flag.
//
// With -store, completed simulation results are persisted under DIR (keyed
// by run configuration and the timing-model version) and survive restarts:
// a rebooted secsimd answers previously-computed requests from disk instead
// of re-simulating. Damaged or stale entries fall back to recompute.
//
// With -peers, the node joins a static fleet: every member lists the same
// membership, each request's canonical run key is hashed onto a consistent
// ring, and requests owned by another member forward there — so the
// fleet's result memos partition exactly-once across instances instead of
// duplicating. -self is this node's advertised host:port on the ring (it
// must appear in the other members' -peers lists). A request that has
// already been forwarded -hoplimit times is served locally (the loop guard
// for misconfigured rings), and an unreachable owner degrades the request
// to local execution after one retry — never to a failure. With
// -batchwindow > 0, locally-owned /v1/run requests arriving within one
// window execute together as a single deduplicated batch. Cluster
// counters, per-peer health and a fleet-wide rollup appear under
// "cluster" in /metrics.
//
// The wire contract (request/response/error payloads for every endpoint)
// is defined in internal/api; see that package's documentation for the
// authoritative reference. Endpoints:
//
//	POST /v1/run              one spec -> simulation result
//	POST /v1/sweep            spec list (bench may be "all" or a,b,c)
//	GET  /v1/figures/{name}   rendered figure table (?format=text)
//	GET  /v1/schemes          registered protection schemes
//	GET  /v1/benchmarks       benchmark names
//	GET  /v1/cluster/stats    this node's cluster counters (fleet mode)
//	GET  /healthz             liveness
//	GET  /metrics             memo size, hit/miss/coalesced/eviction
//	                          counts, in-flight simulations, cluster rollup
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"secureproc/internal/experiments"
	"secureproc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 1.0, "workload scale for every simulation")
	jobs := flag.Int("jobs", 0, "concurrent simulations in sweep fan-out (0 = GOMAXPROCS)")
	simJobs := flag.String("simjobs", "0", `epochs one simulation may run speculatively in parallel on idle -jobs slots (0/1 = serial, "auto" = size from idle slots)`)
	capacity := flag.Int("memo-capacity", 0, "result-memo LRU capacity in entries (0 = unbounded)")
	traceCap := flag.Int("trace-capacity", 0, "materialized-trace memo LRU capacity (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	storeDir := flag.String("store", "", "persist results in this directory across restarts (empty = off)")
	maxAdmit := flag.Int("maxadmit", 0, "concurrently admitted simulation requests before 429 + Retry-After (0 = unbounded)")
	stream := flag.Bool("stream", false, "stream /v1/sweep results as NDJSON by default")
	peers := flag.String("peers", "", "comma-separated fleet members (host:port,...); enables cluster sharding")
	self := flag.String("self", "", "this node's advertised host:port on the ring (required with -peers)")
	hopLimit := flag.Int("hoplimit", 0, "max forwards per request before serving locally (0 = default)")
	batchWindow := flag.Duration("batchwindow", 0, "hold locally-owned /v1/run requests this long and execute each window as one deduplicated batch (0 = off)")
	flag.Parse()

	sj, err := experiments.ParseSimJobs(*simJobs)
	if err != nil {
		log.Fatalf("secsimd: %v", err)
	}
	cfg := server.Config{
		Scale:         *scale,
		Jobs:          *jobs,
		SimJobs:       sj,
		Capacity:      *capacity,
		TraceCapacity: *traceCap,
		StoreDir:      *storeDir,
		MaxAdmit:      *maxAdmit,
		Stream:        *stream,
	}
	if *peers != "" {
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		cfg.Cluster = &server.ClusterConfig{
			Self:        *self,
			Peers:       members,
			HopLimit:    *hopLimit,
			BatchWindow: *batchWindow,
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("secsimd: %v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	storeNote := "off"
	if *storeDir != "" {
		storeNote = *storeDir
	}
	clusterNote := "off"
	if cfg.Cluster != nil {
		clusterNote = *self + " in {" + *peers + "}"
	}
	log.Printf("secsimd listening on %s (scale %.2f, jobs %d, simjobs %s, memo capacity %d, trace capacity %d, store %s, maxadmit %d, stream %v, cluster %s)",
		*addr, *scale, *jobs, *simJobs, *capacity, *traceCap, storeNote, *maxAdmit, *stream, clusterNote)

	select {
	case err := <-errc:
		log.Fatalf("secsimd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("secsimd: shutting down, draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("secsimd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("secsimd: %v", err)
	}
	log.Print("secsimd: drained, bye")
}
