// Command secsim runs one benchmark under one memory-protection scheme and
// prints the detailed simulation statistics.
//
// Usage:
//
//	secsim [-bench mcf] [-scheme snc-lru] [-scale 1.0] [-snc 64] [-ways 0]
//	       [-crypto 50] [-l2 256] [-l2ways 4] [-compare]
//
// With -compare, all four schemes run and a slowdown summary is printed
// (one benchmark's slice of the paper's Figure 5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"secureproc/internal/sim"
	"secureproc/internal/stats"
	"secureproc/internal/workload"
)

func schemeByName(name string) (sim.SchemeKind, error) {
	switch strings.ToLower(name) {
	case "baseline", "base":
		return sim.SchemeBaseline, nil
	case "xom":
		return sim.SchemeXOM, nil
	case "snc-lru", "lru", "otp":
		return sim.SchemeOTPLRU, nil
	case "snc-norepl", "norepl":
		return sim.SchemeOTPNoRepl, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (baseline, xom, snc-lru, snc-norepl)", name)
	}
}

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (see -listbench)")
	scheme := flag.String("scheme", "snc-lru", "protection scheme: baseline, xom, snc-lru, snc-norepl")
	scale := flag.Float64("scale", 1.0, "workload scale")
	sncKB := flag.Int("snc", 64, "SNC size in KB")
	ways := flag.Int("ways", 0, "SNC associativity (0 = fully associative)")
	crypto := flag.Uint64("crypto", 50, "crypto unit latency in cycles")
	l2 := flag.Int("l2", 256, "L2 size in KB")
	l2ways := flag.Int("l2ways", 4, "L2 associativity")
	compare := flag.Bool("compare", false, "run all four schemes and print slowdowns")
	listBench := flag.Bool("listbench", false, "list benchmarks and exit")
	flag.Parse()

	if *listBench {
		for _, n := range workload.BenchmarkNames {
			fmt.Println(n)
		}
		return
	}
	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; try -listbench\n", *bench)
		os.Exit(1)
	}
	mkConfig := func(k sim.SchemeKind) sim.Config {
		cfg := sim.DefaultConfig()
		cfg.Scheme = k
		cfg.SNC.SizeBytes = *sncKB << 10
		cfg.SNC.Ways = *ways
		cfg.Crypto.Latency = *crypto
		cfg.L2.SizeBytes = *l2 << 10
		cfg.L2.Ways = *l2ways
		return cfg
	}

	if *compare {
		base, err := sim.RunProfile(mkConfig(sim.SchemeBaseline), prof, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := stats.NewTable(fmt.Sprintf("%s (scale %.2f, crypto %d cy)", *bench, *scale, *crypto),
			"scheme", "cycles", "IPC", "slowdown%", "snc-traffic%")
		t.AddRow("baseline", fmt.Sprint(base.Cycles), fmt.Sprintf("%.2f", base.IPC()), "0.00", "-")
		for _, k := range []sim.SchemeKind{sim.SchemeXOM, sim.SchemeOTPNoRepl, sim.SchemeOTPLRU} {
			r, err := sim.RunProfile(mkConfig(k), prof, *scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			t.AddRow(r.Scheme, fmt.Sprint(r.Cycles), fmt.Sprintf("%.2f", r.IPC()),
				fmt.Sprintf("%.2f", sim.Slowdown(r, base)),
				fmt.Sprintf("%.2f", stats.Pct(r.SNCTraffic(), r.DemandTraffic())))
		}
		fmt.Print(t.String())
		return
	}

	k, err := schemeByName(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := sim.RunProfile(mkConfig(k), prof, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark:      %s\n", *bench)
	fmt.Printf("scheme:         %s\n", r.Scheme)
	fmt.Printf("cycles:         %d\n", r.Cycles)
	fmt.Printf("instructions:   %d (IPC %.2f)\n", r.Instructions, r.IPC())
	fmt.Printf("L1D misses:     %d\n", r.L1DMisses)
	fmt.Printf("L1I misses:     %d\n", r.L1IMisses)
	fmt.Printf("L2 misses:      %d (hit rate %.1f%%)\n", r.L2Misses,
		stats.Pct(r.L2Hits, r.L2Hits+r.L2Misses))
	fmt.Printf("bus: fills=%d writebacks=%d seqfetch=%d seqspill=%d\n",
		r.LineFills, r.Writebacks, r.SeqNumFetches, r.SeqNumSpills)
	if r.SNCQueryHits+r.SNCQueryMisses > 0 {
		fmt.Printf("SNC: query %d/%d hits, update %d/%d hits, traffic %.2f%% of demand\n",
			r.SNCQueryHits, r.SNCQueryHits+r.SNCQueryMisses,
			r.SNCUpdateHits, r.SNCUpdateHits+r.SNCUpdateMiss,
			stats.Pct(r.SNCTraffic(), r.DemandTraffic()))
	}
	fmt.Printf("stalls: rob=%d mshr=%d dep=%d\n", r.ROBStallCycles, r.MSHRStallCycles, r.DepStallCycles)
}
