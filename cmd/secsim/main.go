// Command secsim runs benchmarks under a memory-protection scheme and
// prints the detailed simulation statistics.
//
// Usage:
//
//	secsim [-bench mcf] [-scheme snc-lru] [-scale 1.0] [-snc 64] [-ways 0]
//	       [-crypto 50] [-l2 256] [-l2ways 4] [-compare] [-jobs N]
//	       [-simjobs K|auto] [-seq] [-stream] [-store DIR] [-list]
//	secsim -multi mcf,gzip [-quantum 100000] [-switch flush|pid] [...]
//	secsim -perf [-perfout BENCH.json]
//	secsim -perfcmp base.json,cur.json [-perftol 0.10]
//
// -scheme accepts any registered scheme reference — a name or alias from
// the scheme registry, optionally with parameters, e.g. "snc-lru" or
// "otp-mac:verify=blocking" (see -list). -bench accepts a single
// benchmark, a comma-separated list, or "all"; multi-benchmark runs fan
// out over the experiment layer's worker pool (-jobs, default GOMAXPROCS)
// and print in deterministic order. With -simjobs K > 1, a single
// simulation may additionally split its measured phase into K speculative
// epochs and run them on idle -jobs slots (optimistic epoch-parallel
// simulation over checkpoints); "-simjobs auto" sizes the split from
// observed idle slots instead of a fixed K. Results are byte-identical to
// serial runs and a speculation summary is printed on stderr when the
// machinery engages. With -stream, each benchmark's result prints as an
// NDJSON line on stdout the moment its simulation completes (completion
// order, not request order) instead of a buffered report — incompatible
// with -compare and -multi. With -compare, every registered scheme
// runs per benchmark and a slowdown summary is printed (one benchmark's
// slice of the paper's Figure 5, extended to the full registry).
//
// With -store DIR, completed results are persisted under DIR (keyed by run
// configuration and the timing-model version): a later secsim or secsimd
// invocation pointed at the same directory answers repeated configurations
// from disk instead of re-simulating. Damaged entries fall back to
// recompute.
//
// With -multi, the named benchmarks are time-sliced through ONE machine
// (Section 4.3 multiprogramming): -quantum sets the slice length in
// instructions and -switch selects the scheme's context-switch policy —
// flush (option 1: flush-encrypt the SNC each switch) or pid (option 2:
// PID-tagged entries survive switches). Per-task slowdowns are reported
// against solo runs on the same configuration.
//
// With -perf, the internal/perf harness runs its fixed reduced-scale
// benchmark suite and prints the snapshot (optionally persisting it as
// JSON with -perfout). With -perfcmp base.json,cur.json, two snapshots are
// gated against each other — ns/op within -perftol, allocs/op zero
// tolerance — and the exit status is nonzero on regression; this is the
// comparison CI's bench-regression job runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"secureproc/internal/api"
	"secureproc/internal/core"
	"secureproc/internal/experiments"
	"secureproc/internal/perf"
	"secureproc/internal/sched"
	"secureproc/internal/sim"
	"secureproc/internal/stats"
	"secureproc/internal/store"
	"secureproc/internal/workload"
)

// printRegistry lists the registered schemes (with doc lines) and the
// benchmark names.
func printRegistry() {
	fmt.Println("schemes (use with -scheme; parameters as name:k=v,k=v):")
	for _, d := range core.Descriptors() {
		alias := ""
		if len(d.Aliases) > 0 {
			alias = " (alias " + strings.Join(d.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-16s %s%s\n", d.Name, d.Doc, alias)
	}
	fmt.Println("benchmarks (use with -bench; comma-separated or \"all\"):")
	for _, n := range workload.BenchmarkNames {
		fmt.Printf("  %s\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runMulti is the -multi entry point: time-slice the benchmarks through one
// machine under the scheme with the requested context-switch policy.
func runMulti(multi, scheme, switchPolicy string, switchSet bool, quantum uint64, scale float64,
	sncKB, ways int, crypto uint64, l2, l2ways int) {
	benches, err := experiments.ExpandBenches(multi)
	if err != nil {
		fatal(err)
	}
	if len(benches) < 2 {
		fatal(fmt.Errorf("-multi needs at least 2 benchmarks (got %d)", len(benches)))
	}
	// The switch policy rides as a registry parameter on the scheme; pass
	// it through ParseRef so "-scheme otp-mac:verify=blocking" composes.
	// An explicit switch= in the scheme reference wins over the flag's
	// default (conflicting explicit values are an error), and schemes
	// without per-process state (baseline, xom) run without a policy
	// unless the user explicitly demanded one.
	if _, err := core.ParseSwitchPolicy(switchPolicy); err != nil {
		fatal(err)
	}
	ref, err := sim.SchemeByName(scheme)
	if err != nil {
		fatal(err)
	}
	if prev, ok := ref.Params["switch"]; ok {
		if switchSet && prev != switchPolicy {
			fatal(fmt.Errorf("scheme %q says switch=%s but -switch says %s", scheme, prev, switchPolicy))
		}
	} else {
		withSwitch := ref
		withSwitch.Params = sim.SchemeParams{"switch": switchPolicy}
		for k, v := range ref.Params {
			withSwitch.Params[k] = v
		}
		if _, err := core.LookupRef(withSwitch); err == nil {
			ref = withSwitch
		} else if switchSet {
			fatal(fmt.Errorf("scheme %q does not support -switch: %w", scheme, err))
		}
	}
	if _, err := core.LookupRef(ref); err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = ref
	cfg.SNC.SizeBytes = sncKB << 10
	cfg.SNC.Ways = ways
	cfg.Crypto.Latency = crypto
	cfg.L2.SizeBytes = l2 << 10
	cfg.L2.Ways = l2ways
	start := time.Now()
	res, err := sched.RunBenchmarks(sched.Config{Sim: cfg, Quantum: quantum, Scale: scale}, benches)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Fprintf(os.Stderr, "(%d tasks, %.1fs)\n", len(benches), time.Since(start).Seconds())
}

func main() {
	bench := flag.String("bench", "mcf", `benchmark name, comma-separated list, or "all" (see -list)`)
	scheme := flag.String("scheme", "snc-lru", "protection scheme reference (see -list)")
	scale := flag.Float64("scale", 1.0, "workload scale")
	sncKB := flag.Int("snc", 64, "SNC size in KB")
	ways := flag.Int("ways", 0, "SNC associativity (0 = fully associative)")
	crypto := flag.Uint64("crypto", 50, "crypto unit latency in cycles")
	l2 := flag.Int("l2", 256, "L2 size in KB")
	l2ways := flag.Int("l2ways", 4, "L2 associativity")
	compare := flag.Bool("compare", false, "run every registered scheme and print slowdowns")
	multi := flag.String("multi", "", "time-slice these benchmarks (comma-separated, ≥2) through one machine")
	quantum := flag.Uint64("quantum", sched.DefaultQuantum, "multiprogramming time slice in instructions")
	switchPolicy := flag.String("switch", "flush", "context-switch policy for -multi: flush or pid (§4.3)")
	perfMode := flag.Bool("perf", false, "run the perf harness and print its snapshot")
	perfOut := flag.String("perfout", "", "with -perf: also write the snapshot JSON to this file")
	perfCmp := flag.String("perfcmp", "", "compare two perf snapshots \"base.json,cur.json\"; exit 1 on regression")
	perfTol := flag.Float64("perftol", 0.10, "ns/op regression tolerance for -perfcmp (fraction)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	simJobs := flag.String("simjobs", "0", `epochs one simulation may run speculatively in parallel on idle -jobs slots (0/1 = serial, "auto" = size from idle slots)`)
	seq := flag.Bool("seq", false, "run simulations sequentially (same as -jobs 1)")
	streamOut := flag.Bool("stream", false, "print each result as an NDJSON line the moment it completes")
	storeDir := flag.String("store", "", "persist results in this directory across runs (empty = off)")
	list := flag.Bool("list", false, "list registered schemes and benchmarks, then exit")
	listBench := flag.Bool("listbench", false, "list benchmarks and exit")
	flag.Parse()

	switchSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "switch" {
			switchSet = true
		}
	})

	if *perfMode {
		s := perf.Collect()
		fmt.Print(s.String())
		if *perfOut != "" {
			if err := s.WriteFile(*perfOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *perfOut)
		}
		return
	}
	if *perfCmp != "" {
		parts := strings.Split(*perfCmp, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-perfcmp wants \"base.json,cur.json\", got %q", *perfCmp))
		}
		base, err := perf.Load(strings.TrimSpace(parts[0]))
		if err != nil {
			fatal(err)
		}
		cur, err := perf.Load(strings.TrimSpace(parts[1]))
		if err != nil {
			fatal(err)
		}
		regs := perf.Compare(base, cur, *perfTol)
		if len(regs) == 0 {
			fmt.Printf("no regressions (%d benchmarks, ns/op tolerance %.0f%%, allocs/op zero-tolerance)\n",
				len(cur), *perfTol*100)
			return
		}
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(1)
	}
	if *list {
		printRegistry()
		return
	}
	if *listBench {
		for _, n := range workload.BenchmarkNames {
			fmt.Println(n)
		}
		return
	}
	if *streamOut && (*compare || *multi != "") {
		fatal(fmt.Errorf("-stream streams per-benchmark sweep results; it is incompatible with -compare and -multi"))
	}
	if *multi != "" {
		runMulti(*multi, *scheme, *switchPolicy, switchSet, *quantum, *scale, *sncKB, *ways, *crypto, *l2, *l2ways)
		return
	}
	benches, err := experiments.ExpandBenches(*bench)
	if err != nil {
		fatal(err)
	}
	sj, err := experiments.ParseSimJobs(*simJobs)
	if err != nil {
		fatal(err)
	}
	runner := experiments.NewRunner(*scale)
	runner.Jobs = *jobs
	runner.SimJobs = sj
	if *seq {
		runner.Jobs = 1
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, sim.TimingModelVersion)
		if err != nil {
			fatal(err)
		}
		runner.Store = st
	}
	mkSpec := func(b string, ref sim.SchemeRef) experiments.Spec {
		return experiments.Spec{
			Bench: b, Scheme: ref,
			SNCKB: *sncKB, SNCWays: *ways,
			L2KB: *l2, L2Ways: *l2ways,
			CryptoLat: *crypto,
		}
	}
	start := time.Now()

	if *compare {
		var schemes []sim.SchemeRef
		for _, n := range sim.SchemeNames() {
			if n != sim.SchemeBaseline.Name {
				schemes = append(schemes, sim.SchemeRef{Name: n})
			}
		}
		var specs []experiments.Spec
		for _, b := range benches {
			specs = append(specs, mkSpec(b, sim.SchemeBaseline))
			for _, ref := range schemes {
				specs = append(specs, mkSpec(b, ref))
			}
		}
		if err := runner.Sweep(context.Background(), specs); err != nil {
			fatal(err)
		}
		for _, b := range benches {
			base, err := runner.Run(mkSpec(b, sim.SchemeBaseline))
			if err != nil {
				fatal(err)
			}
			t := stats.NewTable(fmt.Sprintf("%s (scale %.2f, crypto %d cy)", b, *scale, *crypto),
				"scheme", "cycles", "IPC", "slowdown%", "snc-traffic%", "mac-traffic%")
			t.AddRow("baseline", fmt.Sprint(base.Cycles), fmt.Sprintf("%.2f", base.IPC()), "0.00", "-", "-")
			for _, ref := range schemes {
				r, err := runner.Run(mkSpec(b, ref))
				if err != nil {
					fatal(err)
				}
				t.AddRow(r.Scheme, fmt.Sprint(r.Cycles), fmt.Sprintf("%.2f", r.IPC()),
					fmt.Sprintf("%.2f", sim.Slowdown(r, base)),
					fmt.Sprintf("%.2f", stats.Pct(r.SNCTraffic(), r.DemandTraffic())),
					fmt.Sprintf("%.2f", stats.Pct(r.MACTraffic(), r.DemandTraffic())))
			}
			fmt.Print(t.String())
		}
		printSpeculation(runner)
		printDispatch(runner)
		fmt.Fprintf(os.Stderr, "(%d simulations, %.1fs)\n", runner.Simulations(), time.Since(start).Seconds())
		return
	}

	ref, err := sim.SchemeByName(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr)
		printRegistry()
		os.Exit(1)
	}
	specs := make([]experiments.Spec, len(benches))
	for i, b := range benches {
		specs[i] = mkSpec(b, ref)
	}
	if *streamOut {
		// One NDJSON line per completed simulation, in completion order,
		// using the same api.StreamLine shape secsimd streams; index maps
		// each line back to the -bench list.
		enc := json.NewEncoder(os.Stdout)
		err := runner.SweepEach(context.Background(), specs, func(i int, res sim.Result, err error) {
			line := api.StreamLine{Index: i, Spec: api.SpecOf(specs[i])}
			if err != nil {
				line.Error = err.Error()
			} else {
				line.Result = &res
			}
			enc.Encode(line) //nolint:errcheck // stdout
		})
		if err != nil {
			fatal(err)
		}
		printSpeculation(runner)
		printDispatch(runner)
		if len(benches) > 1 {
			fmt.Fprintf(os.Stderr, "(%d simulations, %.1fs)\n", runner.Simulations(), time.Since(start).Seconds())
		}
		return
	}
	if err := runner.Sweep(context.Background(), specs); err != nil {
		fatal(err)
	}
	for i, b := range benches {
		r, err := runner.Run(specs[i])
		if err != nil {
			fatal(err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("benchmark:      %s\n", b)
		fmt.Printf("scheme:         %s\n", r.Scheme)
		fmt.Printf("cycles:         %d\n", r.Cycles)
		fmt.Printf("instructions:   %d (IPC %.2f)\n", r.Instructions, r.IPC())
		fmt.Printf("L1D misses:     %d\n", r.L1DMisses)
		fmt.Printf("L1I misses:     %d\n", r.L1IMisses)
		fmt.Printf("L2 misses:      %d (hit rate %.1f%%)\n", r.L2Misses,
			stats.Pct(r.L2Hits, r.L2Hits+r.L2Misses))
		fmt.Printf("bus: fills=%d writebacks=%d seqfetch=%d seqspill=%d\n",
			r.LineFills, r.Writebacks, r.SeqNumFetches, r.SeqNumSpills)
		if r.SNCQueryHits+r.SNCQueryMisses > 0 {
			fmt.Printf("SNC: query %d/%d hits, update %d/%d hits, traffic %.2f%% of demand\n",
				r.SNCQueryHits, r.SNCQueryHits+r.SNCQueryMisses,
				r.SNCUpdateHits, r.SNCUpdateHits+r.SNCUpdateMiss,
				stats.Pct(r.SNCTraffic(), r.DemandTraffic()))
		}
		if r.IntegrityVerified > 0 {
			fmt.Printf("integrity: %d lines verified, mac-fetch=%d mac-update=%d (%.2f%% of demand), verify-lag %d cycles\n",
				r.IntegrityVerified, r.MACFetches, r.MACUpdates,
				stats.Pct(r.MACTraffic(), r.DemandTraffic()), r.IntegrityStallCycles)
		}
		fmt.Printf("stalls: rob=%d mshr=%d dep=%d\n", r.ROBStallCycles, r.MSHRStallCycles, r.DepStallCycles)
	}
	printSpeculation(runner)
	printDispatch(runner)
	if len(benches) > 1 {
		fmt.Fprintf(os.Stderr, "(%d simulations, %.1fs)\n", runner.Simulations(), time.Since(start).Seconds())
	}
}

// printSpeculation reports the epoch-parallel bookkeeping on stderr when any
// simulation ran wide (-simjobs > 1 with idle -jobs slots). Results are
// byte-identical either way; this line is how a user sees the machinery
// engage.
func printSpeculation(r *experiments.Runner) {
	st := r.SpeculationStats()
	if st.ParallelRuns == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "(speculation: %d parallel runs, %d epochs, %d commits, %d rollbacks, %d cycles re-simulated)\n",
		st.ParallelRuns, st.Epochs, st.Commits, st.Rollbacks, st.ResimCycles)
}

// printDispatch reports the dispatch layer's counters on stderr after a
// multi-spec run, in the same api.DispatchMetrics shape secsimd exports on
// /metrics. Silent when the dispatcher never engaged — single-spec
// sequential runs stay dispatcher-free and print nothing.
func printDispatch(r *experiments.Runner) {
	q := r.DispatchStats()
	if q.Submitted == 0 {
		return
	}
	b, err := json.Marshal(api.DispatchMetrics{Queue: q})
	if err != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "(dispatch: %s)\n", b)
}
