module secureproc

go 1.24
