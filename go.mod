module secureproc

go 1.24

tool secureproc/cmd/secvet
