package secureproc_test

// One benchmark per paper figure: each regenerates the figure's data series
// (at reduced workload scale) and reports the headline aggregate the paper
// quotes, so `go test -bench=.` replays the entire evaluation. Simulation
// runs are memoized in a shared runner, mirroring how the figures share
// configurations in the paper.

import (
	"flag"
	"sync"
	"testing"

	"secureproc"
	"secureproc/internal/core"
	"secureproc/internal/crypto/engine"
	"secureproc/internal/experiments"
	"secureproc/internal/integrity"
	"secureproc/internal/mem"
	"secureproc/internal/sim"
	"secureproc/internal/snc"
	"secureproc/internal/workload"
)

// benchScale trades fidelity for speed in the bench harness; cmd/figures
// defaults to 1.0. Override per invocation with
// `go test -bench . -benchscale 0.5`.
var benchScale = flag.Float64("benchscale", 0.15, "workload scale for the figure benchmarks")

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func sharedRunner() *experiments.Runner {
	runnerOnce.Do(func() { runner = experiments.NewRunner(*benchScale) })
	return runner
}

func reportSeries(b *testing.B, fr experiments.FigureResult) {
	b.Helper()
	for _, s := range fr.Measured {
		b.ReportMetric(s.Mean(), metricName(s.Name)+"-avg%")
	}
}

// metricNames caches sanitized series names: the same handful of series
// labels recur across every figure benchmark iteration, so each is
// sanitized once instead of being rebuilt rune-by-rune per report.
var metricNames sync.Map // raw name -> sanitized string

// metricName strips whitespace and parentheses (ReportMetric units must not
// contain whitespace), memoizing the result.
func metricName(name string) string {
	if v, ok := metricNames.Load(name); ok {
		return v.(string)
	}
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '(', ')':
		default:
			out = append(out, r)
		}
	}
	sanitized := string(out)
	metricNames.Store(name, sanitized)
	return sanitized
}

func BenchmarkFig3XOMSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure3()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig5SchemeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure5()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig6SNCSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure6()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig7SNCAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure7()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig8LargerL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure8()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig9Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure9()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

func BenchmarkFig10CryptoLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sharedRunner().Figure10()
		if i == b.N-1 {
			reportSeries(b, fr)
		}
	}
}

// --- Ablation benches (DESIGN.md Section 6) ---

func ablationRun(b *testing.B, bench string, mutate func(*sim.Config)) sim.Result {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeOTPLRU
	if mutate != nil {
		mutate(&cfg)
	}
	prof, ok := workload.ByName(bench)
	if !ok {
		b.Fatalf("unknown benchmark %s", bench)
	}
	r, err := sim.RunProfile(cfg, prof, *benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationSNCPolicy compares LRU vs NoReplacement on the benchmark
// where the gap is largest (gcc).
func BenchmarkAblationSNCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, _ := secureproc.RunBenchmark("gcc", secureproc.Baseline, *benchScale)
		lru, _ := secureproc.RunBenchmark("gcc", secureproc.OTPLRU, *benchScale)
		nr, _ := secureproc.RunBenchmark("gcc", secureproc.OTPNoRepl, *benchScale)
		if i == b.N-1 {
			b.ReportMetric(sim.Slowdown(lru, base), "lru-slowdown-%")
			b.ReportMetric(sim.Slowdown(nr, base), "norepl-slowdown-%")
		}
	}
}

// BenchmarkAblationWriteBuffer sweeps write-buffer depth on the most
// store-heavy workload (vpr).
func BenchmarkAblationWriteBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var last float64
		for _, depth := range []int{1, 2, 8, 32} {
			r := ablationRun(b, "vpr", func(c *sim.Config) { c.WriteBufferDepth = depth })
			last = float64(r.Cycles)
			if i == b.N-1 {
				b.ReportMetric(last, "cycles-wb"+itoa(depth))
			}
		}
	}
}

// BenchmarkAblationMLP sweeps MSHR count on the high-MLP streaming workload
// (art): fewer MSHRs serialize misses and inflate everything.
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mshrs := range []int{1, 2, 4, 8, 16} {
			r := ablationRun(b, "art", func(c *sim.Config) { c.CPU.MSHRs = mshrs })
			if i == b.N-1 {
				b.ReportMetric(float64(r.Cycles), "cycles-mshr"+itoa(mshrs))
			}
		}
	}
}

// BenchmarkAblationCryptoII shows the value of a fully pipelined crypto
// unit: initiation interval 1 vs a non-pipelined 50-cycle unit.
func BenchmarkAblationCryptoII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ii := range []uint64{1, 10, 50} {
			r := ablationRun(b, "art", func(c *sim.Config) { c.Crypto.InitiationInterval = ii })
			if i == b.N-1 {
				b.ReportMetric(float64(r.Cycles), "cycles-ii"+itoa(int(ii)))
			}
		}
	}
}

// BenchmarkAblationSNCEntryWidth sweeps sequence-number width (entry bytes):
// wider entries postpone wraparound but halve coverage per KB.
func BenchmarkAblationSNCEntryWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, eb := range []int{2, 4} {
			r := ablationRun(b, "mcf", func(c *sim.Config) { c.SNC.EntryBytes = eb })
			if i == b.N-1 {
				b.ReportMetric(float64(r.SNCQueryMisses), "qmiss-entry"+itoa(eb)+"B")
			}
		}
	}
}

// BenchmarkAblationMemLatency sweeps DRAM latency: the *relative* cost of
// XOM's serial crypto grows as memory gets faster (a fixed 50-cycle unit
// atop a 60-cycle miss is an 83% latency tax; atop 200 cycles, 25%), while
// OTP stays near zero everywhere — MAX(mem,crypto)+1 tracks the larger
// term.
func BenchmarkAblationMemLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lat := range []uint64{60, 100, 200} {
			prof, _ := workload.ByName("art")
			mk := func(k sim.SchemeRef) sim.Result {
				cfg := sim.DefaultConfig()
				cfg.Scheme = k
				cfg.DRAM.AccessLatency = lat
				r, err := sim.RunProfile(cfg, prof, *benchScale)
				if err != nil {
					b.Fatal(err)
				}
				return r
			}
			base := mk(sim.SchemeBaseline)
			xom := mk(sim.SchemeXOM)
			otp := mk(sim.SchemeOTPLRU)
			if i == b.N-1 {
				b.ReportMetric(sim.Slowdown(xom, base), "xom%-mem"+itoa(int(lat)))
				b.ReportMetric(sim.Slowdown(otp, base), "otp%-mem"+itoa(int(lat)))
			}
		}
	}
}

// BenchmarkContextSwitchFlush measures Section 4.3's SNC-flush cost for the
// three paper SNC sizes: the cycles to encrypt and spill every live
// sequence number on a task switch.
func BenchmarkContextSwitchFlush(b *testing.B) {
	for _, kb := range []int{32, 64, 128} {
		kb := kb
		b.Run("snc"+itoa(kb)+"KB", func(b *testing.B) {
			var flushCycles uint64
			for i := 0; i < b.N; i++ {
				bus := mem.NewBus(mem.DefaultDRAMConfig())
				wbuf := mem.NewWriteBuffer(8)
				eng := engine.New(engine.DefaultConfig())
				cfg := snc.DefaultConfig()
				cfg.SizeBytes = kb << 10
				o := core.NewOTP(bus, wbuf, eng, snc.New(cfg))
				// Fill the SNC completely, then switch.
				for e := 0; e < cfg.Entries(); e++ {
					o.SNC().Install(uint64(e)*128, 1)
				}
				flushCycles = o.ContextSwitch(0, 1)
			}
			b.ReportMetric(float64(flushCycles), "flush-cycles")
		})
	}
}

// BenchmarkHashTreeVerify measures the integrity substrate: per-line
// verification cost with and without the Gassend-style node cache.
func BenchmarkHashTreeVerify(b *testing.B) {
	tree, err := integrity.NewHashTree([]byte("k"), 128, 4096)
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, 128)
	proof, _ := tree.Proof(17)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := tree.Verify(17, line, proof); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cv := integrity.NewCachedVerifier(tree, 1024)
		for i := 0; i < b.N; i++ {
			if err := cv.Verify(17, line, proof); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed (references per
// second) — the cost of the reproduction itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ByName("vpr")
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeOTPLRU
	cfg.SNC.Ways = 32 // avoid the fully associative scan cost
	b.ResetTimer()
	refs := 0
	for i := 0; i < b.N; i++ {
		r, err := sim.RunProfile(cfg, prof, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		refs += int(r.Instructions)
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "instrs/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkPadCipher compares the functional pad generators (DES 8B blocks
// vs AES-128 16B blocks): AES halves the per-line block count at a higher
// per-block cost.
func BenchmarkPadCipher(b *testing.B) {
	for _, tc := range []struct {
		name string
		kind secureproc.CipherKind
		klen int
	}{
		{"des", secureproc.CipherDES, 8},
		{"aes128", secureproc.CipherAES, 16},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			pm, err := secureproc.NewProtectedMemory(tc.kind, make([]byte, tc.klen), 128)
			if err != nil {
				b.Fatal(err)
			}
			line := make([]byte, 128)
			b.SetBytes(128)
			for i := 0; i < b.N; i++ {
				if err := pm.WriteLineOTP(0x1000, line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
