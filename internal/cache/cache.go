// Package cache implements a set-associative cache model with LRU
// replacement, write-back/write-allocate semantics, and virtual-address tag
// storage for L2 lines.
//
// The paper's hierarchy (Section 5): 32KB 4-way split L1 I/D caches and a
// 256KB 4-way unified L2 with 128-byte lines. Section 4 additionally
// requires the L2 to remember each line's virtual address so that the
// sequence-number cache can be indexed by VA on writebacks (physical
// addresses may change across context switches); this model stores that VA
// alongside the tag.
package cache

import (
	"fmt"
	"math/bits"

	"secureproc/internal/statehash"
)

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	// Ways is the associativity. Ways == 0 means fully associative.
	Ways int
	// HitLatency in cycles (informational; the CPU model decides how much
	// of it is exposed).
	HitLatency uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: size and line must be positive", c.Name)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of line %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	ways := c.Ways
	if ways == 0 {
		ways = lines
	}
	if lines%ways != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways", c.Name, lines, ways)
	}
	sets := lines / ways
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// lineMeta holds the per-line state that is not needed by the hit scan.
type lineMeta struct {
	va    uint64 // virtual line address kept for SNC indexing (paper §4)
	used  uint64 // LRU timestamp
	dirty bool
}

// Cache is a set-associative cache. It tracks tags and dirty state only; the
// simulated data contents live in the functional memory image.
//
// Storage is struct-of-arrays: the hit scan walks a dense tag array (one
// 8-byte word per way, set i owning words [i*ways, (i+1)*ways)) while the
// VA/LRU/dirty metadata lives in a parallel array touched only on hits and
// fills. A tag word encodes validity in its low bit — (tag<<1)|1 when valid,
// 0 when not — so the scan is a single compare per way with no way for an
// invalid line's stale tag to alias a real one.
type Cache struct {
	cfg      Config
	tags     []uint64
	meta     []lineMeta
	ways     int
	setShift uint
	setMask  uint64
	tick     uint64

	// dirtyScratch backs InvalidateAll's result so steady-state context
	// switches stop allocating.
	dirtyScratch [][2]uint64

	// Statistics.
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// New builds a cache from cfg, panicking on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	ways := cfg.Ways
	if ways == 0 {
		ways = lines
	}
	sets := lines / ways
	return &Cache{
		cfg:      cfg,
		tags:     make([]uint64, lines),
		meta:     make([]lineMeta, lines),
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

func (c *Cache) setIndex(addr uint64) uint64 {
	return (addr >> c.setShift) & c.setMask
}

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Evicted is true when the fill displaced a valid line.
	Evicted bool
	// WritebackVA/WritebackAddr describe the displaced dirty line (valid
	// only when WritebackNeeded).
	WritebackNeeded bool
	WritebackAddr   uint64
	WritebackVA     uint64
}

// Access performs a read (write=false) or write (write=true) of addr with
// write-allocate + write-back semantics, filling on miss. va is the virtual
// line address recorded with the line (pass addr when VA==PA).
func (c *Cache) Access(addr, va uint64, write bool) Result {
	c.Accesses++
	c.tick++
	base := int(c.setIndex(addr)) * c.ways
	tags := c.tags[base : base+c.ways]
	want := addr>>c.setShift<<1 | 1
	for i := range tags {
		if tags[i] == want {
			c.Hits++
			m := &c.meta[base+i]
			m.used = c.tick
			if write {
				m.dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.Misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range tags {
		if tags[i] == 0 {
			victim = i
			break
		}
		if c.meta[base+i].used < c.meta[base+victim].used {
			victim = i
		}
	}
	res := Result{}
	if tags[victim] != 0 {
		res.Evicted = true
		vm := &c.meta[base+victim]
		if vm.dirty {
			c.Writebacks++
			res.WritebackNeeded = true
			res.WritebackAddr = tags[victim] >> 1 << c.setShift
			res.WritebackVA = vm.va
		}
	}
	tags[victim] = want
	c.meta[base+victim] = lineMeta{va: va &^ uint64(c.cfg.LineBytes-1), used: c.tick, dirty: write}
	return res
}

// Probe reports whether addr is present without touching LRU state or stats.
func (c *Cache) Probe(addr uint64) bool {
	base := int(c.setIndex(addr)) * c.ways
	tags := c.tags[base : base+c.ways]
	want := addr>>c.setShift<<1 | 1
	for i := range tags {
		if tags[i] == want {
			return true
		}
	}
	return false
}

// InvalidateAll clears the cache (used at program/compartment switches),
// returning the dirty lines as (physical line address, VA) pairs so callers
// can write them back. The flushed dirty lines count as writebacks. The
// returned slice is a scratch buffer owned by the cache, valid only until
// the next InvalidateAll call.
func (c *Cache) InvalidateAll() (dirty [][2]uint64) {
	dirty = c.dirtyScratch[:0]
	for i := range c.tags {
		m := &c.meta[i]
		if c.tags[i] != 0 && m.dirty {
			c.Writebacks++
			dirty = append(dirty, [2]uint64{c.tags[i] >> 1 << c.setShift, m.va}) //secsim:allowalloc scratch buffer reuse; amortized zero, gated by sim AllocsPerRun tests
		}
		c.tags[i] = 0
		m.dirty = false
	}
	c.dirtyScratch = dirty
	return dirty
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears counters but keeps cache contents (used after warmup).
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Writebacks = 0, 0, 0, 0
}

// Snapshot is an opaque deep copy of the cache's mutable state — tag array,
// per-line metadata (VA, LRU timestamp, dirty bit), LRU tick, and the stat
// counters. It shares nothing with the cache it came from, so one snapshot
// can seed any number of forked runs.
type Snapshot struct {
	tags []uint64
	meta []lineMeta
	tick uint64

	accesses   uint64
	hits       uint64
	misses     uint64
	writebacks uint64
}

// Snapshot captures the cache's full mutable state.
func (c *Cache) Snapshot() Snapshot {
	var s Snapshot
	c.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the cache's state into s, reusing s's arrays when
// they are already the right size. Repeated boundary checkpoints into the
// same Snapshot are allocation-free in steady state.
func (c *Cache) SnapshotInto(s *Snapshot) {
	if len(s.tags) != len(c.tags) {
		s.tags = make([]uint64, len(c.tags))
	}
	if len(s.meta) != len(c.meta) {
		s.meta = make([]lineMeta, len(c.meta))
	}
	copy(s.tags, c.tags)
	copy(s.meta, c.meta)
	s.tick = c.tick
	s.accesses = c.Accesses
	s.hits = c.Hits
	s.misses = c.Misses
	s.writebacks = c.Writebacks
}

// HashState folds the snapshot's behavior-affecting state into h: tags,
// per-line metadata (VA, LRU timestamp, dirty bit) and the LRU tick. The
// stat counters are excluded on purpose — see cpu.Snapshot.HashState.
func (s *Snapshot) HashState(h *statehash.Hash) {
	h.Words(s.tags)
	h.Int(len(s.meta))
	for i := range s.meta {
		m := &s.meta[i]
		h.Word(m.va)
		h.Word(m.used)
		h.Bool(m.dirty)
	}
	h.Word(s.tick)
}

// Restore reinstates a snapshot taken from a cache with the same geometry
// (the tag and metadata arrays are sized by the configuration).
func (c *Cache) Restore(s Snapshot) {
	copy(c.tags, s.tags)
	copy(c.meta, s.meta)
	c.tick = s.tick
	c.Accesses = s.accesses
	c.Hits = s.hits
	c.Misses = s.misses
	c.Writebacks = s.writebacks
}
