package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg4way() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 4}
}

func TestValidate(t *testing.T) {
	good := []Config{
		cfg4way(),
		{Name: "fa", SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{Name: "l2", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},       // size not multiple of line
		{SizeBytes: 1024, LineBytes: 60, Ways: 1},       // line not power of two
		{SizeBytes: 3 * 64 * 4, LineBytes: 64, Ways: 4}, // sets=3 not pow2
		{SizeBytes: 1024, LineBytes: 64, Ways: 5},       // lines not divisible
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] (%+v): expected error", i, c)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	c := New(cfg4way())
	if r := c.Access(0x1000, 0x1000, false); r.Hit {
		t.Error("first access should miss")
	}
	if r := c.Access(0x1000, 0x1000, false); !r.Hit {
		t.Error("second access should hit")
	}
	if r := c.Access(0x1030, 0x1030, false); !r.Hit {
		t.Error("same-line access should hit")
	}
	if c.Accesses != 3 || c.Hits != 2 || c.Misses != 1 {
		t.Errorf("stats: %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 ways; access 5 lines mapping to the same set; the first (LRU) must
	// be evicted.
	c := New(cfg4way())
	sets := 1024 / 64 / 4 // 4 sets
	stride := uint64(64 * sets)
	for i := uint64(0); i < 5; i++ {
		c.Access(i*stride, i*stride, false)
	}
	if c.Probe(0) {
		t.Error("line 0 should have been evicted (LRU)")
	}
	for i := uint64(1); i < 5; i++ {
		if !c.Probe(i * stride) {
			t.Errorf("line %d should be present", i)
		}
	}
}

func TestLRUTouchedLineSurvives(t *testing.T) {
	c := New(cfg4way())
	sets := 4
	stride := uint64(64 * sets)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*stride, i*stride, false)
	}
	c.Access(0, 0, false) // touch line 0, now line 1 is LRU
	c.Access(4*stride, 4*stride, false)
	if !c.Probe(0) {
		t.Error("recently used line 0 evicted")
	}
	if c.Probe(stride) {
		t.Error("LRU line 1 not evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(cfg4way())
	stride := uint64(64 * 4)
	c.Access(0, 0xAAAA0000, true) // dirty line with distinct VA
	for i := uint64(1); i < 4; i++ {
		c.Access(i*stride, i*stride, false)
	}
	r := c.Access(4*stride, 4*stride, false)
	if !r.WritebackNeeded {
		t.Fatal("expected writeback of dirty line")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("writeback addr = %#x, want 0", r.WritebackAddr)
	}
	if r.WritebackVA != 0xAAAA0000 {
		t.Errorf("writeback VA = %#x, want 0xAAAA0000", r.WritebackVA)
	}
	if c.Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(cfg4way())
	stride := uint64(64 * 4)
	for i := uint64(0); i < 5; i++ {
		r := c.Access(i*stride, i*stride, false)
		if r.WritebackNeeded {
			t.Error("clean eviction should not write back")
		}
	}
}

func TestWriteAllocates(t *testing.T) {
	c := New(cfg4way())
	if r := c.Access(0x40, 0x40, true); r.Hit {
		t.Error("write miss expected")
	}
	if !c.Probe(0x40) {
		t.Error("write should allocate the line")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(Config{Name: "fa", SizeBytes: 512, LineBytes: 64, Ways: 0})
	// 8 lines, any addresses coexist.
	addrs := []uint64{0, 1 << 20, 3 << 13, 7 << 9, 5 << 30, 64, 128, 1 << 40}
	for _, a := range addrs {
		c.Access(a, a, false)
	}
	for _, a := range addrs {
		if !c.Probe(a) {
			t.Errorf("addr %#x missing from fully associative cache", a)
		}
	}
	c.Access(1<<50, 1<<50, false)
	if c.Probe(0) {
		t.Error("oldest line should be evicted")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(cfg4way())
	c.Access(0, 0, true)
	c.Access(64, 64, false)
	c.Access(128, 128, true)
	dirty := c.InvalidateAll()
	if len(dirty) != 2 {
		t.Fatalf("got %d dirty lines, want 2", len(dirty))
	}
	if c.Probe(0) || c.Probe(64) || c.Probe(128) {
		t.Error("lines still present after InvalidateAll")
	}
}

func TestLineAddr(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 128, Ways: 4})
	if got := c.LineAddr(0x1234); got != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x, want 0x1200", got)
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := New(cfg4way())
	c.Access(0, 0, false)
	c.Access(0, 0, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
	c.ResetStats()
	if c.MissRate() != 0 || c.Accesses != 0 {
		t.Error("ResetStats did not clear")
	}
	if !c.Probe(0) {
		t.Error("ResetStats must keep contents")
	}
}

// TestInclusionInvariant: after any access sequence, the number of valid
// distinct lines never exceeds capacity, and probing immediately after
// access always hits.
func TestInvariantProbeAfterAccess(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "p", SizeBytes: 2048, LineBytes: 64, Ways: 2})
		for i := 0; i < int(n); i++ {
			addr := uint64(rng.Intn(1 << 16))
			c.Access(addr, addr, rng.Intn(2) == 0)
			if !c.Probe(addr) {
				return false
			}
		}
		return c.Hits+c.Misses == c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestVAPropagation: the VA recorded at fill time is the one reported at
// writeback time, line-aligned.
func TestVAPropagation(t *testing.T) {
	c := New(Config{Name: "va", SizeBytes: 256, LineBytes: 64, Ways: 0})
	// Fill 4 lines with distinct VAs (including a non-aligned VA).
	c.Access(0x000, 0x7F000033, true)
	c.Access(0x100, 0x100, false)
	c.Access(0x200, 0x200, false)
	c.Access(0x300, 0x300, false)
	r := c.Access(0x400, 0x400, false) // evicts first line
	if !r.WritebackNeeded || r.WritebackVA != 0x7F000000 {
		t.Errorf("writeback VA = %#x, want 0x7F000000 (line aligned)", r.WritebackVA)
	}
}

func TestPaperL2Geometry(t *testing.T) {
	// The paper's L2: 256KB, 4-way, 128B lines => 512 sets.
	c := New(Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4})
	if got := len(c.tags) / c.ways; got != 512 {
		t.Errorf("L2 sets = %d, want 512", got)
	}
}
