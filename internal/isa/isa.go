// Package isa defines SSA-32 ("simple secure architecture"), a small 32-bit
// RISC ISA with an assembler and a functional interpreter.
//
// The paper's end-to-end story (Section 2.1) needs real programs: a vendor
// encrypts machine code under a symmetric key, ships it with the key
// wrapped under the processor's public key, and the processor decrypts
// instructions as it fetches them. This package supplies the machine those
// programs run on; internal/xom supplies the vendor packaging, key
// unwrapping and the secure fetch path.
//
// Encoding (32-bit fixed width, little-endian in memory):
//
//	[31:26] opcode  [25:21] rd  [20:16] rs1  [15:11] rs2  [15:0] imm16
//
// R-type ops use rd/rs1/rs2; I-type use rd/rs1/imm16 (sign-extended unless
// noted); branches compare rd(!)/rs1 and jump by imm16 words.
package isa

import "fmt"

// Opcode is the 6-bit major opcode.
type Opcode uint8

// The SSA-32 instruction set.
const (
	OpHALT Opcode = iota // stop execution
	OpADD                // rd = rs1 + rs2
	OpSUB                // rd = rs1 - rs2
	OpAND                // rd = rs1 & rs2
	OpOR                 // rd = rs1 | rs2
	OpXOR                // rd = rs1 ^ rs2
	OpSLL                // rd = rs1 << (rs2 & 31)
	OpSRL                // rd = rs1 >> (rs2 & 31) logical
	OpSRA                // rd = rs1 >> (rs2 & 31) arithmetic
	OpSLT                // rd = signed(rs1) < signed(rs2)
	OpSLTU               // rd = rs1 < rs2 unsigned
	OpMUL                // rd = rs1 * rs2 (low 32 bits)

	OpADDI // rd = rs1 + imm
	OpANDI // rd = rs1 & uimm
	OpORI  // rd = rs1 | uimm
	OpXORI // rd = rs1 ^ uimm
	OpSLTI // rd = signed(rs1) < imm
	OpSLLI // rd = rs1 << imm
	OpSRLI // rd = rs1 >> imm
	OpLUI  // rd = imm << 16

	OpLW  // rd = mem32[rs1 + imm]
	OpLB  // rd = sx(mem8[rs1 + imm])
	OpLBU // rd = zx(mem8[rs1 + imm])
	OpSW  // mem32[rs1 + imm] = rd
	OpSB  // mem8[rs1 + imm] = rd

	OpBEQ  // if rd == rs1: pc += imm*4
	OpBNE  // if rd != rs1: pc += imm*4
	OpBLT  // if signed(rd) < signed(rs1): pc += imm*4
	OpBGE  // if signed(rd) >= signed(rs1): pc += imm*4
	OpJAL  // rd = pc+4; pc += imm*4
	OpJALR // rd = pc+4; pc = rs1 + imm

	OpSYS // system call: service in rs1 value, arg in a0

	numOpcodes
)

var opNames = map[Opcode]string{
	OpHALT: "halt", OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or",
	OpXOR: "xor", OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt",
	OpSLTU: "sltu", OpMUL: "mul",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLTI: "slti", OpSLLI: "slli", OpSRLI: "srli", OpLUI: "lui",
	OpLW: "lw", OpLB: "lb", OpLBU: "lbu", OpSW: "sw", OpSB: "sb",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpJAL: "jal", OpJALR: "jalr", OpSYS: "sys",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%d", int(o))
}

// System call services (value of rs1 register for OpSYS).
const (
	// SysExit terminates the program; a0 is the exit code.
	SysExit = 0
	// SysPutChar writes the low byte of a0 to the console.
	SysPutChar = 1
	// SysPutInt writes a0 as a signed decimal to the console.
	SysPutInt = 2
)

// Instr is a decoded instruction.
type Instr struct {
	Op       Opcode
	Rd       int
	Rs1, Rs2 int
	Imm      int32 // sign-extended 16-bit immediate
}

// Encode packs the instruction into its 32-bit representation.
func (in Instr) Encode() uint32 {
	return uint32(in.Op)<<26 |
		uint32(in.Rd&31)<<21 |
		uint32(in.Rs1&31)<<16 |
		uint32(uint16(in.Imm))
}

// EncodeR packs an R-type instruction (rs2 overlays the imm field's top
// bits).
func (in Instr) encodeR() uint32 {
	return uint32(in.Op)<<26 |
		uint32(in.Rd&31)<<21 |
		uint32(in.Rs1&31)<<16 |
		uint32(in.Rs2&31)<<11
}

// IsRType reports whether the opcode uses the rs2 field.
func (o Opcode) IsRType() bool {
	switch o {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU, OpMUL:
		return true
	}
	return false
}

// EncodeAuto picks the right packing for the opcode.
func EncodeAuto(in Instr) uint32 {
	if in.Op.IsRType() {
		return in.encodeR()
	}
	return in.Encode()
}

// Decode unpacks a 32-bit word.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> 26)
	if op >= numOpcodes {
		return Instr{}, fmt.Errorf("isa: illegal opcode %d in %#08x", op, w)
	}
	in := Instr{
		Op:  op,
		Rd:  int(w >> 21 & 31),
		Rs1: int(w >> 16 & 31),
	}
	if op.IsRType() {
		in.Rs2 = int(w >> 11 & 31)
	} else {
		in.Imm = int32(int16(uint16(w)))
	}
	return in, nil
}

// Disassemble renders one instruction as assembly text.
func Disassemble(w uint32) string {
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word %#08x", w)
	}
	switch {
	case in.Op == OpHALT:
		return "halt"
	case in.Op == OpSYS:
		return fmt.Sprintf("sys r%d", in.Rs1)
	case in.Op.IsRType():
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case in.Op == OpLUI:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case in.Op == OpJAL:
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	case in.Op == OpLW || in.Op == OpLB || in.Op == OpLBU:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op == OpSW || in.Op == OpSB:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op == OpBEQ || in.Op == OpBNE || in.Op == OpBLT || in.Op == OpBGE:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	}
}
