package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 31, Rs1: 30, Imm: -1},
		{Op: OpLW, Rd: 5, Rs1: 6, Imm: 1024},
		{Op: OpBEQ, Rd: 7, Rs1: 8, Imm: -200},
		{Op: OpLUI, Rd: 9, Imm: 0x7fff},
		{Op: OpHALT},
		{Op: OpSYS, Rs1: 4},
	}
	for i, in := range cases {
		w := EncodeAuto(in)
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 {
			t.Errorf("case %d: got %+v want %+v", i, got, in)
		}
		if in.Op.IsRType() && got.Rs2 != in.Rs2 {
			t.Errorf("case %d: rs2 %d != %d", i, got.Rs2, in.Rs2)
		}
		if !in.Op.IsRType() && got.Imm != in.Imm {
			t.Errorf("case %d: imm %d != %d", i, got.Imm, in.Imm)
		}
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	if _, err := Decode(0xFFFFFFFF); err == nil {
		t.Error("opcode 63 should be illegal")
	}
}

// TestDecodeQuick: every R-type encode/decode round trip is lossless.
func TestDecodeQuick(t *testing.T) {
	f := func(rd, rs1, rs2 uint8, imm int16) bool {
		in := Instr{Op: OpXOR, Rd: int(rd & 31), Rs1: int(rs1 & 31), Rs2: int(rs2 & 31)}
		got, err := Decode(EncodeAuto(in))
		if err != nil || got != in {
			return false
		}
		in2 := Instr{Op: OpADDI, Rd: int(rd & 31), Rs1: int(rs1 & 31), Imm: int32(imm)}
		got2, err := Decode(EncodeAuto(in2))
		return err == nil && got2 == in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDisassemble(t *testing.T) {
	cases := map[uint32]string{
		EncodeAuto(Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}):  "add r1, r2, r3",
		EncodeAuto(Instr{Op: OpLW, Rd: 4, Rs1: 5, Imm: 8}):   "lw r4, 8(r5)",
		EncodeAuto(Instr{Op: OpHALT}):                        "halt",
		EncodeAuto(Instr{Op: OpBEQ, Rd: 1, Rs1: 0, Imm: -4}): "beq r1, r0, -4",
	}
	for w, want := range cases {
		if got := Disassemble(w); got != want {
			t.Errorf("Disassemble(%#x) = %q, want %q", w, got, want)
		}
	}
}

func run(t *testing.T, src string, maxInstr uint64) *CPU {
	t.Helper()
	bin, _, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	bus := NewFlatBus()
	bus.LoadImage(0x1000, bin)
	cpu := NewCPU(bus, 0x1000)
	cpu.Console = &bytes.Buffer{}
	if err := cpu.Run(maxInstr); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu
}

func TestArithmetic(t *testing.T) {
	cpu := run(t, `
		li   r1, 10
		li   r2, 32
		add  r3, r1, r2     # 42
		sub  r4, r2, r1     # 22
		mul  r5, r1, r2     # 320
		slt  r6, r1, r2     # 1
		sltu r7, r2, r1     # 0
		halt
	`, 100)
	want := map[int]uint32{3: 42, 4: 22, 5: 320, 6: 1, 7: 0}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, cpu.Regs[r], v)
		}
	}
}

func TestShiftsAndLogic(t *testing.T) {
	cpu := run(t, `
		li   r1, 0xF0
		slli r2, r1, 4      # 0xF00
		srli r3, r1, 4      # 0x0F
		li   r4, -16
		li   r5, 2
		sra  r6, r4, r5     # -4
		xori r7, r1, 0xFF   # 0x0F
		andi r8, r1, 0x3C   # 0x30
	 	ori  r9, r1, 0x0F   # 0xFF
		halt
	`, 100)
	want := map[int]uint32{2: 0xF00, 3: 0x0F, 6: 0xFFFFFFFC, 7: 0x0F, 8: 0x30, 9: 0xFF}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, cpu.Regs[r], v)
		}
	}
}

func TestLoadStore(t *testing.T) {
	cpu := run(t, `
		li  r1, 0x2000
		li  r2, 0xDEADBEEF
		sw  r2, 0(r1)
		lw  r3, 0(r1)
		lb  r4, 3(r1)       # 0xDE sign-extended
		lbu r5, 3(r1)       # 0xDE zero-extended
		li  r6, 0x7F
		sb  r6, 1(r1)
		lw  r7, 0(r1)       # 0xDEAD7FEF
		halt
	`, 100)
	if cpu.Regs[3] != 0xDEADBEEF {
		t.Errorf("lw: %#x", cpu.Regs[3])
	}
	if cpu.Regs[4] != 0xFFFFFFDE {
		t.Errorf("lb: %#x", cpu.Regs[4])
	}
	if cpu.Regs[5] != 0xDE {
		t.Errorf("lbu: %#x", cpu.Regs[5])
	}
	if cpu.Regs[7] != 0xDEAD7FEF {
		t.Errorf("sb: %#x", cpu.Regs[7])
	}
}

func TestFibonacciLoop(t *testing.T) {
	// fib(20) = 6765 via iterative loop with branches.
	cpu := run(t, `
		li   r1, 20        # n
		li   r2, 0         # a
		li   r3, 1         # b
	loop:
		beq  r1, r0, done
		add  r4, r2, r3
		mv   r2, r3
		mv   r3, r4
		addi r1, r1, -1
		jal  r0, loop
	done:
		halt
	`, 1000)
	if cpu.Regs[2] != 6765 {
		t.Errorf("fib(20) = %d, want 6765", cpu.Regs[2])
	}
}

func TestFunctionCallAndStack(t *testing.T) {
	// Recursive sum 1..10 via jal/jalr with a stack.
	cpu := run(t, `
		li   sp, 0x8000
		li   a0, 10
		jal  ra, sum
		sys  r0            # unreachable marker replaced below
		halt
	sum:                    # sum(n) = n + sum(n-1); sum(0)=0
		beq  a0, r0, base
		addi sp, sp, -8
		sw   ra, 0(sp)
		sw   a0, 4(sp)
		addi a0, a0, -1
		jal  ra, sum
		lw   a0, 4(sp)
		lw   ra, 0(sp)
		addi sp, sp, 8
		add  v0, v0, a0
		jalr r0, ra, 0
	base:
		li   v0, 0
		jalr r0, ra, 0
	`, 10000)
	if cpu.Regs[2] != 55 {
		t.Errorf("sum(1..10) = %d, want 55", cpu.Regs[2])
	}
	if cpu.ExitCode != 10 {
		t.Errorf("exit code = %d, want 10 (a0 at sys exit)", cpu.ExitCode)
	}
}

func TestConsoleOutput(t *testing.T) {
	bin, _, err := Assemble(`
		li  a0, 72          # 'H'
		li  r1, 1
		sys r1
		li  a0, 105         # 'i'
		sys r1
		li  a0, -42
		li  r1, 2
		sys r1
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewFlatBus()
	bus.LoadImage(0, bin)
	cpu := NewCPU(bus, 0)
	var out bytes.Buffer
	cpu.Console = &out
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if out.String() != "Hi-42" {
		t.Errorf("console = %q, want %q", out.String(), "Hi-42")
	}
}

func TestDataDirectives(t *testing.T) {
	bin, labels, err := Assemble(`
	start:
		lw   r1, 0(r2)
	table:
		.word 1, 2, 3
	msg:
		.asciiz "ok"
	buf:
		.space 8
	`, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if labels["table"] != 0x104 || labels["msg"] != 0x110 || labels["buf"] != 0x114 {
		t.Errorf("labels: %v", labels)
	}
	if len(bin) != 0x1c-0x100+0x100 {
		t.Errorf("image size %d", len(bin))
	}
	if bin[labels["msg"]-0x100] != 'o' || bin[labels["msg"]-0x100+1] != 'k' {
		t.Error("asciiz content wrong")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",      // missing operand
		"addi r99, r0, 1", // bad register
		"beq r1, r2, nowhere",
		"lw r1, r2", // bad memory operand
		".space 3",  // not multiple of 4
		"li r1",     // missing immediate
	}
	for _, src := range bad {
		if _, _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	cpu := run(t, `
		li  r0, 99
		add r1, r0, r0
		halt
	`, 10)
	if cpu.Regs[0] != 0 || cpu.Regs[1] != 0 {
		t.Error("r0 must stay zero")
	}
}

func TestInstructionBudget(t *testing.T) {
	bin, _, err := Assemble("loop: jal r0, loop", 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewFlatBus()
	bus.LoadImage(0, bin)
	cpu := NewCPU(bus, 0)
	if err := cpu.Run(100); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("infinite loop should exhaust budget, got %v", err)
	}
}

func TestHaltedCPURefusesStep(t *testing.T) {
	cpu := run(t, "halt", 10)
	if err := cpu.Step(); err == nil {
		t.Error("stepping a halted CPU should fail")
	}
}

// TestDisassembleAssembleRoundTrip: for every opcode, disassembling an
// encoded instruction and re-assembling the text reproduces the word.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	samples := []Instr{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpAND, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpOR, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpXOR, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpSLL, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpSRL, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpSRA, Rd: 22, Rs1: 23, Rs2: 24},
		{Op: OpSLT, Rd: 25, Rs1: 26, Rs2: 27},
		{Op: OpSLTU, Rd: 28, Rs1: 29, Rs2: 30},
		{Op: OpMUL, Rd: 31, Rs1: 1, Rs2: 2},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -100},
		{Op: OpANDI, Rd: 3, Rs1: 4, Imm: 0xFF},
		{Op: OpORI, Rd: 5, Rs1: 6, Imm: 0x7F},
		{Op: OpXORI, Rd: 7, Rs1: 8, Imm: 1},
		{Op: OpSLTI, Rd: 9, Rs1: 10, Imm: -1},
		{Op: OpSLLI, Rd: 11, Rs1: 12, Imm: 5},
		{Op: OpSRLI, Rd: 13, Rs1: 14, Imm: 9},
		{Op: OpLUI, Rd: 15, Imm: 0x1234},
		{Op: OpLW, Rd: 16, Rs1: 17, Imm: 64},
		{Op: OpLB, Rd: 18, Rs1: 19, Imm: -8},
		{Op: OpLBU, Rd: 20, Rs1: 21, Imm: 3},
		{Op: OpSW, Rd: 22, Rs1: 23, Imm: 100},
		{Op: OpSB, Rd: 24, Rs1: 25, Imm: -1},
		{Op: OpBEQ, Rd: 1, Rs1: 2, Imm: 10},
		{Op: OpBNE, Rd: 3, Rs1: 4, Imm: -10},
		{Op: OpBLT, Rd: 5, Rs1: 6, Imm: 100},
		{Op: OpBGE, Rd: 7, Rs1: 8, Imm: -100},
		{Op: OpJAL, Rd: 31, Imm: 50},
		{Op: OpJALR, Rd: 1, Rs1: 31, Imm: 0},
		{Op: OpSYS, Rs1: 4},
		{Op: OpHALT},
	}
	for _, in := range samples {
		w := EncodeAuto(in)
		text := Disassemble(w)
		bin, _, err := Assemble(text, 0)
		if err != nil {
			t.Fatalf("%s: reassembly failed: %v", text, err)
		}
		if len(bin) != 4 {
			t.Fatalf("%s: got %d bytes", text, len(bin))
		}
		got := uint32(bin[0]) | uint32(bin[1])<<8 | uint32(bin[2])<<16 | uint32(bin[3])<<24
		if got != w {
			t.Errorf("%s: round trip %#08x != %#08x", text, got, w)
		}
	}
}
