package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates SSA-32 assembly into a binary image based at `base`.
//
// Syntax:
//
//	label:              ; define a label
//	add r1, r2, r3      ; R-type
//	addi r1, r2, -5     ; I-type
//	lw  r1, 8(r2)       ; loads/stores
//	beq r1, r2, label   ; branches take label or immediate word offset
//	jal r31, label      ; jump and link
//	li  r1, 0x12345678  ; pseudo: lui+ori as needed
//	nop                 ; pseudo: add r0, r0, r0
//	.word 42            ; literal data word
//	.space 64           ; zero bytes
//	.asciiz "hi"        ; NUL-terminated string
//	# or ; comments
//
// Register aliases: zero(r0), ra(r31), sp(r30), a0-a3(r4-r7), t0-t7(r8-r15),
// s0-s7(r16-r23), v0(r2).
func Assemble(src string, base uint32) ([]byte, map[string]uint32, error) {
	type fixup struct {
		line    int
		pc      uint32
		label   string
		op      Opcode
		rd, rs1 int
		li      bool // lui+ori pair materializing the label address
	}
	labels := make(map[string]uint32)
	var words []uint32
	var fixups []fixup

	pc := func() uint32 { return base + uint32(4*len(words)) }

	lines := strings.Split(src, "\n")
	// First pass: emit code, remembering unresolved label references.
	for ln, raw := range lines {
		line := stripComment(raw)
		for {
			line = strings.TrimSpace(line)
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				labels[strings.TrimSpace(line[:i])] = pc()
				line = line[i+1:]
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		args := splitArgs(rest)
		errf := func(format string, a ...interface{}) error {
			return fmt.Errorf("isa: line %d: %s", ln+1, fmt.Sprintf(format, a...))
		}

		switch mnemonic {
		case ".word":
			for _, a := range args {
				v, err := parseImm32(a)
				if err != nil {
					return nil, nil, errf("bad word %q: %v", a, err)
				}
				words = append(words, uint32(v))
			}
		case ".space":
			if len(args) != 1 {
				return nil, nil, errf(".space needs one size")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 0 || n%4 != 0 {
				return nil, nil, errf(".space needs a non-negative multiple of 4")
			}
			for i := 0; i < n/4; i++ {
				words = append(words, 0)
			}
		case ".asciiz":
			str, err := strconv.Unquote(strings.TrimSpace(rest))
			if err != nil {
				return nil, nil, errf("bad string: %v", err)
			}
			bs := append([]byte(str), 0)
			for len(bs)%4 != 0 {
				bs = append(bs, 0)
			}
			for i := 0; i < len(bs); i += 4 {
				words = append(words, uint32(bs[i])|uint32(bs[i+1])<<8|uint32(bs[i+2])<<16|uint32(bs[i+3])<<24)
			}
		case "nop":
			words = append(words, EncodeAuto(Instr{Op: OpADD}))
		case "halt":
			words = append(words, EncodeAuto(Instr{Op: OpHALT}))
		case "sys":
			if len(args) != 1 {
				return nil, nil, errf("sys needs one register")
			}
			r, err := parseReg(args[0])
			if err != nil {
				return nil, nil, errf("%v", err)
			}
			words = append(words, EncodeAuto(Instr{Op: OpSYS, Rs1: r}))
		case "li":
			if len(args) != 2 {
				return nil, nil, errf("li needs register, immediate")
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, nil, errf("%v", err)
			}
			if isIdent(args[1]) {
				// Label address: emit a lui+ori pair patched in pass two.
				fixups = append(fixups, fixup{line: ln + 1, pc: pc(), label: args[1], rd: rd, li: true})
				words = append(words, 0, 0)
				break
			}
			v, err := parseImm32(args[1])
			if err != nil {
				return nil, nil, errf("bad immediate %q: %v", args[1], err)
			}
			uv := uint32(v)
			if uv>>16 != 0 {
				words = append(words, EncodeAuto(Instr{Op: OpLUI, Rd: rd, Imm: int32(int16(uint16(uv >> 16)))}))
				if uv&0xffff != 0 {
					words = append(words, EncodeAuto(Instr{Op: OpORI, Rd: rd, Rs1: rd, Imm: int32(int16(uint16(uv)))}))
				}
			} else {
				words = append(words, EncodeAuto(Instr{Op: OpORI, Rd: rd, Rs1: 0, Imm: int32(int16(uint16(uv)))}))
			}
		case "mv":
			if len(args) != 2 {
				return nil, nil, errf("mv needs two registers")
			}
			rd, err1 := parseReg(args[0])
			rs, err2 := parseReg(args[1])
			if err1 != nil || err2 != nil {
				return nil, nil, errf("bad registers")
			}
			words = append(words, EncodeAuto(Instr{Op: OpADD, Rd: rd, Rs1: rs}))
		default:
			op, ok := mnemonicOp(mnemonic)
			if !ok {
				return nil, nil, errf("unknown mnemonic %q", mnemonic)
			}
			switch {
			case op.IsRType():
				if len(args) != 3 {
					return nil, nil, errf("%s needs rd, rs1, rs2", mnemonic)
				}
				rd, e1 := parseReg(args[0])
				rs1, e2 := parseReg(args[1])
				rs2, e3 := parseReg(args[2])
				if e1 != nil || e2 != nil || e3 != nil {
					return nil, nil, errf("bad register in %q", rest)
				}
				words = append(words, EncodeAuto(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}))
			case op == OpLW || op == OpLB || op == OpLBU || op == OpSW || op == OpSB:
				if len(args) != 2 {
					return nil, nil, errf("%s needs reg, off(reg)", mnemonic)
				}
				rd, err := parseReg(args[0])
				if err != nil {
					return nil, nil, errf("%v", err)
				}
				off, rs1, err := parseMemOperand(args[1])
				if err != nil {
					return nil, nil, errf("%v", err)
				}
				words = append(words, EncodeAuto(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: off}))
			case op == OpBEQ || op == OpBNE || op == OpBLT || op == OpBGE:
				if len(args) != 3 {
					return nil, nil, errf("%s needs two regs and a target", mnemonic)
				}
				rd, e1 := parseReg(args[0])
				rs1, e2 := parseReg(args[1])
				if e1 != nil || e2 != nil {
					return nil, nil, errf("bad register in %q", rest)
				}
				if isIdent(args[2]) {
					fixups = append(fixups, fixup{line: ln + 1, pc: pc(), label: args[2], op: op, rd: rd, rs1: rs1})
					words = append(words, 0)
				} else {
					v, err := parseImm32(args[2])
					if err != nil {
						return nil, nil, errf("bad branch offset: %v", err)
					}
					words = append(words, EncodeAuto(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: v}))
				}
			case op == OpJAL:
				if len(args) != 2 {
					return nil, nil, errf("jal needs rd, target")
				}
				rd, err := parseReg(args[0])
				if err != nil {
					return nil, nil, errf("%v", err)
				}
				if isIdent(args[1]) {
					fixups = append(fixups, fixup{line: ln + 1, pc: pc(), label: args[1], op: op, rd: rd})
					words = append(words, 0)
				} else {
					v, err := parseImm32(args[1])
					if err != nil {
						return nil, nil, errf("bad jump offset: %v", err)
					}
					words = append(words, EncodeAuto(Instr{Op: op, Rd: rd, Imm: v}))
				}
			default: // I-type arithmetic + jalr + lui
				if len(args) != 3 && !(op == OpLUI && len(args) == 2) {
					return nil, nil, errf("%s needs rd, rs1, imm", mnemonic)
				}
				rd, err := parseReg(args[0])
				if err != nil {
					return nil, nil, errf("%v", err)
				}
				rs1 := 0
				immArg := args[len(args)-1]
				if len(args) == 3 {
					rs1, err = parseReg(args[1])
					if err != nil {
						return nil, nil, errf("%v", err)
					}
				}
				v, err := parseImm32(immArg)
				if err != nil {
					return nil, nil, errf("bad immediate %q: %v", immArg, err)
				}
				words = append(words, EncodeAuto(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: v}))
			}
		}
	}

	// Second pass: resolve label fixups to word offsets relative to pc+4.
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		if f.li {
			idx := (f.pc - base) / 4
			words[idx] = EncodeAuto(Instr{Op: OpLUI, Rd: f.rd, Imm: int32(int16(uint16(target >> 16)))})
			words[idx+1] = EncodeAuto(Instr{Op: OpORI, Rd: f.rd, Rs1: f.rd, Imm: int32(int16(uint16(target)))})
			continue
		}
		var imm int32
		if f.op == OpJAL || f.op == OpBEQ || f.op == OpBNE || f.op == OpBLT || f.op == OpBGE {
			imm = (int32(target) - int32(f.pc) - 4) / 4
		} else {
			imm = int32(target)
		}
		if imm < -32768 || imm > 32767 {
			return nil, nil, fmt.Errorf("isa: line %d: branch to %q out of range (%d words)", f.line, f.label, imm)
		}
		idx := (f.pc - base) / 4
		words[idx] = EncodeAuto(Instr{Op: f.op, Rd: f.rd, Rs1: f.rs1, Imm: imm})
	}

	out := make([]byte, 4*len(words))
	for i, w := range words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out, labels, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		// Keep quoted strings intact for .asciiz.
		if q := strings.Index(line, `"`); q < 0 || q > i {
			return line[:i]
		}
		if e := strings.LastIndex(line, `"`); e >= 0 {
			if j := strings.IndexAny(line[e:], "#;"); j >= 0 {
				return line[:e+j]
			}
		}
	}
	return line
}

func splitArgs(rest string) []string {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var regAliases = map[string]int{
	"zero": 0, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"sp": 30, "ra": 31,
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := regAliases[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("isa: bad register %q", s)
}

func parseImm32(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(uint32(v)), nil
}

// parseMemOperand parses "off(reg)".
func parseMemOperand(s string) (int32, int, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("isa: bad memory operand %q", s)
	}
	off := int32(0)
	if open > 0 {
		v, err := parseImm32(s[:open])
		if err != nil {
			return 0, 0, fmt.Errorf("isa: bad offset in %q: %v", s, err)
		}
		off = v
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Bare register names are not labels.
	if _, err := parseReg(s); err == nil {
		return false
	}
	return true
}

func mnemonicOp(m string) (Opcode, bool) {
	for op, name := range opNames {
		if name == m {
			return op, true
		}
	}
	return 0, false
}
