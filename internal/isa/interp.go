package isa

import (
	"fmt"
	"io"
)

// Bus is the interpreter's view of memory. internal/xom provides an
// implementation that decrypts through the secure memory path; FlatBus is a
// plain in-package implementation for tests and unprotected runs.
type Bus interface {
	// Fetch32 reads an instruction word (instruction address space).
	Fetch32(addr uint32) (uint32, error)
	// Load32/Load8 read data.
	Load32(addr uint32) (uint32, error)
	Load8(addr uint32) (byte, error)
	// Store32/Store8 write data.
	Store32(addr uint32, v uint32) error
	Store8(addr uint32, v byte) error
}

// FlatBus is a simple sparse memory bus (no protection).
type FlatBus struct {
	pages map[uint32][]byte
}

// NewFlatBus returns an empty flat memory.
func NewFlatBus() *FlatBus { return &FlatBus{pages: make(map[uint32][]byte)} }

func (b *FlatBus) page(addr uint32, create bool) ([]byte, uint32) {
	pn := addr >> 12
	p, ok := b.pages[pn]
	if !ok && create {
		p = make([]byte, 1<<12)
		b.pages[pn] = p
	}
	return p, addr & 0xfff
}

// LoadImage copies data into memory at base.
func (b *FlatBus) LoadImage(base uint32, data []byte) {
	for i, v := range data {
		p, off := b.page(base+uint32(i), true)
		p[off] = v
	}
}

// Fetch32 implements Bus.
func (b *FlatBus) Fetch32(addr uint32) (uint32, error) { return b.Load32(addr) }

// Load32 implements Bus.
func (b *FlatBus) Load32(addr uint32) (uint32, error) {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		p, off := b.page(addr+i, false)
		var byt byte
		if p != nil {
			byt = p[off]
		}
		v |= uint32(byt) << (8 * i)
	}
	return v, nil
}

// Load8 implements Bus.
func (b *FlatBus) Load8(addr uint32) (byte, error) {
	p, off := b.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return p[off], nil
}

// Store32 implements Bus.
func (b *FlatBus) Store32(addr uint32, v uint32) error {
	for i := uint32(0); i < 4; i++ {
		p, off := b.page(addr+i, true)
		p[off] = byte(v >> (8 * i))
	}
	return nil
}

// Store8 implements Bus.
func (b *FlatBus) Store8(addr uint32, v byte) error {
	p, off := b.page(addr, true)
	p[off] = v
	return nil
}

// CPU is the SSA-32 functional interpreter.
type CPU struct {
	PC   uint32
	Regs [32]uint32
	Bus  Bus
	// Console receives SysPutChar/SysPutInt output (may be nil).
	Console io.Writer

	// Halted is set by HALT or SysExit.
	Halted bool
	// ExitCode is valid once Halted.
	ExitCode uint32
	// InstrRetired counts executed instructions.
	InstrRetired uint64
}

// NewCPU creates an interpreter over the given bus starting at entry.
func NewCPU(bus Bus, entry uint32) *CPU {
	return &CPU{PC: entry, Bus: bus}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("isa: cpu is halted")
	}
	w, err := c.Bus.Fetch32(c.PC)
	if err != nil {
		return fmt.Errorf("isa: fetch at %#x: %w", c.PC, err)
	}
	in, err := Decode(w)
	if err != nil {
		return fmt.Errorf("isa: at %#x: %w", c.PC, err)
	}
	next := c.PC + 4
	rd, rs1 := &c.Regs[in.Rd], c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]
	imm := uint32(in.Imm)

	switch in.Op {
	case OpHALT:
		c.Halted = true
	case OpADD:
		*rd = rs1 + rs2
	case OpSUB:
		*rd = rs1 - rs2
	case OpAND:
		*rd = rs1 & rs2
	case OpOR:
		*rd = rs1 | rs2
	case OpXOR:
		*rd = rs1 ^ rs2
	case OpSLL:
		*rd = rs1 << (rs2 & 31)
	case OpSRL:
		*rd = rs1 >> (rs2 & 31)
	case OpSRA:
		*rd = uint32(int32(rs1) >> (rs2 & 31))
	case OpSLT:
		*rd = b2u(int32(rs1) < int32(rs2))
	case OpSLTU:
		*rd = b2u(rs1 < rs2)
	case OpMUL:
		*rd = rs1 * rs2
	case OpADDI:
		*rd = rs1 + imm
	case OpANDI:
		*rd = rs1 & uint32(uint16(in.Imm))
	case OpORI:
		*rd = rs1 | uint32(uint16(in.Imm))
	case OpXORI:
		*rd = rs1 ^ uint32(uint16(in.Imm))
	case OpSLTI:
		*rd = b2u(int32(rs1) < in.Imm)
	case OpSLLI:
		*rd = rs1 << (imm & 31)
	case OpSRLI:
		*rd = rs1 >> (imm & 31)
	case OpLUI:
		*rd = uint32(uint16(in.Imm)) << 16
	case OpLW:
		v, err := c.Bus.Load32(rs1 + imm)
		if err != nil {
			return err
		}
		*rd = v
	case OpLB:
		v, err := c.Bus.Load8(rs1 + imm)
		if err != nil {
			return err
		}
		*rd = uint32(int32(int8(v)))
	case OpLBU:
		v, err := c.Bus.Load8(rs1 + imm)
		if err != nil {
			return err
		}
		*rd = uint32(v)
	case OpSW:
		if err := c.Bus.Store32(rs1+imm, c.Regs[in.Rd]); err != nil {
			return err
		}
	case OpSB:
		if err := c.Bus.Store8(rs1+imm, byte(c.Regs[in.Rd])); err != nil {
			return err
		}
	case OpBEQ:
		if c.Regs[in.Rd] == rs1 {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBNE:
		if c.Regs[in.Rd] != rs1 {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBLT:
		if int32(c.Regs[in.Rd]) < int32(rs1) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBGE:
		if int32(c.Regs[in.Rd]) >= int32(rs1) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpJAL:
		c.Regs[in.Rd] = c.PC + 4
		next = c.PC + 4 + uint32(in.Imm)*4
	case OpJALR:
		c.Regs[in.Rd] = c.PC + 4
		next = rs1 + imm
	case OpSYS:
		if err := c.syscall(rs1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("isa: unimplemented opcode %v at %#x", in.Op, c.PC)
	}
	c.Regs[0] = 0 // r0 is hardwired zero
	c.InstrRetired++
	if !c.Halted {
		c.PC = next
	}
	return nil
}

func (c *CPU) syscall(service uint32) error {
	a0 := c.Regs[4]
	switch service {
	case SysExit:
		c.Halted = true
		c.ExitCode = a0
	case SysPutChar:
		if c.Console != nil {
			fmt.Fprintf(c.Console, "%c", byte(a0))
		}
	case SysPutInt:
		if c.Console != nil {
			fmt.Fprintf(c.Console, "%d", int32(a0))
		}
	default:
		return fmt.Errorf("isa: unknown syscall %d at %#x", service, c.PC)
	}
	return nil
}

// Run executes until halt or maxInstrs, returning an error on traps.
func (c *CPU) Run(maxInstrs uint64) error {
	for !c.Halted {
		if c.InstrRetired >= maxInstrs {
			return fmt.Errorf("isa: instruction budget %d exhausted at pc=%#x", maxInstrs, c.PC)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
