// Package detachedctx polices context detachment: context.Background()
// and context.TODO() sever cancellation propagation, so outside the
// audited detachment seams — memo owners that must outlive a cancelled
// request, shed sweeps, process roots in main packages — every new use
// is flagged. An intentional seam carries //secsim:detach <reason> on
// the enclosing function; everything else must thread the caller's
// context through.
package detachedctx

import (
	"go/ast"

	"secureproc/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// AllowMain exempts package main (process roots: signal contexts,
	// shutdown timeouts, CLI-driven sweeps legitimately start at
	// Background).
	AllowMain bool
}

// DefaultConfig is the repo's production configuration.
var DefaultConfig = Config{AllowMain: true}

// Analyzer is the production instance.
var Analyzer = New(DefaultConfig)

// New builds a detachedctx analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detachedctx",
		Doc:  "ban context.Background/TODO outside annotated detachment seams",
	}
	a.Run = func(pass *analysis.Pass) error {
		if cfg.AllowMain && pass.Pkg.Types.Name() == "main" {
			return nil
		}
		run(pass)
		return nil
	}
	return a
}

func run(pass *analysis.Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pkg.Info, call)
			if callee == nil {
				return true
			}
			name := callee.FullName()
			if name != "context.Background" && name != "context.TODO" {
				return true
			}
			if fd := pkg.FuncFor(call.Pos()); fd != nil {
				if _, ok := pkg.FuncAnnotation(fd, analysis.VerbDetach); ok {
					return true
				}
			}
			if _, ok := pkg.NodeAnnotation(call, analysis.VerbDetach); ok {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos:      pass.Fset.Position(call.Pos()),
				Analyzer: "detachedctx",
				Message:  "context." + callee.Name() + "() severs cancellation; thread the caller's context, or mark the seam //secsim:detach <reason>",
			})
			return true
		})
	}
}
