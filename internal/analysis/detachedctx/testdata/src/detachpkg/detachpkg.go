// Package detachpkg is the detachedctx fixture: a library package where
// context detachment needs an annotated seam.
package detachpkg

import "context"

func leak() {
	_ = context.Background() // want `context\.Background\(\) severs cancellation`
	_ = context.TODO()       // want `context\.TODO\(\) severs cancellation`
}

// seam owns a memo that must outlive any one request.
//
//secsim:detach memo owner outlives the requesting sweep
func seam() context.Context {
	return context.Background()
}

func lineSeam() {
	ctx := context.Background() //secsim:detach shed sweep detaches from the admission context deliberately
	_ = ctx
}
