// Command mainprog shows the package-main allowance: process roots
// legitimately start at Background.
package main

import "context"

func main() {
	_ = context.Background()
	_ = context.TODO()
}
