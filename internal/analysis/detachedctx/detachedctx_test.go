package detachedctx_test

import (
	"testing"

	"secureproc/internal/analysis/analysistest"
	"secureproc/internal/analysis/detachedctx"
)

func TestDetachedCtx(t *testing.T) {
	a := detachedctx.New(detachedctx.Config{AllowMain: true})
	analysistest.Run(t, "testdata", a, "detachpkg", "mainprog")
}

func TestDetachedCtxStrict(t *testing.T) {
	// With AllowMain off the main fixture would report; keep it scoped to
	// the library fixture to check the config plumbing both ways.
	a := detachedctx.New(detachedctx.Config{AllowMain: false})
	analysistest.Run(t, "testdata", a, "detachpkg")
}
