package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The loader shells out to the go toolchain instead of depending on
// golang.org/x/tools/go/packages: `go list -export -deps -json` yields,
// for every package in the build (stdlib included), the export-data file
// the compiler produced for it, and the stdlib gc importer reads those
// files back. Module packages are then re-parsed and type-checked from
// source so analyzers see full ASTs; their dependencies resolve through
// export data, so no topological source ordering is needed.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load builds a Program for the given package patterns (default "./...")
// rooted at dir. Every package of the surrounding module that appears in
// the dependency graph is source-loaded and analyzable.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil && len(p.GoFiles) > 0 {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	prog := &Program{Fset: fset}
	for _, t := range targets {
		pkg, err := loadSource(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// vetConfig is the JSON file `go vet -vettool` hands each analysis unit
// (the contract cmd/go shares with x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// LoadUnit builds a single-package Program from a `go vet -vettool`
// config file. The returned vetx output path must be written (even
// empty) for the go command to consider the unit checked; analyzeOnly
// reports whether vet asked for facts only (no diagnostics wanted).
func LoadUnit(cfgFile string) (prog *Program, vetxOutput string, analyzeOnly bool, err error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, "", false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, "", false, fmt.Errorf("%s: bad vet config: %w", cfgFile, err)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	// Vet hands GoFiles as absolute paths and includes _test.go files in
	// test-variant units; the suite analyzes shipped sources only (the
	// standalone loader never sees test files either).
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, ".go") && !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return &Program{Fset: fset}, cfg.VetxOutput, cfg.VetxOnly, nil
	}
	pkg, err := loadSource(fset, imp, cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return &Program{Fset: fset}, cfg.VetxOutput, cfg.VetxOnly, nil
		}
		return nil, "", false, err
	}
	return &Program{Fset: fset, Packages: []*Package{pkg}}, cfg.VetxOutput, cfg.VetxOnly, nil
}

// loadSource parses and type-checks one package from source. File names
// may be bare (relative to dir) or absolute.
func loadSource(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.parseAnnotations(fset, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type-check: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// SourceSpec names one package to load from explicit source files
// (the analysistest fixture loader).
type SourceSpec struct {
	Path  string
	Dir   string
	Files []string // absolute or Dir-relative
}

// LoadSpecs type-checks the given packages in order (dependencies
// first); imports resolve against already-loaded specs, then against
// the export-data files in exports (as produced by `go list -export`).
func LoadSpecs(specs []SourceSpec, exports map[string]string) (*Program, error) {
	fset := token.NewFileSet()
	loaded := make(map[string]*types.Package)
	imp := chainImporter{
		loaded: loaded,
		fallback: newExportImporter(fset, func(path string) (string, bool) {
			f, ok := exports[path]
			return f, ok
		}),
	}
	prog := &Program{Fset: fset}
	for _, s := range specs {
		pkg, err := loadSource(fset, imp, s.Path, s.Dir, s.Files)
		if err != nil {
			return nil, err
		}
		loaded[s.Path] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// chainImporter resolves source-loaded packages before falling back to
// export data, and handles "unsafe" itself.
type chainImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.loaded[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// ExportData runs `go list -export` for the given import paths (plus
// their dependencies) rooted at dir and returns path -> export file.
// Used by test fixtures to resolve stdlib imports offline: the
// toolchain builds export data into its local cache.
func ExportData(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %w\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// newExportImporter returns an importer resolving dependencies through
// compiler export data located by find. One importer is shared across
// every package of a load so imported package identities coincide.
func newExportImporter(fset *token.FileSet, find func(path string) (string, bool)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
