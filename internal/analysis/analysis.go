// Package analysis is a self-contained, stdlib-only analogue of
// golang.org/x/tools/go/analysis: just enough framework to write the
// repo's custom vet checks (cmd/secvet) without a network dependency.
//
// The shape mirrors go/analysis on purpose — an Analyzer bundles a name,
// a doc string and a Run function over a type-checked package — so the
// analyzers port mechanically to the real framework if x/tools ever
// becomes available. Two deliberate simplifications:
//
//   - no Facts: cross-package state is handled by loading the whole
//     module into one Program (the standalone driver), so a whole-program
//     analyzer like hotpathalloc sees every function body at once;
//   - no Requires/ResultOf: the four analyzers are independent.
//
// Escape hatches are structured comments ("annotations") of the form
//
//	//secsim:<verb> <reason...>
//
// attached to a function declaration or an individual line. Verbs that
// suppress a diagnostic require a non-empty reason; an annotation with a
// missing reason is itself a diagnostic, so escapes stay audited.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Exactly one of Run (invoked once per
// loaded package) or RunProgram (invoked once over the whole Program,
// for checks that need cross-package reachability) must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
	// RunProgram analyzes the whole loaded program at once.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Report records a diagnostic. The driver sorts and deduplicates.
	Report func(Diagnostic)
}

// ProgramPass is Pass for whole-program analyzers.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Prog     *Program
	Report   func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Program is the loaded view of the module: every package source-parsed
// and type-checked, dependencies (stdlib included) resolved from the go
// toolchain's export data.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
}

// Package is one source-loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	anns map[annKey][]Annotation
}

// Annotation is one parsed //secsim:<verb> <reason> comment.
type Annotation struct {
	Verb   string
	Reason string
	Pos    token.Position
	// Standalone reports that no code shares the annotation's line: only
	// standalone annotations apply to the line below them, so a trailing
	// escape cannot leak onto its neighbor.
	Standalone bool
}

type annKey struct {
	file string
	line int
}

// Annotation verbs understood by the shipped analyzers.
const (
	// VerbHotpath marks a function as an additional hotpathalloc root.
	VerbHotpath = "hotpath"
	// VerbAllowAlloc suppresses hotpathalloc on a line or function; the
	// reason documents why the allocation is audited (cold branch,
	// amortized scratch growth gated by an AllocsPerRun test, ...).
	VerbAllowAlloc = "allowalloc"
	// VerbDetach marks a function as an intentional context-detachment
	// seam (memo owners, shed sweeps) for detachedctx.
	VerbDetach = "detach"
	// VerbNondet suppresses determinism on a line (audited map range or
	// wall-clock read that provably never feeds rendered output).
	VerbNondet = "nondet"
	// VerbRawWire suppresses wireenvelope on a line (a handler that must
	// bypass the api error envelope, e.g. a raw streaming protocol).
	VerbRawWire = "rawwire"
	// VerbDeterministic opts a function outside the determinism
	// analyzer's package scope into its checks (figure rendering).
	VerbDeterministic = "deterministic"
)

// parseAnnotations indexes every //secsim: comment in f by file:line.
func (p *Package) parseAnnotations(fset *token.FileSet, f *ast.File) {
	if p.anns == nil {
		p.anns = make(map[annKey][]Annotation)
	}
	// Lines where code starts, to tell trailing annotations (code before
	// the comment) from standalone ones.
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			codeLines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//secsim:")
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(text, " ")
			// A reason never contains a comment marker: anything from a
			// nested "//" on is a following comment (the analysistest
			// fixtures put their "// want" expectations there).
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			pos := fset.Position(c.Pos())
			k := annKey{pos.Filename, pos.Line}
			p.anns[k] = append(p.anns[k], Annotation{
				Verb:       strings.TrimSpace(verb),
				Reason:     strings.TrimSpace(reason),
				Pos:        pos,
				Standalone: !codeLines[pos.Line],
			})
		}
	}
}

// lineAnnotation returns the verb's annotation on the given file:line.
func (p *Package) lineAnnotation(file string, line int, verb string) (Annotation, bool) {
	for _, a := range p.anns[annKey{file, line}] {
		if a.Verb == verb {
			return a, true
		}
	}
	return Annotation{}, false
}

// NodeAnnotation reports an annotation attached to n: on n's first line,
// or as a standalone comment on the line directly above it. A trailing
// annotation on the previous line does not carry over.
func (p *Package) NodeAnnotation(n ast.Node, verb string) (Annotation, bool) {
	pos := p.Fset.Position(n.Pos())
	if a, ok := p.lineAnnotation(pos.Filename, pos.Line, verb); ok {
		return a, true
	}
	if a, ok := p.lineAnnotation(pos.Filename, pos.Line-1, verb); ok && a.Standalone {
		return a, true
	}
	return Annotation{}, false
}

// FuncAnnotation reports an annotation attached to the declaration of
// fd: anywhere in its doc comment, or trailing its first line.
func (p *Package) FuncAnnotation(fd *ast.FuncDecl, verb string) (Annotation, bool) {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			pos := p.Fset.Position(c.Pos())
			if a, ok := p.lineAnnotation(pos.Filename, pos.Line, verb); ok {
				return a, true
			}
		}
	}
	return p.NodeAnnotation(fd, verb)
}

// Annotations returns every annotation in the package with the verb, in
// position order (used to validate reasons and report unused escapes).
func (p *Package) Annotations(verb string) []Annotation {
	var out []Annotation
	for _, as := range p.anns {
		for _, a := range as {
			if a.Verb == verb {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// KnownVerbs lists every annotation verb the suite understands; the
// driver flags unknown //secsim: verbs so a typo cannot silently
// disable an escape.
var KnownVerbs = map[string]bool{
	VerbHotpath:       true,
	VerbAllowAlloc:    true,
	VerbDetach:        true,
	VerbNondet:        true,
	VerbRawWire:       true,
	VerbDeterministic: true,
}

// ReasonRequired reports whether the verb suppresses diagnostics and so
// must carry a non-empty reason.
func ReasonRequired(verb string) bool {
	switch verb {
	case VerbAllowAlloc, VerbDetach, VerbNondet, VerbRawWire:
		return true
	}
	return false
}

// FuncFor returns the innermost function declaration enclosing pos in
// any of the package's files, or nil.
func (p *Package) FuncFor(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
					return fd
				}
			}
		}
	}
	return nil
}

// Run applies the analyzers to the program and returns the merged,
// position-sorted, deduplicated findings. Structural problems with the
// annotations themselves (unknown verb, missing required reason) are
// reported under the pseudo-analyzer "secsim-annotation".
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	for _, pkg := range prog.Packages {
		for _, as := range pkg.anns {
			for _, a := range as {
				switch {
				case !KnownVerbs[a.Verb]:
					report(Diagnostic{a.Pos, "secsim-annotation",
						fmt.Sprintf("unknown annotation //secsim:%s (known: hotpath, allowalloc, detach, nondet, rawwire, deterministic)", a.Verb)})
				case ReasonRequired(a.Verb) && a.Reason == "":
					report(Diagnostic{a.Pos, "secsim-annotation",
						fmt.Sprintf("//secsim:%s needs a reason (\"//secsim:%s why this is safe\")", a.Verb, a.Verb)})
				}
			}
		}
	}

	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			pp := &ProgramPass{Analyzer: a, Fset: prog.Fset, Prog: prog, Report: report}
			if err := a.RunProgram(pp); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				pass := &Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Report: report}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		default:
			return nil, fmt.Errorf("%s: analyzer has neither Run nor RunProgram", a.Name)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out, nil
}
