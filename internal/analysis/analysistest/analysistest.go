// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comments — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the repo's stdlib-only framework.
//
// Fixtures live under <dir>/src/<pkg>/*.go. A line expecting one or
// more diagnostics carries
//
//	code() // want "first regexp" "second regexp"
//
// Every reported diagnostic must match a want on its line and every
// want must be matched exactly once; anything else fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"secureproc/internal/analysis"
)

// Run loads the named fixture packages (dependency order) from
// dir/src/<pkg> and applies the analyzer, matching diagnostics against
// want comments across all of them.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := load(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	check(t, prog, diags)
}

func load(dir string, pkgs []string) (*analysis.Program, error) {
	var specs []analysis.SourceSpec
	importSet := make(map[string]bool)
	fixture := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		fixture[p] = true
	}
	for _, p := range pkgs {
		srcDir := filepath.Join(dir, "src", p)
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			return nil, err
		}
		spec := analysis.SourceSpec{Path: p, Dir: srcDir}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				spec.Files = append(spec.Files, e.Name())
				for _, imp := range fileImports(filepath.Join(srcDir, e.Name())) {
					if !fixture[imp] && imp != "unsafe" {
						importSet[imp] = true
					}
				}
			}
		}
		specs = append(specs, spec)
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := analysis.ExportData(dir, imports...)
	if err != nil {
		return nil, err
	}
	return analysis.LoadSpecs(specs, exports)
}

// fileImports extracts the import paths of one file textually (a full
// parse happens later in LoadSpecs; this pass only feeds `go list`).
var importRE = regexp.MustCompile(`(?m)^\s*(?:[A-Za-z_.][A-Za-z0-9_]*\s+)?"([^"]+)"\s*$|^import\s+(?:[A-Za-z_.][A-Za-z0-9_]*\s+)?"([^"]+)"`)

func fileImports(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	src := string(data)
	// Only scan the import section: up to the first func/type/var/const.
	if i := regexp.MustCompile(`(?m)^(func|type|var|const)\b`).FindStringIndex(src); i != nil {
		src = src[:i[0]]
	}
	var out []string
	for _, m := range importRE.FindAllStringSubmatch(src, -1) {
		for _, g := range m[1:] {
			if g != "" {
				out = append(out, g)
			}
		}
	}
	return out
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func check(t *testing.T, prog *analysis.Program, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[wantKey][]*want)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					for _, raw := range splitQuoted(m[1]) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants[k] = append(wants[k], &want{re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.raw)
			}
		}
	}
}

// splitQuoted parses the sequence of Go-quoted strings after "want";
// both interpreted ("re") and raw (`re`) forms are accepted.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			panic(fmt.Sprintf("bad quoted want %q: %v", s[:end+1], err))
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
