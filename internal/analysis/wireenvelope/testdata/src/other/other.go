// Package other is outside the enforced boundary: nothing here is
// flagged even though it uses the raw error helpers.
package other

import "net/http"

func free(w http.ResponseWriter) {
	http.Error(w, "fine here", 500)
	w.WriteHeader(http.StatusBadGateway)
}
