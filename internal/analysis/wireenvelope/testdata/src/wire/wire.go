// Package wire is the wireenvelope fixture: an enforced HTTP boundary
// package where error responses must use the api envelope.
package wire

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", 500)                    // want `http\.Error writes an unenveloped error; use api\.WriteError`
	w.WriteHeader(http.StatusInternalServerError) // want `bare WriteHeader\(500\) bypasses the error envelope`
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(code())          // want `WriteHeader with a non-constant status may bypass the error envelope`
	http.Error(w, "stream", 502)   //secsim:rawwire raw streaming status line, envelope added by the proxy
	w.WriteHeader(http.StatusGone) //secsim:rawwire tombstone probe speaks bare statuses by design
}

func code() int { return 500 }
