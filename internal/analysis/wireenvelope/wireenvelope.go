// Package wireenvelope enforces the api error-envelope contract from
// PR 9: inside the HTTP boundary packages (internal/server,
// internal/cluster), error responses must flow through api.WriteError —
// never http.Error or a bare WriteHeader with an error status — so no
// handler can emit an unenveloped error the fleet's clients cannot
// parse. internal/api itself (the envelope implementation) is exempt by
// construction: it is not in the enforced package list.
package wireenvelope

import (
	"fmt"
	"go/ast"
	"go/constant"

	"secureproc/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages are the import paths whose files are enforced.
	Packages []string
}

// DefaultConfig covers the repo's HTTP boundary.
var DefaultConfig = Config{
	Packages: []string{
		"secureproc/internal/server",
		"secureproc/internal/cluster",
	},
}

// Analyzer is the production instance.
var Analyzer = New(DefaultConfig)

// New builds a wireenvelope analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "wireenvelope",
		Doc:  "require api.WriteError (the error envelope) on every HTTP error path",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathIn(pass.Pkg.Path, cfg.Packages) {
			return nil
		}
		run(pass)
		return nil
	}
	return a
}

func run(pass *analysis.Pass) {
	pkg := pass.Pkg
	report := func(x ast.Node, format string, args ...any) {
		if _, ok := pkg.NodeAnnotation(x, analysis.VerbRawWire); ok {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos:      pass.Fset.Position(x.Pos()),
			Analyzer: "wireenvelope",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pkg.Info, call)
			if callee == nil {
				return true
			}
			switch callee.FullName() {
			case "net/http.Error":
				report(call, "http.Error writes an unenveloped error; use api.WriteError")
			case "(net/http.ResponseWriter).WriteHeader":
				if len(call.Args) != 1 {
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[0]]
				switch {
				case ok && tv.Value != nil && tv.Value.Kind() == constant.Int:
					if code, exact := constant.Int64Val(tv.Value); exact && code >= 400 {
						report(call, "bare WriteHeader(%d) bypasses the error envelope; use api.WriteError", code)
					}
				default:
					report(call, "WriteHeader with a non-constant status may bypass the error envelope; route errors through api.WriteError")
				}
			}
			return true
		})
	}
}
