package wireenvelope_test

import (
	"testing"

	"secureproc/internal/analysis/analysistest"
	"secureproc/internal/analysis/wireenvelope"
)

func TestWireEnvelope(t *testing.T) {
	a := wireenvelope.New(wireenvelope.Config{Packages: []string{"wire"}})
	analysistest.Run(t, "testdata", a, "wire", "other")
}
