package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the named function or method a direct call invokes:
// plain calls (f(x)), package-qualified calls (fmt.Sprintf(x)) and
// method calls (s.cpu.Compute(x)), including calls through interface
// method sets. Calls of function-typed values, conversions and builtins
// return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Builtin returns the builtin's name when the call invokes one (append,
// make, new, ...), accounting for shadowing, else "".
func Builtin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsConversion reports whether the call is a type conversion, returning
// the destination type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// FuncPkgPath returns the import path of the package declaring f ("" for
// builtins like error.Error that have no package).
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// PathIn reports whether path is any of the given import paths.
func PathIn(path string, paths []string) bool {
	for _, p := range paths {
		if path == p {
			return true
		}
	}
	return false
}
