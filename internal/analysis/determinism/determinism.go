// Package determinism protects the byte-identical goldens structurally:
// inside the timing-model packages (internal/sim, internal/snc,
// internal/cache, internal/mem, internal/stats) and inside any function
// annotated //secsim:deterministic (figure rendering), it flags wall
// clock reads (time.Now/Since/Until), unseeded global rand.* calls, and
// range over a map — iteration order would leak into rendered, golden
// or wire output. Seeded sources (methods on a *rand.Rand built from
// rand.New(rand.NewSource(seed))) are allowed; an audited exception
// carries //secsim:nondet <reason>.
package determinism

import (
	"fmt"
	"go/ast"
	"go/types"

	"secureproc/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Packages are import paths checked wholesale; functions anywhere
	// else opt in with //secsim:deterministic.
	Packages []string
}

// DefaultConfig covers the packages whose behavior the goldens hash.
var DefaultConfig = Config{
	Packages: []string{
		"secureproc/internal/sim",
		"secureproc/internal/snc",
		"secureproc/internal/cache",
		"secureproc/internal/mem",
		"secureproc/internal/stats",
	},
}

// Analyzer is the production instance.
var Analyzer = New(DefaultConfig)

// New builds a determinism analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "determinism",
		Doc:  "flag wall clocks, unseeded rand and map iteration in golden-feeding code",
	}
	a.Run = func(pass *analysis.Pass) error {
		run(cfg, pass)
		return nil
	}
	return a
}

// randConstructor names the math/rand and math/rand/v2 package-level
// functions that build explicitly seeded sources rather than drawing
// from the global one.
var randConstructor = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(cfg Config, pass *analysis.Pass) {
	pkg := pass.Pkg
	wholePkg := analysis.PathIn(pkg.Path, cfg.Packages)
	report := func(x ast.Node, format string, args ...any) {
		if _, ok := pkg.NodeAnnotation(x, analysis.VerbNondet); ok {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos:      pass.Fset.Position(x.Pos()),
			Analyzer: "determinism",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !wholePkg {
				if _, ok := pkg.FuncAnnotation(fd, analysis.VerbDeterministic); !ok {
					continue
				}
			}
			checkFunc(pkg, fd, report)
		}
	}
}

func checkFunc(pkg *analysis.Package, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			callee := analysis.Callee(pkg.Info, x)
			if callee == nil {
				return true
			}
			switch analysis.FuncPkgPath(callee) {
			case "time":
				switch callee.Name() {
				case "Now", "Since", "Until":
					report(x, "time.%s reads the wall clock; deterministic code must not", callee.Name())
				}
			case "math/rand", "math/rand/v2":
				// Package-level draws use the shared unseeded source.
				// Constructors (rand.New, rand.NewSource, ...) and methods
				// on the explicitly seeded sources they build are the
				// reproducible path and stay allowed.
				sig, ok := callee.Type().(*types.Signature)
				if ok && sig.Recv() == nil && !randConstructor[callee.Name()] {
					report(x, "%s.%s draws from the global unseeded source; use a seeded rand.New(rand.NewSource(seed))", analysis.FuncPkgPath(callee), callee.Name())
				}
			}
		case *ast.RangeStmt:
			if x.X != nil {
				if _, isMap := pkg.Info.TypeOf(x.X).Underlying().(*types.Map); isMap {
					report(x, "map iteration order is nondeterministic; sort the keys before ranging")
				}
			}
		}
		return true
	})
}
