package determinism_test

import (
	"testing"

	"secureproc/internal/analysis/analysistest"
	"secureproc/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	a := determinism.New(determinism.Config{Packages: []string{"det"}})
	analysistest.Run(t, "testdata", a, "det", "free")
}
