// Package det is the determinism fixture: a package inside the
// analyzer's scope, checked wholesale.
package det

import (
	"math/rand"
	"time"
)

func clock() time.Duration {
	t := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t) // want `time\.Since reads the wall clock`
}

func draw() int {
	return rand.Int() // want `math/rand\.Int draws from the global unseeded source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func iterate(m map[int]int) int {
	s := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	for _, v := range m { //secsim:nondet order-independent sum, audited
		s += v
	}
	return s
}
