// Package free is outside the determinism scope: only the function
// opting in via //secsim:deterministic is checked.
package free

import "time"

func unscoped() time.Time {
	return time.Now()
}

// render feeds figure output, so it opts in.
//
//secsim:deterministic
func render() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
