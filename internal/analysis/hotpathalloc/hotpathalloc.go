// Package hotpathalloc statically enforces the repo's steady-state
// allocation discipline (AllocsPerRun == 0 on the per-instruction path,
// PR 4): every function reachable by direct calls from the configured
// roots — sim.System.Step and sim.System.ContextSwitch — or annotated
// //secsim:hotpath may not contain heap-allocating constructs.
//
// Flagged constructs: calls into fmt/log, append, make/new, map and
// slice composite literals, escaping (&T{...}) composite literals, map
// writes, closures, go statements, string concatenation, string<->byte
// conversions, and interface boxing (explicit conversions and arguments
// boxed into interface variadics).
//
// The runtime AllocsPerRun tests prove specific code paths allocate
// zero; this analyzer proves every *other* path through the hot
// functions cannot reintroduce an allocation without either failing vet
// or carrying an audited //secsim:allowalloc reason (amortized scratch
// growth, cold error branches).
//
// Interface method calls (scheme.ReadLine and friends) are not
// traversed — the registry makes the callee an open set — so each
// scheme's hot entry points carry explicit //secsim:hotpath roots.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"secureproc/internal/analysis"
)

// Config parameterizes the analyzer (tests aim it at fixture roots).
type Config struct {
	// Roots are types.Func FullName keys whose bodies seed reachability,
	// in addition to every //secsim:hotpath-annotated function.
	Roots []string
	// AllocPkgs are packages any call into which is flagged outright.
	AllocPkgs []string
}

// DefaultConfig is the repo's production configuration.
var DefaultConfig = Config{
	Roots: []string{
		"(*secureproc/internal/sim.System).Step",
		"(*secureproc/internal/sim.System).ContextSwitch",
	},
	AllocPkgs: []string{"fmt", "log"},
}

// Analyzer is the production instance.
var Analyzer = New(DefaultConfig)

// New builds a hotpathalloc analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbid heap-allocating constructs in functions reachable from the simulation hot path",
	}
	a.RunProgram = func(pass *analysis.ProgramPass) error {
		run(cfg, pass)
		return nil
	}
	return a
}

// node is one declared function body in the program.
type node struct {
	pkg     *analysis.Package
	decl    *ast.FuncDecl
	callees []string
}

func run(cfg Config, pass *analysis.ProgramPass) {
	// Index every function body and its direct-call edges, keyed by the
	// types.Func full name — stable across the source-loaded package and
	// export-data references from its importers.
	index := make(map[string]*node)
	var roots []string
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &node{pkg: pkg, decl: fd}
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if callee := analysis.Callee(pkg.Info, call); callee != nil {
							n.callees = append(n.callees, callee.FullName())
						}
					}
					return true
				})
				key := obj.FullName()
				index[key] = n
				if _, ok := pkg.FuncAnnotation(fd, analysis.VerbHotpath); ok {
					roots = append(roots, key)
				}
			}
		}
	}
	for _, r := range cfg.Roots {
		if _, ok := index[r]; ok {
			roots = append(roots, r)
		}
	}

	// BFS over direct calls; remember which root first reached each
	// function so diagnostics explain the provenance.
	via := make(map[string]string, len(roots))
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		if _, seen := via[r]; !seen {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, c := range index[key].callees {
			if _, ok := index[c]; !ok {
				continue // no body here: stdlib, interface method, ...
			}
			if _, seen := via[c]; !seen {
				via[c] = via[key]
				queue = append(queue, c)
			}
		}
	}

	for key, root := range via {
		n := index[key]
		if _, ok := n.pkg.FuncAnnotation(n.decl, analysis.VerbAllowAlloc); ok {
			continue // whole function audited
		}
		checkBody(cfg, pass, n, short(root))
	}
}

// short compresses a FullName root to its last package element for
// readable diagnostics: (*secureproc/internal/sim.System).Step -> (*sim.System).Step.
func short(full string) string {
	out := make([]byte, 0, len(full))
	start := 0
	for i := 0; i < len(full); i++ {
		switch full[i] {
		case '/':
			out = out[:start]
		case '.', ')', '(', '*', '[', ']', ' ':
			out = append(out, full[i])
			start = len(out)
		default:
			out = append(out, full[i])
		}
	}
	return string(out)
}

func checkBody(cfg Config, pass *analysis.ProgramPass, n *node, root string) {
	pkg := n.pkg
	info := pkg.Info
	report := func(x ast.Node, format string, args ...any) {
		if _, ok := pkg.NodeAnnotation(x, analysis.VerbAllowAlloc); ok {
			return
		}
		msg := fmt.Sprintf(format, args...)
		pass.Report(analysis.Diagnostic{
			Pos:      pass.Fset.Position(x.Pos()),
			Analyzer: "hotpathalloc",
			Message:  fmt.Sprintf("%s in hot-path function %s (reachable from %s)", msg, n.decl.Name.Name, root),
		})
	}

	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			checkCall(cfg, info, x, report)
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				report(x, "map literal allocates")
			case *types.Slice:
				report(x, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			report(x, "closure may allocate its captures")
			// Keep walking: the closure's body runs on the hot path too.
		case *ast.GoStmt:
			report(x, "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && !isConst(info, x) && isString(info.TypeOf(x)) {
				report(x, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						report(lhs, "map assignment may grow the map")
					}
				}
			}
		}
		return true
	})
}

func checkCall(cfg Config, info *types.Info, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if callee := analysis.Callee(info, call); callee != nil {
		if p := analysis.FuncPkgPath(callee); analysis.PathIn(p, cfg.AllocPkgs) {
			report(call, "calls %s.%s", p, callee.Name())
			return
		}
		boxedVariadic(info, call, callee, report)
		return
	}
	switch analysis.Builtin(info, call) {
	case "append":
		report(call, "append may grow its backing array")
	case "make":
		report(call, "make allocates")
	case "new":
		report(call, "new allocates")
	}
	if dst, ok := analysis.IsConversion(info, call); ok && len(call.Args) == 1 {
		src := info.TypeOf(call.Args[0])
		checkConversion(call, src, dst, report)
	}
}

// checkConversion flags allocating conversions: concrete value into an
// interface (boxing) and string <-> []byte/[]rune copies.
func checkConversion(call *ast.CallExpr, src, dst types.Type, report func(ast.Node, string, ...any)) {
	if src == nil || dst == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) {
		if b, ok := src.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
			report(call, "conversion boxes %s into %s", src, dst)
		}
		return
	}
	sStr, dStr := isString(src), isString(dst)
	sBytes, dBytes := isByteish(src), isByteish(dst)
	if (sStr && dBytes) || (sBytes && dStr) {
		report(call, "%s <-> %s conversion copies", src, dst)
	}
}

// boxedVariadic flags concrete arguments boxed into an interface-typed
// variadic parameter (the fmt.Sprintf shape, for non-AllocPkgs callees).
func boxedVariadic(info *types.Info, call *ast.CallExpr, callee *types.Func, report func(ast.Node, string, ...any)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	elem, ok := last.Type().(*types.Slice)
	if !ok || !types.IsInterface(elem.Elem()) {
		return
	}
	for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
		if t := info.TypeOf(call.Args[i]); t != nil && !types.IsInterface(t) {
			report(call.Args[i], "argument boxes %s into %s variadic", t, elem.Elem())
		}
	}
}

func isConst(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteish(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
