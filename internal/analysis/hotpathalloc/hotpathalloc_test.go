package hotpathalloc_test

import (
	"testing"

	"secureproc/internal/analysis/analysistest"
	"secureproc/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	// No configured roots: the fixture marks its own via //secsim:hotpath,
	// exercising the same annotation machinery the real tree relies on for
	// the scheme entry points.
	a := hotpathalloc.New(hotpathalloc.Config{
		AllocPkgs: []string{"fmt", "log"},
	})
	analysistest.Run(t, "testdata", a, "hot")
}
