// Package hot is the hotpathalloc fixture: root marks the hot path via
// annotation, reached transitively calls helper, cold stays unreachable.
package hot

import "fmt"

type stater interface{ state() int }

type machine struct {
	scratch []uint64
	seen    map[uint64]struct{}
	n       int
}

func (m *machine) state() int { return m.n }

//secsim:hotpath
func (m *machine) Step(x uint64) {
	_ = fmt.Sprintf("%d", x) // want `calls fmt\.Sprintf`
	m.helper(x)
	m.scratch = append(m.scratch, x)     // want `append may grow`
	m.scratch = append(m.scratch[:0], x) //secsim:allowalloc scratch reuse audited by a runtime gate
	m.seen[x] = struct{}{}               // want `map assignment may grow`
	b := make([]byte, 8)                 // want `make allocates`
	_ = b
	_ = map[uint64]int{x: 1}        // want `map literal allocates`
	_ = []uint64{x}                 // want `slice literal allocates`
	_ = &machine{}                  // want `escapes to the heap`
	f := func() uint64 { return x } // want `closure may allocate`
	_ = f
	go m.helper(x) // want `go statement allocates`
	s := "a"
	s = s + "b" // want `string concatenation allocates`
	_ = s
	_ = []byte(s) // want `conversion copies`
	_ = stater(m) // want `boxes \*hot\.machine into hot\.stater`
	m.variadic(x) // want `argument boxes uint64`
}

func (m *machine) helper(x uint64) {
	m.n += *new(int) // want `new allocates`
}

func (m *machine) variadic(args ...any) { m.n += len(args) }

// cold is not reachable from any root: nothing here is flagged.
func cold() {
	_ = fmt.Sprintf("%d", make([]byte, 8))
}

// audited is hot but escaped wholesale at the declaration.
//
//secsim:allowalloc cold setup branch, audited by hand
func (m *machine) audited(x uint64) {
	m.scratch = append(m.scratch, x)
}

//secsim:hotpath
func root2(m *machine) { m.audited(1) }

func bad(m *machine) {
	m.scratch = m.scratch[:0] //secsim:allowalloc    // want `needs a reason`
}
