package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"secureproc/internal/api"
	"secureproc/internal/sim"
)

// testScale keeps simulations quick; the service contracts (coalescing,
// eviction, cancellation, draining) hold at any scale.
const testScale = 0.02

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = testScale
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"bench":"gzip","scheme":"snc-lru"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rr.Spec.Bench != "gzip" || rr.Spec.Scheme != "snc-lru" {
		t.Errorf("spec echo = %+v", rr.Spec)
	}
	if rr.Spec.SNCKB != 64 || rr.Spec.L2KB != 256 || rr.Spec.Crypto != 50 {
		t.Errorf("defaults not applied: %+v", rr.Spec)
	}
	if rr.Result.Cycles == 0 || rr.Result.Instructions == 0 {
		t.Errorf("empty result: %+v", rr.Result)
	}
}

func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"garbage", `{"bench":`},
		{"unknown field", `{"bench":"gzip","scheme":"snc-lru","benhc":"x"}`},
		{"unknown bench", `{"bench":"nosuch","scheme":"snc-lru"}`},
		{"unknown scheme", `{"bench":"gzip","scheme":"nosuch"}`},
		{"missing scheme", `{"bench":"gzip"}`},
		{"multi bench on run", `{"bench":"gzip,mcf","scheme":"snc-lru"}`},
		{"bad scheme param", `{"bench":"gzip","scheme":"otp-mac:verify=maybe"}`},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestRunCoalescesConcurrentDuplicates is the headline service contract: N
// identical concurrent requests observe exactly one simulation. The memo's
// bookkeeping makes the assertion deterministic: every request is either
// the one miss, a coalesced waiter, or a hit on the completed entry.
func TestRunCoalescesConcurrentDuplicates(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	const n = 8
	body := `{"bench":"mcf","scheme":"snc-lru"}`
	cycles := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			var rr api.RunResponse
			if err := json.Unmarshal(b, &rr); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			cycles[i] = rr.Result.Cycles
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cycles[i] != cycles[0] {
			t.Errorf("request %d saw %d cycles, request 0 saw %d", i, cycles[i], cycles[0])
		}
	}
	if sims := srv.Runner().Simulations(); sims != 1 {
		t.Errorf("%d simulations for %d identical concurrent requests, want 1", sims, n)
	}
	m := srv.MetricsSnapshot()
	rm := m.ResultMemo
	if rm.Misses != 1 {
		t.Errorf("result memo misses = %d, want 1", rm.Misses)
	}
	if rm.Coalesced+rm.Hits != n-1 {
		t.Errorf("coalesced(%d) + hits(%d) = %d, want %d (every duplicate either joined the flight or hit the memo)",
			rm.Coalesced, rm.Hits, rm.Coalesced+rm.Hits, n-1)
	}
	if m.Simulations != 1 || m.InFlightSims != 0 {
		t.Errorf("metrics: simulations=%d in_flight=%d, want 1/0", m.Simulations, m.InFlightSims)
	}
}

// TestEvictionUnderSmallCapacity drives three distinct specs through a
// capacity-1 memo and watches the LRU bound work via /metrics.
func TestEvictionUnderSmallCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1})
	run := func(bench string) {
		t.Helper()
		resp, b := postJSON(t, ts.URL+"/v1/run", fmt.Sprintf(`{"bench":%q,"scheme":"baseline"}`, bench))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %s: status %d: %s", bench, resp.StatusCode, b)
		}
	}
	run("gzip")
	run("mcf")  // evicts gzip
	run("gzip") // misses again, evicts mcf
	var m api.Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	rm := m.ResultMemo
	if rm.Capacity != 1 || rm.Size != 1 {
		t.Errorf("memo capacity/size = %d/%d, want 1/1", rm.Capacity, rm.Size)
	}
	if rm.Misses != 3 || rm.Evictions != 2 || rm.Hits != 0 {
		t.Errorf("memo stats = %+v, want 3 misses, 2 evictions (each new spec evicts the previous)", rm)
	}
	if m.Simulations != 3 {
		t.Errorf("simulations = %d, want 3 (evicted specs recompute)", m.Simulations)
	}
}

// TestCancelledRequestDetaches checks a client that gives up does not kill
// the shared simulation: the request errors out promptly, the simulation
// completes in the background and the next identical request is a memo hit.
func TestCancelledRequestDetaches(t *testing.T) {
	srv, ts := newTestServer(t, Config{Scale: 2.0})
	body := `{"bench":"mcf","scheme":"snc-lru"}`
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Skip("simulation finished inside the cancellation window; nothing to observe")
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Errorf("cancelled request took %v to return", wait)
	}
	// The detached simulation must finish and land in the memo.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Runner().Simulations() < 1 || srv.MetricsSnapshot().InFlightSims > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background simulation never completed after client cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp2, b := postJSON(t, ts.URL+"/v1/run", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up: status %d: %s", resp2.StatusCode, b)
	}
	if sims := srv.Runner().Simulations(); sims != 1 {
		t.Errorf("follow-up re-simulated: %d simulations, want 1 (the cancelled request's run survived)", sims)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Jobs: 4})
	resp, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"specs":[{"bench":"gzip,mcf","scheme":"baseline"},{"bench":"gzip","scheme":"xom"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 3 || len(sr.Results) != 3 {
		t.Fatalf("count=%d results=%d, want 3", sr.Count, len(sr.Results))
	}
	wantSpecs := []string{"gzip/baseline", "mcf/baseline", "gzip/xom"}
	for i, rr := range sr.Results {
		if got := rr.Spec.Bench + "/" + rr.Spec.Scheme; got != wantSpecs[i] {
			t.Errorf("result %d is %s, want %s", i, got, wantSpecs[i])
		}
		if rr.Result.Cycles == 0 {
			t.Errorf("result %d empty", i)
		}
	}
	if sims := srv.Runner().Simulations(); sims != 3 {
		t.Errorf("%d simulations, want 3", sims)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep", `{"specs":[{"bench":"gzip","scheme":"nosuch"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad sweep spec: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/sweep", `{"specs":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d: %s", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrainsSweep starts a sweep, then shuts the HTTP
// server down and asserts the in-flight request completes with a full
// response (http.Server.Shutdown waits for active handlers).
func TestGracefulShutdownDrainsSweep(t *testing.T) {
	s, err := New(Config{Scale: testScale, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url+"/v1/sweep", "application/json",
			strings.NewReader(`{"specs":[{"bench":"all","scheme":"snc-lru"}]}`))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		replies <- reply{status: resp.StatusCode, body: b, err: err}
	}()

	// Wait until the sweep is actually in flight before shutting down.
	deadline := time.Now().Add(30 * time.Second)
	for s.MetricsSnapshot().ResultMemo.Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown did not drain the in-flight sweep: %v", err)
	}
	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight sweep was cut off by shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("drained sweep status %d: %s", r.status, r.body)
	}
	var sr api.SweepResponse
	if err := json.Unmarshal(r.body, &sr); err != nil {
		t.Fatalf("drained sweep body truncated: %v", err)
	}
	if sr.Count == 0 || len(sr.Results) != sr.Count {
		t.Errorf("drained sweep incomplete: %+v", sr)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

func TestListingsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var schemes struct {
		Schemes []api.SchemeInfo `json:"schemes"`
	}
	getJSON(t, ts.URL+"/v1/schemes", &schemes)
	found := false
	for _, d := range schemes.Schemes {
		if d.Name == "snc-lru" {
			found = true
		}
	}
	if !found {
		t.Errorf("snc-lru missing from /v1/schemes: %+v", schemes)
	}
	var benches struct {
		Benchmarks []string `json:"benchmarks"`
	}
	getJSON(t, ts.URL+"/v1/benchmarks", &benches)
	if len(benches.Benchmarks) == 0 {
		t.Error("/v1/benchmarks empty")
	}
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("healthz status %q", health.Status)
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 4})
	var fr api.FigureResponse
	getJSON(t, ts.URL+"/v1/figures/fig3", &fr)
	if fr.ID != "Figure 3" || !strings.Contains(fr.Rendered, "Figure 3") {
		t.Errorf("figure response %+v", fr)
	}
	resp, err := http.Get(ts.URL + "/v1/figures/fig3?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("format=text content type %q", ct)
	}
	if !bytes.Contains(b, []byte("Figure 3")) {
		t.Errorf("text rendering missing table: %s", b)
	}
	resp, err = http.Get(ts.URL + "/v1/figures/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure: status %d, want 404", resp.StatusCode)
	}
}

// TestStoreWarmRestart is the in-process analog of the CI warm-restart
// smoke: a server with a -store directory persists its results, and a
// replacement server over the same directory answers the same request from
// disk — zero simulations — with the store counters visible in /metrics.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"bench":"gzip","scheme":"snc-lru"}`

	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	resp, b := postJSON(t, ts1.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, b)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	resp, b2 := postJSON(t, ts2.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted run: status %d: %s", resp.StatusCode, b2)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("restarted response differs:\nfirst:  %s\nsecond: %s", b, b2)
	}
	var m api.Metrics
	getJSON(t, ts2.URL+"/metrics", &m)
	if m.ResultStore == nil {
		t.Fatal("/metrics missing result_store with a store configured")
	}
	if m.ResultStore.Hits != 1 {
		t.Errorf("store hits = %d, want 1", m.ResultStore.Hits)
	}
	if m.Simulations != 0 {
		t.Errorf("restarted server ran %d simulations, want 0", m.Simulations)
	}
	if s2.Runner().Store == nil {
		t.Error("runner store not wired")
	}
}

// TestMetricsWithoutStore: with no StoreDir the result_store field is
// absent, not a block of zeros masquerading as a disabled store.
func TestMetricsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/metrics", &raw)
	if _, ok := raw["result_store"]; ok {
		t.Error("/metrics has result_store without a store configured")
	}
	if _, ok := raw["checkpoints"]; !ok {
		t.Error("/metrics missing checkpoints")
	}
	if _, ok := raw["speculation"]; !ok {
		t.Error("/metrics missing speculation")
	}
	if _, ok := raw["epoch_sims"]; !ok {
		t.Error("/metrics missing epoch_sims")
	}
}

// TestSimJobsSpeculationMetrics: a service configured with intra-sim
// parallelism runs an uncached request epoch-parallel and reports the
// speculation bookkeeping on /metrics. Jobs=2 with one in-flight request
// leaves exactly one idle slot to borrow, so the run splits into 2 epochs.
func TestSimJobsSpeculationMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Config{Jobs: 2, SimJobs: 2, Scale: 0.024})
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"bench":"mcf","scheme":"snc-lru"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result.Speculation != (sim.SpecStats{}) {
		t.Errorf("served Result carries speculation bookkeeping: %+v", rr.Result.Speculation)
	}
	m := srv.MetricsSnapshot()
	if m.Speculation.ParallelRuns != 1 || m.Speculation.Epochs != 2 {
		t.Errorf("speculation totals %+v, want 1 parallel run / 2 epochs", m.Speculation)
	}
	if m.EpochSims.Size < 1 {
		t.Errorf("epoch-sim cache empty after a parallel run: %+v", m.EpochSims)
	}
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/metrics", &raw)
	var spec struct {
		ParallelRuns int64 `json:"parallel_runs"`
		Epochs       int64 `json:"epochs"`
	}
	if err := json.Unmarshal(raw["speculation"], &spec); err != nil {
		t.Fatal(err)
	}
	if spec.ParallelRuns != 1 || spec.Epochs != 2 {
		t.Errorf("/metrics speculation = %+v, want 1 parallel run / 2 epochs", spec)
	}
}
