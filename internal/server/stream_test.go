package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"secureproc/internal/api"
	"secureproc/internal/workload"
)

// slowScale makes one simulation take hundreds of milliseconds, wide enough
// to observe a service mid-flight (admission saturation, mid-stream
// cancellation) without sleeping on exact timings.
const slowScale = 20.0

// postStream issues a sweep request and returns the live response for
// incremental NDJSON reading. The caller owns resp.Body.
func postStream(t *testing.T, ctx context.Context, url, body, clientID string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestStreamedSweepFirstResultBeforeSweepCompletes is the acceptance test
// for streaming: with one worker and N specs, the first NDJSON line must
// land after roughly one simulation, not after all N — time-to-first-result
// is bounded by a single simulation. The proof is the runner's own counter:
// when the first line arrives, most of the sweep has not been simulated yet.
func TestStreamedSweepFirstResultBeforeSweepCompletes(t *testing.T) {
	srv, ts := newTestServer(t, Config{Jobs: 1})
	n := len(workload.BenchmarkNames)

	resp := postStream(t, context.Background(), ts.URL+"/v1/sweep",
		`{"specs":[{"bench":"all","scheme":"snc-lru"}],"stream":true}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first api.StreamLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Error != "" || first.Result == nil || first.Result.Cycles == 0 {
		t.Fatalf("first line carries no result: %+v", first)
	}
	// The headline assertion: the first result arrived while the bulk of
	// the sweep was still unsimulated.
	if sims := srv.Runner().Simulations(); sims >= int64(n) {
		t.Errorf("first line arrived after %d of %d simulations; streaming is buffering the whole sweep", sims, n)
	}

	seen := map[int]bool{first.Index: true}
	var trailer *api.StreamTrailer
	for sc.Scan() {
		line := sc.Bytes()
		var tr api.StreamTrailer
		if err := json.Unmarshal(line, &tr); err == nil && tr.Done {
			trailer = &tr
			break
		}
		var sl api.StreamLine
		if err := json.Unmarshal(line, &sl); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if sl.Error != "" || sl.Result == nil {
			t.Errorf("line %d carries no result: %+v", sl.Index, sl)
		}
		if seen[sl.Index] {
			t.Errorf("index %d streamed twice", sl.Index)
		}
		seen[sl.Index] = true
	}
	if trailer == nil {
		t.Fatalf("stream ended without a done trailer: %v", sc.Err())
	}
	if len(seen) != n || trailer.Count != n || trailer.Error != "" {
		t.Errorf("got %d lines, trailer %+v, want %d results and a clean trailer", len(seen), trailer, n)
	}
	if sims := srv.Runner().Simulations(); sims != int64(n) {
		t.Errorf("%d simulations for %d distinct specs, want %d", sims, n, n)
	}
}

// TestStreamNegotiation pins the precedence of the three stream switches:
// the request's "stream" field beats the Accept header, which beats the
// server-level default.
func TestStreamNegotiation(t *testing.T) {
	read := func(resp *http.Response) string {
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("Content-Type")
	}
	body := `{"specs":[{"bench":"gzip","scheme":"baseline"}]}`

	_, plain := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodPost, plain.URL+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := read(resp); ct != "application/x-ndjson" {
		t.Errorf("Accept header on a buffered-default server: Content-Type %q, want NDJSON", ct)
	}

	_, streaming := newTestServer(t, Config{Stream: true})
	resp, _ = postJSON(t, streaming.URL+"/v1/sweep", body)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("-stream server default: Content-Type %q, want NDJSON", ct)
	}
	resp, b := postJSON(t, streaming.URL+"/v1/sweep",
		`{"specs":[{"bench":"gzip","scheme":"baseline"}],"stream":false}`)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf(`"stream":false on a -stream server: Content-Type %q, want buffered JSON`, ct)
	}
	var sr api.SweepResponse
	if err := json.Unmarshal(b, &sr); err != nil || sr.Count != 1 {
		t.Errorf("buffered override response = (%+v, %v), want one buffered result", sr, err)
	}
}

// TestStreamCancellationShedsAndDetaches: a client that abandons a streamed
// sweep mid-flight must stop the stream, shed the still-queued specs, and
// leave the in-flight simulation to complete detached and memoized.
func TestStreamCancellationShedsAndDetaches(t *testing.T) {
	srv, ts := newTestServer(t, Config{Jobs: 1, Scale: slowScale, Stream: true})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	resp := postStream(t, ctx, ts.URL+"/v1/sweep",
		`{"specs":[{"bench":"gzip,mcf,parser","scheme":"snc-lru"}]}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	// Abandon the sweep while the first simulation is still running.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if _, err := io.ReadAll(resp.Body); err == nil && srv.Runner().Simulations() >= 3 {
		t.Skip("sweep finished inside the cancellation window; nothing to observe")
	}

	// The in-flight simulation completes detached; queued specs are shed.
	deadline := time.Now().Add(30 * time.Second)
	for srv.MetricsSnapshot().InFlightSims > 0 || srv.Runner().Simulations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight simulation never settled after cancellation")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // shed specs must not start late
	sims := srv.Runner().Simulations()
	if sims >= 3 {
		t.Skip("all specs simulated before the cancel landed; nothing to observe")
	}
	m := srv.MetricsSnapshot()
	if m.InFlightSims != 0 {
		t.Errorf("in-flight = %d after settling, want 0", m.InFlightSims)
	}
	if int64(m.ResultMemo.Size) != sims {
		t.Errorf("memo holds %d results after %d detached simulations; detached work must stay memoized", m.ResultMemo.Size, sims)
	}
	// The detached result answers the next request without re-simulating.
	resp2, b := postJSON(t, ts.URL+"/v1/run", `{"bench":"gzip","scheme":"snc-lru"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up: status %d: %s", resp2.StatusCode, b)
	}
	if after := srv.Runner().Simulations(); after != sims {
		t.Errorf("follow-up re-simulated: %d -> %d simulations, want a memo hit", sims, after)
	}
}

// TestAdmissionCapRejectsWithRetryAfter: with -maxadmit 1, a second
// concurrent simulation request bounces immediately with 429 and a
// Retry-After estimate, while health and metrics stay reachable.
func TestAdmissionCapRejectsWithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxAdmit: 1, Scale: slowScale})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run",
			strings.NewReader(`{"bench":"mcf","scheme":"snc-lru"}`))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		// The request is cancelled deliberately once the 429 is observed;
		// either outcome (completion or context error) is fine.
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for srv.MetricsSnapshot().Dispatch.Admission.InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", `{"bench":"gzip","scheme":"baseline"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	if !strings.Contains(string(body), "admission capacity") {
		t.Errorf("429 body %q does not explain the rejection", body)
	}

	// A saturated service must stay observable.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Errorf("healthz while saturated: %v", err)
	} else {
		if hr.StatusCode != http.StatusOK {
			t.Errorf("healthz while saturated: status %d", hr.StatusCode)
		}
		hr.Body.Close()
	}
	var m api.Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Dispatch.Admission.Cap != 1 || m.Dispatch.Admission.Rejected < 1 {
		t.Errorf("admission metrics = %+v, want cap 1 and >= 1 rejection", m.Dispatch.Admission)
	}

	cancel() // release the slow request; its simulation detaches
	<-done
	deadline = time.Now().Add(30 * time.Second)
	for srv.MetricsSnapshot().Dispatch.Admission.InFlight > 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after the request returned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// With the slot free, the previously bounced spec is admitted.
	resp2, b2 := postJSON(t, ts.URL+"/v1/run", `{"bench":"gzip","scheme":"baseline"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("retry after release: status %d: %s", resp2.StatusCode, b2)
	}
}

// TestInteractiveRunNotStarvedByBulkSweep is the fairness acceptance test:
// with one worker slot and a bulk client's sweep queued many deep, an
// interactive run from a different client must be scheduled after the
// in-flight simulation, not after the whole sweep.
func TestInteractiveRunNotStarvedByBulkSweep(t *testing.T) {
	srv, ts := newTestServer(t, Config{Jobs: 1, Scale: 4.0})
	const bulkSpecs = 6

	resp := postStream(t, context.Background(), ts.URL+"/v1/sweep",
		`{"specs":[{"bench":"gzip,mcf,mesa,parser,vortex,vpr","scheme":"snc-lru"}],"stream":true}`, "bulk-client")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status %d: %s", resp.StatusCode, b)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first sweep line: %v", sc.Err())
	}

	// The sweep has ~bulkSpecs-1 jobs queued; an interactive client walks in.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(`{"bench":"art","scheme":"snc-lru"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "interactive-client")
	irp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(irp.Body)
	irp.Body.Close()
	if irp.StatusCode != http.StatusOK {
		t.Fatalf("interactive run: status %d: %s", irp.StatusCode, b)
	}
	simsAtInteractive := srv.Runner().Simulations()

	lines := 1
	for sc.Scan() {
		var tr api.StreamTrailer
		if err := json.Unmarshal(sc.Bytes(), &tr); err == nil && tr.Done {
			break
		}
		lines++
	}
	if lines != bulkSpecs {
		t.Fatalf("bulk sweep streamed %d lines, want %d", lines, bulkSpecs)
	}
	if simsAtInteractive >= bulkSpecs+1 {
		t.Skip("bulk sweep drained before the interactive request queued; fairness not exercised")
	}
	// FIFO would have completed the interactive run last (all 7 sims done);
	// fair scheduling answers it after the in-flight bulk sim plus its own.
	if simsAtInteractive > 4 {
		t.Errorf("interactive run answered after %d simulations; a fair scheduler bounds this by the in-flight sim + its own (got starved behind the bulk queue)", simsAtInteractive)
	}
	if st := srv.Runner().DispatchStats(); st.FairnessPreemptions < 1 {
		t.Errorf("fairness preemptions = %d, want >= 1 (interactive job jumped the bulk queue)", st.FairnessPreemptions)
	}
}
