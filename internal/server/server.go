package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"secureproc/internal/core"
	"secureproc/internal/dispatch"
	"secureproc/internal/experiments"
	"secureproc/internal/sim"
	"secureproc/internal/store"
	"secureproc/internal/workload"
)

// Config sizes the service's runner. The zero value is a production-ish
// default: native workload scale, GOMAXPROCS concurrent simulations,
// unbounded memos, unbounded admission.
type Config struct {
	// Scale is the workload scale for every simulation (0 = 1.0 native).
	Scale float64
	// Jobs caps concurrent simulations in sweep fan-out (0 = GOMAXPROCS).
	Jobs int
	// SimJobs, when > 1, lets a single simulation split its measured phase
	// into that many speculative epochs whenever the shared Jobs budget has
	// idle workers — cutting the latency of one uncached request without
	// changing any result (see experiments.Runner.SimJobs).
	// experiments.SimJobsAuto (-1) sizes the split from observed budget
	// slack instead. 0 or 1 keeps simulations serial.
	SimJobs int
	// Capacity bounds the result memo (LRU; 0 = unbounded). In-flight
	// simulations are pinned and never evicted.
	Capacity int
	// TraceCapacity bounds the materialized-trace memo (0 = unbounded).
	TraceCapacity int
	// StoreDir, when non-empty, persists completed results under this
	// directory (keyed by run configuration and sim.TimingModelVersion) so
	// a restarted service answers repeated requests without re-simulating.
	StoreDir string
	// MaxAdmit bounds concurrently admitted simulation requests (/v1/run,
	// /v1/sweep, /v1/figures) — distinct from Jobs, which bounds executing
	// simulations. Beyond the cap, requests are rejected immediately with
	// 429 + Retry-After instead of queueing unboundedly. 0 = unbounded.
	MaxAdmit int
	// Stream makes /v1/sweep stream each result as an NDJSON line the
	// moment it lands, by default; individual requests override with the
	// "stream" field or an "Accept: application/x-ndjson" header.
	Stream bool
}

// Server is the secsimd HTTP handler: /v1/run, /v1/sweep,
// /v1/figures/{name}, /v1/schemes, /v1/benchmarks, /healthz and /metrics.
type Server struct {
	runner    *experiments.Runner
	admission *dispatch.Admission
	stream    bool
	mux       *http.ServeMux
	start     time.Time

	// Per-endpoint request counters for /metrics.
	runReqs, sweepReqs, figureReqs, listReqs, healthReqs, metricReqs atomic.Int64
}

// New builds the service over a fresh Runner. The only failure mode is an
// unusable StoreDir.
func New(cfg Config) (*Server, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	r := experiments.NewRunner(cfg.Scale)
	r.Jobs = cfg.Jobs
	r.SimJobs = cfg.SimJobs
	r.Capacity = cfg.Capacity
	r.TraceCapacity = cfg.TraceCapacity
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, sim.TimingModelVersion)
		if err != nil {
			return nil, err
		}
		r.Store = st
	}
	s := &Server{
		runner:    r,
		admission: dispatch.NewAdmission(cfg.MaxAdmit),
		stream:    cfg.Stream,
		mux:       http.NewServeMux(),
		start:     time.Now(),
	}
	s.mux.HandleFunc("POST /v1/run", s.admit(s.handleRun))
	s.mux.HandleFunc("POST /v1/sweep", s.admit(s.handleSweep))
	s.mux.HandleFunc("GET /v1/figures/{name}", s.admit(s.handleFigure))
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Fairness weights for the dispatcher's per-owner queues: one interactive
// /v1/run job counts as four sweep jobs, so a caller probing individual
// configurations stays responsive while a bulk sweep grinds through its
// fan-out on the same worker budget.
const (
	runWeight   = 4
	sweepWeight = 1
)

// ownerCtx tags the request context for the fairness queue: jobs from the
// same client (X-Client-ID header, else the remote host) share one queue
// and compete fairly with every other client's.
func ownerCtx(r *http.Request, weight int) context.Context {
	owner := r.Header.Get("X-Client-ID")
	if owner == "" {
		owner = r.RemoteAddr
		if host, _, err := net.SplitHostPort(owner); err == nil {
			owner = host
		}
	}
	return dispatch.WithOwner(r.Context(), owner, weight)
}

// admit gates a simulation-triggering handler behind the admission cap:
// beyond MaxAdmit concurrently admitted requests the caller gets 429 with
// a Retry-After estimate (observed request duration scaled by the backlog)
// instead of holding queue space. Listings, health and metrics stay
// un-gated so a saturated service remains observable.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admission.TryAdmit()
		if !ok {
			ra := s.admission.RetryAfter()
			secs := int64((ra + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("server at admission capacity; retry after %ds", secs))
			return
		}
		defer release()
		h(w, r)
	}
}

// Runner exposes the underlying runner (diagnostics and tests).
func (s *Server) Runner() *experiments.Runner { return s.runner }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// await runs fn detached from the request and waits for either the result
// or the request context. On cancellation the caller returns promptly with
// ctx.Err() while fn keeps running — for simulations that means the work
// still lands in the shared memo for the next request. A panicking fn is
// contained here (the simulation layer re-raises recorded panics in the
// owning goroutine) so one poisoned request cannot take the service down.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var zero T
				ch <- outcome{zero, fmt.Errorf("internal error: %v", p)}
			}
		}()
		v, err := fn()
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// RunResponse is the /v1/run payload.
type RunResponse struct {
	Spec   SpecJSON   `json:"spec"`
	Result sim.Result `json:"result"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runReqs.Add(1)
	var req SpecRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := req.specs(false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := specs[0]
	// RunDispatched queues the job under this client's fairness owner and
	// releases a cancelled caller promptly while a simulation already
	// underway completes detached into the shared memo — the same detach
	// semantics await used to provide, now owned by the dispatch layer.
	res, err := s.runner.RunDispatched(ownerCtx(r, runWeight), spec)
	if err != nil {
		if r.Context().Err() != nil {
			// Client is gone; nothing useful to write.
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Spec: specJSON(spec), Result: res})
}

// SweepRequest is the /v1/sweep payload: a list of specs, each expandable
// over benchmarks ("bench": "all" or "gzip,mcf"). Stream, when set,
// overrides the server's streaming default for this request.
type SweepRequest struct {
	Specs  []SpecRequest `json:"specs"`
	Stream *bool         `json:"stream,omitempty"`
}

// SweepResponse reports every resolved spec with its result, in request
// order (benchmark expansion preserves benchmark order).
type SweepResponse struct {
	Count   int           `json:"count"`
	Results []RunResponse `json:"results"`
}

// StreamLine is one NDJSON line of a streamed sweep: spec i's outcome,
// emitted the moment its simulation lands. Lines arrive in completion
// order, not request order; Index maps each back to the expanded spec
// list. Exactly one of Result and Error is set.
type StreamLine struct {
	Index  int         `json:"index"`
	Spec   SpecJSON    `json:"spec"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// StreamTrailer terminates a streamed sweep: Count results landed; Error
// reports a failure that shed the remaining specs.
type StreamTrailer struct {
	Done  bool   `json:"done"`
	Count int    `json:"count"`
	Error string `json:"error,omitempty"`
}

// streaming resolves whether this sweep answers as an NDJSON stream: the
// request's own "stream" field wins, then an Accept asking for NDJSON,
// then the server's -stream default.
func (s *Server) streaming(req SweepRequest, r *http.Request) bool {
	if req.Stream != nil {
		return *req.Stream
	}
	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		return true
	}
	return s.stream
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweepReqs.Add(1)
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one spec"))
		return
	}
	var specs []experiments.Spec
	for i, sr := range req.Specs {
		expanded, err := sr.specs(true)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("spec %d: %w", i, err))
			return
		}
		specs = append(specs, expanded...)
	}
	if s.streaming(req, r) {
		s.streamSweep(w, r, specs)
		return
	}
	// Buffered mode still fans out through the fair dispatcher under the
	// request context: a client that gives up sheds its queued specs (the
	// backpressure point of admission control) while specs already
	// simulating complete detached and stay memoized for the next caller.
	results := make([]RunResponse, len(specs))
	err := s.runner.SweepEach(ownerCtx(r, sweepWeight), specs, func(i int, res sim.Result, err error) {
		if err == nil {
			results[i] = RunResponse{Spec: specJSON(specs[i]), Result: res}
		}
	})
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Count: len(specs), Results: results})
}

// streamSweep answers a sweep as NDJSON: one StreamLine per spec as its
// simulation completes, then a StreamTrailer. Time-to-first-result is
// bounded by one simulation, not the whole fan-out, and a slow consumer
// never holds worker slots — lines buffer in the HTTP layer while the
// dispatcher keeps draining jobs.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, specs []experiments.Spec) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit the headers so the client sees the stream open
	}
	enc := json.NewEncoder(w)
	count := 0
	// SweepEach serializes callbacks, so the encoder and flusher are never
	// written concurrently.
	err := s.runner.SweepEach(ownerCtx(r, sweepWeight), specs, func(i int, res sim.Result, err error) {
		line := StreamLine{Index: i, Spec: specJSON(specs[i])}
		if err != nil {
			line.Error = err.Error()
		} else {
			line.Result = &res
			count++
		}
		enc.Encode(line) //nolint:errcheck // client gone surfaces via ctx
		if fl != nil {
			fl.Flush()
		}
	})
	if r.Context().Err() != nil {
		// Client gone mid-stream: queued specs were shed, in-flight
		// simulations finish detached into the memo; nothing to write.
		return
	}
	trailer := StreamTrailer{Done: true, Count: count}
	if err != nil {
		trailer.Error = err.Error()
	}
	enc.Encode(trailer) //nolint:errcheck // client gone is the only failure
	if fl != nil {
		fl.Flush()
	}
}

// FigureResponse is the /v1/figures/{name} payload.
type FigureResponse struct {
	Name     string `json:"name"`
	ID       string `json:"id"`
	Title    string `json:"title"`
	Rendered string `json:"rendered"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.figureReqs.Add(1)
	name := r.PathValue("name")
	fr, err := await(r.Context(), func() (experiments.FigureResult, error) {
		return s.runner.ByName(name)
	})
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			return
		case strings.Contains(err.Error(), "unknown figure"):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fr.Render())
		return
	}
	writeJSON(w, http.StatusOK, FigureResponse{Name: name, ID: fr.ID, Title: fr.Title, Rendered: fr.Render()})
}

// SchemeInfo is one /v1/schemes entry.
type SchemeInfo struct {
	Name    string   `json:"name"`
	Doc     string   `json:"doc"`
	Aliases []string `json:"aliases,omitempty"`
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	s.listReqs.Add(1)
	ds := core.Descriptors()
	out := make([]SchemeInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, SchemeInfo{Name: d.Name, Doc: d.Doc, Aliases: d.Aliases})
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemes": out})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.listReqs.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": workload.BenchmarkNames})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.healthReqs.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// Metrics is the expvar-style /metrics payload.
type Metrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests_total"`
	// Simulations counts simulations actually executed (memo misses that
	// ran to completion started; hits and coalesced waiters don't add).
	Simulations int64 `json:"simulations_total"`
	// InFlightSims is the number of simulations executing right now.
	InFlightSims int `json:"in_flight_sims"`
	// ResultMemo and TraceMemo expose the singleflight caches' lifecycle
	// counters (size, capacity, hits, misses, coalesced, evictions).
	ResultMemo experiments.CacheStats `json:"result_memo"`
	TraceMemo  experiments.CacheStats `json:"trace_memo"`
	// ResultStore exposes the persistent warm-start store's counters
	// (hits, misses, corrupt entries, writes); absent when no -store
	// directory is configured.
	ResultStore *store.Stats `json:"result_store,omitempty"`
	// Checkpoints exposes the process-wide post-warmup checkpoint cache.
	Checkpoints experiments.CheckpointStats `json:"checkpoints"`
	// Speculation aggregates the epoch-parallel bookkeeping across every
	// simulation this runner dispatched wide (zero when SimJobs is off or
	// the budget never had slack).
	Speculation experiments.SpeculationTotals `json:"speculation"`
	// EpochSims exposes the process-wide epoch-simulator cache backing the
	// speculative runs.
	EpochSims experiments.EpochCacheStats `json:"epoch_sims"`
	// Dispatch exposes the execution dispatch layer: the admission gate
	// (rejections become 429s) and the weighted-fair queue over the shared
	// worker budget.
	Dispatch DispatchMetrics `json:"dispatch"`
	// Runtime exposes Go runtime gauges so saturation (goroutine pileup,
	// heap growth, GC pressure) is diagnosable from /metrics alone.
	Runtime RuntimeMetrics `json:"runtime"`
}

// DispatchMetrics groups the dispatch layer's counters for /metrics.
type DispatchMetrics struct {
	Admission dispatch.AdmissionStats `json:"admission"`
	Queue     dispatch.QueueStats     `json:"queue"`
}

// RuntimeMetrics is a point-in-time snapshot of Go runtime gauges.
type RuntimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
}

// MetricsSnapshot assembles the current metrics (also used by tests).
func (s *Server) MetricsSnapshot() Metrics {
	rm := s.runner.MemoStats()
	var storeStats *store.Stats
	if s.runner.Store != nil {
		st := s.runner.Store.Stats()
		storeStats = &st
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests: map[string]int64{
			"run":      s.runReqs.Load(),
			"sweep":    s.sweepReqs.Load(),
			"figures":  s.figureReqs.Load(),
			"listings": s.listReqs.Load(),
			"healthz":  s.healthReqs.Load(),
			"metrics":  s.metricReqs.Load(),
		},
		Simulations:  s.runner.Simulations(),
		InFlightSims: rm.InFlight,
		ResultMemo:   rm,
		TraceMemo:    s.runner.TraceStats(),
		ResultStore:  storeStats,
		Checkpoints:  experiments.CheckpointCacheStats(),
		Speculation:  s.runner.SpeculationStats(),
		EpochSims:    experiments.EpochSimCacheStats(),
		Dispatch: DispatchMetrics{
			Admission: s.admission.Stats(),
			Queue:     s.runner.DispatchStats(),
		},
		Runtime: RuntimeMetrics{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			GCPauseTotalNs: ms.PauseTotalNs,
			NumGC:          ms.NumGC,
		},
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metricReqs.Add(1)
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
