package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secureproc/internal/api"
	"secureproc/internal/cluster"
	"secureproc/internal/core"
	"secureproc/internal/dispatch"
	"secureproc/internal/experiments"
	"secureproc/internal/sim"
	"secureproc/internal/store"
	"secureproc/internal/workload"
)

// Config sizes the service's runner. The zero value is a production-ish
// default: native workload scale, GOMAXPROCS concurrent simulations,
// unbounded memos, unbounded admission, single-node (no cluster).
type Config struct {
	// Scale is the workload scale for every simulation (0 = 1.0 native).
	Scale float64
	// Jobs caps concurrent simulations in sweep fan-out (0 = GOMAXPROCS).
	Jobs int
	// SimJobs, when > 1, lets a single simulation split its measured phase
	// into that many speculative epochs whenever the shared Jobs budget has
	// idle workers — cutting the latency of one uncached request without
	// changing any result (see experiments.Runner.SimJobs).
	// experiments.SimJobsAuto (-1) sizes the split from observed budget
	// slack instead. 0 or 1 keeps simulations serial.
	SimJobs int
	// Capacity bounds the result memo (LRU; 0 = unbounded). In-flight
	// simulations are pinned and never evicted.
	Capacity int
	// TraceCapacity bounds the materialized-trace memo (0 = unbounded).
	TraceCapacity int
	// StoreDir, when non-empty, persists completed results under this
	// directory (keyed by run configuration and sim.TimingModelVersion) so
	// a restarted service answers repeated requests without re-simulating.
	StoreDir string
	// MaxAdmit bounds concurrently admitted simulation requests (/v1/run,
	// /v1/sweep, /v1/figures) — distinct from Jobs, which bounds executing
	// simulations. Beyond the cap, requests are rejected immediately with
	// 429 + Retry-After instead of queueing unboundedly. 0 = unbounded.
	MaxAdmit int
	// Stream makes /v1/sweep stream each result as an NDJSON line the
	// moment it lands, by default; individual requests override with the
	// "stream" field or an "Accept: application/x-ndjson" header.
	Stream bool
	// Cluster, when non-nil, joins this node to a sharded fleet at startup
	// (equivalent to calling EnableCluster after New).
	Cluster *ClusterConfig
}

// ClusterConfig joins the node to a static fleet: requests whose canonical
// run key hashes to another member are forwarded there, so the fleet's
// memos partition instead of duplicating.
type ClusterConfig struct {
	// Self is this node's advertised host:port on the ring.
	Self string
	// Peers lists the other members (self included or not).
	Peers []string
	// HopLimit caps forwards per request (0 = cluster.DefaultHopLimit).
	HopLimit int
	// ForwardTimeout bounds one forwarded request (0 = default).
	ForwardTimeout time.Duration
	// Cooldown is the down-peer probation window (0 = default).
	Cooldown time.Duration
	// BatchWindow, when > 0, holds locally-owned /v1/run requests for this
	// long and executes each window's distinct specs as one batch.
	BatchWindow time.Duration
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

// clusterState bundles the fabric with its optional batching window; the
// server holds it behind one atomic pointer so cluster mode can be enabled
// after listeners are up (tests learn their addresses first) without racing
// request handlers.
type clusterState struct {
	fabric  *cluster.Fabric
	batcher *cluster.Batcher
}

// Server is the secsimd HTTP handler: /v1/run, /v1/sweep,
// /v1/figures/{name}, /v1/schemes, /v1/benchmarks, /v1/cluster/stats,
// /healthz and /metrics. See internal/api for the wire contract.
type Server struct {
	runner    *experiments.Runner
	admission *dispatch.Admission
	stream    bool
	mux       *http.ServeMux
	start     time.Time
	cluster   atomic.Pointer[clusterState]

	// Per-endpoint request counters for /metrics.
	runReqs, sweepReqs, figureReqs, listReqs, healthReqs, metricReqs, clusterReqs atomic.Int64

	// encMu guards encFails: response bodies that failed to encode
	// mid-write, keyed by the same endpoint names as the request
	// counters (plus "router" and "admission" for the middleware).
	// In practice a failure means the client hung up after the status
	// line was committed — invisible on the wire, so it is counted here
	// and surfaced in /metrics instead of silently dropped.
	encMu    sync.Mutex
	encFails map[string]int64
}

// New builds the service over a fresh Runner. Failure modes are an
// unusable StoreDir or an unusable cluster membership.
func New(cfg Config) (*Server, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	r := experiments.NewRunner(cfg.Scale)
	r.Jobs = cfg.Jobs
	r.SimJobs = cfg.SimJobs
	r.Capacity = cfg.Capacity
	r.TraceCapacity = cfg.TraceCapacity
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, sim.TimingModelVersion)
		if err != nil {
			return nil, err
		}
		r.Store = st
	}
	s := &Server{
		runner:    r,
		admission: dispatch.NewAdmission(cfg.MaxAdmit),
		stream:    cfg.Stream,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		encFails:  make(map[string]int64),
	}
	s.mux.HandleFunc("POST /v1/run", s.admit(s.handleRun))
	s.mux.HandleFunc("POST /v1/sweep", s.admit(s.handleSweep))
	s.mux.HandleFunc("GET /v1/figures/{name}", s.admit(s.handleFigure))
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/cluster/stats", s.handleClusterStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Method-less fallbacks so a wrong-method request gets the API's 405
	// envelope (with Allow) instead of the mux's plain-text default, and
	// everything else gets the 404 envelope.
	s.mux.HandleFunc("/v1/run", s.methodNotAllowed(http.MethodPost))
	s.mux.HandleFunc("/v1/sweep", s.methodNotAllowed(http.MethodPost))
	s.mux.HandleFunc("/v1/figures/{name}", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/v1/schemes", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/v1/benchmarks", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/v1/cluster/stats", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/healthz", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/metrics", s.methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeAPIError(w, "router", api.Errorf(api.CodeNotFound, "no such endpoint: %s", r.URL.Path))
	})
	if cfg.Cluster != nil {
		if err := s.EnableCluster(*cfg.Cluster); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// EnableCluster joins the node to the fleet described by cfg. It may be
// called after the listener is up (tests construct servers first, learn
// their addresses, then wire the ring); requests arriving before it is
// called execute purely locally.
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	f, err := cluster.New(cluster.Config{
		Self:           cfg.Self,
		Peers:          cfg.Peers,
		HopLimit:       cfg.HopLimit,
		ForwardTimeout: cfg.ForwardTimeout,
		Cooldown:       cfg.Cooldown,
		Client:         cfg.Client,
	})
	if err != nil {
		return err
	}
	var b *cluster.Batcher
	if cfg.BatchWindow > 0 {
		b = f.NewBatcher(cfg.BatchWindow, func(ctx context.Context, specs []experiments.Spec, each func(int, sim.Result, error)) error {
			// Batches execute under one synthetic fairness owner: the
			// window already mixed multiple clients' specs together.
			return s.runner.SweepEach(dispatch.WithOwner(ctx, "cluster-batch", runWeight), specs, each)
		})
	}
	s.cluster.Store(&clusterState{fabric: f, batcher: b})
	return nil
}

// Fairness weights for the dispatcher's per-owner queues: one interactive
// /v1/run job counts as four sweep jobs, so a caller probing individual
// configurations stays responsive while a bulk sweep grinds through its
// fan-out on the same worker budget.
const (
	runWeight   = 4
	sweepWeight = 1
)

// clientOwner identifies the request's fairness owner: the X-Client-ID
// header (which the fabric propagates on forwards, so a client keeps one
// queue fleet-wide), else the remote host.
func clientOwner(r *http.Request) string {
	owner := r.Header.Get(api.HeaderClientID)
	if owner == "" {
		owner = r.RemoteAddr
		if host, _, err := net.SplitHostPort(owner); err == nil {
			owner = host
		}
	}
	return owner
}

// ownerCtx tags the request context for the fairness queue: jobs from the
// same client share one queue and compete fairly with every other client's.
func ownerCtx(r *http.Request, weight int) context.Context {
	return dispatch.WithOwner(r.Context(), clientOwner(r), weight)
}

// admit gates a simulation-triggering handler behind the admission cap:
// beyond MaxAdmit concurrently admitted requests the caller gets 429 with
// a Retry-After estimate instead of holding queue space. The estimate is
// per-owner — observed request duration scaled by *this client's* queue
// depth — so a light client behind one heavy sweeper is told to come back
// in seconds, not after the sweeper's whole backlog. Listings, health and
// metrics stay un-gated so a saturated service remains observable.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admission.TryAdmit()
		if !ok {
			ra := s.admission.RetryAfterFor(s.runner.OwnerQueued(clientOwner(r)))
			secs := int64((ra + time.Second - 1) / time.Second)
			e := api.Errorf(api.CodeOverloaded, "server at admission capacity; retry after %ds", secs)
			e.RetryAfterS = secs
			s.writeAPIError(w, "admission", e)
			return
		}
		defer release()
		h(w, r)
	}
}

// Runner exposes the underlying runner (diagnostics and tests).
func (s *Server) Runner() *experiments.Runner { return s.runner }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// noteEncodeFailure counts a response body that failed to encode after
// the status line was committed; per-endpoint totals surface in /metrics.
func (s *Server) noteEncodeFailure(endpoint string) {
	s.encMu.Lock()
	s.encFails[endpoint]++
	s.encMu.Unlock()
}

// encodeFailures snapshots the per-endpoint encode-failure counters.
func (s *Server) encodeFailures() map[string]int64 {
	s.encMu.Lock()
	defer s.encMu.Unlock()
	out := make(map[string]int64, len(s.encFails))
	for k, v := range s.encFails {
		out[k] = v
	}
	return out
}

// writeJSON writes v through the api helper, recording an encode failure
// against the endpoint counter instead of discarding it.
func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	if api.WriteJSON(w, status, v) != nil {
		s.noteEncodeFailure(endpoint)
	}
}

// writeAPIError writes a ready-made envelope, recording encode failures.
func (s *Server) writeAPIError(w http.ResponseWriter, endpoint string, e *api.Error) {
	if api.WriteError(w, e) != nil {
		s.noteEncodeFailure(endpoint)
	}
}

// writeError maps err onto the API error envelope: an *api.Error passes
// through unchanged (a forwarded peer's envelope keeps its code), anything
// else is wrapped under the given default code.
func (s *Server) writeError(w http.ResponseWriter, endpoint, code string, err error) {
	var ae *api.Error
	if errors.As(err, &ae) {
		s.writeAPIError(w, endpoint, ae)
		return
	}
	s.writeAPIError(w, endpoint, api.Errorf(code, "%s", err.Error()))
}

// methodNotAllowed answers a known route hit with the wrong method.
func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeAPIError(w, "router", api.Errorf(api.CodeMethodNotAllowed, "method %s not allowed on %s; use %s", r.Method, r.URL.Path, allow))
	}
}

// checkVersion rejects requests whose X-Secsim-Api-Version header names a
// contract this node does not speak — a mixed-version fleet fails loudly
// at the boundary instead of misparsing forwarded payloads.
func (s *Server) checkVersion(w http.ResponseWriter, r *http.Request) bool {
	if v := r.Header.Get(api.HeaderAPIVersion); v != "" && v != api.Version {
		s.writeAPIError(w, "router", api.Errorf(api.CodeUnsupportedVersion, "api version %q not supported (this node speaks %q)", v, api.Version))
		return false
	}
	return true
}

// parseHops reads the forward count a request accumulated in the fabric;
// absent or malformed means it came straight from a client.
func parseHops(r *http.Request) int {
	n, err := strconv.Atoi(r.Header.Get(api.HeaderHops))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// await runs fn detached from the request and waits for either the result
// or the request context. On cancellation the caller returns promptly with
// ctx.Err() while fn keeps running — for simulations that means the work
// still lands in the shared memo for the next request. A panicking fn is
// contained here (the simulation layer re-raises recorded panics in the
// owning goroutine) so one poisoned request cannot take the service down.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var zero T
				ch <- outcome{zero, fmt.Errorf("internal error: %v", p)}
			}
		}()
		v, err := fn()
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runReqs.Add(1)
	if !s.checkVersion(w, r) {
		return
	}
	var req api.RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, "run", api.CodeBadRequest, err)
		return
	}
	specs, err := req.Specs(false)
	if err != nil {
		s.writeError(w, "run", api.CodeBadRequest, err)
		return
	}
	spec := specs[0]
	hops := parseHops(r)
	cs := s.cluster.Load()

	// Cluster routing: a spec owned by a peer forwards there (once, with a
	// retry); an unreachable owner degrades to local execution rather than
	// failing the request, and an exhausted hop budget — possible only on
	// an inconsistent ring — stops the loop by serving locally.
	if cs != nil {
		if owner, local := cs.fabric.Owner(spec.CanonicalKey()); !local {
			if hops >= cs.fabric.HopLimit() {
				cs.fabric.NoteHopLimit()
			} else {
				var out api.RunResponse
				apiErr, ok := cs.fabric.Forward(r.Context(), owner, "/"+api.Version+"/run", hops,
					r.Header.Get(api.HeaderClientID), api.RequestOf(spec), &out)
				if ok {
					if apiErr != nil {
						s.writeAPIError(w, "run", apiErr)
						return
					}
					s.writeJSON(w, "run", http.StatusOK, out)
					return
				}
				// Owner down: fall through to local execution.
			}
		}
		if hops > 0 {
			cs.fabric.NoteServedForwarded()
		}
	}

	// RunDispatched queues the job under this client's fairness owner and
	// releases a cancelled caller promptly while a simulation already
	// underway completes detached into the shared memo. With a batching
	// window configured, locally-owned runs instead collect for one window
	// and execute as a deduplicated batch.
	var res sim.Result
	if cs != nil && cs.batcher != nil {
		res, err = cs.batcher.Run(ownerCtx(r, runWeight), spec)
	} else {
		res, err = s.runner.RunDispatched(ownerCtx(r, runWeight), spec)
	}
	if err != nil {
		if r.Context().Err() != nil {
			// Client is gone; nothing useful to write.
			return
		}
		s.writeError(w, "run", api.CodeInternal, err)
		return
	}
	s.writeJSON(w, "run", http.StatusOK, api.RunResponse{Spec: api.SpecOf(spec), Result: res})
}

// streaming resolves whether this sweep answers as an NDJSON stream: the
// request's own "stream" field wins, then an Accept asking for NDJSON,
// then the server's -stream default.
func (s *Server) streaming(req api.SweepRequest, r *http.Request) bool {
	if req.Stream != nil {
		return *req.Stream
	}
	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		return true
	}
	return s.stream
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweepReqs.Add(1)
	if !s.checkVersion(w, r) {
		return
	}
	var req api.SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, "sweep", api.CodeBadRequest, err)
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, "sweep", api.CodeBadRequest, fmt.Errorf("sweep needs at least one spec"))
		return
	}
	var specs []experiments.Spec
	for i, sr := range req.Specs {
		expanded, err := sr.Specs(true)
		if err != nil {
			s.writeError(w, "sweep", api.CodeBadRequest, fmt.Errorf("spec %d: %w", i, err))
			return
		}
		specs = append(specs, expanded...)
	}
	hops := parseHops(r)
	cs := s.cluster.Load()
	if cs != nil && hops > 0 {
		cs.fabric.NoteServedForwarded()
	}

	// runAll fans the expanded specs out — sharded across the ring when
	// cluster mode is on, straight through the fair dispatcher otherwise —
	// and reports each outcome through emit exactly once. Callbacks are
	// serialized in both paths.
	runAll := func(emit func(i int, res sim.Result, err error)) error {
		if cs == nil {
			return s.runner.SweepEach(ownerCtx(r, sweepWeight), specs, emit)
		}
		return s.sweepCluster(cs, r, specs, hops, emit)
	}

	if s.streaming(req, r) {
		s.streamSweep(w, r, specs, runAll)
		return
	}
	// Buffered mode still fans out through the fair dispatcher under the
	// request context: a client that gives up sheds its queued specs (the
	// backpressure point of admission control) while specs already
	// simulating complete detached and stay memoized for the next caller.
	results := make([]api.RunResponse, len(specs))
	err := runAll(func(i int, res sim.Result, err error) {
		if err == nil {
			results[i] = api.RunResponse{Spec: api.SpecOf(specs[i]), Result: res}
		}
	})
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, "sweep", api.CodeInternal, err)
		return
	}
	s.writeJSON(w, "sweep", http.StatusOK, api.SweepResponse{Count: len(specs), Results: results})
}

// sweepCluster shards one expanded sweep across the ring: each peer-owned
// group of specs forwards as one buffered sub-sweep (in parallel, with the
// usual down-peer degradation to local execution), while locally-owned
// specs run through this node's dispatcher. emit is serialized internally.
func (s *Server) sweepCluster(cs *clusterState, r *http.Request, specs []experiments.Spec, hops int, emit func(i int, res sim.Result, err error)) error {
	f := cs.fabric
	atLimit := hops >= f.HopLimit()
	groups := make(map[string][]int)
	var localIdx []int
	for i, sp := range specs {
		owner, local := f.Owner(sp.CanonicalKey())
		switch {
		case local:
			localIdx = append(localIdx, i)
		case atLimit:
			f.NoteHopLimit()
			localIdx = append(localIdx, i)
		default:
			groups[owner] = append(groups[owner], i)
		}
	}

	var mu sync.Mutex // serializes emit across the per-owner goroutines
	safeEmit := func(i int, res sim.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		emit(i, res, err)
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	recordErr := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	runLocally := func(idx []int) {
		group := make([]experiments.Spec, len(idx))
		for j, i := range idx {
			group[j] = specs[i]
		}
		err := s.runner.SweepEach(ownerCtx(r, sweepWeight), group, func(j int, res sim.Result, err error) {
			safeEmit(idx[j], res, err)
		})
		if err != nil {
			recordErr(err)
		}
	}

	clientID := r.Header.Get(api.HeaderClientID)
	noStream := false
	var wg sync.WaitGroup
	for addr, idx := range groups {
		wg.Add(1)
		go func(addr string, idx []int) {
			defer wg.Done()
			sub := api.SweepRequest{Stream: &noStream}
			for _, i := range idx {
				sub.Specs = append(sub.Specs, api.RequestOf(specs[i]))
			}
			var out api.SweepResponse
			apiErr, ok := f.Forward(r.Context(), addr, "/"+api.Version+"/sweep", hops, clientID, sub, &out)
			switch {
			case ok && apiErr == nil:
				for j, i := range idx {
					// A zero entry means the peer's sub-sweep dropped the
					// spec (its per-spec failure mode in buffered mode).
					if j < len(out.Results) && out.Results[j].Spec.Bench != "" {
						safeEmit(i, out.Results[j].Result, nil)
					} else {
						safeEmit(i, sim.Result{}, fmt.Errorf("peer %s failed spec %d", addr, i))
					}
				}
			case ok:
				// Clean API error from a healthy peer (e.g. its admission
				// gate): propagate per spec rather than bypassing it.
				for _, i := range idx {
					safeEmit(i, sim.Result{}, apiErr)
				}
			default:
				// Owner down: degrade this group to local execution.
				runLocally(idx)
			}
		}(addr, idx)
	}
	if len(localIdx) > 0 {
		runLocally(localIdx)
	}
	wg.Wait()
	return firstErr
}

// streamSweep answers a sweep as NDJSON: one StreamLine per spec as its
// simulation completes, then a StreamTrailer. Time-to-first-result is
// bounded by one simulation, not the whole fan-out, and a slow consumer
// never holds worker slots — lines buffer in the HTTP layer while the
// dispatcher keeps draining jobs.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, specs []experiments.Spec, runAll func(emit func(i int, res sim.Result, err error)) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit the headers so the client sees the stream open
	}
	enc := json.NewEncoder(w)
	count := 0
	// Both runAll paths serialize callbacks, so the encoder and flusher
	// are never written concurrently.
	err := runAll(func(i int, res sim.Result, err error) {
		line := api.StreamLine{Index: i, Spec: api.SpecOf(specs[i])}
		if err != nil {
			line.Error = err.Error()
		} else {
			line.Result = &res
			count++
		}
		if enc.Encode(line) != nil {
			// Client gone surfaces via ctx below; still count the lost body.
			s.noteEncodeFailure("sweep")
		}
		if fl != nil {
			fl.Flush()
		}
	})
	if r.Context().Err() != nil {
		// Client gone mid-stream: queued specs were shed, in-flight
		// simulations finish detached into the memo; nothing to write.
		return
	}
	trailer := api.StreamTrailer{Done: true, Count: count}
	if err != nil {
		trailer.Error = err.Error()
	}
	if enc.Encode(trailer) != nil {
		s.noteEncodeFailure("sweep")
	}
	if fl != nil {
		fl.Flush()
	}
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.figureReqs.Add(1)
	name := r.PathValue("name")
	fr, err := await(r.Context(), func() (experiments.FigureResult, error) {
		return s.runner.ByName(name)
	})
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			return
		case strings.Contains(err.Error(), "unknown figure"):
			s.writeError(w, "figures", api.CodeNotFound, err)
		default:
			s.writeError(w, "figures", api.CodeInternal, err)
		}
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fr.Render())
		return
	}
	s.writeJSON(w, "figures", http.StatusOK, api.FigureResponse{Name: name, ID: fr.ID, Title: fr.Title, Rendered: fr.Render()})
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	s.listReqs.Add(1)
	ds := core.Descriptors()
	out := make([]api.SchemeInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, api.SchemeInfo{Name: d.Name, Doc: d.Doc, Aliases: d.Aliases})
	}
	s.writeJSON(w, "listings", http.StatusOK, api.SchemesResponse{Schemes: out})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.listReqs.Add(1)
	s.writeJSON(w, "listings", http.StatusOK, api.BenchmarksResponse{Benchmarks: workload.BenchmarkNames})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.healthReqs.Add(1)
	s.writeJSON(w, "healthz", http.StatusOK, api.HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleClusterStats serves this node's raw cluster counters — the block a
// peer's fleet rollup sums. 404 on single-node deployments.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	s.clusterReqs.Add(1)
	cs := s.cluster.Load()
	if cs == nil {
		s.writeAPIError(w, "cluster", api.Errorf(api.CodeNotFound, "cluster mode is off (no -peers)"))
		return
	}
	s.writeJSON(w, "cluster", http.StatusOK, cs.fabric.LocalStats(s.runner.Simulations()))
}

// MetricsSnapshot assembles the current metrics (also used by tests). The
// cluster block, when present, covers this node's ring view; the fleet
// rollup is filled in by handleMetrics (it polls peers).
func (s *Server) MetricsSnapshot() api.Metrics {
	rm := s.runner.MemoStats()
	var storeStats *store.Stats
	if s.runner.Store != nil {
		st := s.runner.Store.Stats()
		storeStats = &st
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m := api.Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests: map[string]int64{
			"run":      s.runReqs.Load(),
			"sweep":    s.sweepReqs.Load(),
			"figures":  s.figureReqs.Load(),
			"listings": s.listReqs.Load(),
			"healthz":  s.healthReqs.Load(),
			"metrics":  s.metricReqs.Load(),
			"cluster":  s.clusterReqs.Load(),
		},
		EncodeFailures: s.encodeFailures(),
		Simulations:    s.runner.Simulations(),
		InFlightSims:   rm.InFlight,
		ResultMemo:     rm,
		TraceMemo:      s.runner.TraceStats(),
		ResultStore:    storeStats,
		Checkpoints:    experiments.CheckpointCacheStats(),
		Speculation:    s.runner.SpeculationStats(),
		EpochSims:      experiments.EpochSimCacheStats(),
		Dispatch: api.DispatchMetrics{
			Admission: s.admission.Stats(),
			Queue:     s.runner.DispatchStats(),
		},
		Runtime: api.RuntimeMetrics{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			GCPauseTotalNs: ms.PauseTotalNs,
			NumGC:          ms.NumGC,
		},
	}
	if cs := s.cluster.Load(); cs != nil {
		m.Cluster = &api.ClusterMetrics{
			Self:     cs.fabric.Self(),
			HopLimit: cs.fabric.HopLimit(),
			Local:    cs.fabric.LocalStats(m.Simulations),
			Peers:    cs.fabric.PeerMetrics(),
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metricReqs.Add(1)
	m := s.MetricsSnapshot()
	if cs := s.cluster.Load(); cs != nil && m.Cluster != nil {
		m.Cluster.Fleet = cs.fabric.Rollup(r.Context(), m.Cluster.Local)
	}
	s.writeJSON(w, "metrics", http.StatusOK, m)
}
