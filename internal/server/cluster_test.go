package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"secureproc/internal/api"
	"secureproc/internal/experiments"
	"secureproc/internal/workload"
)

// newClusterPair boots two in-process nodes and wires them into one ring.
// The servers start first (their addresses are random ports), then each
// fabric is enabled with the real membership — the same order a test of a
// real fleet would use.
func newClusterPair(t *testing.T, cfg Config) (sa, sb *Server, tsa, tsb *httptest.Server) {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = testScale
	}
	var err error
	if sa, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	if sb, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	tsa = httptest.NewServer(sa)
	t.Cleanup(tsa.Close)
	tsb = httptest.NewServer(sb)
	t.Cleanup(tsb.Close)
	addrA := strings.TrimPrefix(tsa.URL, "http://")
	addrB := strings.TrimPrefix(tsb.URL, "http://")
	if err := sa.EnableCluster(ClusterConfig{Self: addrA, Peers: []string{addrB}}); err != nil {
		t.Fatal(err)
	}
	if err := sb.EnableCluster(ClusterConfig{Self: addrB, Peers: []string{addrA}}); err != nil {
		t.Fatal(err)
	}
	return sa, sb, tsa, tsb
}

// specOwner resolves which node of a pair owns the given run request.
func specOwner(t *testing.T, s *Server, body string) (addr string, local bool) {
	t.Helper()
	var rr api.RunRequest
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	specs, err := rr.Specs(false)
	if err != nil {
		t.Fatal(err)
	}
	return s.cluster.Load().fabric.Owner(specs[0].CanonicalKey())
}

// TestClusterExactlyOnceSharding is the tentpole contract: N concurrent
// identical requests against either peer simulate exactly once fleet-wide.
// The owner's memo bookkeeping proves it deterministically — every request
// beyond the first was either coalesced into the one in-flight simulation
// or answered from the completed memo entry.
func TestClusterExactlyOnceSharding(t *testing.T) {
	sa, sb, tsa, tsb := newClusterPair(t, Config{})
	body := `{"bench":"mcf","scheme":"snc-lru"}`

	const n = 8
	urls := []string{tsa.URL, tsb.URL}
	cycles := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, urls[i%2]+"/v1/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			var rr api.RunResponse
			if err := json.Unmarshal(b, &rr); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			cycles[i] = rr.Result.Cycles
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cycles[i] != cycles[0] {
			t.Errorf("request %d saw %d cycles, request 0 saw %d", i, cycles[i], cycles[0])
		}
	}

	simsA, simsB := sa.Runner().Simulations(), sb.Runner().Simulations()
	if simsA+simsB != 1 {
		t.Fatalf("fleet ran %d simulations (%d + %d) for %d identical requests, want exactly 1", simsA+simsB, simsA, simsB, n)
	}
	owner, other := sa, sb
	if simsB == 1 {
		owner, other = sb, sa
	}
	// Ring agreement: both nodes must name the node that simulated.
	ownerAddr := owner.cluster.Load().fabric.Self()
	if got, _ := specOwner(t, sa, body); got != ownerAddr {
		t.Errorf("node A routes the spec to %q but %q simulated it", got, ownerAddr)
	}
	if got, _ := specOwner(t, sb, body); got != ownerAddr {
		t.Errorf("node B routes the spec to %q but %q simulated it", got, ownerAddr)
	}
	// All n requests landed on the owner's memo: one miss, and every other
	// request either joined the in-flight simulation (coalesced) or hit the
	// completed entry.
	rm := owner.Runner().MemoStats()
	if rm.Misses != 1 {
		t.Errorf("owner memo misses = %d, want 1", rm.Misses)
	}
	if rm.Coalesced+rm.Hits != n-1 {
		t.Errorf("owner memo coalesced(%d) + hits(%d) = %d, want %d", rm.Coalesced, rm.Hits, rm.Coalesced+rm.Hits, n-1)
	}
	// The non-owner forwarded its half of the traffic and ran nothing.
	ns := other.cluster.Load().fabric.LocalStats(other.Runner().Simulations())
	if ns.Forwarded < 1 {
		t.Errorf("non-owner forwarded_total = %d, want >= 1", ns.Forwarded)
	}
	if ns.Simulations != 0 {
		t.Errorf("non-owner ran %d simulations, want 0", ns.Simulations)
	}
	os := owner.cluster.Load().fabric.LocalStats(owner.Runner().Simulations())
	if os.ServedForwarded < 1 {
		t.Errorf("owner served_forwarded_total = %d, want >= 1", os.ServedForwarded)
	}
}

// TestClusterSweepPartitionsAndRollsUp: one sweep against node A partitions
// its expanded specs across the ring — each node simulates exactly the
// specs it owns — and A's /metrics fleet rollup sums the whole fleet.
func TestClusterSweepPartitionsAndRollsUp(t *testing.T) {
	sa, sb, tsa, _ := newClusterPair(t, Config{Jobs: 4})

	resp, body := postJSON(t, tsa.URL+"/v1/sweep", `{"specs":[{"bench":"all","scheme":"snc-lru"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var sr api.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	n := len(workload.BenchmarkNames)
	if sr.Count != n || len(sr.Results) != n {
		t.Fatalf("sweep count %d / results %d, want %d", sr.Count, len(sr.Results), n)
	}
	for i, rr := range sr.Results {
		if rr.Result.Cycles == 0 {
			t.Errorf("result %d empty (spec %+v)", i, rr.Spec)
		}
	}

	// Each node must have simulated exactly the specs its ring arc owns.
	f := sa.cluster.Load().fabric
	wantA := 0
	for _, b := range workload.BenchmarkNames {
		if _, local := f.Owner(mustSpec(t, b).CanonicalKey()); local {
			wantA++
		}
	}
	simsA, simsB := sa.Runner().Simulations(), sb.Runner().Simulations()
	if simsA+simsB != int64(n) {
		t.Errorf("fleet ran %d simulations for %d distinct specs", simsA+simsB, n)
	}
	if simsA != int64(wantA) {
		t.Errorf("node A ran %d simulations but owns %d of the specs", simsA, wantA)
	}

	// The fleet rollup on A's /metrics sums both nodes.
	var m api.Metrics
	getJSON(t, tsa.URL+"/metrics", &m)
	if m.Cluster == nil {
		t.Fatal("/metrics missing cluster block in cluster mode")
	}
	if m.Cluster.Fleet == nil {
		t.Fatal("/metrics cluster block missing fleet rollup")
	}
	if m.Cluster.Fleet.Nodes != 2 {
		t.Errorf("rollup nodes = %d, want 2", m.Cluster.Fleet.Nodes)
	}
	if m.Cluster.Fleet.Simulations != int64(n) {
		t.Errorf("rollup simulations_total = %d, want %d", m.Cluster.Fleet.Simulations, n)
	}
	if len(m.Cluster.Peers) != 1 || !m.Cluster.Peers[0].Healthy {
		t.Errorf("peer metrics = %+v, want one healthy peer", m.Cluster.Peers)
	}
}

// mustSpec resolves a default spec for bench under snc-lru.
func mustSpec(t *testing.T, bench string) experiments.Spec {
	t.Helper()
	rr := api.RunRequest{Bench: bench, Scheme: "snc-lru"}
	specs, err := rr.Specs(false)
	if err != nil {
		t.Fatal(err)
	}
	return specs[0]
}

// TestClusterPeerDownFallsBackLocally: killing a peer degrades requests it
// owns to local execution — 200s, never failures — with the degradation
// visible in fallback_total, and the fleet rollup listing the dead peer as
// unreachable instead of failing the scrape.
func TestClusterPeerDownFallsBackLocally(t *testing.T) {
	sa, _, tsa, tsb := newClusterPair(t, Config{})

	// Find a spec node B owns, as seen from node A.
	var body string
	for _, b := range workload.BenchmarkNames {
		cand := fmt.Sprintf(`{"bench":%q,"scheme":"snc-lru"}`, b)
		if _, local := specOwner(t, sa, cand); !local {
			body = cand
			break
		}
	}
	if body == "" {
		t.Skip("ring handed every benchmark to node A; nothing to forward")
	}

	tsb.Close() // peer down

	resp, b := postJSON(t, tsa.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request with dead owner: status %d, want 200 (degraded, never failing): %s", resp.StatusCode, b)
	}
	if sims := sa.Runner().Simulations(); sims != 1 {
		t.Errorf("node A ran %d simulations, want 1 (local fallback)", sims)
	}
	var ns api.NodeStats
	getJSON(t, tsa.URL+"/v1/cluster/stats", &ns)
	if ns.Fallback < 1 {
		t.Errorf("fallback_total = %d, want >= 1", ns.Fallback)
	}
	if ns.Retries < 1 {
		t.Errorf("retries_total = %d, want >= 1 (one retry before giving up on the peer)", ns.Retries)
	}

	// The peer shows unhealthy and the rollup degrades instead of failing.
	var m api.Metrics
	getJSON(t, tsa.URL+"/metrics", &m)
	if m.Cluster == nil || len(m.Cluster.Peers) != 1 {
		t.Fatalf("cluster metrics = %+v", m.Cluster)
	}
	if m.Cluster.Peers[0].Healthy {
		t.Error("dead peer still reported healthy")
	}
	if m.Cluster.Fleet == nil || m.Cluster.Fleet.Nodes != 1 || len(m.Cluster.Fleet.Unreachable) != 1 {
		t.Errorf("fleet rollup = %+v, want 1 reachable node and 1 unreachable", m.Cluster.Fleet)
	}
}

// TestClusterHopLimitStopsForwardLoop: two nodes with deliberately
// inconsistent rings (each believes the other owns the key) would bounce a
// request forever; the hop-limit header must stop the loop and serve the
// request locally.
func TestClusterHopLimitStopsForwardLoop(t *testing.T) {
	var err error
	sa, errA := New(Config{Scale: testScale})
	sb, errB := New(Config{Scale: testScale})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	tsa := httptest.NewServer(sa)
	t.Cleanup(tsa.Close)
	tsb := httptest.NewServer(sb)
	t.Cleanup(tsb.Close)
	addrA := strings.TrimPrefix(tsa.URL, "http://")
	addrB := strings.TrimPrefix(tsb.URL, "http://")
	// Inconsistent membership: each node's "self" is a phantom address that
	// owns part of the ring but serves nothing, so keys the phantom does
	// not own are always believed to belong to the other, real node.
	const hopLimit = 2
	if err = sa.EnableCluster(ClusterConfig{Self: "phantom-a:1", Peers: []string{addrB}, HopLimit: hopLimit}); err != nil {
		t.Fatal(err)
	}
	if err = sb.EnableCluster(ClusterConfig{Self: "phantom-b:1", Peers: []string{addrA}, HopLimit: hopLimit}); err != nil {
		t.Fatal(err)
	}

	// Find a spec that loops: A routes it to B and B routes it back to A.
	fa, fb := sa.cluster.Load().fabric, sb.cluster.Load().fabric
	var body string
	for _, b := range workload.BenchmarkNames {
		for _, scheme := range []string{"snc-lru", "baseline", "xom", "otp-mac"} {
			rr := api.RunRequest{Bench: b, Scheme: scheme}
			specs, err := rr.Specs(false)
			if err != nil {
				continue
			}
			key := specs[0].CanonicalKey()
			if oa, _ := fa.Owner(key); oa != addrB {
				continue
			}
			if ob, _ := fb.Owner(key); ob != addrA {
				continue
			}
			body = fmt.Sprintf(`{"bench":%q,"scheme":%q}`, b, scheme)
			break
		}
		if body != "" {
			break
		}
	}
	if body == "" {
		t.Skip("no benchmark/scheme pair hashes into a forward loop with these ports")
	}

	resp, b := postJSON(t, tsa.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("looping request: status %d, want 200 served under the hop limit: %s", resp.StatusCode, b)
	}
	stopsA := fa.LocalStats(0).HopLimitStops
	stopsB := fb.LocalStats(0).HopLimitStops
	if stopsA+stopsB != 1 {
		t.Errorf("hop_limit_stops_total across the pair = %d, want exactly 1", stopsA+stopsB)
	}
	if sims := sa.Runner().Simulations() + sb.Runner().Simulations(); sims != 1 {
		t.Errorf("loop test ran %d simulations, want 1", sims)
	}
}

// TestClusterStatsOffline: without -peers the cluster endpoints degrade
// cleanly — /v1/cluster/stats is a 404 envelope and /metrics has no
// cluster block.
func TestClusterStatsOffline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/cluster/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cluster stats without cluster mode: status %d, want 404", resp.StatusCode)
	}
	var env api.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeNotFound {
		t.Errorf("error code %q, want %q", env.Err.Code, api.CodeNotFound)
	}
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/metrics", &raw)
	if _, ok := raw["cluster"]; ok {
		t.Error("/metrics carries a cluster block without cluster mode")
	}
}

// TestErrorEnvelopeShape pins the error contract on every path: stable
// machine-readable codes, the right statuses, and retry_after_s mirrored
// into the 429 body.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decode := func(b []byte) api.Envelope {
		t.Helper()
		var env api.Envelope
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("error body %q is not an envelope: %v", b, err)
		}
		return env
	}

	resp, b := postJSON(t, ts.URL+"/v1/run", `{"bench":`)
	if env := decode(b); resp.StatusCode != http.StatusBadRequest || env.Err.Code != api.CodeBadRequest {
		t.Errorf("bad body: status %d code %q, want 400 %q", resp.StatusCode, env.Err.Code, api.CodeBadRequest)
	}

	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = readAll(resp)
	if env := decode(b); resp.StatusCode != http.StatusNotFound || env.Err.Code != api.CodeNotFound {
		t.Errorf("unknown path: status %d code %q, want 404 %q", resp.StatusCode, env.Err.Code, api.CodeNotFound)
	}

	resp, err = http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = readAll(resp)
	if env := decode(b); resp.StatusCode != http.StatusMethodNotAllowed || env.Err.Code != api.CodeMethodNotAllowed {
		t.Errorf("wrong method: status %d code %q, want 405 %q", resp.StatusCode, env.Err.Code, api.CodeMethodNotAllowed)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("405 Allow = %q, want POST", allow)
	}

	resp, err = http.Get(ts.URL + "/v1/figures/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = readAll(resp)
	if env := decode(b); env.Err.Code != api.CodeNotFound {
		t.Errorf("unknown figure code %q, want %q", env.Err.Code, api.CodeNotFound)
	}

	// Version pinning: a forwarded request from an incompatible fleet
	// member fails loudly.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(`{"bench":"gzip","scheme":"snc-lru"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderAPIVersion, "v999")
	vr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = readAll(vr)
	if env := decode(b); vr.StatusCode != http.StatusBadRequest || env.Err.Code != api.CodeUnsupportedVersion {
		t.Errorf("version mismatch: status %d code %q, want 400 %q", vr.StatusCode, env.Err.Code, api.CodeUnsupportedVersion)
	}
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
