// Package server implements secsimd: a long-lived HTTP/JSON service over
// the experiment engine. Requests for the same configuration coalesce onto
// one simulation through the Runner's singleflight memo, cancelled
// requests detach promptly while the shared simulation runs on, and the
// memo's lifecycle counters are exported on /metrics.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"secureproc/internal/experiments"
	"secureproc/internal/sim"
)

// SpecRequest is the wire form of an experiments.Spec. Omitted fields
// default to the paper's standard configuration (64KB fully associative
// SNC, 256KB 4-way L2, 50-cycle crypto). In sweep requests, Bench may also
// be a comma-separated list or "all", expanding to one spec per benchmark.
type SpecRequest struct {
	Bench  string  `json:"bench"`
	Scheme string  `json:"scheme"`
	SNCKB  *int    `json:"snc_kb,omitempty"`
	SNCWay *int    `json:"snc_ways,omitempty"`
	L2KB   *int    `json:"l2_kb,omitempty"`
	L2Way  *int    `json:"l2_ways,omitempty"`
	Crypto *uint64 `json:"crypto_lat,omitempty"`
}

// SpecJSON is the canonical echo of a resolved spec in responses: every
// field populated, the scheme in canonical registry form.
type SpecJSON struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	SNCKB  int    `json:"snc_kb"`
	SNCWay int    `json:"snc_ways"`
	L2KB   int    `json:"l2_kb"`
	L2Way  int    `json:"l2_ways"`
	Crypto uint64 `json:"crypto_lat"`
}

func specJSON(s experiments.Spec) SpecJSON {
	return SpecJSON{
		Bench:  s.Bench,
		Scheme: s.Scheme.Canonical(),
		SNCKB:  s.SNCKB,
		SNCWay: s.SNCWays,
		L2KB:   s.L2KB,
		L2Way:  s.L2Ways,
		Crypto: s.CryptoLat,
	}
}

// specs resolves the request against the registries, expanding the bench
// field (one name in run requests, optionally a list or "all" in sweeps).
func (sr SpecRequest) specs(expandBench bool) ([]experiments.Spec, error) {
	if sr.Bench == "" {
		return nil, fmt.Errorf("spec needs a bench")
	}
	if sr.Scheme == "" {
		return nil, fmt.Errorf("spec needs a scheme")
	}
	benches, err := experiments.ExpandBenches(sr.Bench)
	if err != nil {
		return nil, err
	}
	if !expandBench && len(benches) != 1 {
		return nil, fmt.Errorf("run wants exactly one benchmark, got %d (%q); use /v1/sweep for lists", len(benches), sr.Bench)
	}
	ref, err := sim.SchemeByName(sr.Scheme)
	if err != nil {
		return nil, err
	}
	out := make([]experiments.Spec, 0, len(benches))
	for _, b := range benches {
		s := experiments.DefaultSpec(b, ref)
		if sr.SNCKB != nil {
			s.SNCKB = *sr.SNCKB
		}
		if sr.SNCWay != nil {
			s.SNCWays = *sr.SNCWay
		}
		if sr.L2KB != nil {
			s.L2KB = *sr.L2KB
		}
		if sr.L2Way != nil {
			s.L2Ways = *sr.L2Way
		}
		if sr.Crypto != nil {
			s.CryptoLat = *sr.Crypto
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// maxBodyBytes bounds request bodies; sweep lists are small JSON.
const maxBodyBytes = 1 << 20

// decodeJSON reads one JSON value from the request body, rejecting
// trailing garbage and unknown fields so typos ("benhc") fail loudly.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("bad request body: trailing data after JSON value")
	}
	return nil
}
