// Package server implements secsimd: a long-lived HTTP/JSON service over
// the experiment engine, speaking the versioned wire contract defined in
// internal/api. Requests for the same configuration coalesce onto one
// simulation through the Runner's singleflight memo, cancelled requests
// detach promptly while the shared simulation runs on, and the memo's
// lifecycle counters are exported on /metrics. With cluster mode enabled
// (-peers), each request is routed across the fleet on a consistent-hash
// ring so the memos partition exactly-once across instances.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxBodyBytes bounds request bodies; sweep lists are small JSON.
const maxBodyBytes = 1 << 20

// decodeJSON reads one JSON value from the request body, rejecting
// trailing garbage and unknown fields so typos ("benhc") fail loudly.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("bad request body: trailing data after JSON value")
	}
	return nil
}
