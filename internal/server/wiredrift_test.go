package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"secureproc/internal/api"
)

// Wire-drift guard: live response bodies must decode into the api structs
// with DisallowUnknownFields. A field added to a payload without a
// matching struct field (or a renamed JSON tag) fails here, before a
// mixed-version fleet or an external client trips over it.

func strictDecode(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		t.Fatalf("strict decode of %s into %T: %v\nbody: %s", url, dst, err, body)
	}
}

func TestWireDriftMetricsSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Exercise an endpoint first so the counters are populated.
	resp, b := postJSON(t, ts.URL+"/v1/run", `{"scheme":"baseline","bench":"gcc"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, b)
	}
	var m api.Metrics
	strictDecode(t, ts.URL+"/metrics", &m)
	if m.Requests["run"] != 1 {
		t.Errorf("requests_total[run] = %d, want 1", m.Requests["run"])
	}
}

func TestWireDriftMetricsAndStatsCluster(t *testing.T) {
	_, _, tsa, _ := newClusterPair(t, Config{})
	// The cluster block (ring view, peers, fleet rollup) is only present
	// in cluster mode; strict-decode it too.
	var m api.Metrics
	strictDecode(t, tsa.URL+"/metrics", &m)
	if m.Cluster == nil {
		t.Fatal("metrics: cluster block absent on a cluster node")
	}
	var ns api.NodeStats
	strictDecode(t, tsa.URL+"/v1/cluster/stats", &ns)
}
