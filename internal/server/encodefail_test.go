package server

import (
	"errors"
	"net/http"
	"testing"
)

// brokenWriter fails every body write — the shape of a client that hung
// up after the status line was committed.
type brokenWriter struct{ h http.Header }

func (b *brokenWriter) Header() http.Header {
	if b.h == nil {
		b.h = make(http.Header)
	}
	return b.h
}
func (b *brokenWriter) WriteHeader(int)           {}
func (b *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

func TestEncodeFailureCounted(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.writeJSON(&brokenWriter{}, "run", http.StatusOK, map[string]int{"x": 1})
	s.writeError(&brokenWriter{}, "sweep", "internal", errors.New("boom"))

	m := s.MetricsSnapshot()
	if m.EncodeFailures["run"] != 1 || m.EncodeFailures["sweep"] != 1 {
		t.Errorf("encode_failures_total = %v, want run=1 sweep=1", m.EncodeFailures)
	}

	// A healthy writer must not count.
	ok := &recordingWriter{}
	s.writeJSON(ok, "run", http.StatusOK, map[string]int{"x": 1})
	if got := s.MetricsSnapshot().EncodeFailures["run"]; got != 1 {
		t.Errorf("encode_failures_total[run] after clean write = %d, want still 1", got)
	}
}

// recordingWriter is a minimal working ResponseWriter.
type recordingWriter struct {
	h    http.Header
	body []byte
}

func (r *recordingWriter) Header() http.Header {
	if r.h == nil {
		r.h = make(http.Header)
	}
	return r.h
}
func (r *recordingWriter) WriteHeader(int) {}
func (r *recordingWriter) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}
