package dispatch

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(3)
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) on empty 3-slot budget = %d, want 2", got)
	}
	if got := b.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) with one slot left = %d, want 1", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on a full budget = %d, want 0", got)
	}
	b.Release(3)
	if b.Used() != 0 || b.Slack() != 3 {
		t.Fatalf("after release: used=%d slack=%d, want 0/3", b.Used(), b.Slack())
	}

	// Hold overcommits rather than blocking; TryAcquire must then grant
	// nothing until the holders drain below the cap.
	for i := 0; i < 5; i++ {
		b.Hold()
	}
	if b.Used() != 5 {
		t.Fatalf("after 5 holds on a 3-slot budget used=%d, want 5", b.Used())
	}
	if b.Slack() != 0 {
		t.Fatalf("overcommitted slack=%d, want 0", b.Slack())
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire while overcommitted = %d, want 0", got)
	}
	b.Release(5)

	if got := b.TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d, want 0", got)
	}
}

func TestDispatcherRunsEveryJob(t *testing.T) {
	d := NewDispatcher(NewBudget(4))
	const n = 200
	var mu sync.Mutex
	ran := make(map[int]int)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		owner := "a"
		if i%3 == 0 {
			owner = "b"
		}
		d.Submit(context.Background(), owner, 1+i%4, func(context.Context) {
			mu.Lock()
			ran[i]++
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if ran[i] != 1 {
			t.Fatalf("job %d ran %d times, want exactly once", i, ran[i])
		}
	}
	st := d.Stats()
	if st.Submitted != n || st.Completed != n || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats after drain = %+v, want submitted=completed=%d, queued=running=0", st, n)
	}
	if st.BudgetUsed != 0 {
		t.Errorf("budget used = %d after drain, want 0", st.BudgetUsed)
	}
}

// TestDispatcherWeightedFairness pins the starvation guarantee: with one
// worker slot and a bulk owner's queue already ten deep, a later-arriving
// interactive job must be scheduled second, not eleventh — and that
// out-of-arrival-order pick must be counted as a fairness preemption.
func TestDispatcherWeightedFairness(t *testing.T) {
	d := NewDispatcher(NewBudget(1))

	// Occupy the only slot so every subsequent Submit queues.
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	d.Submit(context.Background(), "gate", 1, func(context.Context) {
		close(started)
		<-gate
		wg.Done()
	})
	<-started

	var mu sync.Mutex
	var order []string
	record := func(owner string) func(context.Context) {
		return func(context.Context) {
			mu.Lock()
			order = append(order, owner)
			mu.Unlock()
			wg.Done()
		}
	}
	const bulkJobs = 10
	wg.Add(bulkJobs + 1)
	for i := 0; i < bulkJobs; i++ {
		d.Submit(context.Background(), "bulk", 1, record("bulk"))
	}
	d.Submit(context.Background(), "interactive", 4, record("interactive"))

	if st := d.Stats(); st.Queued != bulkJobs+1 || st.Owners != 2 {
		t.Fatalf("queued=%d owners=%d before release, want %d/2", st.Queued, st.Owners, bulkJobs+1)
	}
	close(gate)
	wg.Wait()

	if len(order) != bulkJobs+1 {
		t.Fatalf("ran %d jobs, want %d", len(order), bulkJobs+1)
	}
	// Strides from a fresh virtual time: bulk's head (oldest) runs first,
	// then the interactive job jumps the remaining nine bulk jobs.
	if order[0] != "bulk" || order[1] != "interactive" {
		t.Errorf("schedule order %v: interactive job did not run second", order)
	}
	if st := d.Stats(); st.FairnessPreemptions < 1 {
		t.Errorf("fairness preemptions = %d, want >= 1 (interactive jumped the bulk queue)", st.FairnessPreemptions)
	}
}

func TestAdmissionCapAndRelease(t *testing.T) {
	a := NewAdmission(2)
	rel1, ok := a.TryAdmit()
	if !ok {
		t.Fatal("first admit rejected")
	}
	rel2, ok := a.TryAdmit()
	if !ok {
		t.Fatal("second admit rejected")
	}
	if _, ok := a.TryAdmit(); ok {
		t.Fatal("third admit accepted beyond cap 2")
	}
	if ra := a.RetryAfter(); ra < time.Second || ra > time.Minute {
		t.Errorf("RetryAfter = %v, want within [1s, 60s]", ra)
	}
	rel1()
	rel1() // double release must be a no-op, not a freed slot
	if st := a.Stats(); st.InFlight != 1 {
		t.Fatalf("in-flight after one release (double-called) = %d, want 1", st.InFlight)
	}
	if _, ok := a.TryAdmit(); !ok {
		t.Fatal("admit after release rejected")
	}
	rel2()
	st := a.Stats()
	if st.Cap != 2 || st.Admitted != 3 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want cap=2 admitted=3 rejected=1", st)
	}
}

func TestAdmissionUnbounded(t *testing.T) {
	a := NewAdmission(0)
	for i := 0; i < 100; i++ {
		if _, ok := a.TryAdmit(); !ok {
			t.Fatalf("unbounded gate rejected admit %d", i)
		}
	}
	if st := a.Stats(); st.Rejected != 0 || st.InFlight != 100 {
		t.Errorf("stats = %+v, want rejected=0 in_flight=100", st)
	}
}

func TestOwnerContext(t *testing.T) {
	if o, w := OwnerFromContext(context.Background()); o != "" || w != 1 {
		t.Errorf("untagged context = (%q, %d), want (\"\", 1)", o, w)
	}
	ctx := WithOwner(context.Background(), "client-7", 4)
	if o, w := OwnerFromContext(ctx); o != "client-7" || w != 4 {
		t.Errorf("tagged context = (%q, %d), want (client-7, 4)", o, w)
	}
	if _, w := OwnerFromContext(WithOwner(context.Background(), "x", -3)); w != 1 {
		t.Errorf("weight %d, want sub-1 weights clamped to 1", w)
	}
}
