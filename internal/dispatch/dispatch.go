// Package dispatch is the execution layer under every simulation the
// process runs: one shared worker budget, a weighted-fair queue over
// request owners, and admission control for the long-lived service.
//
// Before this package the concurrency machinery was smeared across four
// layers — the experiment pool's goroutine fan-out, the lock-free borrow
// seam epoch-parallel simulation drew idle slots from, the server's
// detach/await handlers, and the daemon's drain logic — so no single
// place could admit, order, or shed load. dispatch centralizes the three
// decisions:
//
//   - Budget: how many workers exist, who holds one right now, and how
//     much slack is left for a simulation that wants to go wide
//     (sim.EpochSim draws its extra epoch workers from here).
//   - Dispatcher: which queued job runs next. Jobs are tagged with an
//     owner; owners share the budget by stride scheduling (an owner's
//     virtual "pass" advances inversely to its weight each time it runs),
//     so a bulk sweep enqueueing hundreds of jobs cannot starve an
//     interactive caller enqueueing one.
//   - Admission: how many requests are allowed to hold queue space at
//     all. Beyond the cap, callers are rejected immediately (the HTTP
//     layer turns that into 429 + Retry-After) instead of queueing
//     unboundedly.
//
// The batch path (figure sweeps, the CLI with one worker) never
// constructs a Dispatcher and pays only two atomic counters — the perf
// harness gates that the golden figure sweep costs the same as before
// the dispatch layer existed.
package dispatch

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Budget is the shared worker-slot ledger. Two kinds of users coexist:
//
//   - Hold marks a worker as busy unconditionally (a caller that will run
//     regardless, like a direct library Run); used may exceed the cap,
//     which simply leaves no slack for anyone else.
//   - TryAcquire claims slots only while used < cap and never blocks —
//     the dispatcher claims one slot per running job this way, and
//     epoch-parallel simulation claims its extra workers this way.
//
// The zero value is usable after SetCap.
type Budget struct {
	capv atomic.Int64
	used atomic.Int64
}

// NewBudget returns a budget with n worker slots.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.SetCap(n)
	return b
}

// SetCap sets the number of worker slots. Safe to call concurrently;
// shrinking below the currently-used count just leaves zero slack until
// holders release.
func (b *Budget) SetCap(n int) { b.capv.Store(int64(n)) }

// Cap returns the slot count.
func (b *Budget) Cap() int { return int(b.capv.Load()) }

// Used returns the number of slots currently held (may exceed Cap when
// unconditional holders overcommit).
func (b *Budget) Used() int { return int(b.used.Load()) }

// Slack returns the number of idle slots (never negative).
func (b *Budget) Slack() int {
	s := b.capv.Load() - b.used.Load()
	if s < 0 {
		return 0
	}
	return int(s)
}

// Hold marks one worker busy unconditionally. Pair with Release(1).
func (b *Budget) Hold() { b.used.Add(1) }

// TryAcquire claims up to want idle slots and returns how many it got —
// possibly zero. It never blocks and never overcommits: grants stop at
// the cap, so no interleaving of holders and acquirers can oversubscribe
// through this path.
func (b *Budget) TryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := b.used.Load()
		avail := b.capv.Load() - cur
		if avail <= 0 {
			return 0
		}
		n := int64(want)
		if n > avail {
			n = avail
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
}

// Release returns n slots claimed by Hold or TryAcquire.
func (b *Budget) Release(n int) {
	if n > 0 {
		b.used.Add(int64(-n))
	}
}

// ownerKey carries the fairness tag through a context.
type ownerKey struct{}

type ownerTag struct {
	owner  string
	weight int
}

// WithOwner tags ctx with a fairness owner and weight for jobs submitted
// under it. Higher weight means a larger share of the worker budget when
// owners compete (an interactive endpoint typically tags a higher weight
// than a bulk one). Weight < 1 is treated as 1.
func WithOwner(ctx context.Context, owner string, weight int) context.Context {
	if weight < 1 {
		weight = 1
	}
	return context.WithValue(ctx, ownerKey{}, ownerTag{owner, weight})
}

// OwnerFromContext reads the fairness tag; untagged contexts share the
// anonymous owner "" at weight 1.
func OwnerFromContext(ctx context.Context) (owner string, weight int) {
	if t, ok := ctx.Value(ownerKey{}).(ownerTag); ok {
		return t.owner, t.weight
	}
	return "", 1
}

// strideBase is the numerator of the per-job stride: an owner's pass
// advances by strideBase/weight per scheduled job, so a weight-4 owner is
// picked four times as often as a weight-1 owner under contention.
const strideBase = float64(1 << 16)

// job is one queued unit of work.
type job struct {
	ctx    context.Context
	run    func(context.Context)
	weight int
	seq    uint64 // global arrival order, for preemption accounting
	next   *job
}

// ownerQ is one owner's FIFO plus its stride-scheduling pass.
type ownerQ struct {
	name       string
	pass       float64
	head, tail *job
	len        int
}

// QueueStats is a point-in-time snapshot of the dispatcher, exported for
// diagnostics and the secsimd /metrics endpoint.
type QueueStats struct {
	// Queued is the number of jobs waiting for a worker slot.
	Queued int `json:"queued"`
	// Running is the number of jobs currently holding a slot.
	Running int `json:"running"`
	// Owners is the number of owners with queued jobs.
	Owners int `json:"owners"`
	// Submitted and Completed count jobs over the dispatcher's lifetime.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	// FairnessPreemptions counts scheduling decisions that ran a job ahead
	// of an earlier-arrived job from another owner — the weighted-fair
	// queue visibly overriding FIFO order.
	FairnessPreemptions int64 `json:"fairness_preemptions"`
	// BudgetCap and BudgetUsed snapshot the shared worker budget.
	BudgetCap  int `json:"budget_cap"`
	BudgetUsed int `json:"budget_used"`
}

// Dispatcher runs submitted jobs on the shared budget in weighted-fair
// owner order. It owns no goroutines of its own: scheduling decisions are
// made on Submit and on job completion, and each running job is one
// goroutine holding one budget slot.
type Dispatcher struct {
	budget *Budget

	mu        sync.Mutex
	owners    map[string]*ownerQ
	order     []*ownerQ // stable scan order for deterministic picks
	queued    int
	running   int
	seq       uint64
	virt      float64 // pass floor for owners entering the queue
	submitted int64
	completed int64
	preempted int64
}

// NewDispatcher builds a dispatcher over the shared budget.
func NewDispatcher(b *Budget) *Dispatcher {
	return &Dispatcher{budget: b, owners: make(map[string]*ownerQ)}
}

// Budget exposes the shared worker budget.
func (d *Dispatcher) Budget() *Budget { return d.budget }

// Submit enqueues run under the owner's fairness queue and starts it as
// soon as the weighted-fair order and the worker budget allow. run
// receives ctx and is always called exactly once, even after ctx is
// cancelled — cancellation shedding is the job's responsibility (check
// ctx.Err() first), which keeps completion callbacks reliable.
func (d *Dispatcher) Submit(ctx context.Context, owner string, weight int, run func(context.Context)) {
	if weight < 1 {
		weight = 1
	}
	d.mu.Lock()
	oq := d.owners[owner]
	if oq == nil {
		// A newcomer (or an owner whose queue drained) starts at the
		// current virtual-time floor: it gets its fair share from now on
		// but no credit for the time it was idle.
		oq = &ownerQ{name: owner, pass: d.virt}
		d.owners[owner] = oq
		d.order = append(d.order, oq)
	}
	j := &job{ctx: ctx, run: run, weight: weight, seq: d.seq}
	d.seq++
	if oq.tail != nil {
		oq.tail.next = j
	} else {
		oq.head = j
	}
	oq.tail = j
	oq.len++
	d.queued++
	d.submitted++
	d.kick()
	d.mu.Unlock()
}

// kick starts queued jobs while the budget grants slots. Called with
// d.mu held.
func (d *Dispatcher) kick() {
	for d.queued > 0 {
		if d.budget.TryAcquire(1) != 1 {
			return
		}
		j := d.pick()
		d.running++
		go d.exec(j)
	}
}

// pick pops the head job of the owner with the smallest pass (ties broken
// by earliest-arrived head, then owner name, so the choice is
// deterministic), advances that owner's pass by its stride, and counts a
// fairness preemption when the pick jumps an earlier-arrived job from
// another owner. Called with d.mu held and d.queued > 0.
func (d *Dispatcher) pick() *job {
	var best *ownerQ
	var oldest uint64
	first := true
	for _, oq := range d.order {
		if oq.head == nil {
			continue
		}
		if first || oq.head.seq < oldest {
			oldest = oq.head.seq
			first = false
		}
		if best == nil || oq.pass < best.pass ||
			(oq.pass == best.pass && oq.head.seq < best.head.seq) {
			best = oq
		}
	}
	j := best.head
	best.head = j.next
	if best.head == nil {
		best.tail = nil
	}
	j.next = nil
	best.len--
	d.queued--
	if j.seq != oldest {
		d.preempted++
	}
	best.pass += strideBase / float64(j.weight)
	if best.pass > d.virt {
		d.virt = best.pass
	}
	if best.head == nil {
		d.dropOwner(best)
	}
	return j
}

// dropOwner removes a drained owner queue so the owner map cannot grow
// without bound under per-client tags; a returning owner re-enters at the
// current virtual-time floor. Called with d.mu held.
func (d *Dispatcher) dropOwner(oq *ownerQ) {
	delete(d.owners, oq.name)
	for i, o := range d.order {
		if o == oq {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// exec runs one job on its own goroutine, then returns the slot and
// schedules successors. The slot is released even if the job panics (jobs
// are expected to contain their own panics; the release keeps a
// propagating one from also strangling the budget).
func (d *Dispatcher) exec(j *job) {
	defer func() {
		d.mu.Lock()
		d.running--
		d.completed++
		d.budget.Release(1)
		d.kick()
		d.mu.Unlock()
	}()
	j.run(j.ctx)
}

// OwnerQueued reports how many jobs the named owner has waiting for a
// worker slot right now — the depth behind that owner's honest Retry-After
// estimate (a fair-queued client waits behind its own queue, not behind
// the global backlog).
func (d *Dispatcher) OwnerQueued(owner string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if oq := d.owners[owner]; oq != nil {
		return oq.len
	}
	return 0
}

// Stats snapshots the dispatcher counters.
func (d *Dispatcher) Stats() QueueStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return QueueStats{
		Queued:              d.queued,
		Running:             d.running,
		Owners:              len(d.owners),
		Submitted:           d.submitted,
		Completed:           d.completed,
		FairnessPreemptions: d.preempted,
		BudgetCap:           d.budget.Cap(),
		BudgetUsed:          d.budget.Used(),
	}
}

// AdmissionStats is a point-in-time snapshot of an Admission gate.
type AdmissionStats struct {
	// Cap is the configured bound (0 = unbounded).
	Cap int `json:"cap"`
	// InFlight is the number of currently admitted requests.
	InFlight int `json:"in_flight"`
	// Admitted and Rejected count decisions over the gate's lifetime.
	Admitted int64 `json:"admitted_total"`
	Rejected int64 `json:"rejected_total"`
}

// Admission bounds the number of concurrently admitted requests —
// distinct from worker slots, which bound concurrently *executing*
// simulations. With W workers and A admitted requests, at most A requests
// hold queue space in the dispatcher; request A+1 is rejected immediately
// so queues cannot grow unboundedly under a traffic burst.
type Admission struct {
	cap      int64
	inflight atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	// avgNs is a racily-updated EWMA of admitted-request durations,
	// feeding the Retry-After estimate. Exactness is irrelevant; the
	// header just needs to be in the right ballpark.
	avgNs atomic.Int64
}

// NewAdmission builds a gate admitting at most cap concurrent requests
// (cap <= 0 = unbounded).
func NewAdmission(cap int) *Admission {
	if cap < 0 {
		cap = 0
	}
	return &Admission{cap: int64(cap)}
}

// TryAdmit admits one request. On success it returns a release function
// (call exactly once, when the request finishes) and true; when the gate
// is full it returns (nil, false) and counts the rejection.
func (a *Admission) TryAdmit() (release func(), ok bool) {
	for {
		cur := a.inflight.Load()
		if a.cap > 0 && cur >= a.cap {
			a.rejected.Add(1)
			return nil, false
		}
		if a.inflight.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	a.admitted.Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			took := time.Since(start).Nanoseconds()
			old := a.avgNs.Load()
			if old == 0 {
				a.avgNs.Store(took)
			} else {
				a.avgNs.Store(old + (took-old)/8)
			}
		})
	}, true
}

// RetryAfter estimates how long a rejected caller should wait before
// retrying: the observed average request duration scaled by how many
// admission "generations" are ahead of it, clamped to [1s, 60s]. With no
// history yet, one second.
func (a *Admission) RetryAfter() time.Duration {
	gens := int64(1)
	if a.cap > 0 {
		gens = (a.inflight.Load() + a.cap - 1) / a.cap
	}
	return a.scaleEstimate(gens)
}

// RetryAfterFor is the per-owner estimate: the observed average request
// duration scaled by the rejected owner's own queue depth (how many of
// *its* jobs wait for a worker), clamped to [1s, 60s]. Under weighted-fair
// scheduling an owner drains its own queue at its fair rate regardless of
// the global backlog, so depth-of-own-queue is the honest multiplier where
// the global generation count would over- or under-shoot.
func (a *Admission) RetryAfterFor(ownerDepth int) time.Duration {
	return a.scaleEstimate(int64(ownerDepth))
}

func (a *Admission) scaleEstimate(n int64) time.Duration {
	avg := time.Duration(a.avgNs.Load())
	if avg <= 0 {
		avg = time.Second
	}
	if n < 1 {
		n = 1
	}
	est := avg * time.Duration(n)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Cap:      int(a.cap),
		InFlight: int(a.inflight.Load()),
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
	}
}
