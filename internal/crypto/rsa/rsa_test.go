package rsa

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// detRand adapts math/rand to io.Reader for deterministic key generation in
// tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newRand(seed int64) detRand { return detRand{rand.New(rand.NewSource(seed))} }

func TestGenerateKeySizes(t *testing.T) {
	for _, bits := range []int{256, 384, 512} {
		key, err := GenerateKey(newRand(int64(bits)), bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if key.N.BitLen() != bits {
			t.Errorf("bits=%d: modulus is %d bits", bits, key.N.BitLen())
		}
		// Verify e*d == 1 works operationally via a round trip below.
		if key.D.Cmp(big.NewInt(1)) <= 0 {
			t.Errorf("bits=%d: implausible private exponent", bits)
		}
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(newRand(1), 128); err == nil {
		t.Error("expected error for 128-bit modulus")
	}
}

func TestWrapUnwrapSymmetricKey(t *testing.T) {
	// The exact scenario from paper Section 2.1: wrap a DES key Ks under
	// the processor public key; unwrap inside the processor.
	rng := newRand(42)
	key, err := GenerateKey(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	ks := []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}
	ct, err := key.PublicKey.Encrypt(rng, ks)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, ks) {
		t.Error("ciphertext contains the wrapped key in the clear")
	}
	back, err := key.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, ks) {
		t.Errorf("unwrap = %x, want %x", back, ks)
	}
}

func TestEncryptRandomized(t *testing.T) {
	rng := newRand(7)
	key, err := GenerateKey(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	c1, err1 := key.PublicKey.Encrypt(rng, msg)
	c2, err2 := key.PublicKey.Encrypt(rng, msg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions of the same message are identical (padding not randomized)")
	}
}

func TestMessageTooLong(t *testing.T) {
	rng := newRand(9)
	key, err := GenerateKey(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64)
	if _, err := key.PublicKey.Encrypt(rng, big); err == nil {
		t.Error("expected error for oversized message")
	}
}

func TestDecryptRejectsTampered(t *testing.T) {
	rng := newRand(11)
	key, err := GenerateKey(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := key.PublicKey.Encrypt(rng, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Most random tamperings destroy the 0x00 0x02 framing.
	rejected := 0
	for i := 0; i < 20; i++ {
		bad := append([]byte(nil), ct...)
		bad[i%len(bad)] ^= 0xff
		if _, err := key.Decrypt(bad); err != nil {
			rejected++
		}
	}
	if rejected < 15 {
		t.Errorf("only %d/20 tampered ciphertexts rejected", rejected)
	}
}

func TestDecryptOutOfRange(t *testing.T) {
	key, err := GenerateKey(newRand(13), 256)
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 64)
	for i := range huge {
		huge[i] = 0xff
	}
	if _, err := key.Decrypt(huge); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestRoundTripVariousLengths(t *testing.T) {
	rng := newRand(17)
	key, err := GenerateKey(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 32; n += 8 {
		msg := make([]byte, n)
		rng.Read(msg)
		ct, err := key.PublicKey.Encrypt(rng, msg)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		back, err := key.Decrypt(ct)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !bytes.Equal(back, msg) {
			t.Fatalf("len %d: round trip mismatch", n)
		}
	}
}
