// Package rsa implements textbook RSA key generation and encryption on top
// of math/big, sized for simulation use.
//
// The paper's software-distribution model (Section 2.1): the vendor encrypts
// the program with a fast symmetric key Ks, then encrypts Ks under the
// processor's public key Kp and ships both. The processor recovers Ks with
// its private key Kp^-1 once at program start. This package provides exactly
// that key-wrapping primitive for the end-to-end demos; it deliberately uses
// simple PKCS#1-v1.5-style random padding and is NOT for production use.
package rsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PublicKey is an RSA public key (the processor's burned-in Kp).
type PublicKey struct {
	N *big.Int // modulus
	E *big.Int // public exponent
}

// PrivateKey is an RSA private key (the processor's internal Kp^-1).
type PrivateKey struct {
	PublicKey
	D *big.Int // private exponent
}

var errShortModulus = errors.New("rsa: modulus too small for message")

// GenerateKey creates an RSA key pair with a modulus of the given bit size
// (>= 256) using the supplied randomness source.
func GenerateKey(rand io.Reader, bits int) (*PrivateKey, error) {
	if bits < 256 {
		return nil, fmt.Errorf("rsa: modulus size %d too small (min 256)", bits)
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempts := 0; attempts < 100; attempts++ {
		p, err := randPrime(rand, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := randPrime(rand, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int)
		if d.ModInverse(e, phi) == nil {
			continue // e not invertible mod phi; rare, retry
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: e}, D: d}, nil
	}
	return nil, errors.New("rsa: key generation failed after 100 attempts")
}

func randPrime(rand io.Reader, bits int) (*big.Int, error) {
	bytes := make([]byte, (bits+7)/8)
	for {
		if _, err := io.ReadFull(rand, bytes); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(bytes)
		// Force the top bit (so products reach the target size) and oddness.
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// maxPayload returns the largest message the key can wrap with the 11-byte
// minimum padding overhead.
func (pub *PublicKey) maxPayload() int {
	return (pub.N.BitLen()+7)/8 - 11
}

// Encrypt wraps msg (e.g. a symmetric program key) under the public key with
// randomized type-2 padding: 0x00 0x02 <nonzero random> 0x00 msg.
func (pub *PublicKey) Encrypt(rand io.Reader, msg []byte) ([]byte, error) {
	k := (pub.N.BitLen() + 7) / 8
	if len(msg) > pub.maxPayload() {
		return nil, errShortModulus
	}
	em := make([]byte, k)
	em[1] = 2
	ps := em[2 : k-len(msg)-1]
	if err := fillNonZero(rand, ps); err != nil {
		return nil, err
	}
	em[k-len(msg)-1] = 0
	copy(em[k-len(msg):], msg)
	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Exp(m, pub.E, pub.N)
	out := make([]byte, k)
	c.FillBytes(out)
	return out, nil
}

func fillNonZero(rand io.Reader, p []byte) error {
	if _, err := io.ReadFull(rand, p); err != nil {
		return err
	}
	for i := range p {
		for p[i] == 0 {
			var b [1]byte
			if _, err := io.ReadFull(rand, b[:]); err != nil {
				return err
			}
			p[i] = b[0]
		}
	}
	return nil
}

// Decrypt unwraps a ciphertext produced by Encrypt.
func (priv *PrivateKey) Decrypt(ct []byte) ([]byte, error) {
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, errors.New("rsa: ciphertext out of range")
	}
	m := new(big.Int).Exp(c, priv.D, priv.N)
	k := (priv.N.BitLen() + 7) / 8
	em := make([]byte, k)
	m.FillBytes(em)
	if em[0] != 0 || em[1] != 2 {
		return nil, errors.New("rsa: invalid padding")
	}
	// Find the 0x00 separator after the random pad.
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0 {
			sep = i
			break
		}
	}
	if sep < 10 { // at least 8 bytes of random pad required
		return nil, errors.New("rsa: invalid padding")
	}
	return em[sep+1:], nil
}
