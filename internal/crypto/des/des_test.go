package des

import (
	stddes "crypto/des"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// fips46KAT are the classic known-answer vectors for DES.
var fips46KAT = []struct {
	key, plain, cipher uint64
}{
	// The canonical "Ronald Rivest" chain start and other published vectors.
	{0x0101010101010101, 0x8000000000000000, 0x95F8A5E5DD31D900},
	{0x0101010101010101, 0x4000000000000000, 0xDD7F121CA5015619},
	{0x0101010101010101, 0x2000000000000000, 0x2E8653104F3834EA},
	{0x8001010101010101, 0x0000000000000000, 0x95A8D72813DAA94D},
	{0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405},
	{0x0E329232EA6D0D73, 0x8787878787878787, 0x0000000000000000},
}

func TestKnownAnswerVectors(t *testing.T) {
	for i, v := range fips46KAT {
		var key, pt [8]byte
		binary.BigEndian.PutUint64(key[:], v.key)
		binary.BigEndian.PutUint64(pt[:], v.plain)
		c, err := NewCipher(key[:])
		if err != nil {
			t.Fatalf("vector %d: NewCipher: %v", i, err)
		}
		got := c.EncryptBlock(v.plain)
		if got != v.cipher {
			t.Errorf("vector %d: Encrypt(%016x) = %016x, want %016x", i, v.plain, got, v.cipher)
		}
		if back := c.DecryptBlock(got); back != v.plain {
			t.Errorf("vector %d: Decrypt round trip = %016x, want %016x", i, back, v.plain)
		}
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 1, 7, 9, 16} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher with %d-byte key: want error, got nil", n)
		}
	}
	if got := KeySizeError(7).Error(); got == "" {
		t.Error("KeySizeError message is empty")
	}
}

// TestAgainstStdlib cross-validates the from-scratch implementation against
// crypto/des over random keys and blocks.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 8)
		got := make([]byte, 8)
		ref.Encrypt(want, pt)
		ours.Encrypt(got, pt)
		if string(got) != string(want) {
			t.Fatalf("iter %d: key=%x pt=%x: ours=%x stdlib=%x", i, key, pt, got, want)
		}
		back := make([]byte, 8)
		ours.Decrypt(back, got)
		if string(back) != string(pt) {
			t.Fatalf("iter %d: decrypt mismatch: got %x want %x", i, back, pt)
		}
	}
}

// TestEncryptDecryptInverse is a property-based check that Decrypt inverts
// Encrypt for arbitrary keys and blocks.
func TestEncryptDecryptInverse(t *testing.T) {
	f := func(key, block uint64) bool {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		c, err := NewCipher(kb[:])
		if err != nil {
			return false
		}
		return c.DecryptBlock(c.EncryptBlock(block)) == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestComplementationProperty verifies the DES complementation property
// E_k(p) = x  =>  E_~k(~p) = ~x, a strong structural check of the whole
// round pipeline.
func TestComplementationProperty(t *testing.T) {
	f := func(key, block uint64) bool {
		var kb, nkb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		binary.BigEndian.PutUint64(nkb[:], ^key)
		c1, err1 := NewCipher(kb[:])
		c2, err2 := NewCipher(nkb[:])
		if err1 != nil || err2 != nil {
			return false
		}
		return c2.EncryptBlock(^block) == ^c1.EncryptBlock(block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParityBitsIgnored verifies that flipping any parity (lsb of each key
// byte) bit leaves the key schedule unchanged.
func TestParityBitsIgnored(t *testing.T) {
	base := []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}
	c0, err := NewCipher(base)
	if err != nil {
		t.Fatal(err)
	}
	want := c0.EncryptBlock(0x0123456789ABCDEF)
	for i := 0; i < 8; i++ {
		k := append([]byte(nil), base...)
		k[i] ^= 1
		c, err := NewCipher(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.EncryptBlock(0x0123456789ABCDEF); got != want {
			t.Errorf("parity flip in byte %d changed ciphertext: %016x vs %016x", i, got, want)
		}
	}
}

// TestAvalanche checks that flipping one plaintext bit changes roughly half
// the ciphertext bits on average (loose bounds: 20..44 of 64).
func TestAvalanche(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var total, n int
	for i := 0; i < 200; i++ {
		p := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := c.EncryptBlock(p) ^ c.EncryptBlock(p^(1<<bit))
		total += popcount64(d)
		n++
	}
	avg := float64(total) / float64(n)
	if avg < 20 || avg > 44 {
		t.Errorf("avalanche average %.1f bits out of plausible range [20,44]", avg)
	}
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func TestBlockSizeAccessor(t *testing.T) {
	c, err := NewCipher(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize() != 8 {
		t.Errorf("BlockSize() = %d, want 8", c.BlockSize())
	}
}

func TestShortBufferPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 8))
	for _, tc := range []struct{ dst, src int }{{8, 4}, {4, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dst=%d src=%d: expected panic", tc.dst, tc.src)
				}
			}()
			c.Encrypt(make([]byte, tc.dst), make([]byte, tc.src))
		}()
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := NewCipher([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.SetBytes(8)
	var v uint64 = 0x0123456789ABCDEF
	for i := 0; i < b.N; i++ {
		v = c.EncryptBlock(v)
	}
	sinkU64 = v
}

var sinkU64 uint64
