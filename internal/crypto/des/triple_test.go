package des

import (
	"bytes"
	stddes "crypto/des"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTripleInvalidKey(t *testing.T) {
	for _, n := range []int{0, 8, 16, 23, 25} {
		if _, err := NewTripleCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

// TestTripleAgainstStdlib cross-validates against crypto/des TripleDES.
func TestTripleAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		key := make([]byte, 24)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewTripleCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewTripleDESCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 8)
		got := make([]byte, 8)
		ref.Encrypt(want, pt)
		ours.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: ours=%x stdlib=%x", i, got, want)
		}
		back := make([]byte, 8)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatalf("iter %d: decrypt mismatch", i)
		}
	}
}

// TestTripleDegeneratesToDES: with K1=K2=K3, 3DES-EDE equals single DES.
func TestTripleDegeneratesToDES(t *testing.T) {
	k := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	key := append(append(append([]byte{}, k...), k...), k...)
	triple, err := NewTripleCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewCipher(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{0, 1, 0x0123456789ABCDEF, ^uint64(0)} {
		if triple.EncryptBlock(v) != single.EncryptBlock(v) {
			t.Errorf("EDE with equal keys != DES for %#x", v)
		}
	}
}

func TestTripleRoundTrip(t *testing.T) {
	f := func(key [24]byte, block uint64) bool {
		c, err := NewTripleCipher(key[:])
		if err != nil {
			return false
		}
		return c.DecryptBlock(c.EncryptBlock(block)) == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTripleBlockSize(t *testing.T) {
	c, _ := NewTripleCipher(make([]byte, 24))
	if c.BlockSize() != 8 {
		t.Error("block size")
	}
}
