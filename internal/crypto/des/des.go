// Package des implements the Data Encryption Standard (FIPS 46-2) block
// cipher from scratch.
//
// The paper's evaluation assumes a fast pipelined DES ASIC as the pad
// generator for one-time-pad memory encryption (Section 3.4.1 encrypts
// instruction pairs with DES under the vendor key). This package provides
// the functional cipher; internal/crypto/engine models its latency.
//
// DES is used here exactly as the paper uses it: as a pseudo-random
// permutation generating pads, not as a recommendation for new designs.
package des

import "fmt"

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// KeySize is the DES key size in bytes (8 bytes, 56 effective bits).
const KeySize = 8

// KeySizeError is returned by NewCipher for invalid key lengths.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("des: invalid key size %d (want %d)", int(k), KeySize)
}

// Cipher is a DES instance with an expanded key schedule. It implements the
// same interface shape as crypto/cipher.Block.
type Cipher struct {
	subkeys [16]uint64 // 48-bit round keys, right-aligned
}

// NewCipher creates a DES cipher from an 8-byte key. Parity bits are ignored,
// as in FIPS 46-2.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{}
	c.expandKey(be64(key))
	return c, nil
}

// BlockSize returns the cipher block size (8).
func (c *Cipher) BlockSize() int { return BlockSize }

// Encrypt encrypts one 8-byte block from src into dst. dst and src may
// overlap entirely.
func (c *Cipher) Encrypt(dst, src []byte) {
	checkBlock(dst, src)
	put64(dst, c.crypt(be64(src), false))
}

// Decrypt decrypts one 8-byte block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	checkBlock(dst, src)
	put64(dst, c.crypt(be64(src), true))
}

// EncryptBlock encrypts a 64-bit block given as an integer. This is the fast
// path used by the pad generator, which works on integer seeds.
func (c *Cipher) EncryptBlock(v uint64) uint64 { return c.crypt(v, false) }

// DecryptBlock decrypts a 64-bit block given as an integer.
func (c *Cipher) DecryptBlock(v uint64) uint64 { return c.crypt(v, true) }

func checkBlock(dst, src []byte) {
	if len(src) < BlockSize {
		panic("des: input not full block")
	}
	if len(dst) < BlockSize {
		panic("des: output not full block")
	}
	// Aliasing note: the whole block is read into a register before any
	// byte of dst is written, so dst == src is safe. Partially overlapping
	// buffers are a caller bug this package does not attempt to detect.
}

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func put64(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// permute applies a DES permutation table to a w-bit value held in the low
// bits of v (bit 1 of the table refers to the most significant of the w
// bits). The result has len(table) bits, again left-justified within its
// width.
func permute(v uint64, w uint, table []byte) uint64 {
	var out uint64
	for _, pos := range table {
		out <<= 1
		out |= (v >> (w - uint(pos))) & 1
	}
	return out
}

func (c *Cipher) expandKey(key uint64) {
	// PC-1: 64 -> 56 bits split into two 28-bit halves.
	k56 := permute(key, 64, pc1[:])
	left := uint32(k56 >> 28)         // C0
	right := uint32(k56 & 0x0fffffff) // D0
	for i := 0; i < 16; i++ {
		s := keyShifts[i]
		left = rot28(left, s)
		right = rot28(right, s)
		cd := uint64(left)<<28 | uint64(right)
		c.subkeys[i] = permute(cd, 56, pc2[:])
	}
}

func rot28(v uint32, n uint) uint32 {
	return ((v << n) | (v >> (28 - n))) & 0x0fffffff
}

func (c *Cipher) crypt(v uint64, decrypt bool) uint64 {
	v = permute(v, 64, ip[:])
	left := uint32(v >> 32)
	right := uint32(v)
	for i := 0; i < 16; i++ {
		k := c.subkeys[i]
		if decrypt {
			k = c.subkeys[15-i]
		}
		left, right = right, left^feistel(right, k)
	}
	// Final swap is undone (the 16th round does not swap).
	out := uint64(right)<<32 | uint64(left)
	return permute(out, 64, fp[:])
}

// feistel is the DES round function: expand, mix with the round key,
// substitute through the eight S-boxes, permute.
func feistel(r uint32, k uint64) uint32 {
	e := permute(uint64(r), 32, expansion[:]) ^ k // 48 bits
	var out uint32
	for i := 0; i < 8; i++ {
		six := byte(e>>(uint(7-i)*6)) & 0x3f
		row := (six&0x20)>>4 | six&1
		col := (six >> 1) & 0x0f
		out = out<<4 | uint32(sboxes[i][row][col])
	}
	return uint32(permute(uint64(out), 32, pbox[:]))
}
