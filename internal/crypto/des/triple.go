package des

import "fmt"

// TripleCipher is 3DES (EDE: encrypt-decrypt-encrypt) with a 24-byte key.
// The paper's Section 3.3 names 3DES alongside AES as the stronger ciphers
// whose longer latency motivates Figure 10's 102-cycle experiment; this
// implementation lets the functional layer use the same cipher family at
// triple strength.
type TripleCipher struct {
	k1, k2, k3 Cipher
}

// NewTripleCipher creates a 3DES cipher from a 24-byte key (K1|K2|K3).
func NewTripleCipher(key []byte) (*TripleCipher, error) {
	if len(key) != 24 {
		return nil, fmt.Errorf("des: invalid 3DES key size %d (want 24)", len(key))
	}
	c := &TripleCipher{}
	for i, sub := range []*Cipher{&c.k1, &c.k2, &c.k3} {
		sub.expandKey(be64(key[8*i : 8*i+8]))
	}
	return c, nil
}

// BlockSize returns the block size (8, same as DES).
func (c *TripleCipher) BlockSize() int { return BlockSize }

// Encrypt performs EDE encryption of one block.
func (c *TripleCipher) Encrypt(dst, src []byte) {
	checkBlock(dst, src)
	put64(dst, c.EncryptBlock(be64(src)))
}

// Decrypt performs DED decryption of one block.
func (c *TripleCipher) Decrypt(dst, src []byte) {
	checkBlock(dst, src)
	put64(dst, c.DecryptBlock(be64(src)))
}

// EncryptBlock encrypts a 64-bit block: E_k3(D_k2(E_k1(v))).
func (c *TripleCipher) EncryptBlock(v uint64) uint64 {
	return c.k3.crypt(c.k2.crypt(c.k1.crypt(v, false), true), false)
}

// DecryptBlock inverts EncryptBlock.
func (c *TripleCipher) DecryptBlock(v uint64) uint64 {
	return c.k1.crypt(c.k2.crypt(c.k3.crypt(v, true), false), true)
}
