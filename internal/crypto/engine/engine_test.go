package engine

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Latency != 50 || cfg.InitiationInterval != 1 || cfg.Ports != 1 {
		t.Errorf("unexpected default config: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Latency: 0, InitiationInterval: 1, Ports: 1},
		{Latency: 50, InitiationInterval: 0, Ports: 1},
		{Latency: 50, InitiationInterval: 1, Ports: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v should be invalid", i, cfg)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestSingleIssueLatency(t *testing.T) {
	e := New(DefaultConfig())
	if done := e.Issue(100); done != 150 {
		t.Errorf("Issue(100) = %d, want 150", done)
	}
	if e.Issued != 1 {
		t.Errorf("Issued = %d, want 1", e.Issued)
	}
}

func TestPipelinedBurst(t *testing.T) {
	// 16 pads for a 128B line with 8B DES blocks: last pad at
	// now + 50 + 15*1.
	e := New(DefaultConfig())
	if done := e.IssueBurst(0, 16); done != 50+15 {
		t.Errorf("IssueBurst(0,16) = %d, want 65", done)
	}
	if e.Issued != 16 {
		t.Errorf("Issued = %d, want 16", e.Issued)
	}
}

func TestBurstZeroAndNegative(t *testing.T) {
	e := New(DefaultConfig())
	if done := e.IssueBurst(7, 0); done != 7 {
		t.Errorf("IssueBurst(7,0) = %d, want 7", done)
	}
	if done := e.IssueBurst(7, -3); done != 7 {
		t.Errorf("IssueBurst(7,-3) = %d, want 7", done)
	}
}

func TestBackToBackIssueRespectsII(t *testing.T) {
	cfg := Config{Latency: 10, InitiationInterval: 4, Ports: 1}
	e := New(cfg)
	d1 := e.Issue(0) // starts 0, done 10, port free at 4
	d2 := e.Issue(0) // must wait to 4, done 14
	if d1 != 10 || d2 != 14 {
		t.Errorf("got %d,%d want 10,14", d1, d2)
	}
	if e.BusyStalls != 1 || e.StallCycles != 4 {
		t.Errorf("stalls=%d cycles=%d, want 1,4", e.BusyStalls, e.StallCycles)
	}
}

func TestMultiPort(t *testing.T) {
	cfg := Config{Latency: 10, InitiationInterval: 10, Ports: 2}
	e := New(cfg)
	d1 := e.Issue(0)
	d2 := e.Issue(0) // second port, no stall
	d3 := e.Issue(0) // both busy until 10
	if d1 != 10 || d2 != 10 || d3 != 20 {
		t.Errorf("got %d,%d,%d want 10,10,20", d1, d2, d3)
	}
}

func TestReset(t *testing.T) {
	e := New(DefaultConfig())
	e.Issue(0)
	e.Issue(0)
	e.Reset()
	if e.Issued != 0 || e.BusyStalls != 0 || e.StallCycles != 0 {
		t.Error("reset did not clear stats")
	}
	if done := e.Issue(0); done != 50 {
		t.Errorf("after reset Issue(0) = %d, want 50", done)
	}
}

// TestCompletionMonotonic: issuing later never completes earlier.
func TestCompletionMonotonic(t *testing.T) {
	f := func(times []uint16) bool {
		e := New(DefaultConfig())
		var lastNow, lastDone uint64
		for _, raw := range times {
			now := lastNow + uint64(raw)%100
			done := e.Issue(now)
			if done < lastDone && now >= lastNow {
				return false
			}
			if done < now+e.Latency() {
				return false // latency lower bound must hold
			}
			lastNow, lastDone = now, done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{Latency: 102, InitiationInterval: 1, Ports: 1}
	e := New(cfg)
	if e.Config() != cfg {
		t.Error("Config() mismatch")
	}
	if e.Latency() != 102 {
		t.Error("Latency() mismatch")
	}
}
