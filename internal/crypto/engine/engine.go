// Package engine models the timing of an on-chip pipelined crypto unit.
//
// The paper assumes a fully pipelined encryption/decryption engine with a
// fixed latency (50 cycles for the DES-class ASIC of [18]/[10], 102 cycles
// for the Sandia AES-class unit in Figure 10). Being fully pipelined, a new
// block can be issued every initiation interval (1 cycle) while each block
// still takes the full latency to emerge. Algorithm 1 in the paper relies on
// this: the pads for every sub-block of a 128-byte line are produced by
// consecutive pipeline issues.
//
// The engine is purely a timing model: given issue times it returns
// completion times, tracking pipeline occupancy and a bounded issue queue.
// Functional encryption is done by the schemes themselves with the real
// ciphers.
package engine

import (
	"fmt"

	"secureproc/internal/statehash"
)

// Config describes one crypto unit.
type Config struct {
	// Latency is the end-to-end cycles for one block through the pipeline.
	Latency uint64
	// InitiationInterval is the minimum cycles between consecutive issues
	// (1 for a fully pipelined unit).
	InitiationInterval uint64
	// Ports is the number of independent pipelines (issue bandwidth).
	Ports int
}

// DefaultConfig is the paper's baseline unit: 50-cycle latency, fully
// pipelined, one pipeline.
func DefaultConfig() Config {
	return Config{Latency: 50, InitiationInterval: 1, Ports: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Latency == 0 {
		return fmt.Errorf("engine: latency must be positive")
	}
	if c.InitiationInterval == 0 {
		return fmt.Errorf("engine: initiation interval must be positive")
	}
	if c.Ports <= 0 {
		return fmt.Errorf("engine: ports must be positive")
	}
	return nil
}

// Engine tracks the issue availability of a pipelined crypto unit.
type Engine struct {
	cfg Config
	// nextFree[i] is the earliest cycle port i can accept a new block.
	nextFree []uint64
	// Stats.
	Issued      uint64 // blocks pushed through the pipeline
	BusyStalls  uint64 // issues that had to wait for a port
	StallCycles uint64 // total cycles issues waited
}

// New creates an engine from cfg. It panics on invalid configuration
// (programming error); use cfg.Validate for user-supplied configs.
func New(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{cfg: cfg, nextFree: make([]uint64, cfg.Ports)}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Latency returns the configured block latency.
func (e *Engine) Latency() uint64 { return e.cfg.Latency }

// Issue submits one block at time `now` and returns the cycle its result is
// available. If all ports are busy the issue is delayed to the earliest
// available slot.
func (e *Engine) Issue(now uint64) (done uint64) {
	best := 0
	for i := 1; i < len(e.nextFree); i++ {
		if e.nextFree[i] < e.nextFree[best] {
			best = i
		}
	}
	start := now
	if e.nextFree[best] > start {
		e.BusyStalls++
		e.StallCycles += e.nextFree[best] - start
		start = e.nextFree[best]
	}
	e.nextFree[best] = start + e.cfg.InitiationInterval
	e.Issued++
	return start + e.cfg.Latency
}

// IssueBurst submits n blocks starting at `now` (e.g. the pads for every
// cipher block of a cache line) and returns the completion time of the last
// one. With a fully pipelined unit this is now + Latency + (n-1)*II.
func (e *Engine) IssueBurst(now uint64, n int) (lastDone uint64) {
	if n <= 0 {
		return now
	}
	for i := 0; i < n; i++ {
		lastDone = e.Issue(now)
		now = max64(now, lastDone-e.cfg.Latency+e.cfg.InitiationInterval)
	}
	return lastDone
}

// Reset clears pipeline occupancy and statistics.
func (e *Engine) Reset() {
	for i := range e.nextFree {
		e.nextFree[i] = 0
	}
	e.Issued, e.BusyStalls, e.StallCycles = 0, 0, 0
}

// Snapshot is a deep copy of the engine's mutable state (per-port pipeline
// occupancy and stats), taken with Snapshot and reinstated with Restore. It
// shares nothing with the engine it came from.
type Snapshot struct {
	nextFree    []uint64
	issued      uint64
	busyStalls  uint64
	stallCycles uint64
}

// Snapshot captures the engine's full mutable state.
func (e *Engine) Snapshot() Snapshot {
	var s Snapshot
	e.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the engine's state into s, reusing s's port array
// when it is already the right size, so repeated boundary checkpoints into
// the same snapshot are allocation-free in steady state.
func (e *Engine) SnapshotInto(s *Snapshot) {
	if len(s.nextFree) != len(e.nextFree) {
		s.nextFree = make([]uint64, len(e.nextFree))
	}
	copy(s.nextFree, e.nextFree)
	s.issued = e.Issued
	s.busyStalls = e.BusyStalls
	s.stallCycles = e.StallCycles
}

// HashState folds the snapshot's behavior-affecting state into h: per-port
// pipeline availability. The issue/stall counters are statistics and
// deliberately excluded.
func (s *Snapshot) HashState(h *statehash.Hash) {
	h.Words(s.nextFree)
}

// Restore reinstates a snapshot taken from an engine with the same port
// count.
func (e *Engine) Restore(s Snapshot) {
	copy(e.nextFree, s.nextFree)
	e.Issued = s.issued
	e.BusyStalls = s.busyStalls
	e.StallCycles = s.stallCycles
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
