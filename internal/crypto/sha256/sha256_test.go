package sha256

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha "crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNISTVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for i, tc := range cases {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("case %d: got %x, want %s", i, got, tc.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	d := New()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		d.Write(chunk)
	}
	want := "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if got := hex.EncodeToString(d.Sum(nil)); got != want {
		t.Errorf("million 'a': got %s, want %s", got, want)
	}
}

// TestAgainstStdlib cross-validates over random inputs and random write
// chunkings (exercises the buffering logic).
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := rng.Intn(500)
		msg := make([]byte, n)
		rng.Read(msg)
		ours := New()
		// Write in random chunks.
		rest := msg
		for len(rest) > 0 {
			c := rng.Intn(len(rest)) + 1
			ours.Write(rest[:c])
			rest = rest[c:]
		}
		want := stdsha.Sum256(msg)
		if got := ours.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Fatalf("iter %d (len %d): got %x want %x", i, n, got, want)
		}
	}
}

// TestSumNonDestructive checks that Sum can be called repeatedly and
// interleaved with Write.
func TestSumNonDestructive(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	s1 := d.Sum(nil)
	s2 := d.Sum(nil)
	if !bytes.Equal(s1, s2) {
		t.Error("consecutive Sums differ")
	}
	d.Write([]byte("c"))
	want := Sum256([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Error("Write after Sum gives wrong digest")
	}
}

// TestPaddingBoundaries hits message lengths around the 55/56/64-byte padding
// edge cases.
func TestPaddingBoundaries(t *testing.T) {
	for n := 50; n <= 130; n++ {
		msg := bytes.Repeat([]byte{0x5a}, n)
		want := stdsha.Sum256(msg)
		got := Sum256(msg)
		if got != want {
			t.Fatalf("len %d: got %x want %x", n, got, want)
		}
	}
}

func TestHMACAgainstStdlib(t *testing.T) {
	f := func(key, msg []byte) bool {
		m := stdhmac.New(stdsha.New, key)
		m.Write(msg)
		want := m.Sum(nil)
		got := HMAC(key, msg)
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Long key path (> block size).
	long := bytes.Repeat([]byte{9}, 200)
	m := stdhmac.New(stdsha.New, long)
	m.Write([]byte("x"))
	want := m.Sum(nil)
	got := HMAC(long, []byte("x"))
	if !bytes.Equal(got[:], want) {
		t.Error("HMAC long-key mismatch")
	}
}

func TestAccessors(t *testing.T) {
	d := New()
	if d.Size() != 32 || d.BlockSize() != 64 {
		t.Error("wrong Size or BlockSize")
	}
}

func BenchmarkSum256_1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(buf)
	}
}
