// Package aes implements the AES (FIPS-197) block cipher from scratch.
//
// The paper notes (Section 3.3) that "stronger ciphers such as AES" imply a
// longer encryption latency on XOM's critical path, and its Figure 10 models
// a 102-cycle unit. This package provides the functional cipher used as an
// alternative pad generator; internal/crypto/engine models its latency.
//
// The S-box and its inverse are derived algebraically at init time (GF(2^8)
// inversion followed by the affine transform) rather than transcribed, and
// the whole cipher is cross-validated against crypto/aes in tests.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySizeError is returned by NewCipher for invalid key lengths.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d (want 16, 24 or 32)", int(k))
}

var sbox, invSbox [256]byte

func init() {
	// Build the S-box: s = affine(inverse(x)) over GF(2^8) mod x^8+x^4+x^3+x+1.
	for i := 0; i < 256; i++ {
		inv := gfInv(byte(i))
		s := inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(v byte, n uint) byte { return v<<n | v>>(8-n) }

// gfMul multiplies two elements of GF(2^8) with the AES polynomial.
func gfMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse in GF(2^8), with gfInv(0) = 0.
// It uses exponentiation: a^254 = a^-1.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 by square-and-multiply (254 = 0b11111110).
	result := byte(1)
	base := a
	for _, bit := range [8]int{0, 1, 1, 1, 1, 1, 1, 1} { // LSB..MSB of 254
		if bit == 1 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}

// Cipher is an AES instance with expanded round keys.
type Cipher struct {
	enc    []uint32 // round keys for encryption, 4 words per round key
	rounds int
}

// NewCipher creates an AES cipher. The key must be 16, 24 or 32 bytes for
// AES-128/192/256 respectively.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// BlockSize returns the cipher block size (16).
func (c *Cipher) BlockSize() int { return BlockSize }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	total := 4 * (c.rounds + 1)
	w := make([]uint32, total)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := nk; i < total; i++ {
		t := w[i-1]
		if i%nk == 0 {
			t = subWord(t<<8|t>>24) ^ rcon
			rcon = uint32(gfMul(byte(rcon>>24), 2)) << 24
		} else if nk > 6 && i%nk == 4 {
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// Encrypt encrypts one 16-byte block from src into dst (dst == src allowed).
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input/output not full block")
	}
	var st [16]byte
	copy(st[:], src[:16])
	c.addRoundKey(&st, 0)
	for r := 1; r < c.rounds; r++ {
		subBytes(&st)
		shiftRows(&st)
		mixColumns(&st)
		c.addRoundKey(&st, r)
	}
	subBytes(&st)
	shiftRows(&st)
	c.addRoundKey(&st, c.rounds)
	copy(dst[:16], st[:])
}

// Decrypt decrypts one 16-byte block from src into dst (dst == src allowed).
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input/output not full block")
	}
	var st [16]byte
	copy(st[:], src[:16])
	c.addRoundKey(&st, c.rounds)
	for r := c.rounds - 1; r >= 1; r-- {
		invShiftRows(&st)
		invSubBytes(&st)
		c.addRoundKey(&st, r)
		invMixColumns(&st)
	}
	invShiftRows(&st)
	invSubBytes(&st)
	c.addRoundKey(&st, 0)
	copy(dst[:16], st[:])
}

// State layout: st[4*c+r] is row r, column c (column-major, FIPS-197 order,
// matching the byte order of the input block).
func (c *Cipher) addRoundKey(st *[16]byte, round int) {
	for col := 0; col < 4; col++ {
		w := c.enc[4*round+col]
		st[4*col+0] ^= byte(w >> 24)
		st[4*col+1] ^= byte(w >> 16)
		st[4*col+2] ^= byte(w >> 8)
		st[4*col+3] ^= byte(w)
	}
}

func subBytes(st *[16]byte) {
	for i, v := range st {
		st[i] = sbox[v]
	}
}

func invSubBytes(st *[16]byte) {
	for i, v := range st {
		st[i] = invSbox[v]
	}
}

func shiftRows(st *[16]byte) {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for col := 0; col < 4; col++ {
			row[col] = st[4*((col+r)%4)+r]
		}
		for col := 0; col < 4; col++ {
			st[4*col+r] = row[col]
		}
	}
}

func invShiftRows(st *[16]byte) {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for col := 0; col < 4; col++ {
			row[col] = st[4*((col+4-r)%4)+r]
		}
		for col := 0; col < 4; col++ {
			st[4*col+r] = row[col]
		}
	}
}

func mixColumns(st *[16]byte) {
	for col := 0; col < 4; col++ {
		a0, a1, a2, a3 := st[4*col], st[4*col+1], st[4*col+2], st[4*col+3]
		st[4*col+0] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3
		st[4*col+1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3
		st[4*col+2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3)
		st[4*col+3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2)
	}
}

func invMixColumns(st *[16]byte) {
	for col := 0; col < 4; col++ {
		a0, a1, a2, a3 := st[4*col], st[4*col+1], st[4*col+2], st[4*col+3]
		st[4*col+0] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9)
		st[4*col+1] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13)
		st[4*col+2] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11)
		st[4*col+3] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14)
	}
}
