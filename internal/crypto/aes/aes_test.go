package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFIPS197Vectors checks the appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	cases := []struct{ key, plain, cipher string }{
		{
			"000102030405060708090a0b0c0d0e0f",
			"00112233445566778899aabbccddeeff",
			"69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			"000102030405060708090a0b0c0d0e0f1011121314151617",
			"00112233445566778899aabbccddeeff",
			"dda97ca4864cdfe06eaf70a0ec0d7191",
		},
		{
			"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"00112233445566778899aabbccddeeff",
			"8ea2b7ca516745bfeafc49904b496089",
		},
	}
	for i, tc := range cases {
		key, _ := hex.DecodeString(tc.key)
		pt, _ := hex.DecodeString(tc.plain)
		want, _ := hex.DecodeString(tc.cipher)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: encrypt = %x, want %x", i, got, want)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("case %d: decrypt round trip = %x, want %x", i, back, pt)
		}
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("key size %d: want error", n)
		}
	}
}

// TestAgainstStdlib cross-validates against crypto/aes for all key sizes.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, ks := range []int{16, 24, 32} {
		for i := 0; i < 200; i++ {
			key := make([]byte, ks)
			pt := make([]byte, 16)
			rng.Read(key)
			rng.Read(pt)
			ours, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 16)
			got := make([]byte, 16)
			ref.Encrypt(want, pt)
			ours.Encrypt(got, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("ks=%d iter=%d key=%x pt=%x: ours=%x stdlib=%x", ks, i, key, pt, got, want)
			}
			back := make([]byte, 16)
			ours.Decrypt(back, got)
			if !bytes.Equal(back, pt) {
				t.Fatalf("ks=%d iter=%d: decrypt mismatch", ks, i)
			}
		}
	}
}

// TestSboxProperties verifies the generated S-box is a permutation with the
// published fixed values and no fixed points.
func TestSboxProperties(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox not a permutation: duplicate value %#x", sbox[i])
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[sbox[i]])
		}
		if sbox[i] == byte(i) {
			t.Errorf("sbox has fixed point at %#x", i)
		}
	}
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed {
		t.Errorf("sbox spot values wrong: %#x %#x %#x", sbox[0], sbox[1], sbox[0x53])
	}
}

// TestEncryptDecryptInverse is a property-based round-trip check.
func TestEncryptDecryptInverse(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestGFMulProperties checks field axioms on the GF(2^8) helper.
func TestGFMulProperties(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and distributivity over XOR (field addition).
		return gfMul(a, b) == gfMul(b, a) && gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	for i := 1; i < 256; i++ {
		if gfMul(byte(i), gfInv(byte(i))) != 1 {
			t.Fatalf("gfInv(%#x) is not an inverse", i)
		}
	}
	if gfInv(0) != 0 {
		t.Error("gfInv(0) != 0")
	}
}

func TestInPlaceEncrypt(t *testing.T) {
	key := make([]byte, 16)
	c, _ := NewCipher(key)
	buf := []byte("0123456789abcdef")
	want := make([]byte, 16)
	c.Encrypt(want, buf)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Error("in-place encryption differs from out-of-place")
	}
}

func TestShortBufferPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on short block")
		}
	}()
	c.Encrypt(make([]byte, 16), make([]byte, 8))
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
