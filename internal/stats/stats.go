// Package stats provides counters, derived rates, and table formatting used
// by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set contains a group of named counters. The zero value is ready to use.
type Set struct {
	counters map[string]*Counter
	order    []string
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Get returns the current value of a counter (0 if it was never touched).
func (s *Set) Get(name string) uint64 {
	if s.counters == nil {
		return 0
	}
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Add increments the named counter by n, creating it on first use.
func (s *Set) Add(name string, n uint64) { s.Counter(name).Add(n) }

// Inc increments the named counter by one, creating it on first use.
func (s *Set) Inc(name string) { s.Counter(name).Inc() }

// Names returns counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Ratio returns a/b as a float, or 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns 100*a/b, or 0 when b is 0.
func Pct(a, b uint64) float64 { return 100 * Ratio(a, b) }

// String renders the set as "name=value" lines sorted by creation order.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.order {
		fmt.Fprintf(&b, "%s=%d\n", name, s.counters[name].Value)
	}
	return b.String()
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for _, name := range other.order {
		s.Add(name, other.counters[name].Value)
	}
}

// Table is a simple fixed-column text table used to print experiment results
// in the same layout as the paper's figures.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row where every value after the first is formatted with
// format (e.g. "%.2f").
func (t *Table) AddRowF(label string, format string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named list of (label, value) pairs, used to compare a measured
// data series against the series read off a paper figure.
//
// A Series is immutable by convention once constructed: Relabel shares the
// underlying label/value slices, and the experiment layer's worker pool
// reads package-level paper series from many goroutines concurrently. All
// methods are read-only and safe for concurrent use; callers must not
// mutate Labels or Values after construction.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// NewSeries builds a series; labels and values must have equal length.
func NewSeries(name string, labels []string, values []float64) Series {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("stats: series %q: %d labels but %d values", name, len(labels), len(values)))
	}
	return Series{Name: name, Labels: labels, Values: values}
}

// Relabel returns a copy of the series with a new name.
func (s Series) Relabel(name string) Series {
	return Series{Name: name, Labels: s.Labels, Values: s.Values}
}

// Mean returns the arithmetic mean of the series values (0 for empty).
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Value returns the value for a label and whether it exists.
func (s Series) Value(label string) (float64, bool) {
	for i, l := range s.Labels {
		if l == label {
			return s.Values[i], true
		}
	}
	return 0, false
}

// Max returns the maximum value and its label (zeroes for empty series).
func (s Series) Max() (string, float64) {
	if len(s.Values) == 0 {
		return "", 0
	}
	bi := 0
	for i, v := range s.Values {
		if v > s.Values[bi] {
			bi = i
		}
	}
	return s.Labels[bi], s.Values[bi]
}

// RankOrder returns the labels sorted by descending value. It is used to
// compare orderings ("who is hurt most") between paper and measurement.
func (s Series) RankOrder() []string {
	idx := make([]int, len(s.Labels))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.Values[idx[a]] > s.Values[idx[b]] })
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = s.Labels[j]
	}
	return out
}

// SpearmanRank computes the Spearman rank correlation between two series that
// share labels. It quantifies how well the measured ordering matches the
// paper's ordering. Returns 0 if fewer than two shared labels exist.
func SpearmanRank(a, b Series) float64 {
	type pair struct{ ra, rb float64 }
	ranks := func(s Series) map[string]float64 {
		idx := make([]int, len(s.Labels))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return s.Values[idx[x]] < s.Values[idx[y]] })
		m := make(map[string]float64, len(idx))
		for r, j := range idx {
			m[s.Labels[j]] = float64(r)
		}
		return m
	}
	ra, rb := ranks(a), ranks(b)
	var pairs []pair
	for l, r := range ra { //secsim:nondet order-independent reduction: only the sum of rank differences is used
		if r2, ok := rb[l]; ok {
			pairs = append(pairs, pair{r, r2})
		}
	}
	n := float64(len(pairs))
	if n < 2 {
		return 0
	}
	var sumd2 float64
	for _, p := range pairs {
		d := p.ra - p.rb
		sumd2 += d * d
	}
	return 1 - 6*sumd2/(n*(n*n-1))
}
