package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Inc("a")
	s.Add("a", 4)
	s.Add("b", 2)
	if s.Get("a") != 5 || s.Get("b") != 2 || s.Get("missing") != 0 {
		t.Errorf("values: %d %d %d", s.Get("a"), s.Get("b"), s.Get("missing"))
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names: %v", names)
	}
	if !strings.Contains(s.String(), "a=5") {
		t.Error("String output")
	}
	var zero Set
	zero.Inc("x") // zero value must be usable
	if zero.Get("x") != 1 {
		t.Error("zero-value Set broken")
	}
}

func TestMerge(t *testing.T) {
	a := NewSet()
	a.Add("x", 1)
	b := NewSet()
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	a.Merge(nil)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merge: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 4) != 0.25 || Ratio(1, 0) != 0 {
		t.Error("Ratio")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Title", "name", "v1", "v2")
	tb.AddRow("alpha", "1")
	tb.AddRowF("beta", "%.1f", 2.5, 3.5)
	if tb.NumRows() != 2 {
		t.Error("NumRows")
	}
	out := tb.String()
	for _, want := range []string{"Title", "name", "alpha", "beta", "2.5", "3.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("s", []string{"a", "b", "c"}, []float64{1, 3, 2})
	if s.Mean() != 2 {
		t.Error("Mean")
	}
	if v, ok := s.Value("b"); !ok || v != 3 {
		t.Error("Value")
	}
	if _, ok := s.Value("zz"); ok {
		t.Error("missing label found")
	}
	if l, v := s.Max(); l != "b" || v != 3 {
		t.Error("Max")
	}
	order := s.RankOrder()
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Errorf("RankOrder: %v", order)
	}
	r := s.Relabel("t")
	if r.Name != "t" || r.Mean() != 2 {
		t.Error("Relabel")
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Error("empty mean")
	}
	if l, v := empty.Max(); l != "" || v != 0 {
		t.Error("empty max")
	}
}

func TestSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSeries("bad", []string{"a"}, []float64{1, 2})
}

func TestSpearmanRank(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	x := NewSeries("x", labels, []float64{1, 2, 3, 4})
	same := NewSeries("y", labels, []float64{10, 20, 30, 40})
	rev := NewSeries("z", labels, []float64{4, 3, 2, 1})
	if rho := SpearmanRank(x, same); rho < 0.999 {
		t.Errorf("identical order: rho=%v", rho)
	}
	if rho := SpearmanRank(x, rev); rho > -0.999 {
		t.Errorf("reversed order: rho=%v", rho)
	}
	tiny := NewSeries("t", []string{"a"}, []float64{1})
	if SpearmanRank(tiny, tiny) != 0 {
		t.Error("degenerate series should return 0")
	}
}

// TestSeriesConcurrentReads exercises every read-only Series method from
// several goroutines sharing the same underlying slices (as the experiment
// worker pool does with the paper series); under -race this locks in the
// documented immutable/concurrent-read contract.
func TestSeriesConcurrentReads(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	s := NewSeries("shared", labels, []float64{4, 1, 3, 2})
	alias := s.Relabel("alias") // shares the slices on purpose
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Mean() != 2.5 {
				t.Error("Mean changed under concurrent reads")
			}
			if v, ok := alias.Value("c"); !ok || v != 3 {
				t.Error("Value changed under concurrent reads")
			}
			if l, v := s.Max(); l != "a" || v != 4 {
				t.Error("Max changed under concurrent reads")
			}
			if got := s.RankOrder(); got[0] != "a" {
				t.Error("RankOrder changed under concurrent reads")
			}
			if rho := SpearmanRank(s, alias); rho < 0.999 {
				t.Errorf("SpearmanRank(s, alias) = %v, want 1", rho)
			}
		}()
	}
	wg.Wait()
}
