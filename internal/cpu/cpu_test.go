package cpu

import (
	"testing"
	"testing/quick"
)

func fixed(latency uint64) func(uint64) uint64 {
	return func(issue uint64) uint64 { return issue + latency }
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IssueWidth != 4 {
		t.Error("paper baseline is 4-issue")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{IssueWidth: 0, ROB: 1, MSHRs: 1},
		{IssueWidth: 4, ROB: 0, MSHRs: 1},
		{IssueWidth: 4, ROB: 8, MSHRs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad[%d] accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid config")
		}
	}()
	New(Config{})
}

func TestComputeIssueWidth(t *testing.T) {
	c := New(DefaultConfig())
	c.Compute(400)
	if c.Cycles() != 100 {
		t.Errorf("400 instrs at 4-wide = %d cycles, want 100", c.Cycles())
	}
	if c.Retired() != 400 {
		t.Errorf("retired = %d", c.Retired())
	}
	c.Compute(3)           // partial group rounds up
	if c.Cycles() != 100 { // 3 instrs only fill slots, no full cycle
		t.Errorf("after 3 more instrs: %d, want 100", c.Cycles())
	}
}

func TestIsolatedMissStallsAtROBEdge(t *testing.T) {
	// One miss, then far more instructions than the ROB holds: the core
	// can run ROB instructions ahead, then must wait for the fill.
	cfg := Config{IssueWidth: 4, ROB: 128, MSHRs: 8, L2HitLatency: 12}
	c := New(cfg)
	c.LoadMiss(false, fixed(100)) // issues at ~0, done at ~100
	c.Compute(1000)
	// Timeline: miss at cycle 0 (1 instr), run 128 instrs (32 cycles),
	// stall until 100, then the remaining 872 instrs (218 cycles).
	want := uint64(1+128)/4 + 100 - 100 // expression kept for clarity below
	_ = want
	got := c.Cycles()
	if got != 100+218 {
		t.Errorf("cycles = %d, want 318", got)
	}
	if c.ROBStallCycles == 0 {
		t.Error("expected ROB stall")
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Two independent misses issued back to back overlap almost fully.
	c := New(DefaultConfig())
	c.LoadMiss(false, fixed(100))
	c.LoadMiss(false, fixed(100))
	c.Drain()
	if c.Cycles() > 105 {
		t.Errorf("independent misses did not overlap: %d cycles", c.Cycles())
	}
}

func TestDependentMissesSerialize(t *testing.T) {
	// Pointer chasing: each miss waits for the previous fill.
	c := New(DefaultConfig())
	c.LoadMiss(false, fixed(100))
	c.LoadMiss(true, fixed(100))
	c.LoadMiss(true, fixed(100))
	c.Drain()
	if c.Cycles() < 300 {
		t.Errorf("dependent misses overlapped: %d cycles, want >= 300", c.Cycles())
	}
	if c.DepStallCycles == 0 {
		t.Error("expected dependence stalls")
	}
}

func TestMSHRLimitsOverlap(t *testing.T) {
	// With 2 MSHRs, issuing 4 independent misses at once serializes them
	// in pairs.
	cfg := Config{IssueWidth: 4, ROB: 10000, MSHRs: 2, L2HitLatency: 12}
	c := New(cfg)
	for i := 0; i < 4; i++ {
		c.LoadMiss(false, fixed(100))
	}
	c.Drain()
	if c.Cycles() < 200 {
		t.Errorf("MSHR limit not enforced: %d cycles", c.Cycles())
	}
	if c.MSHRStallCycles == 0 {
		t.Error("expected MSHR stalls")
	}
}

func TestLoadHitL2DependentExposure(t *testing.T) {
	c := New(DefaultConfig())
	c.LoadHitL2(false) // completes at clock+12
	c.LoadHitL1(true)  // depends: waits for the L2 hit
	if c.Cycles() < 12 {
		t.Errorf("dependent consumer did not wait for L2 hit: %d", c.Cycles())
	}
}

func TestLoadHitL1NoExposure(t *testing.T) {
	c := New(DefaultConfig())
	c.LoadHitL1(false)
	c.LoadHitL1(true)
	if c.Cycles() > 1 {
		t.Errorf("L1 hits should be nearly free: %d cycles", c.Cycles())
	}
}

func TestIFetchMissFullyExposed(t *testing.T) {
	c := New(DefaultConfig())
	c.IFetchMiss(fixed(100))
	if c.Cycles() < 100 {
		t.Errorf("ifetch miss must expose full latency: %d", c.Cycles())
	}
}

func TestStoreMissDoesNotStall(t *testing.T) {
	c := New(DefaultConfig())
	c.StoreMiss(fixed(100))
	if c.Cycles() > 1 {
		t.Errorf("store miss stalled the core: %d cycles", c.Cycles())
	}
	if c.OutstandingMisses() != 1 {
		t.Error("store fill must occupy an MSHR")
	}
	c.StoreHit()
	if c.Retired() != 2 {
		t.Errorf("retired = %d, want 2", c.Retired())
	}
}

func TestWaitUntil(t *testing.T) {
	c := New(DefaultConfig())
	c.WaitUntil(500)
	if c.Cycles() != 500 {
		t.Error("WaitUntil failed")
	}
	c.WaitUntil(10) // never goes backwards
	if c.Cycles() != 500 {
		t.Error("clock went backwards")
	}
}

func TestDrainWaitsForAll(t *testing.T) {
	c := New(DefaultConfig())
	c.LoadMiss(false, fixed(1000))
	c.Drain()
	if c.Cycles() < 1000 {
		t.Errorf("Drain did not wait: %d", c.Cycles())
	}
	if c.OutstandingMisses() != 0 {
		t.Error("misses remain after Drain")
	}
}

// TestXOMSlowdownMechanism reproduces the paper's core claim at unit scale:
// with a dependent miss stream, XOM-style +50-cycle fills cost ~50 extra
// cycles per miss, while OTP-style MAX(mem,crypto)+1 fills cost ~1.
func TestXOMSlowdownMechanism(t *testing.T) {
	run := func(latency uint64) uint64 {
		c := New(DefaultConfig())
		for i := 0; i < 100; i++ {
			c.Compute(50)
			c.LoadMiss(true, fixed(latency))
		}
		c.Drain()
		return c.Cycles()
	}
	base := run(100)
	xom := run(150)
	otp := run(101)
	if xom <= base || otp <= base {
		t.Fatal("secure schemes cannot be faster than baseline")
	}
	xomOver := float64(xom-base) / float64(base)
	otpOver := float64(otp-base) / float64(base)
	if xomOver < 0.25 {
		t.Errorf("XOM overhead %.2f%% implausibly low", 100*xomOver)
	}
	if otpOver > 0.05 {
		t.Errorf("OTP overhead %.2f%% implausibly high", 100*otpOver)
	}
}

// TestClockMonotonic: the clock never decreases across arbitrary operation
// sequences.
func TestClockMonotonic(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(Config{IssueWidth: 2, ROB: 16, MSHRs: 2, L2HitLatency: 5})
		last := uint64(0)
		for _, op := range ops {
			switch op % 6 {
			case 0:
				c.Compute(uint64(op))
			case 1:
				c.LoadHitL1(op%2 == 0)
			case 2:
				c.LoadHitL2(op%2 == 0)
			case 3:
				c.LoadMiss(op%2 == 0, fixed(uint64(op)))
			case 4:
				c.StoreMiss(fixed(uint64(op)))
			case 5:
				c.StoreHit()
			}
			if c.Cycles() < last {
				return false
			}
			last = c.Cycles()
		}
		c.Drain()
		return c.Cycles() >= last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRetiredCountsEverything: every API that models an instruction
// increments the retired count by exactly one (Compute by n).
func TestRetiredCountsEverything(t *testing.T) {
	c := New(DefaultConfig())
	c.Compute(10)
	c.LoadHitL1(false)
	c.LoadHitL2(false)
	c.LoadMiss(false, fixed(1))
	c.StoreHit()
	c.StoreMiss(fixed(1))
	c.IFetchMiss(fixed(1))
	if got := c.Retired(); got != 16 {
		t.Errorf("retired = %d, want 16", got)
	}
}
