// Package cpu models the timing of a 4-issue out-of-order core at the level
// the paper's evaluation needs: how much of each L2-miss latency is exposed
// to the pipeline.
//
// The paper uses SimpleScalar's sim-outorder. Its figures are driven by
// three core mechanisms, all modelled here:
//
//   - Issue bandwidth: non-memory work retires at IssueWidth per cycle.
//   - Memory-level parallelism: independent misses overlap, bounded by the
//     MSHR count and by the reorder buffer — the core can only run ROB
//     instructions past the oldest incomplete miss before retirement stalls.
//   - Dependence: a load feeding the next load (pointer chasing) exposes the
//     full latency of each link in the chain.
//
// This is an interval model, not a pipeline simulator: precise enough to
// reproduce which workloads expose how much of the crypto latency, and fast
// enough to sweep the paper's full parameter space.
package cpu

import (
	"fmt"

	"secureproc/internal/statehash"
)

// Config describes the core.
type Config struct {
	// IssueWidth is instructions retired per cycle when nothing stalls
	// (the paper's 4-issue).
	IssueWidth int
	// ROB is the reorder-buffer depth in instructions.
	ROB int
	// MSHRs bounds concurrently outstanding L2 misses.
	MSHRs int
	// L2HitLatency is the exposed latency of a dependent L2 hit.
	L2HitLatency uint64
}

// DefaultConfig matches the paper's 4-issue out-of-order SimpleScalar
// baseline (RUU/ROB and MSHR values are SimpleScalar-era defaults).
func DefaultConfig() Config {
	return Config{IssueWidth: 4, ROB: 128, MSHRs: 8, L2HitLatency: 12}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("cpu: issue width must be positive")
	}
	if c.ROB <= 0 {
		return fmt.Errorf("cpu: ROB must be positive")
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cpu: MSHRs must be positive")
	}
	return nil
}

type inflight struct {
	complete uint64 // cycle the fill returns
	seq      uint64 // instruction count when the miss issued
}

// CPU is the core timing state.
type CPU struct {
	cfg   Config
	clock uint64
	// retired counts instructions retired so far (the program order
	// position of the next instruction).
	retired uint64
	// misses in flight, oldest first, in a fixed ring buffer: occupancy is
	// bounded by the MSHR count, so steady-state stepping never allocates.
	misses   []inflight
	missHead int
	missN    int
	// lastLoadDone is the completion time of the most recent load, for
	// dependent chains.
	lastLoadDone uint64
	// slot is the number of issue slots already consumed in the current
	// cycle, so single-instruction events aggregate at IssueWidth/cycle.
	slot uint64

	// Stats.
	ROBStallCycles  uint64
	MSHRStallCycles uint64
	DepStallCycles  uint64
}

// New builds a CPU, panicking on invalid configuration.
func New(cfg Config) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CPU{cfg: cfg, misses: make([]inflight, cfg.MSHRs)}
}

// missAt returns the in-flight miss at ring position i (0 = oldest).
func (c *CPU) missAt(i int) inflight {
	j := c.missHead + i
	if j >= len(c.misses) {
		j -= len(c.misses)
	}
	return c.misses[j]
}

// popMiss drops the oldest in-flight miss.
func (c *CPU) popMiss() {
	c.missHead++
	if c.missHead == len(c.misses) {
		c.missHead = 0
	}
	c.missN--
}

// pushMiss records a new in-flight miss (the caller has ensured a free MSHR).
func (c *CPU) pushMiss(m inflight) {
	j := c.missHead + c.missN
	if j >= len(c.misses) {
		j -= len(c.misses)
	}
	c.misses[j] = m
	c.missN++
}

// Config returns the core configuration.
func (c *CPU) Config() Config { return c.cfg }

// Cycles returns the current clock.
func (c *CPU) Cycles() uint64 { return c.clock }

// Retired returns the number of instructions retired.
func (c *CPU) Retired() uint64 { return c.retired }

// advanceIssue retires n instructions at IssueWidth per cycle, carrying
// leftover issue slots between calls.
func (c *CPU) advanceIssue(n uint64) {
	total := c.slot + n
	w := uint64(c.cfg.IssueWidth)
	c.clock += total / w
	c.slot = total % w
}

// stallTo jumps the clock to t (a pipeline stall), discarding partial-cycle
// issue slack.
func (c *CPU) stallTo(t uint64) {
	c.clock = t
	c.slot = 0
}

// retireWindow enforces the ROB: before retiring more instructions, check
// whether the window past the oldest incomplete miss is exhausted, and if
// so wait for that miss.
func (c *CPU) retireWindow(n uint64) {
	for n > 0 {
		if c.missN == 0 {
			c.retired += n
			c.advanceIssue(n)
			return
		}
		oldest := c.missAt(0)
		limit := oldest.seq + uint64(c.cfg.ROB)
		if c.retired+n <= limit {
			c.retired += n
			c.advanceIssue(n)
			return
		}
		// Retire up to the window edge, then stall for the oldest miss.
		headroom := uint64(0)
		if limit > c.retired {
			headroom = limit - c.retired
		}
		c.retired += headroom
		c.advanceIssue(headroom)
		if oldest.complete > c.clock {
			c.ROBStallCycles += oldest.complete - c.clock
			c.stallTo(oldest.complete)
		}
		c.popMiss()
		n -= headroom
	}
}

// Compute advances the core through instrs non-memory instructions.
func (c *CPU) Compute(instrs uint64) { c.retireWindow(instrs) }

// LoadHitL1 models a load that hits the L1: fully pipelined, no exposure.
func (c *CPU) LoadHitL1(depends bool) {
	c.retireWindow(1)
	if depends && c.lastLoadDone > c.clock {
		c.DepStallCycles += c.lastLoadDone - c.clock
		c.stallTo(c.lastLoadDone)
	}
	c.lastLoadDone = c.clock
}

// LoadHitL2 models an L1 miss that hits the L2: the latency is exposed only
// to dependent consumers.
func (c *CPU) LoadHitL2(depends bool) {
	c.retireWindow(1)
	if depends && c.lastLoadDone > c.clock {
		c.DepStallCycles += c.lastLoadDone - c.clock
		c.stallTo(c.lastLoadDone)
	}
	c.lastLoadDone = c.clock + c.cfg.L2HitLatency
}

// LoadMiss models an L2 load miss. fill is called with the issue cycle and
// returns the cycle the line is usable (the scheme's ReadLine). depends
// marks the load as consuming the previous load's result.
func (c *CPU) LoadMiss(depends bool, fill func(issue uint64) (ready uint64)) {
	c.retireWindow(1)
	if depends && c.lastLoadDone > c.clock {
		c.DepStallCycles += c.lastLoadDone - c.clock
		c.stallTo(c.lastLoadDone)
	}
	// MSHR pressure: wait for the oldest miss if all entries are busy.
	if c.missN >= c.cfg.MSHRs {
		oldest := c.missAt(0)
		if oldest.complete > c.clock {
			c.MSHRStallCycles += oldest.complete - c.clock
			c.stallTo(oldest.complete)
		}
		c.popMiss()
	}
	ready := fill(c.clock)
	c.pushMiss(inflight{complete: ready, seq: c.retired})
	c.lastLoadDone = ready
}

// StoreMiss models a store that misses the L2: the line fill happens in the
// background (write-allocate) and occupies an MSHR, but the store itself
// retires through the store buffer without exposing latency.
func (c *CPU) StoreMiss(fill func(issue uint64) (ready uint64)) {
	c.retireWindow(1)
	if c.missN >= c.cfg.MSHRs {
		oldest := c.missAt(0)
		if oldest.complete > c.clock {
			c.MSHRStallCycles += oldest.complete - c.clock
			c.stallTo(oldest.complete)
		}
		c.popMiss()
	}
	ready := fill(c.clock)
	c.pushMiss(inflight{complete: ready, seq: c.retired})
}

// StoreHit models a store that hits on chip: retires through the store
// buffer.
func (c *CPU) StoreHit() { c.retireWindow(1) }

// IFetchMiss models an instruction fetch that misses to memory: the
// frontend drains, so the fill latency is fully exposed.
func (c *CPU) IFetchMiss(fill func(issue uint64) (ready uint64)) {
	c.retireWindow(1)
	ready := fill(c.clock)
	if ready > c.clock {
		c.stallTo(ready)
	}
}

// WaitUntil advances the clock to at least t (write-buffer-full stalls).
func (c *CPU) WaitUntil(t uint64) {
	if t > c.clock {
		c.stallTo(t)
	}
}

// Drain waits for all outstanding misses — call at the end of a run.
func (c *CPU) Drain() {
	for i := 0; i < c.missN; i++ {
		if m := c.missAt(i); m.complete > c.clock {
			c.stallTo(m.complete)
		}
	}
	c.missHead, c.missN = 0, 0
}

// OutstandingMisses returns the number of misses in flight (diagnostics).
func (c *CPU) OutstandingMisses() int { return c.missN }

// Snapshot is an opaque deep copy of the core's mutable timing state, taken
// with Snapshot and reinstated with Restore. It shares nothing with the CPU
// it came from, so one snapshot can seed any number of forked runs.
type Snapshot struct {
	clock        uint64
	retired      uint64
	misses       []inflight
	missHead     int
	missN        int
	lastLoadDone uint64
	slot         uint64

	robStall  uint64
	mshrStall uint64
	depStall  uint64
}

// Snapshot captures the core's full mutable state.
func (c *CPU) Snapshot() Snapshot {
	var s Snapshot
	c.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the core's state into s, reusing s's miss buffer
// when it is already the right size. Repeated boundary checkpoints into the
// same Snapshot are allocation-free in steady state.
func (c *CPU) SnapshotInto(s *Snapshot) {
	if len(s.misses) != len(c.misses) {
		s.misses = make([]inflight, len(c.misses))
	}
	copy(s.misses, c.misses)
	s.clock = c.clock
	s.retired = c.retired
	s.missHead = c.missHead
	s.missN = c.missN
	s.lastLoadDone = c.lastLoadDone
	s.slot = c.slot
	s.robStall = c.ROBStallCycles
	s.mshrStall = c.MSHRStallCycles
	s.depStall = c.DepStallCycles
}

// HashState folds the snapshot's behavior-affecting state into h: the clock,
// retirement position, issue slack, dependence chain tail, and the live
// in-flight misses in logical (oldest-first) order. Statistics counters are
// deliberately excluded — two states that will simulate identically must
// hash identically even if their histories accumulated stats differently.
func (s *Snapshot) HashState(h *statehash.Hash) {
	h.Word(s.clock)
	h.Word(s.retired)
	h.Word(s.lastLoadDone)
	h.Word(s.slot)
	h.Int(s.missN)
	for i := 0; i < s.missN; i++ {
		j := s.missHead + i
		if j >= len(s.misses) {
			j -= len(s.misses)
		}
		h.Word(s.misses[j].complete)
		h.Word(s.misses[j].seq)
	}
}

// Restore reinstates a snapshot taken from a core with the same
// configuration (the miss ring is sized by cfg.MSHRs).
func (c *CPU) Restore(s Snapshot) {
	c.clock = s.clock
	c.retired = s.retired
	copy(c.misses, s.misses)
	c.missHead = s.missHead
	c.missN = s.missN
	c.lastLoadDone = s.lastLoadDone
	c.slot = s.slot
	c.ROBStallCycles = s.robStall
	c.MSHRStallCycles = s.mshrStall
	c.DepStallCycles = s.depStall
}
