// Package sched runs several workloads through one simulated machine the
// way a multiprogrammed operating system would: round-robin time slices of
// a fixed instruction quantum, with every task switch charged its real
// microarchitectural cost — the cache hierarchy is invalidated (dirty lines
// drain through the protection scheme), and the scheme's own Section 4.3
// context-switch policy runs (flush-encrypt the SNC, or retag it per
// process).
//
// The paper argues in Section 4.3 that the SNC survives multiprogramming
// under either policy; this package is the end-to-end experiment behind
// that claim. Per-task slowdowns are reported against a solo run of the
// same workload on an identical machine, so the numbers isolate what
// co-scheduling (and the switch policy) costs on top of single-program
// execution.
package sched

import (
	"fmt"
	"strings"

	"secureproc/internal/core"
	"secureproc/internal/sim"
	"secureproc/internal/stats"
	"secureproc/internal/workload"
)

// DefaultQuantum is the slice length in instructions when a Config leaves
// it zero. 100K instructions at ~1 IPC is a ~100K-cycle slice — short for a
// real OS (which makes switch costs visible, the point of the experiment)
// but long enough that tasks rebuild cache state within a slice.
const DefaultQuantum = 100_000

// Config describes one multiprogrammed run.
type Config struct {
	// Sim is the machine configuration every task shares (including the
	// protection scheme and its switch= policy).
	Sim sim.Config
	// Quantum is the time-slice length in retired instructions; 0 means
	// DefaultQuantum.
	Quantum uint64
	// Scale multiplies each workload's measured phase lengths, exactly as
	// in single-program runs (warmup phases always run in full). It must
	// be positive; 1.0 is native length.
	Scale float64
	// SkipSolo disables the per-task solo baseline runs (Slowdown fields
	// stay zero). Useful when the caller only needs switch traffic.
	SkipSolo bool
}

// TaskResult is one task's share of a multiprogrammed run.
type TaskResult struct {
	// Bench is the workload name; PID is the process ID the scheduler
	// assigned (its index in the task list).
	Bench string
	PID   int
	// Cycles is the machine time attributed to this task's slices;
	// Instructions is what it retired in them.
	Cycles       uint64
	Instructions uint64
	// SoloCycles is the same workload run alone on an identical machine;
	// SlowdownPct is the multiprogramming penalty over that solo run.
	SoloCycles  uint64
	SlowdownPct float64
	// Slices is how many time slices the task received.
	Slices uint64
}

// Result is the outcome of one multiprogrammed run.
type Result struct {
	// Scheme is the protection scheme's figure label; Policy the scheme's
	// context-switch policy ("flush", "pid", or "-" for schemes without
	// per-process state).
	Scheme string
	Policy string
	// Quantum is the effective slice length in instructions.
	Quantum uint64
	// Switches counts task switches; the three Switch* fields aggregate
	// what those switches put on the machine.
	Switches uint64
	// SwitchWritebacks is dirty lines pushed out by switch invalidations.
	SwitchWritebacks uint64
	// SwitchSeqSpills is SNC flush traffic induced by switches (zero under
	// the pid policy — that is the policy's selling point).
	SwitchSeqSpills uint64
	// SwitchCycles is machine time spent inside switches (CPU stalls from
	// the writeback burst), not attributed to any task.
	SwitchCycles uint64
	// TotalCycles is the full run length on the shared machine.
	TotalCycles uint64
	// DemandTraffic is the run's line fills + writebacks — the denominator
	// for reporting switch-induced traffic as a percentage.
	DemandTraffic uint64
	// Tasks holds per-task accounting in scheduling order.
	Tasks []TaskResult
}

// task is the scheduler's per-stream state.
type task struct {
	res    TaskResult
	stream workload.Stream
	done   bool
}

// Run time-slices the given workloads through one machine built from
// cfg.Sim. At least two workloads are required — that is what makes it
// multiprogramming.
func Run(cfg Config, profs []workload.Profile) (Result, error) {
	if len(profs) < 2 {
		return Result{}, fmt.Errorf("sched: need at least 2 workloads (got %d)", len(profs))
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	scale := cfg.Scale
	if scale <= 0 {
		return Result{}, fmt.Errorf("sched: scale must be positive (got %g)", scale)
	}
	sys, err := sim.New(cfg.Sim)
	if err != nil {
		return Result{}, err
	}

	tasks := make([]*task, len(profs))
	for i, p := range profs {
		stream, err := workload.NewStream(p, scale)
		if err != nil {
			return Result{}, err
		}
		tasks[i] = &task{res: TaskResult{Bench: p.Name, PID: i}, stream: stream}
	}

	res := Result{Scheme: sys.Scheme().Name(), Policy: policyLabel(sys), Quantum: quantum}

	// Round-robin until every stream is exhausted. The machine starts on
	// task 0 with no switch charged (cold start, not a context switch).
	running := len(tasks)
	cur := 0
	for running > 0 {
		t := tasks[cur]
		if t.done {
			cur = (cur + 1) % len(tasks)
			continue
		}
		sliceCycles, sliceInstr := sys.Cycles(), sys.Retired()
		for sys.Retired()-sliceInstr < quantum {
			rec, ok := t.stream.Next()
			if !ok {
				t.done = true
				running--
				break
			}
			sys.Step(rec)
		}
		t.res.Slices++
		t.res.Cycles += sys.Cycles() - sliceCycles
		t.res.Instructions += sys.Retired() - sliceInstr

		// Find the next runnable task; switch only if it is a different one.
		next := cur
		for i := 1; i <= len(tasks); i++ {
			cand := (cur + i) % len(tasks)
			if !tasks[cand].done {
				next = cand
				break
			}
		}
		if running > 0 && next != cur {
			// In-flight fills complete before the caches are torn down;
			// their latency belongs to the task that issued them.
			drain0 := sys.Cycles()
			sys.Drain()
			t.res.Cycles += sys.Cycles() - drain0
			before := sys.Cycles()
			cost := sys.ContextSwitch(tasks[next].res.PID)
			res.Switches++
			res.SwitchWritebacks += cost.DirtyWritebacks
			res.SwitchSeqSpills += cost.SeqSpills
			res.SwitchCycles += sys.Cycles() - before
			cur = next
		}
	}
	// Outstanding misses of the last slice drain on its task's account.
	last := tasks[cur]
	drainStart := sys.Cycles()
	sys.Drain()
	last.res.Cycles += sys.Cycles() - drainStart
	res.TotalCycles = sys.Cycles()
	res.DemandTraffic = sys.BusDemandTransactions()

	for _, t := range tasks {
		if !cfg.SkipSolo {
			solo, err := Solo(cfg.Sim, t.res.Bench, scale)
			if err != nil {
				return Result{}, err
			}
			t.res.SoloCycles = solo
			if solo > 0 {
				t.res.SlowdownPct = 100 * (float64(t.res.Cycles)/float64(solo) - 1)
			}
		}
		res.Tasks = append(res.Tasks, t.res)
	}
	return res, nil
}

// RunBenchmarks is Run over benchmark names.
func RunBenchmarks(cfg Config, benches []string) (Result, error) {
	profs := make([]workload.Profile, len(benches))
	for i, b := range benches {
		p, ok := workload.ByName(b)
		if !ok {
			return Result{}, fmt.Errorf("sched: unknown benchmark %q", b)
		}
		profs[i] = p
	}
	return Run(cfg, profs)
}

// Solo runs one workload alone, start to finish, on a fresh machine with
// the same configuration and measurement protocol as the sliced run
// (everything counts — multiprogrammed slices cannot exclude warmup, so
// the baseline must not either). Callers that sweep many multiprogrammed
// runs over the same workloads can memoize this and pass SkipSolo.
func Solo(cfg sim.Config, bench string, scale float64) (uint64, error) {
	prof, ok := workload.ByName(bench)
	if !ok {
		return 0, fmt.Errorf("sched: unknown benchmark %q", bench)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return 0, err
	}
	stream, err := workload.NewStream(prof, scale)
	if err != nil {
		return 0, err
	}
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		sys.Step(rec)
	}
	sys.Drain()
	return sys.Cycles(), nil
}

// policyLabel reads the scheme's context-switch policy for reporting; "-"
// for schemes without per-process state.
func policyLabel(sys *sim.System) string {
	if sp, ok := sys.Scheme().(interface{ SwitchPolicy() core.SwitchPolicy }); ok {
		return sp.SwitchPolicy().String()
	}
	return "-"
}

// Render formats the result as a text table plus the switch summary line.
func (r Result) Render() string {
	var b strings.Builder
	t := stats.NewTable(
		fmt.Sprintf("%s multiprogrammed, switch=%s, quantum=%d instr", r.Scheme, r.Policy, r.Quantum),
		"task", "pid", "slices", "cycles", "instructions", "solo-cycles", "slowdown%")
	for _, task := range r.Tasks {
		t.AddRow(task.Bench, fmt.Sprint(task.PID), fmt.Sprint(task.Slices),
			fmt.Sprint(task.Cycles), fmt.Sprint(task.Instructions),
			fmt.Sprint(task.SoloCycles), fmt.Sprintf("%.2f", task.SlowdownPct))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "switches: %d (%d dirty writebacks, %d seq spills, %d cycles outside any task)\n",
		r.Switches, r.SwitchWritebacks, r.SwitchSeqSpills, r.SwitchCycles)
	return b.String()
}
