package sched

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"secureproc/internal/sim"
)

// testConfig is a small, fast multiprogram configuration.
func testConfig(t *testing.T, scheme string, quantum uint64) Config {
	t.Helper()
	ref, err := sim.SchemeByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = ref
	return Config{Sim: cfg, Quantum: quantum, Scale: 0.02}
}

func TestRunRequiresTwoTasks(t *testing.T) {
	if _, err := RunBenchmarks(testConfig(t, "snc-lru", 10_000), []string{"mcf"}); err == nil {
		t.Error("single-task run accepted")
	}
	if _, err := RunBenchmarks(testConfig(t, "snc-lru", 10_000), []string{"mcf", "nosuch"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRoundRobinSlicing(t *testing.T) {
	r, err := RunBenchmarks(testConfig(t, "snc-lru", 10_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(r.Tasks))
	}
	if r.Switches == 0 {
		t.Fatal("no switches in a two-task run")
	}
	for _, task := range r.Tasks {
		if task.Slices < 2 {
			t.Errorf("%s got %d slices, want interleaving", task.Bench, task.Slices)
		}
		if task.Instructions == 0 || task.Cycles == 0 {
			t.Errorf("%s retired nothing", task.Bench)
		}
		if task.SoloCycles == 0 {
			t.Errorf("%s has no solo baseline", task.Bench)
		}
		// Miss-dominated tasks can land within attribution noise of solo
		// (resumed dependent loads find their data already arrived), but
		// nothing should get meaningfully *faster* from being time-sliced.
		if task.SlowdownPct < -1.0 {
			t.Errorf("%s multiprogrammed run much faster than solo (%.2f%%)",
				task.Bench, task.SlowdownPct)
		}
	}
	// The cache-friendly task pays for the invalidations: gzip's hot set is
	// L2-resident solo, and every switch tears it down.
	for _, task := range r.Tasks {
		if task.Bench == "gzip" && task.SlowdownPct < 10 {
			t.Errorf("gzip slowdown = %.2f%%, want a substantial invalidation penalty", task.SlowdownPct)
		}
	}
	// Cycle accounting: task slices plus switch time cover the whole run.
	sum := r.SwitchCycles
	for _, task := range r.Tasks {
		sum += task.Cycles
	}
	if sum != r.TotalCycles {
		t.Errorf("cycles don't add up: tasks+switches = %d, total = %d", sum, r.TotalCycles)
	}
}

func TestShorterQuantumSwitchesMore(t *testing.T) {
	short, err := RunBenchmarks(testConfig(t, "snc-lru", 5_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunBenchmarks(testConfig(t, "snc-lru", 50_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if short.Switches <= long.Switches {
		t.Errorf("quantum 5K: %d switches, quantum 50K: %d — shorter slices must switch more",
			short.Switches, long.Switches)
	}
	if short.SwitchSeqSpills <= long.SwitchSeqSpills {
		t.Errorf("flush spill traffic must grow with switch rate (%d vs %d)",
			short.SwitchSeqSpills, long.SwitchSeqSpills)
	}
}

// TestFlushVsPIDPolicies is the §4.3 claim end to end: option 1 pays spill
// traffic at every switch, option 2 pays none.
func TestFlushVsPIDPolicies(t *testing.T) {
	flush, err := RunBenchmarks(testConfig(t, "snc-lru:switch=flush", 10_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := RunBenchmarks(testConfig(t, "snc-lru:switch=pid", 10_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if flush.Policy != "flush" || pid.Policy != "pid" {
		t.Fatalf("policy labels = %q, %q", flush.Policy, pid.Policy)
	}
	if flush.SwitchSeqSpills == 0 {
		t.Error("flush policy produced no switch-induced spill traffic")
	}
	if pid.SwitchSeqSpills != 0 {
		t.Errorf("pid policy produced %d switch-induced spills, want 0", pid.SwitchSeqSpills)
	}
	if flush.Switches != pid.Switches {
		t.Errorf("switch counts differ: %d vs %d (policies must not change scheduling)",
			flush.Switches, pid.Switches)
	}
}

// TestBaselineSchemeSwitches checks schemes without per-process state still
// pay the cache invalidation but have no SNC policy.
func TestBaselineSchemeSwitches(t *testing.T) {
	r, err := RunBenchmarks(testConfig(t, "baseline", 10_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "-" {
		t.Errorf("baseline policy label = %q, want -", r.Policy)
	}
	if r.SwitchWritebacks == 0 {
		t.Error("switch invalidations must write back dirty lines even for baseline")
	}
	if r.SwitchSeqSpills != 0 {
		t.Error("baseline has no SNC to spill")
	}
}

// TestDeterminism: identical configurations produce identical results —
// the property the Figure C1 golden depends on.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		r, err := RunBenchmarks(testConfig(t, "snc-lru:switch=pid", 10_000), []string{"art", "vpr"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
	if a.Render() != b.Render() {
		t.Error("nondeterministic rendering")
	}
}

// TestConcurrentRunsShareNothing drives several multiprogrammed runs in
// parallel (the shape cmd/figures uses); run with -race in CI.
func TestConcurrentRunsShareNothing(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]Result, 4)
	schemes := []string{"snc-lru:switch=flush", "snc-lru:switch=pid", "snc-norepl", "xom"}
	for i, s := range schemes {
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			r, err := RunBenchmarks(testConfig(t, s, 10_000), []string{"mcf", "gzip"})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i, s)
	}
	wg.Wait()
	// Cross-check against sequential reruns.
	for i, s := range schemes {
		want, err := RunBenchmarks(testConfig(t, s, 10_000), []string{"mcf", "gzip"})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("%s: concurrent result differs from sequential", s)
		}
	}
}

func TestRenderMentionsEveryTask(t *testing.T) {
	r, err := RunBenchmarks(testConfig(t, "snc-lru", 10_000), []string{"mcf", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"mcf", "gzip", "switches:", "slowdown%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
