package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secureproc/internal/experiments"
	"secureproc/internal/sim"
)

func testSpec(t *testing.T, bench string) experiments.Spec {
	t.Helper()
	ref, err := sim.SchemeByName("snc-lru")
	if err != nil {
		t.Fatal(err)
	}
	return experiments.DefaultSpec(bench, ref)
}

// TestBatcherCoalescesWindow: N concurrent submissions inside one window
// execute as one batch, duplicates deduplicated, and every waiter gets its
// outcome.
func TestBatcherCoalescesWindow(t *testing.T) {
	var batches, specsSeen atomic.Int64
	exec := func(ctx context.Context, specs []experiments.Spec, each func(int, sim.Result, error)) error {
		batches.Add(1)
		specsSeen.Add(int64(len(specs)))
		for i, sp := range specs {
			each(i, sim.Result{Cycles: uint64(len(sp.Bench))}, nil)
		}
		return nil
	}
	var noted atomic.Int64
	b := NewBatcher(50*time.Millisecond, exec, func(n int) { noted.Add(int64(n)) })

	// 6 submissions over 2 distinct specs, all inside one window.
	specs := []experiments.Spec{
		testSpec(t, "gzip"), testSpec(t, "mcf"), testSpec(t, "gzip"),
		testSpec(t, "mcf"), testSpec(t, "gzip"), testSpec(t, "gzip"),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	results := make([]sim.Result, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp experiments.Spec) {
			defer wg.Done()
			results[i], errs[i] = b.Run(context.Background(), sp)
		}(i, sp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		if want := uint64(len(specs[i].Bench)); results[i].Cycles != want {
			t.Errorf("submission %d got cycles %d, want %d (outcome routed to wrong waiter)", i, results[i].Cycles, want)
		}
	}
	if batches.Load() != 1 {
		t.Errorf("executed %d batches, want 1 (window did not coalesce)", batches.Load())
	}
	if specsSeen.Load() != 2 {
		t.Errorf("batch held %d specs, want 2 (duplicates not deduplicated)", specsSeen.Load())
	}
	if noted.Load() != 2 {
		t.Errorf("note hook saw %d specs, want 2", noted.Load())
	}
}

// TestBatcherZeroWindowPassthrough: window 0 executes immediately, one spec
// per call, no timer.
func TestBatcherZeroWindowPassthrough(t *testing.T) {
	var calls atomic.Int64
	exec := func(ctx context.Context, specs []experiments.Spec, each func(int, sim.Result, error)) error {
		calls.Add(1)
		if len(specs) != 1 {
			t.Errorf("passthrough exec got %d specs, want 1", len(specs))
		}
		each(0, sim.Result{Cycles: 7}, nil)
		return nil
	}
	b := NewBatcher(0, exec, nil)
	res, err := b.Run(context.Background(), testSpec(t, "gzip"))
	if err != nil || res.Cycles != 7 {
		t.Fatalf("passthrough = (%+v, %v), want cycles 7", res, err)
	}
	if calls.Load() != 1 {
		t.Errorf("exec called %d times, want 1", calls.Load())
	}
}

// TestBatcherBatchFailureReleasesWaiters: an exec that errors without
// reporting outcomes must still unblock every waiter with the error —
// nobody hangs until context timeout.
func TestBatcherBatchFailureReleasesWaiters(t *testing.T) {
	boom := fmt.Errorf("dispatch exploded")
	exec := func(ctx context.Context, specs []experiments.Spec, each func(int, sim.Result, error)) error {
		return boom
	}
	b := NewBatcher(10*time.Millisecond, exec, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Run(ctx, testSpec(t, "gzip"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || err.Error() != boom.Error() {
			t.Errorf("waiter %d got %v, want the batch error", i, err)
		}
	}
}

// TestBatcherCancelledWaiterDetaches: a waiter whose context dies returns
// promptly while the batch still executes for everyone else.
func TestBatcherCancelledWaiterDetaches(t *testing.T) {
	executed := make(chan struct{})
	exec := func(ctx context.Context, specs []experiments.Spec, each func(int, sim.Result, error)) error {
		defer close(executed)
		for i := range specs {
			each(i, sim.Result{Cycles: 1}, nil)
		}
		return nil
	}
	b := NewBatcher(100*time.Millisecond, exec, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: Run must return before the window flushes
	if _, err := b.Run(ctx, testSpec(t, "gzip")); err != context.Canceled {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	select {
	case <-executed:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never executed after its waiter cancelled")
	}
}
