package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"secureproc/internal/experiments"
	"secureproc/internal/sim"
)

// batchItem is one caller waiting for a spec's outcome.
type batchItem struct {
	spec experiments.Spec
	ch   chan batchOutcome
}

// batchOutcome is what a flushed window delivers back to each waiter.
type batchOutcome struct {
	res sim.Result
	err error
}

// ExecFunc runs a deduplicated batch of specs, reporting each outcome as it
// completes. It is the Batcher's link back to the runner (SweepEach in
// production, a stub in tests).
type ExecFunc func(ctx context.Context, specs []experiments.Spec, each func(i int, res sim.Result, err error)) error

// Batcher coalesces single-run requests that arrive within a short window
// into one sweep execution. On a sharded fleet each node owns a slice of
// the key space, so bursts of distinct-but-related specs (a client fanning
// a sweep across the ring, N clients exploring adjacent configs) land on
// the same shard close together; running them as one batch shares the
// dispatcher's admission slot accounting and dedupes identical specs before
// they hit the memo.
//
// A zero window disables batching: Run executes immediately via exec.
type Batcher struct {
	window time.Duration
	exec   ExecFunc
	note   func(n int) // batch-size counter hook (Fabric.noteBatch)

	mu      sync.Mutex
	pending []batchItem
}

// NewBatcher builds a batcher flushing every window. note may be nil.
func NewBatcher(window time.Duration, exec ExecFunc, note func(n int)) *Batcher {
	if note == nil {
		note = func(int) {}
	}
	return &Batcher{window: window, exec: exec, note: note}
}

// Run submits one spec and blocks until its batch flushes and the spec
// completes, or ctx is done. The batch itself runs on a background context:
// other callers in the window still want their results even if this one
// gives up.
func (b *Batcher) Run(ctx context.Context, spec experiments.Spec) (sim.Result, error) {
	if b == nil || b.window <= 0 {
		var (
			out    sim.Result
			runErr error
		)
		err := b.exec(ctx, []experiments.Spec{spec}, func(_ int, res sim.Result, err2 error) {
			out, runErr = res, err2
		})
		if err != nil {
			return sim.Result{}, err
		}
		return out, runErr
	}
	item := batchItem{spec: spec, ch: make(chan batchOutcome, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, item)
	first := len(b.pending) == 1
	b.mu.Unlock()
	if first {
		// The window's first arrival owns the flush timer.
		go b.flushAfter()
	}
	select {
	case out := <-item.ch:
		return out.res, out.err
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
}

// flushAfter sleeps out the window, then executes everything that
// accumulated as one deduplicated batch and fans the outcomes back out.
func (b *Batcher) flushAfter() {
	time.Sleep(b.window)
	b.mu.Lock()
	items := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(items) == 0 {
		return
	}

	// Dedupe by canonical key: N waiters on the same spec share one slot
	// in the executed batch (the memo would coalesce them anyway, but
	// deduping here keeps the batch size — and the dispatcher's admission
	// accounting — honest).
	specs := make([]experiments.Spec, 0, len(items))
	slot := make(map[string]int, len(items))
	waiters := make(map[int][]batchItem)
	for _, it := range items {
		k := it.spec.CanonicalKey()
		i, ok := slot[k]
		if !ok {
			i = len(specs)
			slot[k] = i
			specs = append(specs, it.spec)
		}
		waiters[i] = append(waiters[i], it)
	}
	b.note(len(specs))

	delivered := make([]bool, len(specs))
	// Background context: the batch outlives any individual waiter's
	// cancellation, same detach-on-cancel semantics as the memo.
	err := b.exec(context.Background(), specs, func(i int, res sim.Result, err error) { //secsim:detach the window batch outlives any single waiter; cancelled waiters detach individually
		delivered[i] = true
		for _, w := range waiters[i] {
			w.ch <- batchOutcome{res: res, err: err}
		}
	})
	// A batch-level failure (or a callback the exec never made) must still
	// release every waiter, or they hang until their contexts cancel.
	for i, done := range delivered {
		if done {
			continue
		}
		e := err
		if e == nil {
			e = fmt.Errorf("cluster: batch execution dropped spec %d", i)
		}
		for _, w := range waiters[i] {
			w.ch <- batchOutcome{err: e}
		}
	}
}
