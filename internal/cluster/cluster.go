// Package cluster is the distributed sweep fabric: a consistent-hash ring
// over canonical run keys that routes every simulation request to the one
// secsimd instance owning it, so the fleet's result/trace memos and
// checkpoint caches partition exactly-once instead of duplicating on every
// node.
//
// The fabric is deliberately robustness-shaped rather than
// consensus-shaped: membership is static (-peers), routing is stateless
// (every member hashes identically, so any node answers any request by
// forwarding at most once on a consistent ring), a hop-limit header bounds
// the damage of an inconsistent ring to a handful of forwards, and a peer
// that stops answering degrades the fleet to local execution — requests
// never fail because a shard is down, they just lose the partitioning
// benefit until the peer's cooldown expires. The wire contract between
// peers is the public internal/api one; there is no private protocol.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"secureproc/internal/api"
)

// Defaults for Config's zero values.
const (
	// DefaultHopLimit bounds forwarding chains. On a consistent ring a
	// request forwards at most once; the budget of 3 leaves room for one
	// resize transient before the loop guard serves locally.
	DefaultHopLimit = 3
	// DefaultForwardTimeout bounds one forwarded request end to end —
	// generous, because the owner may be simulating from cold.
	DefaultForwardTimeout = 2 * time.Minute
	// DefaultCooldown is how long a peer stays marked down after a failed
	// forward before traffic probes it again.
	DefaultCooldown = 2 * time.Second
	// rollupTimeout bounds each peer poll of a /metrics fleet rollup; a
	// metrics scrape must stay fast even when half the fleet is gone.
	rollupTimeout = 1 * time.Second
)

// Config describes this node's view of the fleet.
type Config struct {
	// Self is this node's advertised address (host:port) — the identity
	// other members route to. It must appear in every member's Peers list
	// (it is added to this node's own ring automatically).
	Self string
	// Peers is the static fleet membership, self included or not.
	Peers []string
	// HopLimit caps forwards per request (0 = DefaultHopLimit).
	HopLimit int
	// ForwardTimeout bounds one forwarded request (0 = default).
	ForwardTimeout time.Duration
	// Cooldown is the down-peer probation window (0 = default).
	Cooldown time.Duration
	// Client overrides the forwarding HTTP client (tests); nil uses a
	// dedicated client with ForwardTimeout.
	Client *http.Client
}

// peerState tracks one remote member: health cooldown and per-peer traffic.
type peerState struct {
	downUntil atomic.Int64 // unix nanos; peer is down until this instant
	forwarded atomic.Int64
	fallback  atomic.Int64
	retries   atomic.Int64
}

// Fabric routes run keys across the fleet and forwards requests to their
// owners. Safe for concurrent use; all methods are cheap except the
// forwarding calls themselves.
type Fabric struct {
	self     string
	ring     *ring
	hopLimit int
	cooldown time.Duration
	client   *http.Client

	peers map[string]*peerState // remote members only, fixed at New

	// Node-wide counters (per-peer ones live in peerState).
	forwarded       atomic.Int64
	servedForwarded atomic.Int64
	fallback        atomic.Int64
	retries         atomic.Int64
	hopStops        atomic.Int64
	batches         atomic.Int64
	batchedSpecs    atomic.Int64
}

// New builds the fabric. It fails only on an unusable membership (no self,
// or a single-member ring that could never forward — run without -peers
// instead).
func New(cfg Config) (*Fabric, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: -peers needs -self (this node's advertised host:port)")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	r := newRing(members)
	if len(r.members()) < 2 {
		return nil, fmt.Errorf("cluster: membership needs at least one peer besides self (got only %q)", cfg.Self)
	}
	if cfg.HopLimit <= 0 {
		cfg.HopLimit = DefaultHopLimit
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ForwardTimeout}
	}
	f := &Fabric{
		self:     cfg.Self,
		ring:     r,
		hopLimit: cfg.HopLimit,
		cooldown: cfg.Cooldown,
		client:   client,
		peers:    make(map[string]*peerState),
	}
	for _, m := range r.members() {
		if m != cfg.Self {
			f.peers[m] = &peerState{}
		}
	}
	return f, nil
}

// Self returns this node's advertised address.
func (f *Fabric) Self() string { return f.self }

// HopLimit returns the per-request forward budget.
func (f *Fabric) HopLimit() int { return f.hopLimit }

// Owner resolves the ring member owning key; local reports whether that
// member is this node.
func (f *Fabric) Owner(key string) (addr string, local bool) {
	addr = f.ring.owner(key)
	return addr, addr == f.self || addr == ""
}

// healthy reports whether the peer is outside its failure cooldown.
func (f *Fabric) healthy(ps *peerState) bool {
	return time.Now().UnixNano() >= ps.downUntil.Load()
}

// markDown starts (or extends) the peer's cooldown after a failed forward.
func (f *Fabric) markDown(ps *peerState) {
	ps.downUntil.Store(time.Now().Add(f.cooldown).UnixNano())
}

// NoteServedForwarded counts a request this node executed on behalf of a
// forwarding peer (the server calls it when a request arrives with hops).
func (f *Fabric) NoteServedForwarded() { f.servedForwarded.Add(1) }

// NoteHopLimit counts a request served locally because its hop budget was
// exhausted — the loop guard for inconsistent rings.
func (f *Fabric) NoteHopLimit() { f.hopStops.Add(1) }

// noteBatch records one flushed batching window of n coalesced specs.
func (f *Fabric) noteBatch(n int) {
	f.batches.Add(1)
	f.batchedSpecs.Add(int64(n))
}

// NewBatcher builds a batching window wired to this fabric's counters.
func (f *Fabric) NewBatcher(window time.Duration, exec ExecFunc) *Batcher {
	return NewBatcher(window, exec, f.noteBatch)
}

// Forward POSTs body to the owner's endpoint (path is "/v1/run" or
// "/v1/sweep") and decodes the 200 response into out.
//
// The outcome is a three-way contract:
//   - ok=true, apiErr=nil: out holds the owner's answer.
//   - ok=true, apiErr!=nil: the owner answered with a clean API error
//     (bad spec, admission 429, ...) — propagate it to the client; the
//     peer is healthy and falling back locally would be wrong (a 429
//     bypassed locally would defeat the owner's admission control).
//   - ok=false: the owner is unreachable or broken (network error, 5xx,
//     undecodable body) after one retry. The peer enters its cooldown and
//     the caller must execute locally — the degraded-never-failing path.
//
// A cancelled ctx returns ok=false without counting a fallback or marking
// the peer down: the client gave up, the peer did nothing wrong.
func (f *Fabric) Forward(ctx context.Context, owner, path string, hops int, clientID string, body, out any) (apiErr *api.Error, ok bool) {
	ps := f.peers[owner]
	if ps == nil {
		// Not a known member (inconsistent ring naming a stranger): treat
		// as unreachable, run locally.
		f.fallback.Add(1)
		return nil, false
	}
	if !f.healthy(ps) {
		f.fallback.Add(1)
		ps.fallback.Add(1)
		return nil, false
	}
	payload, err := json.Marshal(body)
	if err != nil {
		f.fallback.Add(1)
		ps.fallback.Add(1)
		return nil, false
	}
	for attempt := 0; ; attempt++ {
		apiErr, retryable, err := f.post(ctx, owner, path, hops, clientID, payload, out)
		if err == nil {
			if attempt == 0 {
				f.forwarded.Add(1)
				ps.forwarded.Add(1)
			}
			return apiErr, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
		if retryable && attempt == 0 {
			f.retries.Add(1)
			ps.retries.Add(1)
			continue
		}
		f.markDown(ps)
		f.fallback.Add(1)
		ps.fallback.Add(1)
		return nil, false
	}
}

// post is one forward attempt. It returns (apiErr, _, nil) on a usable
// answer — a 200 decoded into out, or a non-2xx envelope to propagate —
// and a non-nil err on transport/5xx/decoding failures, with retryable
// saying whether a second attempt is worthwhile.
func (f *Fabric) post(ctx context.Context, owner, path string, hops int, clientID string, payload []byte, out any) (apiErr *api.Error, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+owner+path, bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderAPIVersion, api.Version)
	req.Header.Set(api.HeaderHops, fmt.Sprint(hops+1))
	if clientID != "" {
		req.Header.Set(api.HeaderClientID, clientID)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, true, err
	}
	switch {
	case resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("cluster: peer %s: status %d", owner, resp.StatusCode)
	case resp.StatusCode >= 300:
		return api.ErrorFromBody(resp.StatusCode, b), false, nil
	}
	if err := json.Unmarshal(b, out); err != nil {
		return nil, false, fmt.Errorf("cluster: peer %s: undecodable response: %w", owner, err)
	}
	return nil, false, nil
}

// LocalStats assembles this node's cluster counter block; sims is the
// runner's simulations_total (owned by the caller, not the fabric).
func (f *Fabric) LocalStats(sims int64) api.NodeStats {
	return api.NodeStats{
		Self:            f.self,
		Simulations:     sims,
		Forwarded:       f.forwarded.Load(),
		ServedForwarded: f.servedForwarded.Load(),
		Fallback:        f.fallback.Load(),
		Retries:         f.retries.Load(),
		HopLimitStops:   f.hopStops.Load(),
		Batches:         f.batches.Load(),
		BatchedSpecs:    f.batchedSpecs.Load(),
	}
}

// PeerMetrics lists every remote member with health and per-peer traffic,
// in address order.
func (f *Fabric) PeerMetrics() []api.PeerMetrics {
	addrs := make([]string, 0, len(f.peers))
	for a := range f.peers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	out := make([]api.PeerMetrics, 0, len(addrs))
	for _, a := range addrs {
		ps := f.peers[a]
		out = append(out, api.PeerMetrics{
			Addr:      a,
			Healthy:   f.healthy(ps),
			Forwarded: ps.forwarded.Load(),
			Fallback:  ps.fallback.Load(),
			Retries:   ps.retries.Load(),
		})
	}
	return out
}

// Rollup polls every remote member's /v1/cluster/stats and sums the fleet
// totals, local included. Unreachable members are listed rather than
// failing the rollup — a metrics scrape must work on a degraded fleet.
// Polls run concurrently under a short per-poll timeout.
func (f *Fabric) Rollup(ctx context.Context, local api.NodeStats) *api.FleetRollup {
	roll := &api.FleetRollup{
		Nodes:           1,
		Simulations:     local.Simulations,
		Forwarded:       local.Forwarded,
		ServedForwarded: local.ServedForwarded,
		Fallback:        local.Fallback,
	}
	type polled struct {
		addr  string
		stats *api.NodeStats
	}
	ch := make(chan polled, len(f.peers))
	var wg sync.WaitGroup
	for addr := range f.peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rollupTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+addr+"/"+api.Version+"/cluster/stats", nil)
			if err != nil {
				ch <- polled{addr, nil}
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				ch <- polled{addr, nil}
				return
			}
			defer resp.Body.Close()
			var ns api.NodeStats
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ns) != nil {
				ch <- polled{addr, nil}
				return
			}
			ch <- polled{addr, &ns}
		}(addr)
	}
	wg.Wait()
	close(ch)
	for p := range ch {
		if p.stats == nil {
			roll.Unreachable = append(roll.Unreachable, p.addr)
			continue
		}
		roll.Nodes++
		roll.Simulations += p.stats.Simulations
		roll.Forwarded += p.stats.Forwarded
		roll.ServedForwarded += p.stats.ServedForwarded
		roll.Fallback += p.stats.Fallback
	}
	sort.Strings(roll.Unreachable)
	return roll
}
