package cluster

import (
	"sort"
	"strconv"
)

// vnodesPerPeer is the number of virtual points each member contributes to
// the hash ring. More points smooth the key distribution across members;
// 64 keeps the per-member imbalance in the low single-digit percents while
// the ring stays a few hundred entries for realistic fleets.
const vnodesPerPeer = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the member that owns the arc ending there.
type ringPoint struct {
	hash uint64
	addr string
}

// ring is a consistent-hash ring over member addresses. A key is owned by
// the first point clockwise of the key's hash; adding or removing one
// member moves only the arcs adjacent to its points, so a fleet resize
// remaps ~1/N of the key space instead of reshuffling everything.
type ring struct {
	points []ringPoint
}

// fnv1a is the 64-bit FNV-1a hash — deterministic across processes (ring
// agreement requires every member to hash identically) and cheap enough to
// run per request.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// newRing builds a ring over the given member addresses. Duplicate
// addresses collapse to one member.
func newRing(addrs []string) *ring {
	seen := make(map[string]bool, len(addrs))
	r := &ring{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		for i := 0; i < vnodesPerPeer; i++ {
			// The vnode index is mixed into the hashed string so every
			// member's points spread independently around the circle.
			r.points = append(r.points, ringPoint{hash: fnv1a(a + "#" + strconv.Itoa(i)), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare) tie-break on address so every
		// member sorts the ring identically.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// owner returns the member owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the highest hash
	}
	return r.points[i].addr
}

// members returns the distinct member addresses, sorted.
func (r *ring) members() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	sort.Strings(out)
	return out
}
