package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	// Ring agreement is the whole game: every member must compute the same
	// owner for every key regardless of the order -peers was written in.
	a := newRing([]string{"n1:8080", "n2:8080", "n3:8080"})
	b := newRing([]string{"n3:8080", "n1:8080", "n2:8080"})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if oa, ob := a.owner(key), b.owner(key); oa != ob {
			t.Fatalf("key %q: owner %q vs %q under reordered membership", key, oa, ob)
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per member, no member should own a wildly skewed share
	// of the key space. Allow a generous band (half to double the fair
	// share) — the point is catching a broken hash, not perfect balance.
	members := []string{"n1:8080", "n2:8080", "n3:8080", "n4:8080"}
	r := newRing(members)
	counts := make(map[string]int)
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("gzip/snc-lru/snc%dKB-0w/l2-256KB-4w/c50", i))]++
	}
	fair := keys / len(members)
	for _, m := range members {
		if c := counts[m]; c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, c, keys, fair)
		}
	}
}

func TestRingResizeMovesFewKeys(t *testing.T) {
	// Consistency property: adding one member must remap roughly 1/N of
	// the key space, not reshuffle everything.
	small := newRing([]string{"n1:8080", "n2:8080", "n3:8080"})
	big := newRing([]string{"n1:8080", "n2:8080", "n3:8080", "n4:8080"})
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if small.owner(key) != big.owner(key) {
			if big.owner(key) != "n4:8080" {
				t.Fatalf("key %q moved between surviving members (%s -> %s)", key, small.owner(key), big.owner(key))
			}
			moved++
		}
	}
	// Fair share for the new member is 1/4; anything under half the ring
	// moving proves consistency (a plain mod-N hash would move ~3/4).
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved on resize; consistent hashing should move ~1/4", moved, keys)
	}
	if moved == 0 {
		t.Error("no keys moved to the new member")
	}
}

func TestRingDegenerateInputs(t *testing.T) {
	if got := (&ring{}).owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r := newRing([]string{"n1:8080", "n1:8080", "", "n2:8080"})
	if ms := r.members(); len(ms) != 2 {
		t.Errorf("members = %v, want duplicates and empties collapsed", ms)
	}
	solo := newRing([]string{"only:1"})
	for _, key := range []string{"a", "b", "c"} {
		if o := solo.owner(key); o != "only:1" {
			t.Errorf("single-member ring owner(%q) = %q", key, o)
		}
	}
}
