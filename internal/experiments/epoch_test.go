package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"secureproc/internal/sim"
)

// epochSpec builds a spec for the scheme under the paper's default
// configuration.
func epochSpec(t *testing.T, bench, scheme string) Spec {
	t.Helper()
	ref, err := sim.SchemeByName(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return DefaultSpec(bench, ref)
}

// TestSimJobsEquivalence: a Runner granted intra-sim workers must return the
// byte-identical Result the serial Runner computes — on the cold first run
// (recording pipeline) and on a warm re-run from a fresh Runner (speculating
// from the process-wide EpochSim cache), where every prediction must commit.
//
// The scale is deliberately unique to this test so the process-wide epoch
// and checkpoint caches cannot hand it entries recorded by other tests.
func TestSimJobsEquivalence(t *testing.T) {
	const scale = 0.021
	specs := []Spec{
		epochSpec(t, "mcf", schemeLRU),
		epochSpec(t, "gzip", schemeMACBlock),
		epochSpec(t, "parser", schemePrecompute),
	}

	serial := NewRunner(scale)
	serial.Jobs = 1

	cold := NewRunner(scale)
	cold.Jobs = 4
	cold.SimJobs = 4

	warm := NewRunner(scale)
	warm.Jobs = 4
	warm.SimJobs = 4

	for _, s := range specs {
		want, err := serial.Run(s)
		if err != nil {
			t.Fatalf("%s/%s serial: %v", s.Bench, s.Scheme.Canonical(), err)
		}
		got, err := cold.Run(s)
		if err != nil {
			t.Fatalf("%s/%s cold parallel: %v", s.Bench, s.Scheme.Canonical(), err)
		}
		if got != want {
			t.Errorf("%s/%s: cold parallel result diverged:\n got %+v\nwant %+v",
				s.Bench, s.Scheme.Canonical(), got, want)
		}
		again, err := warm.Run(s)
		if err != nil {
			t.Fatalf("%s/%s warm parallel: %v", s.Bench, s.Scheme.Canonical(), err)
		}
		if again != want {
			t.Errorf("%s/%s: warm parallel result diverged:\n got %+v\nwant %+v",
				s.Bench, s.Scheme.Canonical(), again, want)
		}
	}

	if st := serial.SpeculationStats(); st.ParallelRuns != 0 {
		t.Errorf("serial runner recorded %d parallel runs, want 0", st.ParallelRuns)
	}
	ncold := cold.SpeculationStats()
	if ncold.ParallelRuns != int64(len(specs)) || ncold.Epochs != int64(4*len(specs)) {
		t.Errorf("cold runner speculation %+v, want %d parallel runs / %d epochs",
			ncold, len(specs), 4*len(specs))
	}
	// The warm Runner reuses the cold Runner's EpochSims (process-wide
	// cache), whose recorded boundary predictions must all verify on a
	// deterministic re-run: 3 commits per 4-epoch simulation, no rollbacks.
	nwarm := warm.SpeculationStats()
	if nwarm.ParallelRuns != int64(len(specs)) ||
		nwarm.Commits != int64(3*len(specs)) || nwarm.Rollbacks != 0 {
		t.Errorf("warm runner speculation %+v, want %d parallel runs / %d commits / 0 rollbacks",
			nwarm, len(specs), 3*len(specs))
	}
}

// TestSimJobsBudget: intra-sim workers come out of the shared Jobs budget.
// A Runner with Jobs=1 has no slack (the simulation itself holds the only
// slot), so SimJobs must silently fall back to the serial path; the same
// request on a Jobs=4 Runner must go parallel.
func TestSimJobsBudget(t *testing.T) {
	const scale = 0.022
	s := epochSpec(t, "gzip", schemeLRU)

	starved := NewRunner(scale)
	starved.Jobs = 1
	starved.SimJobs = 4
	want, err := starved.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if st := starved.SpeculationStats(); st != (SpeculationTotals{}) {
		t.Errorf("Jobs=1 runner went parallel: %+v", st)
	}

	idle := NewRunner(scale)
	idle.Jobs = 4
	idle.SimJobs = 4
	got, err := idle.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if st := idle.SpeculationStats(); st.ParallelRuns != 1 || st.Epochs != 4 {
		t.Errorf("Jobs=4 runner speculation %+v, want 1 parallel run / 4 epochs", st)
	}
	if got != want {
		t.Errorf("budget paths diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenFiguresParallel regenerates every figure with intra-sim
// parallelism enabled and compares byte-for-byte against the same checked-in
// goldens the serial sweep is held to: no figure may depend on which
// execution path produced its numbers. During the saturated middle of the
// sweep the budget keeps simulations serial; epoch-parallel runs engage on
// the sweep's tail and on checkpoint-cache hits, so both paths (and their
// mixture) are exercised against the goldens.
func TestGoldenFiguresParallel(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	r := NewRunner(goldenScale)
	r.Jobs = 4
	r.SimJobs = 4
	frs := r.All()
	names := Names()
	for i, fr := range frs {
		got := fr.Render()
		want, err := os.ReadFile(filepath.Join("testdata", names[i]+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		if got != string(want) {
			t.Errorf("%s: epoch-parallel sweep diverged from golden\ngot:\n%s", names[i], got)
		}
	}
}

// TestSimJobsBaselineFallsBackSerial: the baseline scheme snapshots, but
// every scheme must keep working under SimJobs regardless; this locks the
// graceful path for any future non-checkpointable scheme configuration by
// asserting equivalence holds for the remaining registry entries too.
func TestSimJobsAllSchemes(t *testing.T) {
	const scale = 0.023
	for _, scheme := range []string{schemeBaseline, schemeXOM, schemeNoRepl, schemeMACOverlap} {
		s := epochSpec(t, "vpr", scheme)
		serial := NewRunner(scale)
		serial.Jobs = 1
		want, err := serial.Run(s)
		if err != nil {
			t.Fatalf("%s serial: %v", scheme, err)
		}
		par := NewRunner(scale)
		par.Jobs = 4
		par.SimJobs = 4
		got, err := par.Run(s)
		if err != nil {
			t.Fatalf("%s parallel: %v", scheme, err)
		}
		if got != want {
			t.Errorf("%s: parallel result diverged:\n got %+v\nwant %+v", scheme, got, want)
		}
	}
}
