package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"secureproc/internal/sim"
	"secureproc/internal/stats"
	"secureproc/internal/workload"
)

// FigureResult is one regenerated figure: the measured series side by side
// with the series read off the paper.
type FigureResult struct {
	// ID is the paper figure number ("Figure 5").
	ID string
	// Title describes the experiment.
	Title string
	// Measured and Paper are parallel lists of series over the benchmarks.
	Measured []stats.Series
	Paper    []stats.Series
	// Notes records modelling caveats for this figure.
	Notes string
}

// Render formats the figure as a text table: for every paper series the
// matching measured series is printed next to it.
func (fr FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fr.ID, fr.Title)
	cols := []string{"benchmark"}
	for i := range fr.Paper {
		cols = append(cols, fr.Paper[i].Name, fr.Measured[i].Name)
	}
	t := stats.NewTable("", cols...)
	for _, bench := range Benchmarks {
		cells := []string{bench}
		for i := range fr.Paper {
			pv, _ := fr.Paper[i].Value(bench)
			mv, _ := fr.Measured[i].Value(bench)
			cells = append(cells, fmt.Sprintf("%.2f", pv), fmt.Sprintf("%.2f", mv))
		}
		t.AddRow(cells...)
	}
	cells := []string{"average"}
	for i := range fr.Paper {
		cells = append(cells, fmt.Sprintf("%.2f", fr.Paper[i].Mean()), fmt.Sprintf("%.2f", fr.Measured[i].Mean()))
	}
	t.AddRow(cells...)
	b.WriteString(t.String())
	for i := range fr.Paper {
		rho := stats.SpearmanRank(fr.Paper[i], fr.Measured[i])
		fmt.Fprintf(&b, "rank correlation (%s vs measured): %.2f\n", fr.Paper[i].Name, rho)
	}
	if fr.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", fr.Notes)
	}
	return b.String()
}

// runKey identifies one memoized simulation.
type runKey struct {
	bench     string
	scheme    sim.SchemeKind
	sncKB     int
	sncWays   int
	l2KB      int
	l2Ways    int
	cryptoLat uint64
}

// Runner executes and memoizes the simulations behind the figures. Safe for
// concurrent use.
type Runner struct {
	// Scale multiplies every workload's measured length (1.0 = native,
	// ~200K references per benchmark). Warmup always runs in full.
	Scale float64

	mu    sync.Mutex
	cache map[runKey]sim.Result
}

// NewRunner creates a Runner at the given workload scale.
func NewRunner(scale float64) *Runner {
	return &Runner{Scale: scale, cache: make(map[runKey]sim.Result)}
}

func (r *Runner) config(k runKey) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = k.scheme
	cfg.SNC.SizeBytes = k.sncKB << 10
	cfg.SNC.Ways = k.sncWays
	cfg.L2.SizeBytes = k.l2KB << 10
	cfg.L2.Ways = k.l2Ways
	cfg.Crypto.Latency = k.cryptoLat
	return cfg
}

// run executes (or recalls) one simulation.
func (r *Runner) run(k runKey) sim.Result {
	r.mu.Lock()
	if res, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()
	prof, ok := workload.ByName(k.bench)
	if !ok {
		panic("experiments: unknown benchmark " + k.bench)
	}
	res, err := sim.RunProfile(r.config(k), prof, r.Scale)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	r.cache[k] = res
	r.mu.Unlock()
	return res
}

// defaultKey is the paper's standard configuration for a scheme.
func defaultKey(bench string, scheme sim.SchemeKind) runKey {
	return runKey{bench: bench, scheme: scheme, sncKB: 64, sncWays: 0, l2KB: 256, l2Ways: 4, cryptoLat: 50}
}

// slowdowns computes the percent-slowdown series for a scheme across all
// benchmarks, with optional key tweaks.
func (r *Runner) slowdowns(name string, scheme sim.SchemeKind, tweak func(*runKey)) stats.Series {
	vals := make([]float64, len(Benchmarks))
	for i, b := range Benchmarks {
		bk := defaultKey(b, sim.SchemeBaseline)
		k := defaultKey(b, scheme)
		if tweak != nil {
			tweak(&k)
		}
		vals[i] = sim.Slowdown(r.run(k), r.run(bk))
	}
	return stats.NewSeries(name, Benchmarks, vals)
}

// Figure3 regenerates Figure 3: XOM slowdown over the insecure baseline.
func (r *Runner) Figure3() FigureResult {
	return FigureResult{
		ID:       "Figure 3",
		Title:    "performance loss due to critical-path encryption/decryption (XOM, 50-cycle crypto)",
		Measured: []stats.Series{r.slowdowns("XOM (measured)", sim.SchemeXOM, nil)},
		Paper:    []stats.Series{PaperFig3XOM},
	}
}

// Figure5 regenerates Figure 5: XOM vs SNC-NoRepl vs SNC-LRU (64KB SNC).
func (r *Runner) Figure5() FigureResult {
	return FigureResult{
		ID:    "Figure 5",
		Title: "scheme comparison with a 64KB SNC (32K sequence numbers, 4MB coverage)",
		Measured: []stats.Series{
			r.slowdowns("XOM (measured)", sim.SchemeXOM, nil),
			r.slowdowns("SNC-NoRepl (measured)", sim.SchemeOTPNoRepl, nil),
			r.slowdowns("SNC-LRU (measured)", sim.SchemeOTPLRU, nil),
		},
		Paper: []stats.Series{PaperFig3XOM, PaperFig5NoRepl, PaperFig5LRU},
	}
}

// Figure6 regenerates Figure 6: SNC capacity sweep under LRU.
func (r *Runner) Figure6() FigureResult {
	mk := func(name string, kb int) stats.Series {
		return r.slowdowns(name, sim.SchemeOTPLRU, func(k *runKey) { k.sncKB = kb })
	}
	return FigureResult{
		ID:    "Figure 6",
		Title: "SNC size sweep (LRU): 32KB/64KB/128KB cover 2/4/8MB of memory",
		Measured: []stats.Series{
			mk("32KB (measured)", 32),
			mk("64KB (measured)", 64),
			mk("128KB (measured)", 128),
		},
		Paper: []stats.Series{PaperFig6SNC32, PaperFig6SNC64, PaperFig6SNC128},
	}
}

// Figure7 regenerates Figure 7: fully associative vs 32-way SNC.
func (r *Runner) Figure7() FigureResult {
	return FigureResult{
		ID:    "Figure 7",
		Title: "SNC associativity: fully associative vs 32-way (64KB, LRU)",
		Measured: []stats.Series{
			r.slowdowns("fully assoc (measured)", sim.SchemeOTPLRU, nil),
			r.slowdowns("32-way (measured)", sim.SchemeOTPLRU, func(k *runKey) { k.sncWays = 32 }),
		},
		Paper: []stats.Series{PaperFig7FullAssoc, PaperFig7Way32},
		Notes: "ammp's strided working set maps into a single 32-way set, recreating the paper's outlier",
	}
}

// Figure8 regenerates Figure 8: equal-area comparison of a larger L2 vs
// adding the SNC (CACTI: 256KB 4-way L2 + 64KB 32-way SNC ≈ 384KB 6-way L2).
func (r *Runner) Figure8() FigureResult {
	norm := func(name string, scheme sim.SchemeKind, tweak func(*runKey)) stats.Series {
		vals := make([]float64, len(Benchmarks))
		for i, b := range Benchmarks {
			bk := defaultKey(b, sim.SchemeBaseline)
			k := defaultKey(b, scheme)
			if tweak != nil {
				tweak(&k)
			}
			vals[i] = sim.NormalizedTime(r.run(k), r.run(bk))
		}
		return stats.NewSeries(name, Benchmarks, vals)
	}
	return FigureResult{
		ID:    "Figure 8",
		Title: "larger L2 vs L2+SNC at equal chip area (times normalized to insecure 256KB-L2 baseline)",
		Measured: []stats.Series{
			norm("XOM-256KL2 (measured)", sim.SchemeXOM, nil),
			norm("XOM-384KL2 (measured)", sim.SchemeXOM, func(k *runKey) { k.l2KB = 384; k.l2Ways = 6 }),
			norm("SNC-32way-LRU-256KL2 (measured)", sim.SchemeOTPLRU, func(k *runKey) { k.sncWays = 32 }),
		},
		Paper: []stats.Series{PaperFig8XOM256, PaperFig8XOM384, PaperFig8SNC},
	}
}

// Figure9 regenerates Figure 9: SNC-induced extra memory traffic as a
// percentage of demand (L2<->memory) traffic, 64KB LRU SNC.
func (r *Runner) Figure9() FigureResult {
	vals := make([]float64, len(Benchmarks))
	for i, b := range Benchmarks {
		res := r.run(defaultKey(b, sim.SchemeOTPLRU))
		vals[i] = stats.Pct(res.SNCTraffic(), res.DemandTraffic())
	}
	return FigureResult{
		ID:       "Figure 9",
		Title:    "SNC-induced additional memory traffic (64KB SNC, LRU)",
		Measured: []stats.Series{stats.NewSeries("traffic % (measured)", Benchmarks, vals)},
		Paper:    []stats.Series{PaperFig9Traffic},
		Notes:    "absolute percentages are sensitive to the synthetic workloads' cold-region weights; the shape (small everywhere, largest for the low-traffic benchmarks) is the reproduced claim",
	}
}

// Figure10 regenerates Figure 10: sensitivity to a 102-cycle crypto unit.
func (r *Runner) Figure10() FigureResult {
	lat := func(k *runKey) { k.cryptoLat = 102 }
	return FigureResult{
		ID:    "Figure 10",
		Title: "102-cycle encryption/decryption unit (Sandia-class): XOM degrades, OTP is insensitive",
		Measured: []stats.Series{
			r.slowdowns("XOM (measured)", sim.SchemeXOM, lat),
			r.slowdowns("SNC-NoRepl (measured)", sim.SchemeOTPNoRepl, lat),
			r.slowdowns("SNC-LRU (measured)", sim.SchemeOTPLRU, lat),
		},
		Paper: []stats.Series{PaperFig10XOM, PaperFig10NoRepl, PaperFig10LRU},
	}
}

// All regenerates every figure in paper order.
func (r *Runner) All() []FigureResult {
	return []FigureResult{
		r.Figure3(), r.Figure5(), r.Figure6(), r.Figure7(),
		r.Figure8(), r.Figure9(), r.Figure10(),
	}
}

// Names lists the regenerable figures.
func Names() []string {
	return []string{"fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
}

// ByName regenerates one figure by short name ("fig5").
func (r *Runner) ByName(name string) (FigureResult, error) {
	switch strings.ToLower(name) {
	case "fig3", "figure3", "3":
		return r.Figure3(), nil
	case "fig5", "figure5", "5":
		return r.Figure5(), nil
	case "fig6", "figure6", "6":
		return r.Figure6(), nil
	case "fig7", "figure7", "7":
		return r.Figure7(), nil
	case "fig8", "figure8", "8":
		return r.Figure8(), nil
	case "fig9", "figure9", "9":
		return r.Figure9(), nil
	case "fig10", "figure10", "10":
		return r.Figure10(), nil
	default:
		return FigureResult{}, fmt.Errorf("experiments: unknown figure %q (have %s)", name, strings.Join(Names(), ", "))
	}
}

// CachedRuns reports how many distinct simulations have been memoized
// (diagnostics).
func (r *Runner) CachedRuns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// SortedCacheKeys returns a human-readable list of memoized runs.
func (r *Runner) SortedCacheKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.cache))
	for k := range r.cache {
		out = append(out, fmt.Sprintf("%s/%s/snc%dKB-%dw/l2-%dKB-%dw/c%d",
			k.bench, k.scheme, k.sncKB, k.sncWays, k.l2KB, k.l2Ways, k.cryptoLat))
	}
	sort.Strings(out)
	return out
}
