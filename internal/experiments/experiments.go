package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"secureproc/internal/dispatch"
	"secureproc/internal/sim"
	"secureproc/internal/stats"
	"secureproc/internal/store"
	"secureproc/internal/workload"
)

// FigureResult is one regenerated figure: the measured series side by side
// with the series read off the paper (when the paper has one — figures that
// explore beyond the paper, like Figure I1, carry measured series only).
type FigureResult struct {
	// ID is the figure number ("Figure 5").
	ID string
	// Title describes the experiment.
	Title string
	// Measured and Paper are parallel lists of series over the benchmarks.
	// Paper is empty for measured-only figures.
	Measured []stats.Series
	Paper    []stats.Series
	// Rows overrides the table's row labels; empty means the standard
	// benchmark list. Figures whose natural rows are not benchmarks
	// (Figure C1's pair × quantum sweep) set it.
	Rows []string
	// Notes records modelling caveats for this figure.
	Notes string
}

// Render formats the figure as a text table: for every measured series the
// matching paper series (if any) is printed next to it. A paper series list
// that does not align with the measured one is reported explicitly rather
// than silently dropped.
func (fr FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fr.ID, fr.Title)
	withPaper := len(fr.Paper) == len(fr.Measured) && len(fr.Paper) > 0
	if len(fr.Paper) > 0 && !withPaper {
		fmt.Fprintf(&b, "WARNING: %d paper series cannot be aligned with %d measured series; paper columns omitted\n",
			len(fr.Paper), len(fr.Measured))
	}
	rows := fr.Rows
	if len(rows) == 0 {
		rows = Benchmarks
	}
	cols := []string{"benchmark"}
	for i := range fr.Measured {
		if withPaper {
			cols = append(cols, fr.Paper[i].Name)
		}
		cols = append(cols, fr.Measured[i].Name)
	}
	t := stats.NewTable("", cols...)
	for _, bench := range rows {
		cells := []string{bench}
		for i := range fr.Measured {
			if withPaper {
				pv, _ := fr.Paper[i].Value(bench)
				cells = append(cells, fmt.Sprintf("%.2f", pv))
			}
			mv, _ := fr.Measured[i].Value(bench)
			cells = append(cells, fmt.Sprintf("%.2f", mv))
		}
		t.AddRow(cells...)
	}
	cells := []string{"average"}
	for i := range fr.Measured {
		if withPaper {
			cells = append(cells, fmt.Sprintf("%.2f", fr.Paper[i].Mean()))
		}
		cells = append(cells, fmt.Sprintf("%.2f", fr.Measured[i].Mean()))
	}
	t.AddRow(cells...)
	b.WriteString(t.String())
	if withPaper {
		for i := range fr.Paper {
			rho := stats.SpearmanRank(fr.Paper[i], fr.Measured[i])
			fmt.Fprintf(&b, "rank correlation (%s vs measured): %.2f\n", fr.Paper[i].Name, rho)
		}
	}
	if fr.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", fr.Notes)
	}
	return b.String()
}

// runKey identifies one memoized simulation. The scheme is its canonical
// registry reference ("snc-lru", "otp-mac:verify=blocking"), which keeps
// the key comparable while letting specs name any registered scheme.
type runKey struct {
	bench     string
	scheme    string
	sncKB     int
	sncWays   int
	l2KB      int
	l2Ways    int
	cryptoLat uint64
}

// Runner executes and memoizes the simulations behind the figures. Safe for
// concurrent use: concurrent requests for the same runKey are deduplicated
// through per-key latches, so every configuration simulates at most once no
// matter how many goroutines (or pool workers) ask for it.
type Runner struct {
	// Scale multiplies every workload's measured length (1.0 = native,
	// ~200K references per benchmark). Warmup always runs in full.
	Scale float64

	// Jobs caps the total worker budget: the number of simulations the
	// sweep engine runs concurrently, and — shared with SimJobs — the
	// slots a single simulation may borrow to parallelize internally.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the sequential path. Set it
	// before the first figure request.
	Jobs int

	// SimJobs, when > 1, lets one simulation split its measured phase into
	// SimJobs epochs and run them speculatively in parallel (sim.EpochSim)
	// whenever the shared Jobs budget has idle slots — see epoch.go. The
	// result is byte-identical to the serial run. SimJobsAuto (-1) sizes
	// the epoch count adaptively from the budget's observed slack instead
	// of a fixed K. 0 or 1 keeps every simulation serial. Set it before the
	// first request.
	SimJobs int

	// Capacity bounds the result memo: once more than Capacity completed
	// simulations are memoized, the least-recently-used ones are evicted.
	// In-flight simulations are pinned and never evicted. 0 (the default)
	// means unbounded, which is what batch figure sweeps want — every
	// result stays memoized, so the goldens are untouched. Long-lived
	// services (secsimd) set a bound. Set before the first request.
	Capacity int

	// TraceCapacity bounds the materialized-trace memo the same way
	// (traces are the big allocations: ~24B per record, hundreds of
	// thousands of records per benchmark at scale 1.0). 0 = unbounded.
	TraceCapacity int

	// Store, when non-nil, persists completed results to disk: a result-memo
	// miss consults the store before simulating, and fresh results are
	// spilled back, so a restarted process (or a fresh CI job pointed at the
	// same directory) answers warm. Entries are keyed by the canonical run
	// key plus the Runner's scale, under the store's timing-model version
	// (sim.TimingModelVersion). Traces are never stored — they recompute on
	// miss. Set before the first request.
	Store *store.Store

	// cache and traces are embedded by value (initialized on first use via
	// each memo's sync.Once) so a Runner costs no extra allocations over
	// the maps themselves — the perf harness gates allocs/op at zero
	// tolerance.
	cache memo[runKey, sim.Result]
	sims  atomic.Int64

	// budget is the shared worker-slot ledger (cap = jobs()): every
	// in-flight simulation holds one slot, and epoch-parallel runs draw
	// their extra workers from the slack — see epoch.go. Embedded by value
	// (two atomics) so the sequential path pays nothing for it.
	budget dispatch.Budget

	// disp is the weighted-fair dispatcher behind SweepEach and
	// RunDispatched, built lazily on first dispatch so batch sweeps (the
	// figure goldens, the perf harness) never construct it. dispMu guards
	// construction; readers (stats, owner-depth probes) load the pointer
	// and treat nil as "never dispatched".
	dispMu sync.Mutex
	disp   atomic.Pointer[dispatch.Dispatcher]

	// Speculation totals across every epoch-parallel run (see epoch.go).
	parallelRuns  atomic.Int64
	specEpochs    atomic.Int64
	specCommits   atomic.Int64
	specRollbacks atomic.Int64
	specResim     atomic.Int64

	// traces memoizes materialized benchmark record sequences (see
	// Runner.trace); independent latch domain from the result memo.
	traces memo[string, []workload.Record]
}

// NewRunner creates a Runner at the given workload scale.
func NewRunner(scale float64) *Runner {
	return &Runner{Scale: scale}
}

// storeKey renders k plus the Runner's scale as the persistent-store key.
// Unlike the checkpoint cache (warmup state is scale-independent), a stored
// Result depends on the measured-phase length, so the scale is part of the
// identity.
func (r *Runner) storeKey(k runKey) string {
	return fmt.Sprintf("%s|%s|snc%d.%d|l2_%d.%d|c%d|x%s",
		k.bench, k.scheme, k.sncKB, k.sncWays, k.l2KB, k.l2Ways, k.cryptoLat,
		strconv.FormatFloat(r.Scale, 'g', -1, 64))
}

func (r *Runner) config(k runKey) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	ref, err := sim.SchemeByName(k.scheme)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Scheme = ref
	cfg.SNC.SizeBytes = k.sncKB << 10
	cfg.SNC.Ways = k.sncWays
	cfg.L2.SizeBytes = k.l2KB << 10
	cfg.L2.Ways = k.l2Ways
	cfg.Crypto.Latency = k.cryptoLat
	return cfg, nil
}

// run executes (or recalls) one simulation. The figure specs only reference
// valid benchmarks and configurations, so an error here is a programming
// bug and panics as before.
func (r *Runner) run(k runKey) sim.Result {
	res, err := r.result(context.Background(), k, false) //secsim:detach sequential batch path: figure sweeps run to completion by design
	if err != nil {
		panic(err)
	}
	return res
}

// defaultKey is the paper's standard configuration for a scheme (named by
// its canonical registry reference).
func defaultKey(bench string, scheme string) runKey {
	return runKey{bench: bench, scheme: scheme, sncKB: 64, sncWays: 0, l2KB: 256, l2Ways: 4, cryptoLat: 50}
}

// seriesKind selects the metric a measured series reports.
type seriesKind int

const (
	// slowdownKind is percent slowdown vs the default insecure baseline.
	slowdownKind seriesKind = iota
	// normalizedKind is execution time normalized to the default baseline
	// (Figure 8).
	normalizedKind
	// trafficKind is SNC traffic as a percent of demand traffic (Figure 9);
	// it needs no baseline run.
	trafficKind
)

// seriesSpec declares one measured series: which scheme to run (by
// canonical registry reference, so new registered schemes are immediately
// addressable from figure specs), how to tweak the default configuration,
// and which metric to report.
type seriesSpec struct {
	name   string
	kind   seriesKind
	scheme string
	tweak  func(*runKey)
}

// figureSpec declares one paper figure. The spec is the single source of
// truth for both the simulations a figure needs (keys) and how its measured
// series are assembled (build), so the sweep engine can enqueue every run
// up front and the builder later reads memoized results in deterministic
// benchmark order.
type figureSpec struct {
	id     string // paper figure number ("Figure 5")
	short  string // CLI name ("fig5")
	title  string
	notes  string
	series []seriesSpec
	paper  []stats.Series
}

// key returns the runKey for one series/benchmark cell.
func (s seriesSpec) key(bench string) runKey {
	k := defaultKey(bench, s.scheme)
	if s.tweak != nil {
		s.tweak(&k)
	}
	return k
}

// keys lists every simulation the figure needs, deduplicated, in series
// then benchmark order.
func (f figureSpec) keys() []runKey {
	var keys []runKey
	seen := make(map[runKey]bool)
	add := func(k runKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, s := range f.series {
		for _, b := range Benchmarks {
			if s.kind != trafficKind {
				add(defaultKey(b, schemeBaseline))
			}
			add(s.key(b))
		}
	}
	return keys
}

// Canonical registry references used by the figure specs.
const (
	schemeBaseline   = "baseline"
	schemeXOM        = "xom"
	schemeNoRepl     = "snc-norepl"
	schemeLRU        = "snc-lru"
	schemeMACOverlap = "otp-mac:verify=overlap"
	schemeMACBlock   = "otp-mac:verify=blocking"
	schemePrecompute = "otp-precompute"
)

// figureSpecs declares all regenerable figures in paper order.
func figureSpecs() []figureSpec {
	lat102 := func(k *runKey) { k.cryptoLat = 102 }
	return []figureSpec{
		{
			id: "Figure 3", short: "fig3",
			title: "performance loss due to critical-path encryption/decryption (XOM, 50-cycle crypto)",
			series: []seriesSpec{
				{name: "XOM (measured)", scheme: schemeXOM},
			},
			paper: []stats.Series{PaperFig3XOM},
		},
		{
			id: "Figure 5", short: "fig5",
			title: "scheme comparison with a 64KB SNC (32K sequence numbers, 4MB coverage)",
			series: []seriesSpec{
				{name: "XOM (measured)", scheme: schemeXOM},
				{name: "SNC-NoRepl (measured)", scheme: schemeNoRepl},
				{name: "SNC-LRU (measured)", scheme: schemeLRU},
			},
			paper: []stats.Series{PaperFig3XOM, PaperFig5NoRepl, PaperFig5LRU},
		},
		{
			id: "Figure 6", short: "fig6",
			title: "SNC size sweep (LRU): 32KB/64KB/128KB cover 2/4/8MB of memory",
			series: []seriesSpec{
				{name: "32KB (measured)", scheme: schemeLRU, tweak: func(k *runKey) { k.sncKB = 32 }},
				{name: "64KB (measured)", scheme: schemeLRU},
				{name: "128KB (measured)", scheme: schemeLRU, tweak: func(k *runKey) { k.sncKB = 128 }},
			},
			paper: []stats.Series{PaperFig6SNC32, PaperFig6SNC64, PaperFig6SNC128},
		},
		{
			id: "Figure 7", short: "fig7",
			title: "SNC associativity: fully associative vs 32-way (64KB, LRU)",
			series: []seriesSpec{
				{name: "fully assoc (measured)", scheme: schemeLRU},
				{name: "32-way (measured)", scheme: schemeLRU, tweak: func(k *runKey) { k.sncWays = 32 }},
			},
			paper: []stats.Series{PaperFig7FullAssoc, PaperFig7Way32},
			notes: "ammp's strided working set maps into a single 32-way set, recreating the paper's outlier",
		},
		{
			id: "Figure 8", short: "fig8",
			title: "larger L2 vs L2+SNC at equal chip area (times normalized to insecure 256KB-L2 baseline)",
			series: []seriesSpec{
				{name: "XOM-256KL2 (measured)", kind: normalizedKind, scheme: schemeXOM},
				{name: "XOM-384KL2 (measured)", kind: normalizedKind, scheme: schemeXOM,
					tweak: func(k *runKey) { k.l2KB = 384; k.l2Ways = 6 }},
				{name: "SNC-32way-LRU-256KL2 (measured)", kind: normalizedKind, scheme: schemeLRU,
					tweak: func(k *runKey) { k.sncWays = 32 }},
			},
			paper: []stats.Series{PaperFig8XOM256, PaperFig8XOM384, PaperFig8SNC},
		},
		{
			id: "Figure 9", short: "fig9",
			title: "SNC-induced additional memory traffic (64KB SNC, LRU)",
			series: []seriesSpec{
				{name: "traffic % (measured)", kind: trafficKind, scheme: schemeLRU},
			},
			paper: []stats.Series{PaperFig9Traffic},
			notes: "absolute percentages are sensitive to the synthetic workloads' cold-region weights; the shape (small everywhere, largest for the low-traffic benchmarks) is the reproduced claim",
		},
		{
			id: "Figure 10", short: "fig10",
			title: "102-cycle encryption/decryption unit (Sandia-class): XOM degrades, OTP is insensitive",
			series: []seriesSpec{
				{name: "XOM (measured)", scheme: schemeXOM, tweak: lat102},
				{name: "SNC-NoRepl (measured)", scheme: schemeNoRepl, tweak: lat102},
				{name: "SNC-LRU (measured)", scheme: schemeLRU, tweak: lat102},
			},
			paper: []stats.Series{PaperFig10XOM, PaperFig10NoRepl, PaperFig10LRU},
		},
		{
			id: "Figure I1", short: "figI1",
			title: "integrity verification on the timing path: what MAC fetch/verify adds on top of OTP (64KB SNC, LRU; measured only — the paper scopes integrity out)",
			series: []seriesSpec{
				{name: "SNC-LRU (measured)", scheme: schemeLRU},
				{name: "OTP+MAC overlap (measured)", scheme: schemeMACOverlap},
				{name: "OTP+MAC blocking (measured)", scheme: schemeMACBlock},
				{name: "OTP-Pre (measured)", scheme: schemePrecompute},
			},
			notes: "overlap retires verification off the critical path (Gassend-style speculation) and costs only the MAC-table traffic; blocking holds every L2 miss for the 80-cycle MAC check; OTP-Pre bounds what pad precompute can recover",
		},
	}
}

// build assembles the figure from memoized results (simulating on demand
// for any key the sweep did not prefetch), in deterministic series then
// benchmark order, so the output is byte-identical to the sequential path.
func (r *Runner) build(f figureSpec) FigureResult {
	measured := make([]stats.Series, len(f.series))
	for i, s := range f.series {
		vals := make([]float64, len(Benchmarks))
		for j, b := range Benchmarks {
			res := r.run(s.key(b))
			switch s.kind {
			case slowdownKind:
				vals[j] = sim.Slowdown(res, r.run(defaultKey(b, schemeBaseline)))
			case normalizedKind:
				vals[j] = sim.NormalizedTime(res, r.run(defaultKey(b, schemeBaseline)))
			case trafficKind:
				vals[j] = stats.Pct(res.SNCTraffic(), res.DemandTraffic())
			}
		}
		measured[i] = stats.NewSeries(s.name, Benchmarks, vals)
	}
	return FigureResult{ID: f.id, Title: f.title, Measured: measured, Paper: f.paper, Notes: f.notes}
}

// figure sweeps and builds one figure by short name.
func (r *Runner) figure(short string) FigureResult {
	for _, f := range figureSpecs() {
		if f.short == short {
			if err := r.sweep(context.Background(), f.keys()); err != nil { //secsim:detach process-lifetime figure build (All)
				panic(err)
			}
			return r.build(f)
		}
	}
	panic("experiments: unknown figure " + short)
}

// Figure3 regenerates Figure 3: XOM slowdown over the insecure baseline.
func (r *Runner) Figure3() FigureResult { return r.figure("fig3") }

// Figure5 regenerates Figure 5: XOM vs SNC-NoRepl vs SNC-LRU (64KB SNC).
func (r *Runner) Figure5() FigureResult { return r.figure("fig5") }

// Figure6 regenerates Figure 6: SNC capacity sweep under LRU.
func (r *Runner) Figure6() FigureResult { return r.figure("fig6") }

// Figure7 regenerates Figure 7: fully associative vs 32-way SNC.
func (r *Runner) Figure7() FigureResult { return r.figure("fig7") }

// Figure8 regenerates Figure 8: equal-area comparison of a larger L2 vs
// adding the SNC (CACTI: 256KB 4-way L2 + 64KB 32-way SNC ≈ 384KB 6-way L2).
func (r *Runner) Figure8() FigureResult { return r.figure("fig8") }

// Figure9 regenerates Figure 9: SNC-induced extra memory traffic as a
// percentage of demand (L2<->memory) traffic, 64KB LRU SNC.
func (r *Runner) Figure9() FigureResult { return r.figure("fig9") }

// Figure10 regenerates Figure 10: sensitivity to a 102-cycle crypto unit.
func (r *Runner) Figure10() FigureResult { return r.figure("fig10") }

// FigureI1 generates the integrity-overhead figure: OTP+MAC (overlap and
// blocking verification) and OTP-Precompute against SNC-LRU across all 11
// benchmarks — the question the paper leaves open.
func (r *Runner) FigureI1() FigureResult { return r.figure("figI1") }

// All regenerates every figure in paper order. Every required single-
// program simulation is enqueued up front and fanned out over the worker
// pool, then the figures are assembled in deterministic order from the
// memoized results; the multiprogrammed Figure C1 (which drives its own
// scheduler runs) comes last.
func (r *Runner) All() []FigureResult {
	specs := figureSpecs()
	var keys []runKey
	seen := make(map[runKey]bool)
	for _, f := range specs {
		for _, k := range f.keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if err := r.sweep(context.Background(), keys); err != nil { //secsim:detach process-lifetime figure build (ByName)
		panic(err)
	}
	out := make([]FigureResult, 0, len(specs)+1)
	for _, f := range specs {
		out = append(out, r.build(f))
	}
	out = append(out, r.FigureC1())
	return out
}

// Names lists the regenerable figures.
func Names() []string {
	specs := figureSpecs()
	out := make([]string, 0, len(specs)+1)
	for _, f := range specs {
		out = append(out, f.short)
	}
	return append(out, "figC1")
}

// ByName regenerates one figure by short name ("fig5", case-insensitive);
// "figure5" and "5" are accepted as aliases.
func (r *Runner) ByName(name string) (FigureResult, error) {
	n := strings.ToLower(name)
	for _, f := range figureSpecs() {
		short := strings.ToLower(f.short)
		if n == short || n == "figure"+strings.TrimPrefix(short, "fig") || n == strings.TrimPrefix(short, "fig") {
			return r.figure(f.short), nil
		}
	}
	if n == "figc1" || n == "figurec1" || n == "c1" {
		return r.FigureC1(), nil
	}
	return FigureResult{}, fmt.Errorf("experiments: unknown figure %q (have %s)", name, strings.Join(Names(), ", "))
}

// CachedRuns reports how many simulations are currently memoized
// (diagnostics; with a Capacity bound, evicted runs no longer count).
func (r *Runner) CachedRuns() int { return r.results().size() }

// Simulations reports how many simulations actually executed, as opposed to
// being answered from the memo. With race-free deduplication and no
// eviction this equals CachedRuns once all requests have drained — the
// exactly-once property the concurrency tests assert.
func (r *Runner) Simulations() int64 { return r.sims.Load() }

// MemoStats snapshots the result memo's lifecycle counters (size,
// capacity, in-flight simulations, hit/miss/coalesced/eviction counts) —
// the payload behind secsimd's /metrics endpoint.
func (r *Runner) MemoStats() CacheStats { return r.results().stats() }

// TraceStats snapshots the materialized-trace memo's counters.
func (r *Runner) TraceStats() CacheStats { return r.traceMemo().stats() }

// SortedCacheKeys returns a human-readable list of memoized runs.
func (r *Runner) SortedCacheKeys() []string {
	keys := r.results().keys()
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s/%s/snc%dKB-%dw/l2-%dKB-%dw/c%d",
			k.bench, k.scheme, k.sncKB, k.sncWays, k.l2KB, k.l2Ways, k.cryptoLat))
	}
	sort.Strings(out)
	return out
}
