package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"secureproc/internal/sim"
)

// raceScale keeps the concurrency tests quick; exactly-once and
// determinism hold at any scale.
const raceScale = 0.02

// TestConcurrentFiguresExactlyOnce hammers one Runner from many goroutines
// requesting overlapping figures and asserts the singleflight memo ran each
// runKey exactly once: the executed-simulation counter must equal the number
// of distinct memo entries, and repeated figures must render identically.
func TestConcurrentFiguresExactlyOnce(t *testing.T) {
	r := NewRunner(raceScale)
	r.Jobs = 8
	// Overlapping on purpose: fig5 shares baseline+XOM with fig3, fig7
	// shares LRU with fig5 and fig9, fig10 shares nothing but baselines.
	figs := []string{"fig3", "fig5", "fig3", "fig10", "fig5", "fig9", "fig3", "fig7"}
	rendered := make([]string, len(figs))
	var wg sync.WaitGroup
	for i, n := range figs {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			fr, err := r.ByName(n)
			if err != nil {
				t.Errorf("ByName(%q): %v", n, err)
				return
			}
			rendered[i] = fr.Render()
		}(i, n)
	}
	wg.Wait()
	if got, want := r.Simulations(), int64(r.CachedRuns()); got != want {
		t.Errorf("%d simulations executed for %d distinct keys; overlapping figures double-computed", got, want)
	}
	for i, n := range figs {
		for j := i + 1; j < len(figs); j++ {
			if figs[j] == n && rendered[i] != rendered[j] {
				t.Errorf("%s rendered differently on concurrent requests %d and %d", n, i, j)
			}
		}
	}
}

// TestConcurrentSweepSharedSpecs drives the exported Spec API from several
// goroutines sweeping the same spec list concurrently.
func TestConcurrentSweepSharedSpecs(t *testing.T) {
	r := NewRunner(raceScale)
	r.Jobs = 4
	var specs []Spec
	for _, b := range []string{"gzip", "mesa", "vpr"} {
		for _, k := range []sim.SchemeRef{sim.SchemeBaseline, sim.SchemeXOM, sim.SchemeOTPLRU} {
			specs = append(specs, DefaultSpec(b, k))
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Sweep(context.Background(), specs); err != nil {
				t.Errorf("Sweep: %v", err)
			}
		}()
	}
	wg.Wait()
	if got, want := r.Simulations(), int64(len(specs)); got != want {
		t.Errorf("%d simulations for %d distinct specs", got, want)
	}
	// Every spec must now be a memo hit returning a consistent result.
	for _, s := range specs {
		r1, err := r.Run(s)
		if err != nil {
			t.Fatalf("Run(%+v): %v", s, err)
		}
		r2, _ := r.Run(s)
		if r1 != r2 {
			t.Errorf("memoized result for %+v not stable", s)
		}
	}
	if got, want := r.Simulations(), int64(len(specs)); got != want {
		t.Errorf("memo hits re-simulated: %d runs for %d specs", got, want)
	}
}

// TestSweepCancellation checks the pool honours context cancellation: a
// pre-cancelled sweep must not run everything and must report the
// cancellation.
func TestSweepCancellation(t *testing.T) {
	r := NewRunner(raceScale)
	r.Jobs = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var specs []Spec
	for _, b := range Benchmarks {
		specs = append(specs, DefaultSpec(b, sim.SchemeXOM))
	}
	if err := r.Sweep(ctx, specs); err == nil {
		t.Error("cancelled sweep returned nil error")
	}
	if n := r.Simulations(); n >= int64(len(specs)) {
		t.Errorf("cancelled sweep still ran all %d simulations", n)
	}
}

// TestSweepUnknownBenchmark checks a bad spec surfaces as an error from the
// pool (not a panic) and cancels the sweep.
func TestSweepUnknownBenchmark(t *testing.T) {
	r := NewRunner(raceScale)
	r.Jobs = 2
	specs := []Spec{DefaultSpec("nosuch", sim.SchemeXOM), DefaultSpec("gzip", sim.SchemeXOM)}
	err := r.Sweep(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("want unknown-benchmark error, got %v", err)
	}
}

// TestParallelMatchesSequential locks in the determinism contract: All()
// through the worker pool must produce byte-identical rendered output to
// the sequential path.
func TestParallelMatchesSequential(t *testing.T) {
	seqR := NewRunner(raceScale)
	seqR.Jobs = 1
	parR := NewRunner(raceScale)
	parR.Jobs = 8
	var seqOut, parOut strings.Builder
	for _, fr := range seqR.All() {
		seqOut.WriteString(fr.Render())
	}
	for _, fr := range parR.All() {
		parOut.WriteString(fr.Render())
	}
	if seqOut.String() != parOut.String() {
		t.Error("parallel All() output differs from sequential output")
	}
	if seqR.Simulations() != parR.Simulations() {
		t.Errorf("sequential ran %d simulations, parallel ran %d",
			seqR.Simulations(), parR.Simulations())
	}
}
