package experiments

// Figure C1: the multiprogramming experiment the paper argues in Section
// 4.3 but never measures. Benchmark pairs are time-sliced through one
// machine at two quantum lengths under both context-switch policies; the
// table reports each pair's average slowdown over solo runs and the
// switch-induced SNC spill traffic. The flush policy (option 1) pays a
// spill burst at every switch; the PID-tag policy (option 2) pays zero
// switch traffic but runs a smaller effective SNC — exactly the trade the
// paper describes.

import (
	"fmt"
	"sync"

	"secureproc/internal/sched"
	"secureproc/internal/sim"
	"secureproc/internal/stats"
)

// figC1Pairs co-schedules a cache-friendly benchmark with a miss-heavy one
// (where switch costs show) and two mid-pressure benchmarks.
var figC1Pairs = [2][2]string{{"mcf", "gzip"}, {"art", "vpr"}}

// figC1Quanta are the slice lengths in instructions.
var figC1Quanta = [2]uint64{10_000, 50_000}

// figC1Policies are the Section 4.3 options as registry parameters.
var figC1Policies = [2]string{"flush", "pid"}

// figC1Config is the machine for one policy.
func figC1Config(policy string) sim.Config {
	ref, err := sim.SchemeByName("snc-lru:switch=" + policy)
	if err != nil {
		panic(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = ref
	return cfg
}

// FigureC1 generates the multiprogrammed context-switch figure (measured
// only — the paper states the design, Section 4.3, but reports no
// numbers). The scheduler runs and their solo baselines are all
// independent, so they fan out over up to Runner.Jobs goroutines like any
// other sweep; assembly order is fixed, so the output is deterministic.
func (r *Runner) FigureC1() FigureResult {
	type cell struct{ slowdown, trafficPct float64 }
	nrows := len(figC1Pairs) * len(figC1Quanta)
	var results [2][]cell
	var rows []string
	for pi := range figC1Policies {
		results[pi] = make([]cell, nrows)
	}

	// Solo baselines are policy-dependent (PID tags shrink the SNC) but
	// quantum- and pair-independent: one run per (bench, policy). Workers
	// write disjoint slice slots; the lookup map is built after the join.
	type soloKey struct{ bench, policy string }
	var soloKeys []soloKey
	seen := make(map[soloKey]bool)
	for _, pair := range figC1Pairs {
		for _, bench := range pair {
			for _, policy := range figC1Policies {
				if k := (soloKey{bench, policy}); !seen[k] {
					seen[k] = true
					soloKeys = append(soloKeys, k)
				}
			}
		}
	}
	soloVals := make([]uint64, len(soloKeys))
	multis := make([]sched.Result, nrows*len(figC1Policies))

	// Workers record the first error instead of panicking: a panic in a
	// spawned goroutine would kill the process, while the other figure
	// paths fail in the calling goroutine (recoverably).
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	sem := make(chan struct{}, r.jobs())
	spawn := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}()
	}
	for i, k := range soloKeys {
		i, k := i, k
		spawn(func() {
			v, err := sched.Solo(figC1Config(k.policy), k.bench, r.Scale)
			if err != nil {
				fail(fmt.Errorf("experiments: figC1 solo %s: %w", k.bench, err))
				return
			}
			soloVals[i] = v
		})
	}
	row := 0
	for _, pair := range figC1Pairs {
		pair := pair
		for _, quantum := range figC1Quanta {
			quantum := quantum
			rows = append(rows, fmt.Sprintf("%s+%s q=%d", pair[0], pair[1], quantum))
			for pi, policy := range figC1Policies {
				slot := row*len(figC1Policies) + pi
				policy := policy
				spawn(func() {
					res, err := sched.RunBenchmarks(sched.Config{
						Sim:      figC1Config(policy),
						Quantum:  quantum,
						Scale:    r.Scale,
						SkipSolo: true,
					}, pair[:])
					if err != nil {
						fail(fmt.Errorf("experiments: figC1 %s+%s: %w", pair[0], pair[1], err))
						return
					}
					multis[slot] = res
				})
			}
			row++
		}
	}
	wg.Wait()
	if firstErr != nil {
		// Same contract as every other figure: a bad configuration is a
		// programming error and fails in the calling goroutine.
		panic(firstErr)
	}
	solos := make(map[soloKey]uint64, len(soloKeys))
	for i, k := range soloKeys {
		solos[k] = soloVals[i]
	}

	for row := 0; row < nrows; row++ {
		for pi := range figC1Policies {
			res := multis[row*len(figC1Policies)+pi]
			avg := 0.0
			for _, task := range res.Tasks {
				s := solos[soloKey{task.Bench, figC1Policies[pi]}]
				avg += 100 * (float64(task.Cycles)/float64(s) - 1)
			}
			avg /= float64(len(res.Tasks))
			results[pi][row] = cell{
				slowdown:   avg,
				trafficPct: stats.Pct(res.SwitchSeqSpills, res.DemandTraffic),
			}
		}
	}

	mk := func(name string, pi int, f func(cell) float64) stats.Series {
		vals := make([]float64, len(rows))
		for i, c := range results[pi] {
			vals[i] = f(c)
		}
		return stats.NewSeries(name, rows, vals)
	}
	return FigureResult{
		ID:    "Figure C1",
		Title: "multiprogrammed context switches (§4.3): flush-encrypt vs PID-tagged SNC, per-pair average slowdown over solo runs",
		Rows:  rows,
		Measured: []stats.Series{
			mk("flush slowdown% (measured)", 0, func(c cell) float64 { return c.slowdown }),
			mk("pid slowdown% (measured)", 1, func(c cell) float64 { return c.slowdown }),
			mk("flush switch-traffic%", 0, func(c cell) float64 { return c.trafficPct }),
			mk("pid switch-traffic%", 1, func(c cell) float64 { return c.trafficPct }),
		},
		Notes: "every switch invalidates L1/L2 (dirty lines drain through the scheme) under both policies; " +
			"flush additionally spills live SNC entries (switch-traffic% of demand traffic), " +
			"pid keeps entries resident at the cost of 8 tag bits per entry (21.8K vs 32K sequence numbers)",
	}
}
