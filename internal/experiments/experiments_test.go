package experiments

import (
	"strings"
	"testing"

	"secureproc/internal/sim"
	"secureproc/internal/stats"
)

// expScale keeps the experiment tests quick; the shapes assert at this
// scale too.
const expScale = 0.1

func TestPaperDataComplete(t *testing.T) {
	series := []stats.Series{
		PaperFig3XOM, PaperFig5NoRepl, PaperFig5LRU,
		PaperFig6SNC32, PaperFig6SNC64, PaperFig6SNC128,
		PaperFig7FullAssoc, PaperFig7Way32,
		PaperFig8XOM256, PaperFig8XOM384, PaperFig8SNC,
		PaperFig9Traffic,
		PaperFig10XOM, PaperFig10NoRepl, PaperFig10LRU,
	}
	for _, s := range series {
		if len(s.Labels) != 11 {
			t.Errorf("%s: %d labels, want 11", s.Name, len(s.Labels))
		}
	}
	// Spot checks against the paper's quoted headline numbers.
	if m := PaperFig3XOM.Mean(); m < 16.5 || m > 17.0 {
		t.Errorf("paper XOM average %.2f, expected ~16.76", m)
	}
	if m := PaperFig5LRU.Mean(); m < 1.2 || m > 1.4 {
		t.Errorf("paper LRU average %.2f, expected ~1.28", m)
	}
	if v, _ := PaperFig3XOM.Value("mcf"); v != 34.76 {
		t.Errorf("paper mcf XOM = %v", v)
	}
}

func TestByNameDispatch(t *testing.T) {
	r := NewRunner(expScale)
	for _, n := range Names() {
		if _, err := r.ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := r.ByName("fig4"); err == nil {
		t.Error("fig4 is an architecture diagram, not a data figure")
	}
}

func TestFigure5ShapesHold(t *testing.T) {
	fr := NewRunner(expScale).Figure5()
	if len(fr.Measured) != 3 || len(fr.Paper) != 3 {
		t.Fatal("figure 5 needs 3 series")
	}
	xom, nr, lru := fr.Measured[0], fr.Measured[1], fr.Measured[2]
	// Headline: LRU << NoRepl << XOM on average.
	if !(lru.Mean() < nr.Mean() && nr.Mean() < xom.Mean()) {
		t.Errorf("averages out of order: lru=%.2f nr=%.2f xom=%.2f", lru.Mean(), nr.Mean(), xom.Mean())
	}
	// Per-benchmark sanity: LRU never (meaningfully) above XOM.
	for i, b := range Benchmarks {
		lv, xv := lru.Values[i], xom.Values[i]
		if lv > xv+1 {
			t.Errorf("%s: LRU %.2f above XOM %.2f", b, lv, xv)
		}
	}
	// The measured XOM ordering should correlate strongly with the paper.
	if rho := stats.SpearmanRank(fr.Paper[0], xom); rho < 0.7 {
		t.Errorf("XOM rank correlation with paper too low: %.2f", rho)
	}
}

func TestFigure10XOMDegrades(t *testing.T) {
	r := NewRunner(expScale)
	f5 := r.Figure5()
	f10 := r.Figure10()
	xom50 := f5.Measured[0].Mean()
	xom102 := f10.Measured[0].Mean()
	lru50 := f5.Measured[2].Mean()
	lru102 := f10.Measured[2].Mean()
	if xom102 < 1.5*xom50 {
		t.Errorf("102-cycle crypto should roughly double XOM: %.2f -> %.2f", xom50, xom102)
	}
	if lru102 > lru50+1.5 {
		t.Errorf("OTP should be insensitive to crypto latency: %.2f -> %.2f", lru50, lru102)
	}
}

func TestFigure8SNCBeatsBiggerL2(t *testing.T) {
	fr := NewRunner(expScale).Figure8()
	xom384 := fr.Measured[1].Mean()
	sncRow := fr.Measured[2].Mean()
	if sncRow >= xom384 {
		t.Errorf("equal-area SNC (%.3f) should beat the larger-L2 XOM (%.3f)", sncRow, xom384)
	}
	// gcc/vortex with the bigger L2 should be at or below baseline time
	// (the paper's speedup observation).
	for _, b := range []string{"gcc", "vortex"} {
		if v, _ := fr.Measured[1].Value(b); v > 1.02 {
			t.Errorf("%s XOM-384K normalized time %.3f, expected near/below 1", b, v)
		}
	}
}

func TestFigure9TrafficSmall(t *testing.T) {
	fr := NewRunner(expScale).Figure9()
	m := fr.Measured[0]
	for i, b := range Benchmarks {
		if m.Values[i] > 15 {
			t.Errorf("%s: SNC traffic %.2f%% implausibly high", b, m.Values[i])
		}
	}
	if m.Mean() > 8 {
		t.Errorf("average SNC traffic %.2f%% too high (paper: 0.31%%)", m.Mean())
	}
}

func TestRenderContainsEverything(t *testing.T) {
	fr := NewRunner(expScale).Figure3()
	out := fr.Render()
	for _, want := range []string{"Figure 3", "ammp", "vpr", "average", "rank correlation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(expScale)
	r.Figure3()
	n1 := r.CachedRuns()
	r.Figure3() // same runs again
	if r.CachedRuns() != n1 {
		t.Error("figure rerun added cache entries")
	}
	r.Figure5() // shares baseline+XOM with fig3
	if r.CachedRuns() != n1+22 {
		t.Errorf("figure 5 should add exactly 22 runs (NoRepl+LRU), got %d new", r.CachedRuns()-n1)
	}
	if len(r.SortedCacheKeys()) != r.CachedRuns() {
		t.Error("cache key listing inconsistent")
	}
}

func TestAllReturnsEveryFigure(t *testing.T) {
	// Smoke test at tiny scale: all figures build; the seven paper figures
	// carry paper series, the integrity and multiprogramming extensions are
	// measured-only.
	frs := NewRunner(0.05).All()
	if len(frs) != 9 {
		t.Fatalf("got %d figures, want 9", len(frs))
	}
	for _, fr := range frs {
		if len(fr.Measured) == 0 {
			t.Errorf("%s: no measured series", fr.ID)
			continue
		}
		if fr.ID == "Figure I1" || fr.ID == "Figure C1" {
			if len(fr.Paper) != 0 {
				t.Errorf("%s: unexpected paper series", fr.ID)
			}
			continue
		}
		if len(fr.Measured) != len(fr.Paper) {
			t.Errorf("%s: series mismatch", fr.ID)
		}
	}
}

func TestFigureI1IntegrityShapes(t *testing.T) {
	fr := NewRunner(expScale).FigureI1()
	if len(fr.Measured) != 4 {
		t.Fatalf("figure I1 needs 4 series, got %d", len(fr.Measured))
	}
	lru, overlap, blocking, pre := fr.Measured[0], fr.Measured[1], fr.Measured[2], fr.Measured[3]
	// Overlapped verification costs only MAC-table traffic: within noise
	// of bare OTP on average.
	if overlap.Mean() > lru.Mean()+0.5 {
		t.Errorf("overlap verification should be near-free: lru=%.2f overlap=%.2f", lru.Mean(), overlap.Mean())
	}
	// Blocking verification holds every miss for the MAC check: a large,
	// XOM-like cost.
	if blocking.Mean() < 5*overlap.Mean()+5 {
		t.Errorf("blocking verification should dominate: overlap=%.2f blocking=%.2f",
			overlap.Mean(), blocking.Mean())
	}
	// Pad precompute never hurts.
	for i, b := range Benchmarks {
		if pre.Values[i] > lru.Values[i]+0.1 {
			t.Errorf("%s: OTP-Pre %.2f above SNC-LRU %.2f", b, pre.Values[i], lru.Values[i])
		}
	}
	// Measured-only figures must still render fully.
	out := fr.Render()
	for _, want := range []string{"Figure I1", "OTP+MAC blocking (measured)", "average", "notes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if strings.Contains(out, "rank correlation") {
		t.Error("measured-only figure rendered a paper rank correlation")
	}
}

func TestSchemesResolvableThroughRegistry(t *testing.T) {
	// Every scheme reference the figure specs name must resolve through
	// the registry — the seam the specs now depend on.
	for _, f := range figureSpecs() {
		for _, s := range f.series {
			if _, err := sim.SchemeByName(s.scheme); err != nil {
				t.Errorf("%s series %q: scheme %q not resolvable: %v", f.id, s.name, s.scheme, err)
			}
		}
	}
}

// TestRenderReportsPaperMismatch: a paper series list that cannot be
// aligned with the measured series must be called out, not silently
// dropped.
func TestRenderReportsPaperMismatch(t *testing.T) {
	fr := FigureResult{
		ID:    "Figure T",
		Title: "mismatch test",
		Measured: []stats.Series{
			stats.NewSeries("a (measured)", Benchmarks, make([]float64, len(Benchmarks))),
			stats.NewSeries("b (measured)", Benchmarks, make([]float64, len(Benchmarks))),
		},
		Paper: []stats.Series{PaperFig3XOM},
	}
	out := fr.Render()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "1 paper series") ||
		!strings.Contains(out, "2 measured series") {
		t.Errorf("mismatch not reported:\n%s", out)
	}
	if strings.Contains(out, PaperFig3XOM.Name) {
		t.Error("unaligned paper column rendered anyway")
	}
	// Aligned figures must not warn.
	if out := (FigureResult{Measured: fr.Measured[:1], Paper: fr.Paper}).Render(); strings.Contains(out, "WARNING") {
		t.Errorf("aligned figure warned:\n%s", out)
	}
}

// TestFigureC1Shapes asserts the multiprogramming figure's qualitative
// claims at test scale: flush always costs more than pid, flush always
// pays switch traffic, pid never does, and shorter quanta hurt more.
func TestFigureC1Shapes(t *testing.T) {
	fr := NewRunner(0.05).FigureC1()
	if len(fr.Rows) == 0 {
		t.Fatal("figure C1 must define its own rows")
	}
	flushSlow, pidSlow := fr.Measured[0], fr.Measured[1]
	flushTraffic, pidTraffic := fr.Measured[2], fr.Measured[3]
	for i, row := range fr.Rows {
		if flushSlow.Values[i] <= pidSlow.Values[i] {
			t.Errorf("%s: flush slowdown %.2f%% not above pid %.2f%%",
				row, flushSlow.Values[i], pidSlow.Values[i])
		}
		if flushTraffic.Values[i] <= 0 {
			t.Errorf("%s: flush switch traffic %.2f%%, want > 0", row, flushTraffic.Values[i])
		}
		if pidTraffic.Values[i] != 0 {
			t.Errorf("%s: pid switch traffic %.2f%%, want exactly 0", row, pidTraffic.Values[i])
		}
	}
	// Rows come in (q=10000, q=50000) pairs per benchmark pair; the shorter
	// quantum must slow the pair down at least as much under flush.
	for i := 0; i+1 < len(fr.Rows); i += 2 {
		if flushSlow.Values[i] < flushSlow.Values[i+1] {
			t.Errorf("flush: quantum 10K (%.2f%%) milder than 50K (%.2f%%)",
				flushSlow.Values[i], flushSlow.Values[i+1])
		}
	}
}
