package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden figure files")

// goldenDir lets CI's golden-drift guard regenerate the figures into a
// scratch directory (`-update -goldendir /tmp/x`) and diff against the
// checked-in testdata, instead of overwriting it.
var goldenDir = flag.String("goldendir", "testdata", "directory golden figure files are read from / written to")

// goldenScale is the fixed workload scale the goldens are generated at.
// Changing it (or paperdata.go, or the simulator) regenerates different
// tables: run `go test ./internal/experiments -run Golden -update`.
const goldenScale = 0.05

// TestGoldenFigures renders every figure through the parallel sweep engine
// and compares byte-for-byte against the checked-in goldens, locking both
// the measured model output and the paperdata.go targets embedded in each
// table.
func TestGoldenFigures(t *testing.T) {
	r := NewRunner(goldenScale)
	r.Jobs = 4
	frs := r.All()
	names := Names()
	if len(frs) != len(names) {
		t.Fatalf("All() returned %d figures for %d names", len(frs), len(names))
	}
	for i, fr := range frs {
		got := fr.Render()
		path := filepath.Join(*goldenDir, names[i]+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to generate)", names[i], err)
		}
		if got != string(want) {
			t.Errorf("%s: rendered figure differs from %s (run with -update after intended changes)\ngot:\n%s",
				names[i], path, got)
		}
	}
}

// TestGoldenPaperColumns ties the goldens to paperdata.go: the paper-side
// numbers printed in each golden must be exactly the checked-in paper
// series, so a paperdata edit cannot drift past the goldens unnoticed.
func TestGoldenPaperColumns(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	checks := []struct {
		fig    string
		bench  string
		paper  float64
		series string
	}{
		{"fig3", "mcf", 34.76, "XOM (paper)"},
		{"fig5", "gcc", 18.07, "SNC-NoRepl (paper)"},
		{"fig6", "mcf", 15.23, "32KB (paper)"},
		{"fig7", "ammp", 9.62, "32-way (paper)"},
		{"fig8", "art", 1.35, "XOM-256KL2 (paper)"},
		{"fig9", "gzip", 1.03, "traffic % (paper)"},
		{"fig10", "art", 71.21, "XOM (paper)"},
	}
	for _, c := range checks {
		data, err := os.ReadFile(filepath.Join("testdata", c.fig+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", c.fig, err)
		}
		cell := fmt.Sprintf("%.2f", c.paper)
		found := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, c.bench) && strings.Contains(line, cell) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s golden: row %q missing paper value %s (%s)", c.fig, c.bench, cell, c.series)
		}
	}
}
