package experiments

// Regression tests for the memo-lifecycle bugs the secsimd service exposed:
// a panicking workload.Materialize stranding trace waiters with an empty
// trace and nil error, result waiters ignoring context cancellation, and
// cancelled sweeps reporting nil.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// panickingProfile passes workload validation but panics during trace
// generation: int64(Size) is negative, so the generator's Int63n call
// panics on the first reference.
func panickingProfile() workload.Profile {
	return workload.Profile{
		Name: "panicker",
		Seed: 1,
		Phases: []workload.Phase{{
			Refs:    16,
			Regions: []workload.Region{{Base: 0, Size: 1 << 63, Pattern: workload.RandomPattern, Weight: 1}},
		}},
	}
}

// TestTracePanicRecorded pins the stranded-waiter bugfix in Runner.trace: a
// panic inside workload.Materialize must be recorded as the memo entry's
// error (and re-raised in the owner) so waiters see a failure, and the
// failed entry must then be dropped — a later request becomes a fresh
// attempt (here it deterministically panics again) rather than a hit on an
// empty trace with a nil error or on a permanent negative cache.
func TestTracePanicRecorded(t *testing.T) {
	r := NewRunner(1)
	prof := panickingProfile()
	attempt := func() (p any) {
		defer func() { p = recover() }()
		_, _ = r.trace(context.Background(), prof)
		return nil
	}
	for i := 0; i < 2; i++ {
		p := attempt()
		if p == nil {
			t.Fatalf("attempt %d: Materialize panic did not propagate to the owning caller (errored entry served as a hit?)", i)
		}
	}
	if s := r.TraceStats(); s.Errors != 2 || s.Size != 0 {
		t.Errorf("trace memo stats = %+v, want errors=2 size=0 (failed traces must not stay cached)", s)
	}
}

// TestRunWaiterCancellation pins the context plumbing through Runner.result:
// a waiter whose context is already dead must return ctx.Err() promptly
// instead of blocking on the in-flight owner, and the owner's eventual
// result must still land in the memo. The owner is simulated by a manually
// latched entry so the test is timing-independent.
func TestRunWaiterCancellation(t *testing.T) {
	r := NewRunner(raceScale)
	spec := DefaultSpec("gzip", sim.SchemeBaseline)
	k := spec.key()
	m := r.results()
	e := &memoEntry[runKey, sim.Result]{key: k, done: make(chan struct{})}
	m.mu.Lock()
	m.entries[k] = e
	m.inflight++
	m.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	// The slow owner completes; waiters and future calls read its result.
	want := sim.Result{Scheme: "baseline", Cycles: 123, Instructions: 45}
	m.mu.Lock()
	e.val = want
	m.inflight--
	m.pushFront(e)
	m.mu.Unlock()
	close(e.done)
	got, err := r.RunCtx(context.Background(), spec)
	if err != nil || got != want {
		t.Errorf("after owner completion RunCtx = (%+v, %v), want the owner's result", got, err)
	}
}

// TestSweepContainsSimulationPanic pins the service-survival contract: a
// simulation that panics inside a sweep-pool worker must surface as the
// sweep's error, not as an unrecovered panic in a goroutine no caller can
// reach (which would kill a long-lived secsimd process outright). The
// absurd scale makes workload.Materialize's record-count arithmetic
// overflow, so the trace allocation panics for every benchmark.
func TestSweepContainsSimulationPanic(t *testing.T) {
	for _, jobs := range []int{1, 2} {
		r := NewRunner(1e300)
		r.Jobs = jobs
		specs := []Spec{DefaultSpec("gzip", sim.SchemeBaseline), DefaultSpec("mcf", sim.SchemeBaseline)}
		err := r.Sweep(context.Background(), specs)
		if err == nil {
			t.Fatalf("jobs=%d: sweep over panicking simulations returned nil", jobs)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Errorf("jobs=%d: sweep error %q does not report the panic", jobs, err)
		}
	}
}

// TestOwnerDetachedFromCallerContext pins the memo-poisoning fix: the
// goroutine that owns a result entry must run the simulation on a
// background context, so its own caller's cancellation can never be
// recorded as the entry's permanent error. The trace memo is latched
// manually to hold the owner mid-simulation.
func TestOwnerDetachedFromCallerContext(t *testing.T) {
	r := NewRunner(raceScale)
	prof, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	tm := r.traceMemo()
	te := &memoEntry[string, []workload.Record]{key: prof.Name, done: make(chan struct{})}
	tm.mu.Lock()
	tm.entries[prof.Name] = te
	tm.inflight++
	tm.mu.Unlock()

	spec := DefaultSpec("gzip", sim.SchemeBaseline)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resCh := make(chan error, 1)
	go func() {
		_, err := r.RunCtx(ctx, spec)
		resCh <- err
	}()
	// The owner must keep waiting on the shared trace despite its dead
	// ctx — an early context.Canceled here would be memoized forever.
	select {
	case err := <-resCh:
		t.Fatalf("result owner returned early with %v; caller cancellation leaked into the shared computation", err)
	case <-time.After(200 * time.Millisecond):
	}
	sentinel := errors.New("trace failed")
	tm.mu.Lock()
	te.err = sentinel
	tm.inflight--
	tm.pushFront(te)
	tm.mu.Unlock()
	close(te.done)
	if err := <-resCh; !errors.Is(err, sentinel) {
		t.Errorf("owner got %v, want the trace's own error", err)
	}
	// The memo must hold the genuine trace error, not a context error.
	if _, err := r.Run(spec); !errors.Is(err, sentinel) {
		t.Errorf("memoized error is %v, want the trace's own error", err)
	}
}

// TestSweepCancelledReportsCanceled pins the spurious-nil fix: a sweep
// whose context is cancelled must report context.Canceled even when there
// is no key left to trip over — an empty key list, or a cancellation that
// lands after the last simulation completes.
func TestSweepCancelledReportsCanceled(t *testing.T) {
	r := NewRunner(raceScale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if err := r.Sweep(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled empty sweep returned %v, want context.Canceled", err)
	}

	// All specs already memoized: the feed drains instantly and every
	// worker exits cleanly, yet the cancellation must still be reported
	// (both the sequential and the pooled path).
	specs := []Spec{DefaultSpec("gzip", sim.SchemeBaseline), DefaultSpec("mesa", sim.SchemeBaseline)}
	if err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatalf("warmup sweep: %v", err)
	}
	for _, jobs := range []int{1, 4} {
		r.Jobs = jobs
		if err := r.Sweep(ctx, specs); !errors.Is(err, context.Canceled) {
			t.Errorf("jobs=%d: cancelled sweep over memoized specs returned %v, want context.Canceled", jobs, err)
		}
	}
}

// TestSpecValidate covers the shared spec validation the service request
// path relies on.
func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec("gzip", sim.SchemeOTPLRU).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := DefaultSpec("nosuch", sim.SchemeOTPLRU).Validate(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown benchmark accepted: %v", err)
	}
	if err := DefaultSpec("gzip", sim.SchemeRef{Name: "nosuch"}).Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestExpandBenches covers the parser shared by secsim -bench and the
// secsimd request path.
func TestExpandBenches(t *testing.T) {
	if got, err := ExpandBenches("all"); err != nil || len(got) != len(workload.BenchmarkNames) {
		t.Errorf(`ExpandBenches("all") = (%v, %v)`, got, err)
	}
	got, err := ExpandBenches(" gzip , mcf ")
	if err != nil || len(got) != 2 || got[0] != "gzip" || got[1] != "mcf" {
		t.Errorf("comma list = (%v, %v)", got, err)
	}
	if _, err := ExpandBenches("gzip,nosuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := ExpandBenches(" , "); err == nil {
		t.Error("empty list accepted")
	}
}
