package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestMemo(capacity int) *memo[string, int] {
	return newMemo[string, int](capacity, func(k string) string { return "compute " + k })
}

func TestMemoHitMissCounters(t *testing.T) {
	m := newTestMemo(0)
	calls := 0
	get := func(k string) int {
		v, err := m.do(context.Background(), k, func() (int, error) { calls++; return calls, nil })
		if err != nil {
			t.Fatalf("do(%q): %v", k, err)
		}
		return v
	}
	if v := get("a"); v != 1 {
		t.Fatalf("first a = %d, want 1", v)
	}
	if v := get("a"); v != 1 {
		t.Fatalf("memoized a = %d, want 1", v)
	}
	if v := get("b"); v != 2 {
		t.Fatalf("first b = %d, want 2", v)
	}
	s := m.stats()
	if s.Misses != 2 || s.Hits != 1 || s.Coalesced != 0 || s.Evictions != 0 || s.Size != 2 || s.InFlight != 0 {
		t.Errorf("stats = %+v, want misses=2 hits=1 size=2", s)
	}
}

// TestMemoErrorsAreDropped pins the negative-cache fix: a failed computation
// is reported to its callers but not cached, so the next request retries —
// and a retry that succeeds is served as a normal hit thereafter.
func TestMemoErrorsAreDropped(t *testing.T) {
	m := newTestMemo(0)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, err := m.do(context.Background(), "a", func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls != 2 {
		t.Fatalf("failing computation ran %d times, want 2 (errors must not memoize)", calls)
	}
	if s := m.stats(); s.Errors != 2 || s.Size != 0 {
		t.Errorf("stats = %+v, want errors=2 size=0", s)
	}
	// A later attempt that succeeds lands in the memo like any first run.
	v, err := m.do(context.Background(), "a", func() (int, error) { calls++; return 99, nil })
	if err != nil || v != 99 {
		t.Fatalf("recovered computation = (%d, %v), want (99, nil)", v, err)
	}
	v, err = m.do(context.Background(), "a", func() (int, error) { calls++; return -1, nil })
	if err != nil || v != 99 || calls != 3 {
		t.Errorf("after recovery: (%d, %v), calls=%d; want value 99 served as a hit with calls=3", v, err, calls)
	}
}

// TestMemoCoalesce pins the singleflight property: a second caller arriving
// while the first holds the computation joins it instead of recomputing.
func TestMemoCoalesce(t *testing.T) {
	m := newTestMemo(0)
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := m.do(context.Background(), "k", func() (int, error) {
			calls++
			close(started)
			<-release
			return 42, nil
		})
		if v != 42 || err != nil {
			t.Errorf("owner got (%d, %v), want (42, nil)", v, err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := m.do(context.Background(), "k", func() (int, error) { calls++; return -1, nil })
		if v != 42 || err != nil {
			t.Errorf("waiter got (%d, %v), want (42, nil)", v, err)
		}
	}()
	// The waiter must register as coalesced before we release the owner.
	for deadline := time.Now().Add(5 * time.Second); m.stats().Coalesced == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("computation ran %d times, want 1", calls)
	}
	if s := m.stats(); s.Coalesced != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want misses=1 coalesced=1", s)
	}
}

// TestMemoWaiterCancellation is the memo-level half of the service
// contract: a waiter whose context dies returns ctx.Err() promptly while
// the owner's computation keeps running and lands in the memo.
func TestMemoWaiterCancellation(t *testing.T) {
	m := newTestMemo(0)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.do(ctx, "k", func() (int, error) { return -1, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got err %v, want context.Canceled", err)
	}
	close(release)
	<-done
	v, err := m.do(context.Background(), "k", func() (int, error) { return -1, nil })
	if v != 7 || err != nil {
		t.Errorf("after cancellation, memo holds (%d, %v), want (7, nil) — owner's run must survive", v, err)
	}
}

// TestMemoPanicReleasesWaitersWithError pins the stranded-waiter bugfix: a
// panicking computation records the panic as the entry's error before
// re-raising it, so waiters observe a failure instead of a zero value with
// a nil error.
func TestMemoPanicReleasesWaitersWithError(t *testing.T) {
	m := newTestMemo(0)
	started := make(chan struct{})
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	ownerPanic := make(chan any, 1)
	go func() {
		defer func() { ownerPanic <- recover() }()
		m.do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()
	<-started
	go func() {
		_, err := m.do(context.Background(), "k", func() (int, error) { return -1, nil })
		waiterErr <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); m.stats().Coalesced == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if p := <-ownerPanic; p == nil {
		t.Error("panic was swallowed in the owning goroutine; it must re-raise")
	} else if fmt.Sprint(p) != "kaboom" {
		t.Errorf("owner re-panicked with %v, want kaboom", p)
	}
	err := <-waiterErr
	if err == nil {
		t.Fatal("waiter released with nil error after a panic — the stranded-waiter bug")
	}
	if !strings.Contains(err.Error(), "compute k panicked: kaboom") {
		t.Errorf("waiter error %q does not describe the panic", err)
	}
	// The failed entry is dropped, not cached: the next request recomputes
	// and can succeed.
	if v, err := m.do(context.Background(), "k", func() (int, error) { return -1, nil }); err != nil || v != -1 {
		t.Errorf("retry after panic = (%d, %v), want (-1, nil) — panics must not become a permanent negative cache", v, err)
	}
}

// TestMemoCompletedEntryBeatsCancelledContext pins the coalesced-waiter
// select-race fix deterministically: with a completed entry and an
// already-cancelled context both ready, wait must prefer the result. Before
// the fix the two-way select picked randomly, so ~half of these iterations
// returned ctx.Err() for a computation that had in fact finished.
func TestMemoCompletedEntryBeatsCancelledContext(t *testing.T) {
	m := newTestMemo(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		e := &memoEntry[string, int]{key: "k", done: make(chan struct{}), val: 42}
		close(e.done)
		v, err := m.wait(ctx, e)
		if err != nil || v != 42 {
			t.Fatalf("iteration %d: wait = (%d, %v), want (42, nil) — completed entry must beat cancelled ctx", i, v, err)
		}
	}
	// An entry that really is still in flight must still honour cancellation.
	e := &memoEntry[string, int]{key: "k", done: make(chan struct{})}
	if _, err := m.wait(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight wait under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestMemoErroredEntryRetriesUnderRace hammers the error-drop path from many
// goroutines (run with -race): concurrent callers of a flaky key either
// observe the error or a successful value, and once a success lands it is
// stable.
func TestMemoErroredEntryRetriesUnderRace(t *testing.T) {
	m := newTestMemo(0)
	boom := errors.New("boom")
	var mu sync.Mutex
	failsLeft := 25
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v, err := m.do(context.Background(), "k", func() (int, error) {
					mu.Lock()
					defer mu.Unlock()
					if failsLeft > 0 {
						failsLeft--
						return 0, boom
					}
					return 7, nil
				})
				if err == nil && v != 7 {
					t.Errorf("success with wrong value %d", v)
				}
				if err != nil && !errors.Is(err, boom) {
					t.Errorf("unexpected error %v", err)
				}
			}
		}()
	}
	wg.Wait()
	v, err := m.do(context.Background(), "k", func() (int, error) { return -1, nil })
	if err != nil || v != 7 {
		t.Errorf("final state = (%d, %v), want the recovered value (7, nil)", v, err)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := newTestMemo(2)
	get := func(k string, v int) {
		t.Helper()
		got, err := m.do(context.Background(), k, func() (int, error) { return v, nil })
		if err != nil || got != v {
			t.Fatalf("do(%q) = (%d, %v), want %d", k, got, err, v)
		}
	}
	get("a", 1)
	get("b", 2)
	get("a", 1)  // touch a: LRU order is now b, a
	get("c", 3)  // evicts b
	get("b", -2) // recompute proves b was evicted
	if s := m.stats(); s.Evictions != 2 || s.Size != 2 {
		t.Errorf("stats = %+v, want evictions=2 size=2 (b evicted by c, then a evicted by b)", s)
	}
	// a was least-recently-used at the second eviction; c must still hit.
	hitsBefore := m.stats().Hits
	get("c", 3)
	if m.stats().Hits != hitsBefore+1 {
		t.Error("c was evicted; LRU order not honoured")
	}
}

// TestMemoInflightPinned checks the capacity bound never evicts an entry
// whose computation is still running: eviction only walks completed
// entries, so in-flight ones can exceed the capacity transiently.
func TestMemoInflightPinned(t *testing.T) {
	m := newTestMemo(1)
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i, k := range []string{"a", "b"} {
		wg.Add(1)
		go func(k string, v int) {
			defer wg.Done()
			got, err := m.do(context.Background(), k, func() (int, error) {
				started <- struct{}{}
				<-release
				return v, nil
			})
			if err != nil || got != v {
				t.Errorf("do(%q) = (%d, %v), want %d", k, got, err, v)
			}
		}(k, i+10)
	}
	<-started
	<-started
	if s := m.stats(); s.InFlight != 2 || s.Size != 2 || s.Evictions != 0 {
		t.Errorf("two in-flight entries over capacity 1: stats = %+v, want no evictions", s)
	}
	close(release)
	wg.Wait()
	if s := m.stats(); s.Size != 1 || s.Evictions != 1 {
		t.Errorf("after completion the bound applies: stats = %+v, want size=1 evictions=1", s)
	}
}
