package experiments

// memo is the service-grade singleflight cache behind the Runner's result
// and trace memos. It keeps the batch engine's exactly-once property
// (concurrent requests for one key coalesce onto a single computation) and
// adds the lifecycle pieces a long-lived server needs: waiters honour
// context cancellation instead of blocking unconditionally on an in-flight
// computation, completed entries are LRU-evictable under a configurable
// capacity (in-flight entries are pinned), a panicking computation records
// the panic as the entry's error before re-raising it (so waiters never
// observe a zero value with a nil error), failed computations are dropped
// after their waiters are released rather than cached (a transient error
// never becomes a permanent negative cache), and every transition is
// counted for the /metrics endpoint.

import (
	"context"
	"fmt"
	"sync"
)

// CacheStats is a point-in-time snapshot of one memo's counters, exported
// for diagnostics and the secsimd /metrics endpoint.
type CacheStats struct {
	// Size is the number of entries currently memoized, in-flight included.
	Size int `json:"size"`
	// Capacity is the configured bound (0 = unbounded).
	Capacity int `json:"capacity"`
	// InFlight is the number of computations currently executing.
	InFlight int `json:"in_flight"`
	// Hits counts requests answered from a completed entry.
	Hits int64 `json:"hits"`
	// Misses counts requests that started a computation.
	Misses int64 `json:"misses"`
	// Coalesced counts requests that joined an in-flight computation.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts completed entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Errors counts computations that finished with an error (or panic) and
	// were therefore dropped instead of cached — each such key recomputes on
	// its next request.
	Errors int64 `json:"errors"`
}

// memoEntry is one memo slot. The goroutine that inserts the entry owns the
// computation; everyone else waits on done and then reads val/err.
type memoEntry[K comparable, V any] struct {
	key  K
	done chan struct{}
	val  V
	err  error
	// LRU links, valid only for completed entries (the owner links the
	// entry when it records the outcome). In-flight entries are unlinked
	// and therefore pinned: eviction walks the LRU list only.
	prev, next *memoEntry[K, V]
}

// memo deduplicates concurrent computations per key and caches the results
// with optional LRU eviction. Construct with newMemo, or embed the zero
// value and call init before first use (the Runner embeds its memos by
// value to keep them off the per-sweep allocation count).
type memo[K comparable, V any] struct {
	once    sync.Once
	mu      sync.Mutex
	cap     int // <= 0 means unbounded
	entries map[K]*memoEntry[K, V]
	// head/tail are the completed-entry LRU list, most recent first.
	head, tail *memoEntry[K, V]
	inflight   int
	hits       int64
	misses     int64
	coalesced  int64
	evictions  int64
	errors     int64
	// describe renders a key for panic error messages ("simulation
	// mcf/snc-lru"), set per memo so the message names what failed.
	describe func(K) string
}

func newMemo[K comparable, V any](capacity int, describe func(K) string) *memo[K, V] {
	return new(memo[K, V]).init(capacity, describe)
}

// init sets the memo up exactly once (subsequent calls are no-ops) and
// returns it; every access path goes through init, so the sync.Once also
// publishes the fields to concurrent users.
func (m *memo[K, V]) init(capacity int, describe func(K) string) *memo[K, V] {
	m.once.Do(func() {
		m.cap = capacity
		m.describe = describe
		m.entries = make(map[K]*memoEntry[K, V])
	})
	return m
}

// do returns the value for k, computing it via fn at most once no matter
// how many goroutines ask concurrently. Callers that find the key in
// flight coalesce onto the owner's computation; a coalesced waiter whose
// ctx expires returns ctx.Err() promptly while the computation continues
// for everyone else. If fn panics, the panic is recorded as the entry's
// error (waiters observe a failure, never an empty value with a nil error)
// and then re-raised in the owning goroutine.
func (m *memo[K, V]) do(ctx context.Context, k K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[k]; ok {
		select {
		case <-e.done: // completed: a plain cache hit
			m.hits++
			m.moveToFront(e)
			m.mu.Unlock()
			return e.val, e.err
		default:
		}
		m.coalesced++
		m.mu.Unlock()
		return m.wait(ctx, e)
	}
	m.misses++
	m.inflight++
	e := &memoEntry[K, V]{key: k, done: make(chan struct{})}
	m.entries[k] = e
	m.mu.Unlock()

	defer func() {
		p := recover()
		if p != nil {
			e.err = fmt.Errorf("experiments: %s panicked: %v", m.describe(k), p)
		}
		m.mu.Lock()
		m.inflight--
		if e.err != nil {
			// A failed computation must not become a permanent negative
			// cache: drop the entry so the next request recomputes. Waiters
			// already holding the entry pointer still read the error through
			// it after done closes.
			delete(m.entries, e.key)
			m.errors++
		} else {
			m.pushFront(e)
			m.evictLocked()
		}
		m.mu.Unlock()
		close(e.done)
		if p != nil {
			panic(p)
		}
	}()
	e.val, e.err = fn()
	return e.val, e.err
}

// wait blocks a coalesced waiter on e until the computation completes or the
// waiter's context expires. When both are ready, Go's select would otherwise
// pick randomly — nondeterministically returning ctx.Err() for an entry that
// has in fact completed — so the done channel is re-checked first and a
// finished computation always wins over a cancelled context.
func (m *memo[K, V]) wait(ctx context.Context, e *memoEntry[K, V]) (V, error) {
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		select {
		case <-e.done:
			return e.val, e.err
		default:
		}
		var zero V
		return zero, ctx.Err()
	}
}

// evictLocked drops least-recently-used completed entries until at most
// cap of them remain. Only completed entries count against the capacity:
// in-flight ones are pinned off the LRU list and must not force evictions
// of the very results a busy server is serving hits from (a burst of
// distinct in-flight specs would otherwise thrash the completed set down
// to nothing).
func (m *memo[K, V]) evictLocked() {
	for m.cap > 0 && len(m.entries)-m.inflight > m.cap && m.tail != nil {
		e := m.tail
		m.unlink(e)
		delete(m.entries, e.key)
		m.evictions++
	}
}

func (m *memo[K, V]) pushFront(e *memoEntry[K, V]) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	} else {
		m.tail = e
	}
	m.head = e
}

func (m *memo[K, V]) unlink(e *memoEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *memo[K, V]) moveToFront(e *memoEntry[K, V]) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

// size reports the number of memoized entries (in-flight included).
func (m *memo[K, V]) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// keys snapshots the memoized keys in map order.
func (m *memo[K, V]) keys() []K {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]K, 0, len(m.entries))
	for k := range m.entries {
		out = append(out, k)
	}
	return out
}

// stats snapshots the counters.
func (m *memo[K, V]) stats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return CacheStats{
		Size:      len(m.entries),
		Capacity:  m.cap,
		InFlight:  m.inflight,
		Hits:      m.hits,
		Misses:    m.misses,
		Coalesced: m.coalesced,
		Evictions: m.evictions,
		Errors:    m.errors,
	}
}
