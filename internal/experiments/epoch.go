package experiments

// Intra-simulation parallelism. The sweep engine's natural unit of
// concurrency is the whole simulation (Runner.Jobs fans runKeys out over a
// worker pool), which leaves cores idle whenever fewer distinct
// configurations remain than workers — the tail of every sweep, and the
// common case for secsimd serving one uncached request. Setting
// Runner.SimJobs > 1 lets a single simulation borrow those idle cores:
// simulate() splits the measured phase into SimJobs epochs and runs them
// through sim.EpochSim, which speculates later epochs from recorded boundary
// predictions and verifies before committing (see internal/sim/parallel.go).
//
// The two levels share one budget — dispatch.Budget, the same ledger the
// weighted-fair dispatcher schedules sweep jobs against. Each in-flight
// simulation holds one slot (the goroutine running it); extra intra-sim
// workers are drawn from the budget's slack just in time, one epoch leg at
// a time (sim.EpochSim.RunMeasuredBudget), and returned the moment the leg
// finishes. A saturated sweep therefore degrades to one-worker-per-
// simulation behaviour, while a lone request on an idle Runner fans out
// across the machine. Drawing never blocks and never over-commits, so no
// interleaving of sweeps and single runs can deadlock or oversubscribe.

import (
	"strconv"
	"sync"

	"secureproc/internal/sim"
)

// epochSimCapacity bounds the EpochSim cache. Entries are heavyweight — an
// EpochSim holds K full systems plus 2(K+1) boundary checkpoints (the OTP
// configurations run to low tens of MB each) — but the cache only pays off
// for configurations that are re-simulated repeatedly at the same scale
// (the perf harness, repeated secsimd requests after result-memo eviction),
// so a small bound captures the win without hoarding memory.
const epochSimCapacity = 8

// EpochCacheStats is a point-in-time snapshot of the EpochSim cache's
// counters, exported for diagnostics and the secsimd /metrics endpoint.
type EpochCacheStats struct {
	// Size is the number of cached epoch simulators.
	Size int `json:"size"`
	// Capacity is the cache bound.
	Capacity int `json:"capacity"`
	// Hits counts parallel runs that reused a cached EpochSim (and with it
	// the recorded boundary predictions, which is what makes the warm run
	// speculate successfully).
	Hits int64 `json:"hits"`
	// Misses counts parallel runs that built a fresh EpochSim.
	Misses int64 `json:"misses"`
	// Evictions counts simulators dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
}

// esEntry is one cached epoch simulator with intrusive LRU links.
type esEntry struct {
	key        string
	es         *sim.EpochSim
	prev, next *esEntry
}

// epochSimCache is a mutex-guarded LRU map of epoch simulators, keyed by the
// persistent store key (configuration + scale — predictions are recorded
// per measured-trace length, so the scale is part of the identity) plus the
// epoch count. An EpochSim serializes its own runs internally, so handing
// one entry to two concurrent borrowers is safe, merely sequential.
type epochSimCache struct {
	mu         sync.Mutex
	cap        int
	entries    map[string]*esEntry
	head, tail *esEntry
	hits       int64
	misses     int64
	evictions  int64
}

// epochSims is the process-wide cache, shared across Runners exactly like
// the post-warmup checkpoint cache in checkpoint.go.
var epochSims = &epochSimCache{
	cap:     epochSimCapacity,
	entries: make(map[string]*esEntry),
}

// epochKey names the EpochSim for k at this Runner's scale with epochs
// epochs.
func (r *Runner) epochKey(k runKey, epochs int) string {
	return r.storeKey(k) + "|e" + strconv.Itoa(epochs)
}

// get returns the cached simulator, refreshing its recency.
func (c *epochSimCache) get(key string) (*sim.EpochSim, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.es, true
}

// put caches the simulator, evicting beyond capacity.
func (c *epochSimCache) put(key string, es *sim.EpochSim) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.es = es
		c.moveToFront(e)
		return
	}
	e := &esEntry{key: key, es: es}
	c.entries[key] = e
	c.pushFront(e)
	for c.cap > 0 && len(c.entries) > c.cap && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions++
	}
}

func (c *epochSimCache) pushFront(e *esEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	} else {
		c.tail = e
	}
	c.head = e
}

func (c *epochSimCache) unlink(e *esEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *epochSimCache) moveToFront(e *esEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *epochSimCache) stats() EpochCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EpochCacheStats{
		Size:      len(c.entries),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// EpochSimCacheStats snapshots the process-wide EpochSim cache counters.
func EpochSimCacheStats() EpochCacheStats { return epochSims.stats() }

// SimJobsAuto, assigned to Runner.SimJobs, sizes each simulation's epoch
// count adaptively from the shared budget's observed slack at launch
// instead of a fixed K: a lone request on an idle 8-slot Runner splits 8
// ways, the same request arriving while a sweep saturates the budget runs
// serially, and anything between gets what is actually idle.
const SimJobsAuto = -1

// maxAdaptiveEpochs caps the adaptive split. Epoch legs shorten as K
// grows (diminishing returns) while every K seen materializes its own
// EpochSim (K systems + boundary checkpoints) in the process-wide cache,
// so an adaptive Runner on a very wide machine stops at a split that
// still pays for itself.
const maxAdaptiveEpochs = 8

// epochCount resolves how many epochs simulateParallel should split the
// measured phase into right now: 1 (serial) when intra-sim parallelism is
// off or the budget has no idle slot — speculation without a second
// worker is pure overhead — else the static SimJobs setting, or under
// SimJobsAuto one epoch per idle slot plus the caller's own. The slack
// read is advisory: legs re-check the budget as they run, so a stale
// answer only costs speculation efficiency, never correctness.
func (r *Runner) epochCount() int {
	if r.SimJobs != SimJobsAuto && r.SimJobs <= 1 {
		return 1
	}
	slack := r.bud().Slack()
	if slack < 1 {
		return 1
	}
	if r.SimJobs != SimJobsAuto {
		return r.SimJobs
	}
	k := 1 + slack
	if k > maxAdaptiveEpochs {
		k = maxAdaptiveEpochs
	}
	return k
}

// SpeculationTotals aggregates the speculation bookkeeping across every
// epoch-parallel run this Runner dispatched, for diagnostics and the
// secsimd /metrics endpoint. Serial simulations contribute nothing.
type SpeculationTotals struct {
	// ParallelRuns counts simulations whose measured phase ran through an
	// EpochSim (i.e. SimJobs > 1 and the budget had slack).
	ParallelRuns int64 `json:"parallel_runs"`
	// Epochs, Commits and Rollbacks sum sim.SpecStats over those runs.
	Epochs    int64 `json:"epochs"`
	Commits   int64 `json:"commits"`
	Rollbacks int64 `json:"rollbacks"`
	// ResimCycles sums the simulated cycles re-executed by rollbacks — the
	// total price of misspeculation.
	ResimCycles int64 `json:"resim_cycles"`
}

// SpeculationStats snapshots the Runner's speculation totals.
func (r *Runner) SpeculationStats() SpeculationTotals {
	return SpeculationTotals{
		ParallelRuns: r.parallelRuns.Load(),
		Epochs:       r.specEpochs.Load(),
		Commits:      r.specCommits.Load(),
		Rollbacks:    r.specRollbacks.Load(),
		ResimCycles:  r.specResim.Load(),
	}
}

// recordSpeculation folds one parallel run's bookkeeping into the totals.
func (r *Runner) recordSpeculation(s sim.SpecStats) {
	r.parallelRuns.Add(1)
	r.specEpochs.Add(int64(s.Epochs))
	r.specCommits.Add(int64(s.Commits))
	r.specRollbacks.Add(int64(s.Rollbacks))
	r.specResim.Add(int64(s.ResimCycles))
}
