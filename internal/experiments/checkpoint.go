package experiments

// Post-warmup checkpoint forking (SMARTS/SimPoint-style). Every simulation
// of a runKey replays the same trace, and its warmup prefix is never scaled
// (workload.Profile.WarmupRefs), so the machine state at the
// warmup/measurement boundary is a pure function of the runKey — independent
// of the Runner's Scale, which only stretches the measured phase. simulate()
// therefore warms each configuration up once, checkpoints the boundary
// state, and forks every later measurement run (typically from a different
// Runner instance: the perf harness, a restarted golden job, repeated
// secsimd requests after memo eviction) from the checkpoint instead of
// re-simulating the warmup.
//
// The cache is package-level and bounded: within one Runner the result memo
// already guarantees at most one simulation per key, so checkpoints pay off
// exactly when Runners come and go. Entries are deep snapshots (a restore
// copies out of them, never into them), so concurrent restores of one entry
// are safe and a racing duplicate put is benign (last write wins, both
// values are equivalent by construction).

import (
	"sync"

	"secureproc/internal/sim"
)

// checkpointCapacity bounds the checkpoint cache. The full figure set needs
// ~150 distinct configurations; OTP checkpoints are the largest (SNC
// contents + sequence tables, low single-digit MB each), so the bound keeps
// worst-case retention in the low hundreds of MB while comfortably holding
// every configuration the batch sweeps touch.
const checkpointCapacity = 256

// CheckpointStats is a point-in-time snapshot of the checkpoint cache's
// counters, exported for diagnostics and the secsimd /metrics endpoint.
type CheckpointStats struct {
	// Size is the number of cached checkpoints.
	Size int `json:"size"`
	// Capacity is the cache bound.
	Capacity int `json:"capacity"`
	// Hits counts simulations forked from a checkpoint (warmup skipped).
	Hits int64 `json:"hits"`
	// Misses counts simulations that ran their warmup (and, when the scheme
	// supports snapshotting, left a checkpoint behind).
	Misses int64 `json:"misses"`
	// Evictions counts checkpoints dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
}

// cpEntry is one cached checkpoint with intrusive LRU links.
type cpEntry struct {
	key        runKey
	cp         *sim.Checkpoint
	prev, next *cpEntry
}

// checkpointCache is a mutex-guarded LRU map of post-warmup checkpoints.
// No singleflight: the result memo already deduplicates within a Runner, and
// a cross-Runner duplicate warmup is rare and harmless.
type checkpointCache struct {
	mu         sync.Mutex
	cap        int
	entries    map[runKey]*cpEntry
	head, tail *cpEntry
	hits       int64
	misses     int64
	evictions  int64
}

// checkpoints is the process-wide cache keyed by runKey. The key carries the
// full configuration (benchmark, scheme, SNC and L2 geometry, crypto
// latency) and deliberately not the scale — see the file comment.
var checkpoints = &checkpointCache{
	cap:     checkpointCapacity,
	entries: make(map[runKey]*cpEntry),
}

// get returns the checkpoint for k, refreshing its recency. The miss
// counter is charged here: every simulate() call asks exactly once.
func (c *checkpointCache) get(k runKey) (*sim.Checkpoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.cp, true
}

// put caches the checkpoint for k, evicting the least-recently-used entry
// beyond capacity.
func (c *checkpointCache) put(k runKey, cp *sim.Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.cp = cp
		c.moveToFront(e)
		return
	}
	e := &cpEntry{key: k, cp: cp}
	c.entries[k] = e
	c.pushFront(e)
	for c.cap > 0 && len(c.entries) > c.cap && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions++
	}
}

func (c *checkpointCache) pushFront(e *cpEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	} else {
		c.tail = e
	}
	c.head = e
}

func (c *checkpointCache) unlink(e *cpEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *checkpointCache) moveToFront(e *cpEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *checkpointCache) stats() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CheckpointStats{
		Size:      len(c.entries),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// CheckpointCacheStats snapshots the process-wide checkpoint cache counters.
func CheckpointCacheStats() CheckpointStats { return checkpoints.stats() }
