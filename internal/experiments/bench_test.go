package experiments

import (
	"runtime"
	"testing"
)

// benchScale keeps one full sweep around a second of work so the
// sequential/parallel comparison is dominated by simulation, not setup.
const benchScale = 0.02

func benchmarkAll(b *testing.B, jobs int) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(benchScale)
		r.Jobs = jobs
		if got, want := len(r.All()), len(Names()); got != want {
			b.Fatalf("got %d figures, want %d", got, want)
		}
	}
}

// BenchmarkAllSequential is the old single-worker sweep; compare against
// BenchmarkAllParallel to measure the pool's wall-clock speedup (on a
// ≥4-core machine the parallel sweep is expected to be ≥2× faster).
func BenchmarkAllSequential(b *testing.B) { benchmarkAll(b, 1) }

// BenchmarkAllParallel fans the same sweep out over GOMAXPROCS workers.
func BenchmarkAllParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Log("single-CPU machine: parallel sweep degrades to sequential")
	}
	benchmarkAll(b, 0)
}
