package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// TestExpandBenchesDedupe is the regression test for the duplicate-benchmark
// bug: "gzip,mcf,gzip" used to produce three specs, so the same simulation
// ran (or was memo-answered) twice and sweeps reported inflated counts. The
// parser must keep the first occurrence of each name and drop the rest.
func TestExpandBenchesDedupe(t *testing.T) {
	got, err := ExpandBenches("gzip,mcf,gzip")
	if err != nil || len(got) != 2 || got[0] != "gzip" || got[1] != "mcf" {
		t.Errorf(`ExpandBenches("gzip,mcf,gzip") = (%v, %v), want [gzip mcf]`, got, err)
	}
	got, err = ExpandBenches(" mcf , gzip ,mcf,  mcf ")
	if err != nil || len(got) != 2 || got[0] != "mcf" || got[1] != "gzip" {
		t.Errorf("repeated-name list = (%v, %v), want [mcf gzip]", got, err)
	}
	// "all" must hand back a copy: callers sort and slice the result, and
	// that must never reorder the canonical workload.BenchmarkNames.
	all, err := ExpandBenches("all")
	if err != nil {
		t.Fatalf(`ExpandBenches("all"): %v`, err)
	}
	if len(all) == 0 {
		t.Fatal(`ExpandBenches("all") returned no benchmarks`)
	}
	first := workload.BenchmarkNames[0]
	all[0] = "clobbered"
	if workload.BenchmarkNames[0] != first {
		t.Fatal(`ExpandBenches("all") aliases workload.BenchmarkNames`)
	}
}

func TestParseSimJobs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"auto", SimJobsAuto},
		{" AUTO ", SimJobsAuto},
		{"0", 0},
		{"1", 1},
		{"4", 4},
	} {
		got, err := ParseSimJobs(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSimJobs(%q) = (%d, %v), want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"-2", "many", "", "1.5"} {
		if _, err := ParseSimJobs(bad); err == nil {
			t.Errorf("ParseSimJobs(%q) accepted, want error", bad)
		}
	}
}

// TestSimJobsAutoEquivalence: a Runner with SimJobs = SimJobsAuto sizes the
// epoch split from the dispatch budget's observed slack instead of a fixed
// K, and must still return byte-identical results. A direct Run on an
// otherwise idle 4-slot budget holds one slot itself, leaving slack 3, so
// the adaptive split is deterministically 4 epochs.
//
// The scale is unique to this test so the process-wide epoch and checkpoint
// caches cannot hand it entries recorded by other tests.
func TestSimJobsAutoEquivalence(t *testing.T) {
	const scale = 0.024
	s := epochSpec(t, "mcf", schemeLRU)

	serial := NewRunner(scale)
	serial.Jobs = 1
	want, err := serial.Run(s)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	auto := NewRunner(scale)
	auto.Jobs = 4
	auto.SimJobs = SimJobsAuto
	got, err := auto.Run(s)
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if got != want {
		t.Errorf("adaptive parallel result diverged:\n got %+v\nwant %+v", got, want)
	}
	st := auto.SpeculationStats()
	if st.ParallelRuns != 1 || st.Epochs != 4 {
		t.Errorf("speculation %+v, want 1 parallel run split into 4 epochs (cap 4, one slot held by the run itself)", st)
	}

	// Auto on a single-slot budget must degrade to the serial path.
	narrow := NewRunner(scale)
	narrow.Jobs = 1
	narrow.SimJobs = SimJobsAuto
	res, err := narrow.Run(epochSpec(t, "gzip", schemeLRU))
	if err != nil {
		t.Fatalf("narrow auto: %v", err)
	}
	if res.Instructions == 0 {
		t.Error("narrow auto run returned an empty result")
	}
	if st := narrow.SpeculationStats(); st.ParallelRuns != 0 {
		t.Errorf("1-slot auto runner recorded %d parallel runs, want 0 (no slack to split)", st.ParallelRuns)
	}
}

// TestSweepEachStreaming: SweepEach must invoke the callback exactly once
// per spec, serialized, with results identical to Run's, and must not wait
// for the whole sweep before the first callback (that property is pinned
// end-to-end by the server streaming tests; here we pin per-spec delivery
// and completeness).
func TestSweepEachStreaming(t *testing.T) {
	const scale = 0.025
	specs := []Spec{
		epochSpec(t, "mcf", schemeLRU),
		epochSpec(t, "gzip", schemeLRU),
		epochSpec(t, "parser", schemeLRU),
	}
	r := NewRunner(scale)
	r.Jobs = 2

	var mu sync.Mutex
	results := make(map[int]sim.Result)
	err := r.SweepEach(context.Background(), specs, func(i int, res sim.Result, err error) {
		if err != nil {
			t.Errorf("spec %d: %v", i, err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if _, dup := results[i]; dup {
			t.Errorf("spec %d delivered twice", i)
		}
		results[i] = res
	})
	if err != nil {
		t.Fatalf("SweepEach: %v", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("delivered %d results, want %d", len(results), len(specs))
	}
	for i, s := range specs {
		want, err := r.Run(s) // memo hit: must match what the sweep delivered
		if err != nil {
			t.Fatalf("Run(%d): %v", i, err)
		}
		if results[i] != want {
			t.Errorf("spec %d: streamed result diverged from Run", i)
		}
	}
}

// TestRunDispatchedSheds: a request whose context is already dead must not
// burn a worker slot on a simulation nobody is waiting for.
func TestRunDispatchedSheds(t *testing.T) {
	r := NewRunner(0.025)
	r.Jobs = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunDispatched(ctx, epochSpec(t, "vpr", schemeLRU)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunDispatched on dead context = %v, want context.Canceled", err)
	}
	if n := r.Simulations(); n != 0 {
		t.Errorf("shed request still ran %d simulations", n)
	}
	if st := r.MemoStats(); st.Size != 0 {
		t.Errorf("shed request left %d memoized results, want 0", st.Size)
	}
}
