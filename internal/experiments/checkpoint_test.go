package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"secureproc/internal/sim"
	"secureproc/internal/store"
	"secureproc/internal/workload"
)

// cpScale keeps the equivalence sweeps quick; the properties under test
// (checkpoint forking, store warm starts) are scale-independent.
const cpScale = 0.02

// straightThrough simulates one spec with a bare sim.System — no memo, no
// checkpoint cache — as the ground truth Runner.Run must match.
func straightThrough(t *testing.T, r *Runner, sp Spec) sim.Result {
	t.Helper()
	prof, ok := workload.ByName(sp.Bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", sp.Bench)
	}
	recs, err := workload.Materialize(prof, r.Scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := r.config(sp.key())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := prof.WarmupRefs()
	if warm > len(recs) {
		warm = len(recs)
	}
	return sys.Run(workload.Replay(recs), warm)
}

// TestRunnerMatchesStraightThrough is the end-to-end checkpoint-equivalence
// property: whether a Runner's simulation warms up from scratch (and leaves
// a checkpoint behind) or forks from the process-wide checkpoint cache —
// populated by an earlier Runner, possibly at a different scale — the Result
// must be identical to a bare straight-through simulation.
func TestRunnerMatchesStraightThrough(t *testing.T) {
	specs := []Spec{
		DefaultSpec("gzip", sim.SchemeOTPLRU),
		DefaultSpec("mcf", sim.SchemeOTPMAC),
		DefaultSpec("art", sim.SchemeXOM),
	}
	for _, sp := range specs {
		cold := NewRunner(cpScale)
		want := straightThrough(t, cold, sp)
		got, err := cold.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s/%s: first Runner.Run diverged from straight-through:\n got %+v\nwant %+v",
				sp.Bench, sp.Scheme.Canonical(), got, want)
		}
		// A second Runner is guaranteed to find the checkpoint the first one
		// left (its own memo is empty, so it simulates again — forked).
		before := CheckpointCacheStats()
		warm := NewRunner(cpScale)
		got2, err := warm.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got2 != want {
			t.Errorf("%s/%s: forked Runner.Run diverged from straight-through:\n got %+v\nwant %+v",
				sp.Bench, sp.Scheme.Canonical(), got2, want)
		}
		if after := CheckpointCacheStats(); after.Hits <= before.Hits {
			t.Errorf("%s/%s: second Runner did not fork from the checkpoint cache (hits %d -> %d)",
				sp.Bench, sp.Scheme.Canonical(), before.Hits, after.Hits)
		}
		if warm.Simulations() != 1 {
			t.Errorf("forked Runner ran %d simulations, want 1", warm.Simulations())
		}
	}
}

// TestForkedFiguresByteIdentical renders every figure through two
// independent Runners: the second answers nothing from its own memo, so its
// measurement runs fork from the checkpoints of the first wherever possible.
// Every rendered table must come out byte-identical.
func TestForkedFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	r1 := NewRunner(cpScale)
	r1.Jobs = 4
	first := r1.All()
	r2 := NewRunner(cpScale)
	r2.Jobs = 4
	second := r2.All()
	if len(first) != len(second) {
		t.Fatalf("figure counts differ: %d vs %d", len(first), len(second))
	}
	names := Names()
	for i := range first {
		if a, b := first[i].Render(), second[i].Render(); a != b {
			t.Errorf("%s: forked rerun rendered differently\nfirst:\n%s\nsecond:\n%s", names[i], a, b)
		}
	}
}

// TestRunnerStoreWarmStart covers the persistence tentpole at the Runner
// level: a second Runner over the same store directory answers from disk
// without simulating, and a damaged entry degrades to recompute — with the
// same Result — rather than serving garbage or failing.
func TestRunnerStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	sp := DefaultSpec("gzip", sim.SchemeOTPLRU)

	st1, err := store.Open(dir, sim.TimingModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(cpScale)
	r1.Store = st1
	want, err := r1.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if s := st1.Stats(); s.Writes != 1 || s.Misses != 1 {
		t.Fatalf("first run store stats = %+v, want 1 miss + 1 write", s)
	}

	// Cold process, warm disk: no simulation at all.
	st2, err := store.Open(dir, sim.TimingModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(cpScale)
	r2.Store = st2
	got, err := r2.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("stored result differs:\n got %+v\nwant %+v", got, want)
	}
	if r2.Simulations() != 0 {
		t.Errorf("warm-started Runner ran %d simulations, want 0", r2.Simulations())
	}
	if s := st2.Stats(); s.Hits != 1 {
		t.Errorf("warm start store stats = %+v, want 1 hit", s)
	}

	// Damage the entry: the next cold Runner must recompute gracefully.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("entry files = %v (err %v), want exactly 1", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir, sim.TimingModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(cpScale)
	r3.Store = st3
	got3, err := r3.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got3 != want {
		t.Errorf("recomputed result differs:\n got %+v\nwant %+v", got3, want)
	}
	if r3.Simulations() != 1 {
		t.Errorf("Runner over a corrupt store ran %d simulations, want 1", r3.Simulations())
	}
	if s := st3.Stats(); s.Corrupt != 1 || s.Writes != 1 {
		t.Errorf("corrupt-entry store stats = %+v, want corrupt=1 writes=1 (repaired)", s)
	}

	// And the repair took: a fourth Runner warm-starts again.
	st4, err := store.Open(dir, sim.TimingModelVersion)
	if err != nil {
		t.Fatal(err)
	}
	r4 := NewRunner(cpScale)
	r4.Store = st4
	if got4, err := r4.Run(sp); err != nil || got4 != want {
		t.Errorf("after repair: result %+v (err %v), want %+v", got4, err, want)
	}
	if r4.Simulations() != 0 {
		t.Errorf("post-repair Runner ran %d simulations, want 0", r4.Simulations())
	}
}
