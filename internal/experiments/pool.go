package experiments

// This file is the concurrent sweep engine behind the figures: a
// singleflight-style memo (per-key latches, so concurrent requests for the
// same configuration block on one simulation instead of racing or
// double-computing) plus a context-aware worker pool that fans a list of
// runKeys out over up to Runner.Jobs goroutines. Every simulation builds
// its own sim.System, workload stream and RNG, so workers share nothing
// but the memo.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// entry is one memo slot. The goroutine that inserts the entry owns the
// simulation; everyone else blocks on done and then reads res/err.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// result executes (or recalls) the simulation for k, deduplicating
// concurrent requests for the same key.
func (r *Runner) result(k runKey) (sim.Result, error) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[runKey]*entry)
	}
	if e, ok := r.cache[k]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	r.cache[k] = e
	r.mu.Unlock()

	// A panicking simulation must not strand waiters on the latch, and it
	// must not release them with a zero result and nil error: record the
	// panic as the entry's error, then re-panic in the owning goroutine.
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("experiments: simulation %s/%s panicked: %v", k.bench, k.scheme, p)
			close(e.done)
			panic(p)
		}
		close(e.done)
	}()
	e.res, e.err = r.simulate(k)
	return e.res, e.err
}

// simulate runs one simulation: fresh system, shared materialized trace.
// Every configuration of one benchmark replays the same record sequence
// (identical to what a fresh generator would emit), so trace generation
// costs once per benchmark instead of once per simulation.
func (r *Runner) simulate(k runKey) (sim.Result, error) {
	prof, ok := workload.ByName(k.bench)
	if !ok {
		return sim.Result{}, fmt.Errorf("experiments: unknown benchmark %q", k.bench)
	}
	cfg, err := r.config(k)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %w", err)
	}
	recs, err := r.trace(prof)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %w", err)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	r.sims.Add(1)
	return sys.Run(workload.Replay(recs), prof.WarmupRefs()), nil
}

// traceEntry is one memoized benchmark trace, latched like the result memo
// so concurrent workers materialize each trace exactly once.
type traceEntry struct {
	done chan struct{}
	recs []workload.Record
	err  error
}

// trace returns the materialized record sequence for prof at the Runner's
// scale, generating it on first use.
func (r *Runner) trace(prof workload.Profile) ([]workload.Record, error) {
	r.traceMu.Lock()
	if r.traces == nil {
		r.traces = make(map[string]*traceEntry)
	}
	if e, ok := r.traces[prof.Name]; ok {
		r.traceMu.Unlock()
		<-e.done
		return e.recs, e.err
	}
	e := &traceEntry{done: make(chan struct{})}
	r.traces[prof.Name] = e
	r.traceMu.Unlock()
	defer close(e.done)
	e.recs, e.err = workload.Materialize(prof, r.Scale)
	return e.recs, e.err
}

// jobs resolves the effective worker count.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// sweep memoizes every key, fanning the list out over the worker pool. It
// returns when all simulations are done, the context is cancelled, or a
// simulation fails (first error wins; in-flight work is cancelled). With
// one worker (or one key) it degrades to the plain sequential loop.
func (r *Runner) sweep(ctx context.Context, keys []runKey) error {
	n := r.jobs()
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 1 {
		for _, k := range keys {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := r.result(k); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	work := make(chan runKey)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range work {
				if ctx.Err() != nil {
					return
				}
				if _, err := r.result(k); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}()
	}
feed:
	for _, k := range keys {
		select {
		case work <- k:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Spec is the exported face of a runKey: one simulation in the sweep
// engine's memo space. The zero value is not useful — start from
// DefaultSpec and tweak.
type Spec struct {
	// Bench is the benchmark name (workload.BenchmarkNames).
	Bench string
	// Scheme is the protection scheme to simulate: any registered scheme
	// reference (sim.SchemeBaseline, or one built via sim.SchemeByName).
	Scheme sim.SchemeRef
	// SNCKB and SNCWays configure the sequence number cache (ways 0 =
	// fully associative).
	SNCKB, SNCWays int
	// L2KB and L2Ways configure the unified L2.
	L2KB, L2Ways int
	// CryptoLat is the crypto unit latency in cycles.
	CryptoLat uint64
}

// DefaultSpec is the paper's standard configuration for a benchmark/scheme:
// 64KB fully associative SNC, 256KB 4-way L2, 50-cycle crypto.
func DefaultSpec(bench string, scheme sim.SchemeRef) Spec {
	return Spec{Bench: bench, Scheme: scheme, SNCKB: 64, L2KB: 256, L2Ways: 4, CryptoLat: 50}
}

func (s Spec) key() runKey {
	return runKey{bench: s.Bench, scheme: s.Scheme.Canonical(), sncKB: s.SNCKB, sncWays: s.SNCWays,
		l2KB: s.L2KB, l2Ways: s.L2Ways, cryptoLat: s.CryptoLat}
}

// Run executes (or recalls) the simulation for one spec.
func (r *Runner) Run(s Spec) (sim.Result, error) { return r.result(s.key()) }

// Sweep memoizes every spec using up to Jobs concurrent workers, so a later
// Run for any of them returns instantly. Specs already memoized cost
// nothing; duplicate specs are deduplicated.
func (r *Runner) Sweep(ctx context.Context, specs []Spec) error {
	keys := make([]runKey, len(specs))
	for i, s := range specs {
		keys[i] = s.key()
	}
	return r.sweep(ctx, keys)
}
