package experiments

// This file is the concurrent sweep engine behind the figures and the
// secsimd service: a singleflight-style memo (per-key latches, so
// concurrent requests for the same configuration block on one simulation
// instead of racing or double-computing) fed by the dispatch layer's
// weighted-fair scheduler, which fans runKeys out over the shared worker
// budget (Runner.Jobs slots). Every simulation builds its own sim.System,
// workload stream and RNG, so concurrent jobs share nothing but the memo.
// The memo mechanics (coalescing, cancellation, LRU eviction, panic
// recording) live in memo.go; the scheduling mechanics (budget, fairness,
// admission) live in internal/dispatch.

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"secureproc/internal/core"
	"secureproc/internal/dispatch"
	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// results returns the result memo, initializing it on first use so
// Capacity can be set after NewRunner but before the first request.
func (r *Runner) results() *memo[runKey, sim.Result] {
	return r.cache.init(r.Capacity, func(k runKey) string {
		return fmt.Sprintf("simulation %s/%s", k.bench, k.scheme)
	})
}

// result executes (or recalls) the simulation for k, deduplicating
// concurrent requests for the same key. A caller whose ctx expires while
// another goroutine owns the in-flight simulation returns ctx.Err()
// promptly; the simulation itself always runs to completion so the result
// is memoized for everyone else. With a persistent store attached, a memo
// miss consults the store before simulating and a fresh simulation is
// spilled back to it — errored computations are dropped by the memo and
// never reach the store.
//
// held reports whether the caller already holds one slot of the shared
// worker budget (a dispatcher job does; a direct library call does not),
// so the simulation charges the budget exactly once either way.
func (r *Runner) result(ctx context.Context, k runKey, held bool) (sim.Result, error) {
	return r.results().do(ctx, k, func() (sim.Result, error) {
		if r.Store != nil {
			var res sim.Result
			if r.Store.Load(r.storeKey(k), &res) {
				return res, nil
			}
		}
		// The owner's simulation is deliberately detached from ctx:
		// cancellation governs waiting, never the shared computation. If
		// the caller's ctx flowed in here, an owner coalescing onto an
		// in-flight trace could record its own timeout as the entry's
		// permanent error, poisoning the spec for every future request.
		res, err := r.simulate(context.Background(), k, held) //secsim:detach memo owner: a caller timeout must not poison the shared entry
		if err == nil && r.Store != nil {
			r.Store.Save(r.storeKey(k), res)
		}
		return res, err
	})
}

// resultSafe is result with the long-lived service's panic containment: a
// re-raised simulation panic is converted into an error (the memo has
// already recorded it as the entry's error) so one poisoned key fails its
// own job instead of killing the process — essential for secsimd, where
// dispatched jobs run in goroutines no HTTP-layer recover can reach.
func (r *Runner) resultSafe(ctx context.Context, k runKey, held bool) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: simulation %s/%s panicked: %v", k.bench, k.scheme, p)
		}
	}()
	return r.result(ctx, k, held)
}

// resultErr is resultSafe for callers that run on their own goroutine
// (the sequential sweep loop) and only need the outcome.
func (r *Runner) resultErr(ctx context.Context, k runKey) error {
	_, err := r.resultSafe(ctx, k, false)
	return err
}

// simulate runs one simulation: fresh system, shared materialized trace.
// Every configuration of one benchmark replays the same record sequence
// (identical to what a fresh generator would emit), so trace generation
// costs once per benchmark instead of once per simulation. The warmup
// prefix additionally forks from the process-wide checkpoint cache (see
// checkpoint.go): the first simulation of a configuration warms up and
// checkpoints the boundary state, later ones restore it and run only the
// measured phase — event-for-event identical to the straight-through run.
//
// With SimJobs > 1 (or SimJobsAuto) and slack in the shared worker budget,
// the measured phase instead runs epoch-parallel through a cached
// sim.EpochSim (see epoch.go); its Result is byte-identical to the serial
// path's, so the memo, the persistent store and the goldens never see which
// path produced a number.
func (r *Runner) simulate(ctx context.Context, k runKey, held bool) (sim.Result, error) {
	prof, ok := workload.ByName(k.bench)
	if !ok {
		return sim.Result{}, fmt.Errorf("experiments: unknown benchmark %q", k.bench)
	}
	cfg, err := r.config(k)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %w", err)
	}
	recs, err := r.trace(ctx, prof)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %w", err)
	}
	if !held {
		// Direct callers charge the budget themselves; Hold never blocks
		// (overcommit just leaves no slack for epoch workers), matching a
		// dispatched job's one-slot footprint.
		b := r.bud()
		b.Hold()
		defer b.Release(1)
	}
	warm := prof.WarmupRefs()
	if warm > len(recs) {
		warm = len(recs)
	}
	if res, ok, err := r.simulateParallel(k, cfg, recs, warm); ok || err != nil {
		return res, err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	r.sims.Add(1)
	if cp, ok := checkpoints.get(k); ok {
		if sys.Restore(cp) == nil {
			return sys.RunMeasured(workload.Replay(recs[warm:])), nil
		}
	}
	sys.RunWarmup(workload.Replay(recs[:warm]))
	if cp, ok := sys.Checkpoint(); ok {
		checkpoints.put(k, cp)
	}
	return sys.RunMeasured(workload.Replay(recs[warm:])), nil
}

// simulateParallel attempts the epoch-parallel measured phase: it fires only
// when the Runner grants intra-sim workers (SimJobs > 1, or SimJobsAuto)
// AND the shared budget has at least one idle slot. ok=false means "run the
// serial path" — either the feature is off, the budget is saturated, or the
// scheme cannot checkpoint (EpochSim requires snapshottable, hashable
// state). The run draws its extra workers from the dispatch budget just in
// time, leg by leg (sim.EpochSim.RunMeasuredBudget), rather than reserving
// them up front — slack that appears mid-run is used, slack that vanishes
// degrades the run toward serial. The speculation bookkeeping is folded
// into the Runner's totals and stripped from the returned Result, which
// keeps every memoized/stored Result a pure function of the configuration
// regardless of execution path.
func (r *Runner) simulateParallel(k runKey, cfg sim.Config, recs []workload.Record, warm int) (res sim.Result, ok bool, err error) {
	epochs := r.epochCount()
	if epochs <= 1 {
		return sim.Result{}, false, nil
	}
	key := r.epochKey(k, epochs)
	es, cached := epochSims.get(key)
	if !cached {
		var eserr error
		es, eserr = sim.NewEpochSim(cfg, epochs)
		if eserr != nil {
			return sim.Result{}, false, nil
		}
		epochSims.put(key, es)
	}
	cp, have := checkpoints.get(k)
	if !have {
		// Warm up once on a fresh system; the boundary checkpoint feeds the
		// same process-wide cache serial forks use.
		sys, nerr := sim.New(cfg)
		if nerr != nil {
			return sim.Result{}, false, nerr
		}
		sys.RunWarmup(workload.Replay(recs[:warm]))
		if cp, have = sys.Checkpoint(); !have {
			return sim.Result{}, false, nil
		}
		checkpoints.put(k, cp)
	}
	r.sims.Add(1)
	res, err = es.RunMeasuredBudget(cp, recs[warm:], r.bud())
	if err != nil {
		return sim.Result{}, false, err
	}
	r.recordSpeculation(res.Speculation)
	res.Speculation = sim.SpecStats{}
	return res, true, nil
}

// traceMemo returns the trace memo, initializing it on first use (see
// results).
func (r *Runner) traceMemo() *memo[string, []workload.Record] {
	return r.traces.init(r.TraceCapacity, func(name string) string {
		return fmt.Sprintf("trace %s", name)
	})
}

// trace returns the materialized record sequence for prof at the Runner's
// scale, generating it on first use. Concurrent workers materialize each
// trace exactly once; a panicking Materialize is recorded as the entry's
// error (waiters see the failure, never an empty trace with a nil error)
// and re-raised in the owning goroutine.
func (r *Runner) trace(ctx context.Context, prof workload.Profile) ([]workload.Record, error) {
	return r.traceMemo().do(ctx, prof.Name, func() ([]workload.Record, error) {
		return workload.Materialize(prof, r.Scale)
	})
}

// jobs resolves the effective worker count.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// bud returns the shared worker budget, refreshing its cap from the
// current Jobs setting (Jobs is set before the first request; re-storing
// the same cap is free).
func (r *Runner) bud() *dispatch.Budget {
	r.budget.SetCap(r.jobs())
	return &r.budget
}

// dispatcher returns the weighted-fair dispatcher over the shared budget,
// building it on first use so batch Runners never pay for it.
func (r *Runner) dispatcher() *dispatch.Dispatcher {
	d := r.disp.Load()
	if d == nil {
		r.dispMu.Lock()
		if d = r.disp.Load(); d == nil {
			d = dispatch.NewDispatcher(&r.budget)
			r.disp.Store(d)
		}
		r.dispMu.Unlock()
	}
	r.budget.SetCap(r.jobs())
	return d
}

// DispatchStats snapshots the dispatcher's queue, fairness and budget
// counters — the payload behind secsimd's /metrics "dispatch" section and
// secsim's batch-mode stderr line. A Runner that never dispatched (the
// sequential batch path) reports budget gauges only, without constructing
// a dispatcher.
func (r *Runner) DispatchStats() dispatch.QueueStats {
	if d := r.disp.Load(); d != nil {
		return d.Stats()
	}
	return dispatch.QueueStats{BudgetCap: r.budget.Cap(), BudgetUsed: r.budget.Used()}
}

// OwnerQueued reports how many dispatched jobs the named fairness owner
// has waiting for a worker slot (0 when nothing was ever dispatched) —
// the per-owner depth behind the admission layer's Retry-After estimate.
func (r *Runner) OwnerQueued(owner string) int {
	if d := r.disp.Load(); d != nil {
		return d.OwnerQueued(owner)
	}
	return 0
}

// dispatchKeys memoizes every key through the weighted-fair dispatcher:
// one job per key, tagged with the owner/weight carried by ctx
// (dispatch.WithOwner), each holding one budget slot while it runs. each
// — when non-nil — is invoked once per key that actually resolved, in
// completion order (calls are serialized), with the key's index and
// outcome; keys shed by cancellation before simulating are not reported.
// The first simulation error cancels the remaining queued jobs, and a
// cancelled dispatch always reports the cancellation, even when every job
// drained cleanly first. Jobs must never dispatch recursively: a job that
// waited on a nested dispatch would hold its slot while the nested jobs
// starve for one.
func (r *Runner) dispatchKeys(ctx context.Context, keys []runKey, each func(i int, res sim.Result, err error)) error {
	d := r.dispatcher()
	owner, weight := dispatch.OwnerFromContext(ctx)
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		cbMu     sync.Mutex
	)
	wg.Add(len(keys))
	for i, k := range keys {
		d.Submit(ctx, owner, weight, func(jctx context.Context) {
			defer wg.Done()
			if jctx.Err() != nil {
				return
			}
			res, err := r.resultSafe(jctx, k, true)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				cancel()
			}
			if each != nil {
				cbMu.Lock()
				each(i, res, err)
				cbMu.Unlock()
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Report cancellation off the parent, not the derived context: the
	// derived one is about to be cancelled by the deferred cancel
	// regardless, while parent.Err() is non-nil exactly when the caller's
	// context was cancelled.
	return parent.Err()
}

// sweep memoizes every key. With one worker (or one key) it is a plain
// sequential loop — the batch path the perf harness gates allocation-for-
// allocation; otherwise the keys fan out through the weighted-fair
// dispatcher over the shared budget. It returns when all simulations are
// done, the context is cancelled, or a simulation fails (first error
// wins; queued work is shed). A cancelled sweep always reports the
// cancellation, even when it raced the last completion or the key list
// was empty, and a panicking simulation surfaces as the sweep's error
// rather than propagating out of a job goroutine.
func (r *Runner) sweep(ctx context.Context, keys []runKey) error {
	n := r.jobs()
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 1 {
		for _, k := range keys {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := r.resultErr(ctx, k); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	return r.dispatchKeys(ctx, keys, nil)
}

// Spec is the exported face of a runKey: one simulation in the sweep
// engine's memo space. The zero value is not useful — start from
// DefaultSpec and tweak.
type Spec struct {
	// Bench is the benchmark name (workload.BenchmarkNames).
	Bench string
	// Scheme is the protection scheme to simulate: any registered scheme
	// reference (sim.SchemeBaseline, or one built via sim.SchemeByName).
	Scheme sim.SchemeRef
	// SNCKB and SNCWays configure the sequence number cache (ways 0 =
	// fully associative).
	SNCKB, SNCWays int
	// L2KB and L2Ways configure the unified L2.
	L2KB, L2Ways int
	// CryptoLat is the crypto unit latency in cycles.
	CryptoLat uint64
}

// DefaultSpec is the paper's standard configuration for a benchmark/scheme:
// 64KB fully associative SNC, 256KB 4-way L2, 50-cycle crypto.
func DefaultSpec(bench string, scheme sim.SchemeRef) Spec {
	return Spec{Bench: bench, Scheme: scheme, SNCKB: 64, L2KB: 256, L2Ways: 4, CryptoLat: 50}
}

// Validate checks the spec's names against the workload and scheme
// registries, so callers assembling specs from external input (the secsimd
// request path, the secsim flags) can reject bad ones before simulating.
func (s Spec) Validate() error {
	if _, ok := workload.ByName(s.Bench); !ok {
		return fmt.Errorf("experiments: unknown benchmark %q", s.Bench)
	}
	if _, err := core.LookupRef(s.Scheme); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// ExpandBenches expands a benchmark argument — a single name, a
// comma-separated list, or "all" — into validated benchmark names. Shared
// by the secsim -bench flag and the secsimd request parsers. Duplicate
// names are dropped, keeping the first occurrence's position, so
// "gzip,mcf,gzip" sweeps each benchmark exactly once; "all" returns a
// fresh copy callers may mutate.
func ExpandBenches(arg string) ([]string, error) {
	if strings.EqualFold(arg, "all") {
		return append([]string(nil), workload.BenchmarkNames...), nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, b := range strings.Split(arg, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if _, ok := workload.ByName(b); !ok {
			return nil, fmt.Errorf("unknown benchmark %q (have %s)", b, strings.Join(workload.BenchmarkNames, ", "))
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmarks given")
	}
	return out, nil
}

// ParseSimJobs parses a -simjobs flag value: "auto" (case-insensitive)
// selects SimJobsAuto — the epoch count adapts to observed worker-budget
// slack — and anything else must be a non-negative integer (0/1 = serial).
// Shared by the secsim and secsimd flag parsers.
func ParseSimJobs(s string) (int, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "auto") {
		return SimJobsAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf(`simjobs wants a non-negative integer or "auto", got %q`, s)
	}
	return n, nil
}

func (s Spec) key() runKey {
	return runKey{bench: s.Bench, scheme: s.Scheme.Canonical(), sncKB: s.SNCKB, sncWays: s.SNCWays,
		l2KB: s.L2KB, l2Ways: s.L2Ways, cryptoLat: s.CryptoLat}
}

// CanonicalKey renders the spec's memo identity as a string: the same
// canonicalization the singleflight memo deduplicates on (scheme in
// canonical registry form), so two specs share a key exactly when they
// share a memo entry. The cluster fabric consistent-hashes this string to
// pick the one node that owns the spec's simulation and caches.
func (s Spec) CanonicalKey() string {
	k := s.key()
	return fmt.Sprintf("%s/%s/snc%dKB-%dw/l2-%dKB-%dw/c%d",
		k.bench, k.scheme, k.sncKB, k.sncWays, k.l2KB, k.l2Ways, k.cryptoLat)
}

// Run executes (or recalls) the simulation for one spec.
func (r *Runner) Run(s Spec) (sim.Result, error) {
	return r.result(context.Background(), s.key(), false) //secsim:detach warm checkpoint build is shared across requests
}

// RunCtx is Run with cancellation: if the spec's simulation is owned by
// another in-flight request, a cancelled ctx releases this caller with
// ctx.Err() while the shared simulation runs on.
func (r *Runner) RunCtx(ctx context.Context, s Spec) (sim.Result, error) {
	return r.result(ctx, s.key(), false)
}

// RunDispatched executes (or recalls) one spec through the dispatcher's
// fairness queue: instead of simulating immediately on the caller's
// goroutine, the job competes for a worker slot under the owner/weight
// carried by ctx (dispatch.WithOwner), so interactive requests are
// scheduled fairly against bulk sweeps. A cancelled ctx releases the
// caller promptly; a simulation already underway completes detached and
// stays memoized, exactly like RunCtx's waiter semantics.
func (r *Runner) RunDispatched(ctx context.Context, s Spec) (sim.Result, error) {
	type outcome struct {
		res sim.Result
		err error
	}
	k := s.key()
	owner, weight := dispatch.OwnerFromContext(ctx)
	ch := make(chan outcome, 1)
	r.dispatcher().Submit(ctx, owner, weight, func(jctx context.Context) {
		if jctx.Err() != nil {
			ch <- outcome{err: jctx.Err()}
			return
		}
		res, err := r.resultSafe(jctx, k, true)
		ch <- outcome{res, err}
	})
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
}

// Sweep memoizes every spec using up to Jobs concurrent workers, so a later
// Run for any of them returns instantly. Specs already memoized cost
// nothing; duplicate specs are deduplicated.
func (r *Runner) Sweep(ctx context.Context, specs []Spec) error {
	keys := make([]runKey, len(specs))
	for i, s := range specs {
		keys[i] = s.key()
	}
	return r.sweep(ctx, keys)
}

// SweepEach memoizes every spec through the weighted-fair dispatcher and
// streams each outcome to fn the moment it lands: fn(i, res, err) receives
// specs[i]'s result in completion order (calls are serialized; err is the
// spec's own failure). Unlike Sweep, SweepEach always dispatches — even a
// one-worker Runner queues through the fair scheduler, so a bulk sweep
// submitted under one owner cannot starve requests submitted under
// another. Specs shed by cancellation before simulating are not reported
// to fn; the returned error is the first failure or the cancellation.
func (r *Runner) SweepEach(ctx context.Context, specs []Spec, fn func(i int, res sim.Result, err error)) error {
	keys := make([]runKey, len(specs))
	for i, s := range specs {
		keys[i] = s.key()
	}
	return r.dispatchKeys(ctx, keys, fn)
}
