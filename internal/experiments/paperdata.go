// Package experiments regenerates every figure of the paper's evaluation
// (Figures 3 and 5-10) and prints paper-vs-measured comparisons.
package experiments

import "secureproc/internal/stats"

// Benchmarks lists the SPEC2000 benchmarks in the paper's figure order.
var Benchmarks = []string{
	"ammp", "art", "bzip2", "equake", "gcc", "gzip",
	"mcf", "mesa", "parser", "vortex", "vpr",
}

// Values below are read off the paper's figures (the bars are labelled with
// exact numbers in the original).

// PaperFig3XOM is Figure 3 / Figure 5 "XOM": percent slowdown of XOM vs the
// insecure baseline, 50-cycle crypto.
var PaperFig3XOM = stats.NewSeries("XOM (paper)", Benchmarks, []float64{
	23.02, 34.91, 15.82, 14.27, 18.30, 1.08, 34.76, 0.63, 13.39, 7.05, 21.16,
})

// PaperFig5NoRepl is Figure 5 "SNC-NoRepl": 64KB no-replacement SNC.
var PaperFig5NoRepl = stats.NewSeries("SNC-NoRepl (paper)", Benchmarks, []float64{
	4.57, 0.23, 1.04, 0.06, 18.07, 0.51, 13.51, 0.24, 6.94, 5.02, 0.24,
})

// PaperFig5LRU is Figure 5 "SNC-LRU": 64KB LRU SNC.
var PaperFig5LRU = stats.NewSeries("SNC-LRU (paper)", Benchmarks, []float64{
	2.76, 0.23, 0.56, 0.06, 1.40, 0.31, 6.44, 0.07, 0.95, 1.03, 0.24,
})

// PaperFig6 is Figure 6: LRU SNC size sweep (percent slowdown).
var (
	PaperFig6SNC32 = stats.NewSeries("32KB (paper)", Benchmarks, []float64{
		4.36, 0.23, 1.61, 7.58, 1.44, 0.33, 15.23, 0.14, 2.70, 1.86, 0.24,
	})
	PaperFig6SNC64  = PaperFig5LRU.Relabel("64KB (paper)")
	PaperFig6SNC128 = stats.NewSeries("128KB (paper)", Benchmarks, []float64{
		0.41, 0.23, 0.34, 0.06, 1.29, 0.30, 1.45, 0.01, 0.57, 0.70, 0.24,
	})
)

// PaperFig7 is Figure 7: fully associative vs 32-way 64KB SNC.
var (
	PaperFig7FullAssoc = PaperFig5LRU.Relabel("fully assoc (paper)")
	PaperFig7Way32     = stats.NewSeries("32-way (paper)", Benchmarks, []float64{
		9.62, 0.23, 0.55, 0.18, 1.38, 0.31, 6.34, 0.07, 0.94, 1.03, 0.24,
	})
)

// PaperFig8 is Figure 8: execution time normalized to the insecure baseline
// with a 256KB 4-way L2.
var (
	PaperFig8XOM256 = stats.NewSeries("XOM-256KL2 (paper)", Benchmarks, []float64{
		1.23, 1.35, 1.16, 1.14, 1.18, 1.01, 1.35, 1.01, 1.13, 1.07, 1.21,
	})
	PaperFig8XOM384 = stats.NewSeries("XOM-384KL2 (paper)", Benchmarks, []float64{
		1.20, 1.35, 1.03, 1.14, 0.96, 1.00, 1.32, 0.99, 1.02, 0.93, 1.04,
	})
	PaperFig8SNC = stats.NewSeries("SNC-32way-LRU-256KL2 (paper)", Benchmarks, []float64{
		1.10, 1.00, 1.01, 1.00, 1.01, 1.00, 1.06, 1.00, 1.01, 1.01, 1.00,
	})
)

// PaperFig9Traffic is Figure 9: SNC-induced extra memory traffic as a
// percentage of L2<->memory demand traffic (64KB SNC, LRU).
var PaperFig9Traffic = stats.NewSeries("traffic % (paper)", Benchmarks, []float64{
	0.32, 0.00, 0.09, 0.00, 0.05, 1.03, 0.47, 0.90, 0.18, 0.39, 0.00,
})

// PaperFig10 is Figure 10: percent slowdown with a 102-cycle crypto unit.
var (
	PaperFig10XOM = stats.NewSeries("XOM (paper)", Benchmarks, []float64{
		46.95, 71.21, 32.27, 29.10, 37.36, 2.21, 70.91, 1.28, 27.32, 14.42, 43.16,
	})
	PaperFig10NoRepl = stats.NewSeries("SNC-NoRepl (paper)", Benchmarks, []float64{
		8.95, 0.23, 1.82, 0.06, 36.89, 1.04, 27.30, 0.48, 14.02, 10.23, 0.24,
	})
	PaperFig10LRU = stats.NewSeries("SNC-LRU (paper)", Benchmarks, []float64{
		2.72, 0.23, 0.56, 0.06, 1.38, 0.30, 6.32, 0.07, 0.94, 1.01, 0.24,
	})
)
