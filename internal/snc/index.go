package snc

import "math/bits"

// tagIndex is an open-addressed linear-probe hash index from line tag to
// entry slot. It replaces the per-set map[uint64]int the SNC used to carry:
// a set holds at most `ways` entries, so the table is sized once at 2× the
// way count (load factor ≤ 0.5) and never grows, lookups are two array
// loads with no hashing allocation, and deletion uses backward-shift
// compaction so probe chains never accumulate tombstones.
type tagIndex struct {
	keys  []uint64
	slots []int32 // -1 = empty
	mask  uint32
	shift uint // 64 - log2(len(keys)), for the multiplicative hash
}

// fibMul is 2^64 / φ, the Fibonacci-hashing multiplier: it diffuses the
// low-entropy line tags (sequential and strided walks) across the table.
const fibMul = 0x9E3779B97F4A7C15

// init sizes the table for up to capacity live entries and marks every
// cell empty. Reusable: calling it again clears the index in place.
func (t *tagIndex) init(capacity int) {
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	if len(t.slots) != size {
		t.keys = make([]uint64, size) //secsim:allowalloc reallocated only when capacity changes; flush-path reinit clears in place
		t.slots = make([]int32, size) //secsim:allowalloc reallocated only when capacity changes
		t.mask = uint32(size - 1)
		t.shift = uint(64 - bits.TrailingZeros(uint(size)))
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
}

func (t *tagIndex) home(tag uint64) uint32 {
	return uint32((tag * fibMul) >> t.shift)
}

// find returns the entry slot for tag, or ok=false.
func (t *tagIndex) find(tag uint64) (slot int32, ok bool) {
	i := t.home(tag)
	for {
		s := t.slots[i]
		if s < 0 {
			return 0, false
		}
		if t.keys[i] == tag {
			return s, true
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or updates the slot for tag.
func (t *tagIndex) put(tag uint64, slot int32) {
	i := t.home(tag)
	for {
		s := t.slots[i]
		if s < 0 || t.keys[i] == tag {
			t.keys[i] = tag
			t.slots[i] = slot
			return
		}
		i = (i + 1) & t.mask
	}
}

// del removes tag, compacting the probe chain behind it (backward-shift
// deletion) so later finds never walk dead cells.
func (t *tagIndex) del(tag uint64) {
	i := t.home(tag)
	for {
		if t.slots[i] < 0 {
			return // not present
		}
		if t.keys[i] == tag {
			break
		}
		i = (i + 1) & t.mask
	}
	// Shift successors whose home position precedes the hole back into it.
	j := i
	for {
		j = (j + 1) & t.mask
		if t.slots[j] < 0 {
			break
		}
		h := t.home(t.keys[j])
		// j is displaced past the hole iff the hole lies cyclically within
		// [h, j); only then may the entry legally move back to i.
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.keys[i] = t.keys[j]
			t.slots[i] = t.slots[j]
			i = j
		}
	}
	t.slots[i] = -1
}
