package snc

import (
	"math/rand"
	"testing"
)

// refSNC is a deliberately naive reference implementation of the SNC's
// policy-neutral storage: a plain map plus an explicit recency counter,
// exactly the semantics the open-addressed tagIndex/intrusive-LRU fast
// path must reproduce. Victim selection scans for the smallest recency —
// O(n), but obviously correct.
type refSNC struct {
	cfg       Config
	ways      int
	lineShift uint
	setMask   uint64
	sets      []map[uint64]*refEntry
	clock     uint64
}

type refEntry struct {
	seq  uint16
	used uint64
}

func newRefSNC(cfg Config) *refSNC {
	entries := cfg.Entries()
	ways := cfg.Ways
	if ways == 0 {
		ways = entries
	}
	nsets := entries / ways
	r := &refSNC{cfg: cfg, ways: ways, setMask: uint64(nsets - 1)}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			r.lineShift = shift
			break
		}
	}
	r.sets = make([]map[uint64]*refEntry, nsets)
	for i := range r.sets {
		r.sets[i] = make(map[uint64]*refEntry)
	}
	return r
}

func (r *refSNC) locate(lineVA uint64) (map[uint64]*refEntry, uint64) {
	lineNum := lineVA >> r.lineShift
	return r.sets[lineNum&r.setMask], lineNum
}

func (r *refSNC) query(lineVA uint64) (uint16, bool) {
	set, tag := r.locate(lineVA)
	if e, ok := set[tag]; ok {
		r.clock++
		e.used = r.clock
		return e.seq, true
	}
	return 0, false
}

func (r *refSNC) update(lineVA uint64) (uint16, bool, bool) {
	set, tag := r.locate(lineVA)
	e, ok := set[tag]
	if !ok {
		return 0, false, false
	}
	wrapped := e.seq == 0xFFFF
	e.seq++
	r.clock++
	e.used = r.clock
	return e.seq, true, wrapped
}

func (r *refSNC) install(lineVA uint64, seq uint16) (uint64, uint16, bool) {
	set, tag := r.locate(lineVA)
	r.clock++
	if e, ok := set[tag]; ok {
		e.seq = seq
		e.used = r.clock
		return 0, 0, false
	}
	var victimVA uint64
	var victimSeq uint16
	evicted := false
	if len(set) >= r.ways {
		var lruTag uint64
		var lru *refEntry
		for t, e := range set {
			if lru == nil || e.used < lru.used {
				lruTag, lru = t, e
			}
		}
		victimVA, victimSeq, evicted = lruTag<<r.lineShift, lru.seq, true
		delete(set, lruTag)
	}
	set[tag] = &refEntry{seq: seq, used: r.clock}
	return victimVA, victimSeq, evicted
}

func (r *refSNC) tryInstall(lineVA uint64, seq uint16) bool {
	set, tag := r.locate(lineVA)
	r.clock++
	if e, ok := set[tag]; ok {
		e.seq = seq
		e.used = r.clock
		return true
	}
	if len(set) >= r.ways {
		return false
	}
	set[tag] = &refEntry{seq: seq, used: r.clock}
	return true
}

// TestOpenAddressedMatchesMapReference drives the real SNC and the map
// reference through long random operation traces over several geometries
// and demands identical hit/miss/evict/victim sequences at every step —
// the property that makes the open-addressed rewrite timing-model-neutral.
func TestOpenAddressedMatchesMapReference(t *testing.T) {
	configs := []Config{
		{SizeBytes: 1 << 10, EntryBytes: 2, Ways: 0, LineBytes: 128, Policy: LRU},
		{SizeBytes: 1 << 10, EntryBytes: 2, Ways: 4, LineBytes: 128, Policy: LRU},
		{SizeBytes: 2 << 10, EntryBytes: 2, Ways: 32, LineBytes: 128, Policy: NoReplacement},
		{SizeBytes: 4 << 10, EntryBytes: 2, Ways: 8, LineBytes: 64, Policy: LRU, PIDBits: 4},
	}
	for ci, cfg := range configs {
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		s := New(cfg)
		ref := newRefSNC(cfg)
		// Address pool larger than capacity so evictions are constant; a
		// hot subset so hits are too.
		pool := make([]uint64, cfg.Entries()*3+7)
		for i := range pool {
			pool[i] = uint64(rng.Intn(1<<20)) * uint64(cfg.LineBytes)
		}
		for op := 0; op < 200000; op++ {
			va := pool[rng.Intn(len(pool))]
			switch rng.Intn(10) {
			case 0, 1, 2: // query
				gs, gh := s.Query(va)
				ws, wh := ref.query(va)
				if gs != ws || gh != wh {
					t.Fatalf("cfg %d op %d: Query(%#x) = (%d,%v), ref (%d,%v)", ci, op, va, gs, gh, ws, wh)
				}
			case 3, 4, 5: // update
				gs, gh, gw := s.Update(va)
				ws, wh, ww := ref.update(va)
				if gs != ws || gh != wh || gw != ww {
					t.Fatalf("cfg %d op %d: Update(%#x) = (%d,%v,%v), ref (%d,%v,%v)", ci, op, va, gs, gh, gw, ws, wh, ww)
				}
			case 6, 7, 8: // install
				seq := uint16(rng.Intn(0x10000))
				gva, gseq, gev := s.Install(va, seq)
				wva, wseq, wev := ref.install(va, seq)
				if gva != wva || gseq != wseq || gev != wev {
					t.Fatalf("cfg %d op %d: Install(%#x,%d) = (%#x,%d,%v), ref (%#x,%d,%v)",
						ci, op, va, seq, gva, gseq, gev, wva, wseq, wev)
				}
			default: // tryInstall
				seq := uint16(rng.Intn(0x10000))
				got := s.TryInstall(va, seq)
				want := ref.tryInstall(va, seq)
				if got != want {
					t.Fatalf("cfg %d op %d: TryInstall(%#x,%d) = %v, ref %v", ci, op, va, seq, got, want)
				}
			}
			// Spot-check read-only views stay in lockstep.
			if op%997 == 0 {
				probe := pool[rng.Intn(len(pool))]
				gs, gok := s.Peek(probe)
				set, tag := ref.locate(probe)
				var ws uint16
				e, wok := set[tag]
				if wok {
					ws = e.seq
				}
				if gok != wok || (gok && gs != ws) {
					t.Fatalf("cfg %d op %d: Peek(%#x) = (%d,%v), ref (%d,%v)", ci, op, probe, gs, gok, ws, wok)
				}
				if s.Contains(probe) != wok {
					t.Fatalf("cfg %d op %d: Contains(%#x) = %v, ref %v", ci, op, probe, s.Contains(probe), wok)
				}
			}
		}
		// Occupancy must agree at the end.
		refOcc := 0
		for _, set := range ref.sets {
			refOcc += len(set)
		}
		if s.Occupied() != refOcc {
			t.Fatalf("cfg %d: occupied %d, ref %d", ci, s.Occupied(), refOcc)
		}
	}
}

// TestFlushAllMatchesReferenceAfterRefill locks FlushAll's contract under
// the open-addressed index: everything flushed is refindable nowhere, the
// flushed set is exactly the occupied set, and the SNC accepts a full
// refill afterwards.
func TestFlushAllMatchesReferenceAfterRefill(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, EntryBytes: 2, Ways: 8, LineBytes: 128, Policy: LRU}
	s := New(cfg)
	rng := rand.New(rand.NewSource(7))
	want := make(map[uint64]uint16)
	for i := 0; i < 4*cfg.Entries(); i++ {
		va := uint64(rng.Intn(1<<16)) * 128
		seq := uint16(rng.Intn(0x10000))
		victimVA, victimSeq, evicted := s.Install(va, seq)
		want[va] = seq
		if evicted {
			if got, stored := want[victimVA]; !stored || got != victimSeq {
				t.Fatalf("evicted (%#x,%d) never installed with that value", victimVA, victimSeq)
			}
			delete(want, victimVA)
		}
	}
	spilled := s.FlushAll()
	if len(spilled) != len(want) {
		t.Fatalf("flushed %d entries, want %d", len(spilled), len(want))
	}
	for _, pair := range spilled {
		if want[pair[0]] != uint16(pair[1]) {
			t.Errorf("flushed (%#x,%d), want seq %d", pair[0], pair[1], want[pair[0]])
		}
		if s.Contains(pair[0]) {
			t.Errorf("%#x still present after flush", pair[0])
		}
	}
	if s.Occupied() != 0 {
		t.Fatalf("occupied %d after flush", s.Occupied())
	}
	// Consecutive lines stripe across the sets, filling each to its ways.
	for i := 0; i < cfg.Entries(); i++ {
		if !s.TryInstall(uint64(i)*128, 1) {
			t.Fatalf("refill rejected at %d of %d", i, cfg.Entries())
		}
	}
}
