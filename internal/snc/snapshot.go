package snc

// setSnapshot carries the per-set LRU endpoints and bump-allocator cursor.
// The tag index is deliberately not captured: every slot in [base, base+bump)
// holds a live entry (slots are handed out by a bump allocator and eviction
// reuses the victim slot in place, so allocated slots are never individually
// freed), which means the index is exactly {entry.tag -> slot} over the
// allocated range and can be rebuilt on Restore. Probe-chain layout after a
// rebuild may differ from the original, but find/put/del behave identically
// for the same key set and no timing depends on probe length.
type setSnapshot struct {
	head, tail int32
	bump       int32
}

// Snapshot is an opaque deep copy of the SNC's mutable state, taken with
// Snapshot and reinstated with Restore. It shares nothing with the SNC it
// came from, so one snapshot can seed any number of forked runs.
type Snapshot struct {
	entries  []entry
	sets     []setSnapshot
	occupied int

	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	evictions    uint64
	rejected     uint64
	seqOverflows uint64
}

// Snapshot captures the SNC's full mutable state.
func (s *SNC) Snapshot() *Snapshot {
	snap := &Snapshot{
		entries:      make([]entry, len(s.entries)),
		sets:         make([]setSnapshot, len(s.sets)),
		occupied:     s.occupied,
		queryHits:    s.QueryHits,
		queryMisses:  s.QueryMisses,
		updateHits:   s.UpdateHits,
		updateMisses: s.UpdateMisses,
		evictions:    s.Evictions,
		rejected:     s.Rejected,
		seqOverflows: s.SeqOverflows,
	}
	copy(snap.entries, s.entries)
	for i := range s.sets {
		st := &s.sets[i]
		snap.sets[i] = setSnapshot{head: st.head, tail: st.tail, bump: st.bump}
	}
	return snap
}

// Restore reinstates a snapshot taken from an SNC with the same
// configuration (entry and set counts are configuration-derived). Each set's
// tag index is rebuilt from the restored entries.
func (s *SNC) Restore(snap *Snapshot) {
	copy(s.entries, snap.entries)
	s.occupied = snap.occupied
	s.QueryHits = snap.queryHits
	s.QueryMisses = snap.queryMisses
	s.UpdateHits = snap.updateHits
	s.UpdateMisses = snap.updateMisses
	s.Evictions = snap.evictions
	s.Rejected = snap.rejected
	s.SeqOverflows = snap.seqOverflows
	for i := range s.sets {
		st := &s.sets[i]
		ss := snap.sets[i]
		st.head, st.tail, st.bump = ss.head, ss.tail, ss.bump
		st.index.init(int(s.ways))
		for slot := st.base; slot < st.base+st.bump; slot++ {
			st.index.put(s.entries[slot].tag, slot)
		}
	}
}
