package snc

import "secureproc/internal/statehash"

// setSnapshot carries the per-set LRU endpoints and bump-allocator cursor.
// The tag index is deliberately not captured: every slot in [base, base+bump)
// holds a live entry (slots are handed out by a bump allocator and eviction
// reuses the victim slot in place, so allocated slots are never individually
// freed), which means the index is exactly {entry.tag -> slot} over the
// allocated range and can be rebuilt on Restore. Probe-chain layout after a
// rebuild may differ from the original, but find/put/del behave identically
// for the same key set and no timing depends on probe length.
type setSnapshot struct {
	head, tail int32
	bump       int32
}

// Snapshot is an opaque deep copy of the SNC's mutable state, taken with
// Snapshot and reinstated with Restore. It shares nothing with the SNC it
// came from, so one snapshot can seed any number of forked runs.
type Snapshot struct {
	entries  []entry
	sets     []setSnapshot
	occupied int

	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	evictions    uint64
	rejected     uint64
	seqOverflows uint64
}

// Snapshot captures the SNC's full mutable state.
func (s *SNC) Snapshot() *Snapshot {
	snap := &Snapshot{}
	s.SnapshotInto(snap)
	return snap
}

// SnapshotInto captures the SNC's state into snap, reusing snap's arrays
// when they are already the right size. Repeated boundary checkpoints into
// the same Snapshot are allocation-free in steady state.
func (s *SNC) SnapshotInto(snap *Snapshot) {
	if len(snap.entries) != len(s.entries) {
		snap.entries = make([]entry, len(s.entries))
	}
	if len(snap.sets) != len(s.sets) {
		snap.sets = make([]setSnapshot, len(s.sets))
	}
	copy(snap.entries, s.entries)
	for i := range s.sets {
		st := &s.sets[i]
		snap.sets[i] = setSnapshot{head: st.head, tail: st.tail, bump: st.bump}
	}
	snap.occupied = s.occupied
	snap.queryHits = s.QueryHits
	snap.queryMisses = s.QueryMisses
	snap.updateHits = s.UpdateHits
	snap.updateMisses = s.UpdateMisses
	snap.evictions = s.Evictions
	snap.rejected = s.Rejected
	snap.seqOverflows = s.SeqOverflows
}

// HashState folds the snapshot's behavior-affecting state into h: per-set
// LRU endpoints and bump cursor, plus every allocated entry (tag, sequence
// number, LRU links) in slot order. Unallocated slots and the statistics
// counters are excluded — see cpu.Snapshot.HashState for the rationale.
func (snap *Snapshot) HashState(h *statehash.Hash) {
	h.Int(len(snap.sets))
	if len(snap.sets) == 0 {
		return
	}
	ways := len(snap.entries) / len(snap.sets)
	for i := range snap.sets {
		ss := &snap.sets[i]
		h.I32(ss.head)
		h.I32(ss.tail)
		h.I32(ss.bump)
		base := i * ways
		for slot := base; slot < base+int(ss.bump); slot++ {
			e := &snap.entries[slot]
			h.Word(e.tag)
			h.U16(e.seq)
			h.I32(e.prev)
			h.I32(e.next)
		}
	}
}

// Restore reinstates a snapshot taken from an SNC with the same
// configuration (entry and set counts are configuration-derived). Each set's
// tag index is rebuilt from the restored entries.
func (s *SNC) Restore(snap *Snapshot) {
	copy(s.entries, snap.entries)
	s.occupied = snap.occupied
	s.QueryHits = snap.queryHits
	s.QueryMisses = snap.queryMisses
	s.UpdateHits = snap.updateHits
	s.UpdateMisses = snap.updateMisses
	s.Evictions = snap.evictions
	s.Rejected = snap.rejected
	s.SeqOverflows = snap.seqOverflows
	for i := range s.sets {
		st := &s.sets[i]
		ss := snap.sets[i]
		st.head, st.tail, st.bump = ss.head, ss.tail, ss.bump
		st.index.init(int(s.ways))
		for slot := st.base; slot < st.base+st.bump; slot++ {
			st.index.put(s.entries[slot].tag, slot)
		}
	}
}
