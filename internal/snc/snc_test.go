package snc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCfg(policy Policy, ways int) Config {
	// 8 entries total.
	return Config{SizeBytes: 16, EntryBytes: 2, Ways: ways, LineBytes: 128, Policy: policy}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Entries() != 32<<10 {
		t.Errorf("entries = %d, want 32K (paper: 64KB / 2B)", cfg.Entries())
	}
	if cfg.CoverageBytes() != 4<<20 {
		t.Errorf("coverage = %d, want 4MB (paper Section 5.1)", cfg.CoverageBytes())
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, EntryBytes: 2, LineBytes: 128},
		{SizeBytes: 15, EntryBytes: 2, LineBytes: 128},          // not multiple
		{SizeBytes: 16, EntryBytes: 2, Ways: 3, LineBytes: 128}, // 8 entries % 3
		{SizeBytes: 12, EntryBytes: 2, Ways: 2, LineBytes: 128}, // sets=3
		{SizeBytes: 16, EntryBytes: 2, Ways: 2, LineBytes: 100}, // line not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] should fail validation", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "SNC-LRU" || NoReplacement.String() != "SNC-NoRepl" {
		t.Error("policy names do not match the paper's figure labels")
	}
	if Policy(9).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestQueryMissThenInstallHit(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	if _, hit := s.Query(0x1000); hit {
		t.Fatal("empty SNC should miss")
	}
	s.Install(0x1000, 7)
	seq, hit := s.Query(0x1000)
	if !hit || seq != 7 {
		t.Fatalf("after install: seq=%d hit=%v", seq, hit)
	}
	if s.QueryHits != 1 || s.QueryMisses != 1 {
		t.Errorf("stats %d/%d", s.QueryHits, s.QueryMisses)
	}
}

func TestUpdateIncrements(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0x80, 0)
	for want := uint16(1); want <= 3; want++ {
		seq, hit, wrapped := s.Update(0x80)
		if !hit || seq != want || wrapped {
			t.Fatalf("update %d: seq=%d hit=%v wrapped=%v", want, seq, hit, wrapped)
		}
	}
	if s.UpdateHits != 3 {
		t.Errorf("UpdateHits = %d", s.UpdateHits)
	}
	if s.SeqOverflows != 0 {
		t.Errorf("SeqOverflows = %d on non-wrapping updates", s.SeqOverflows)
	}
}

func TestUpdateMissReturnsMiss(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	if _, hit, _ := s.Update(0x4000); hit {
		t.Error("update of absent line should miss")
	}
	if s.UpdateMisses != 1 {
		t.Error("miss not counted")
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0x1000, 5)
	// Different byte address, same 128B line.
	seq, hit := s.Query(0x107F)
	if !hit || seq != 5 {
		t.Error("addresses within one line must share an entry")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := New(smallCfg(LRU, 0)) // 8 entries fully associative
	for i := uint64(0); i < 8; i++ {
		s.Install(i*128, uint16(i))
	}
	s.Query(0) // refresh line 0
	victimVA, victimSeq, evicted := s.Install(9*128, 9)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if victimVA != 1*128 || victimSeq != 1 {
		t.Errorf("victim = (%#x, %d), want (0x80, 1)", victimVA, victimSeq)
	}
	if s.Evictions != 1 {
		t.Error("eviction not counted")
	}
}

func TestInstallExistingRefreshes(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0, 1)
	_, _, evicted := s.Install(0, 9)
	if evicted {
		t.Error("reinstall must not evict")
	}
	if seq, _ := s.Query(0); seq != 9 {
		t.Errorf("seq = %d, want 9", seq)
	}
	if s.Occupied() != 1 {
		t.Errorf("occupied = %d, want 1", s.Occupied())
	}
}

func TestTryInstallNoReplacement(t *testing.T) {
	s := New(smallCfg(NoReplacement, 0))
	for i := uint64(0); i < 8; i++ {
		if !s.TryInstall(i*128, 1) {
			t.Fatalf("install %d refused while vacant", i)
		}
	}
	if s.TryInstall(99*128, 1) {
		t.Error("full SNC must refuse new entries under NoReplacement")
	}
	if s.Rejected != 1 {
		t.Error("rejection not counted")
	}
	// Existing entries remain updatable.
	if !s.TryInstall(0, 5) {
		t.Error("existing entry update refused")
	}
	if seq, _ := s.Query(0); seq != 5 {
		t.Error("TryInstall did not update existing entry")
	}
}

func TestSetAssociativeConflicts(t *testing.T) {
	// 8 entries, 2 ways => 4 sets. Lines whose lineNum ≡ 0 (mod 4) collide.
	s := New(smallCfg(LRU, 2))
	a := uint64(0 * 128)
	b := uint64(4 * 128)
	c := uint64(8 * 128)
	s.Install(a, 1)
	s.Install(b, 2)
	_, _, evicted := s.Install(c, 3)
	if !evicted {
		t.Error("2-way set with 3 conflicting lines must evict")
	}
	if s.Contains(a) {
		t.Error("LRU entry should have been evicted")
	}
	if !s.Contains(b) || !s.Contains(c) {
		t.Error("recent entries missing")
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// Same three "conflicting" lines fit simultaneously when fully
	// associative — the mechanism behind Figure 7's ammp outlier.
	s := New(smallCfg(LRU, 0))
	s.Install(0*128, 1)
	s.Install(4*128, 2)
	_, _, evicted := s.Install(8*128, 3)
	if evicted {
		t.Error("fully associative SNC with vacancies must not evict")
	}
}

func TestFlushAll(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0, 3)
	s.Install(128, 4)
	spilled := s.FlushAll()
	if len(spilled) != 2 {
		t.Fatalf("spilled %d entries, want 2", len(spilled))
	}
	if s.Occupied() != 0 || s.Contains(0) {
		t.Error("entries remain after flush")
	}
}

func TestHitRateAndReset(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0, 0)
	s.Query(0)
	s.Query(128)
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	s.ResetStats()
	if s.HitRate() != 0 || s.QueryHits != 0 {
		t.Error("ResetStats failed")
	}
	if !s.Contains(0) {
		t.Error("ResetStats must keep contents")
	}
}

// TestSeqWrapsAt16Bits documents the 2-byte entry width: 0xFFFF increments
// to 0, and the wrap is reported so the scheme can re-key instead of
// silently reusing the exhausted pad space.
func TestSeqWrapsAt16Bits(t *testing.T) {
	s := New(smallCfg(LRU, 0))
	s.Install(0, 0xFFFF)
	seq, hit, wrapped := s.Update(0)
	if !hit || seq != 0 || !wrapped {
		t.Errorf("wrap: seq=%d hit=%v wrapped=%v, want 0 true true", seq, hit, wrapped)
	}
	if s.SeqOverflows != 1 {
		t.Errorf("SeqOverflows = %d, want 1", s.SeqOverflows)
	}
	// The next update of the re-keyed line is ordinary again.
	if _, _, wrapped := s.Update(0); wrapped {
		t.Error("post-wrap update reported another overflow")
	}
	s.ResetStats()
	if s.SeqOverflows != 0 {
		t.Error("ResetStats must clear SeqOverflows")
	}
}

// TestPIDBitsShrinkCapacity checks Section 4.3 option 2's cost model: tag
// bits ride in the same storage, so a tagged SNC holds fewer sequence
// numbers.
func TestPIDBitsShrinkCapacity(t *testing.T) {
	cfg := DefaultConfig() // 64KB, 2-byte entries -> 32K entries untagged
	if cfg.Entries() != 32<<10 {
		t.Fatalf("untagged entries = %d", cfg.Entries())
	}
	cfg.PIDBits = 8 // 24 bits per entry
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 64 << 10 * 8 / 24
	if cfg.Entries() != want {
		t.Errorf("tagged entries = %d, want %d", cfg.Entries(), want)
	}
	// Set-associative tagged geometry rounds down to power-of-two sets.
	cfg.Ways = 32
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	e := cfg.Entries()
	if e%32 != 0 {
		t.Errorf("tagged 32-way entries %d not a multiple of 32", e)
	}
	if sets := e / 32; sets&(sets-1) != 0 {
		t.Errorf("tagged 32-way set count %d not a power of two", sets)
	}
	New(cfg) // must not panic
	// Out-of-range tag widths are rejected.
	cfg.PIDBits = 17
	if err := cfg.Validate(); err == nil {
		t.Error("pid tag width 17 accepted")
	}
}

// TestFlushAllRebuildsVacancies checks that a flushed SNC accepts exactly
// its capacity again — FlushAll reconstructs the same free-lists New builds.
func TestFlushAllRebuildsVacancies(t *testing.T) {
	s := New(smallCfg(LRU, 2))
	capacity := s.Config().Entries()
	for i := 0; i < capacity; i++ {
		s.Install(uint64(i)*128, uint16(i))
	}
	s.FlushAll()
	for i := 0; i < capacity; i++ {
		if _, _, evicted := s.Install(uint64(100+i)*128, 1); evicted {
			t.Fatalf("install %d evicted in a freshly flushed SNC", i)
		}
	}
	if s.Occupied() != capacity {
		t.Errorf("occupied = %d, want %d", s.Occupied(), capacity)
	}
}

// TestOccupancyNeverExceedsCapacity is a property test over random
// operation sequences.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(smallCfg(LRU, 2))
		cap := s.Config().Entries()
		for i := 0; i < int(ops); i++ {
			va := uint64(rng.Intn(64)) * 128
			switch rng.Intn(3) {
			case 0:
				s.Query(va)
			case 1:
				s.Update(va)
			case 2:
				s.Install(va, uint16(rng.Intn(100)))
			}
			if s.Occupied() > cap {
				return false
			}
		}
		// Contains must agree with Query hit for a fresh install.
		va := uint64(rng.Intn(64)) * 128
		s.Install(va, 1)
		return s.Contains(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPaperGeometries verifies the three Figure 6 sizes and the Figure 7
// associativity are constructible with the paper's parameters.
func TestPaperGeometries(t *testing.T) {
	for _, size := range []int{32 << 10, 64 << 10, 128 << 10} {
		for _, ways := range []int{0, 32} {
			cfg := Config{SizeBytes: size, EntryBytes: 2, Ways: ways, LineBytes: 128, Policy: LRU}
			if err := cfg.Validate(); err != nil {
				t.Errorf("size=%d ways=%d: %v", size, ways, err)
			}
			New(cfg) // must not panic
		}
	}
}
