// Package snc implements the on-chip Sequence Number Cache of Section 4 of
// the paper.
//
// The SNC sits below the L2 cache, inside the security boundary, and maps
// the *virtual* address of an L2 line to the sequence number last used to
// encrypt that line (2 bytes per entry in the paper's evaluation; a 64KB SNC
// therefore holds 32K sequence numbers and covers 4MB of memory with 128B
// lines).
//
// Two operating policies from Section 4.1:
//
//   - LRU replacement: the SNC holds the hot subset; evicted sequence
//     numbers are spilled to (directly encrypted) memory, and misses fetch
//     them back.
//   - No replacement: entries are installed while vacancies exist and never
//     evicted; lines without an entry fall back to XOM-style direct
//     encryption.
//
// The SNC itself is policy-neutral storage with hit/miss and LRU mechanics;
// the scheme logic in internal/core drives it according to Algorithm 1.
package snc

import (
	"fmt"
	"math"
	"math/bits"
)

// Policy selects the replacement behaviour.
type Policy int

const (
	// LRU spills evicted sequence numbers to memory (paper "SNC-LRU").
	LRU Policy = iota
	// NoReplacement never evicts; uncovered lines use direct encryption
	// (paper "SNC-NoRepl").
	NoReplacement
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "SNC-LRU"
	case NoReplacement:
		return "SNC-NoRepl"
	default:
		return "unknown"
	}
}

// Config describes an SNC.
type Config struct {
	// SizeBytes is the total SNC capacity (32KB/64KB/128KB in Figure 6).
	SizeBytes int
	// EntryBytes is the storage per sequence number (2 in the paper).
	EntryBytes int
	// Ways is the associativity; 0 means fully associative (the paper's
	// default; Figure 7 evaluates 32).
	Ways int
	// LineBytes is the L2 line size covered by one entry (128).
	LineBytes int
	// Policy is the replacement policy.
	Policy Policy
	// PIDBits is the per-entry process-ID tag width for multiprogrammed
	// operation (Section 4.3 option 2: "attaching a process ID to each
	// sequence number"). Tag bits are stored alongside each sequence number
	// in the same SizeBytes, shrinking the number of entries the SNC holds;
	// 0 means untagged (single-process operation).
	PIDBits int
}

// DefaultConfig is the paper's primary configuration: 64KB, fully
// associative, 2-byte entries over 128-byte lines, LRU.
func DefaultConfig() Config {
	return Config{SizeBytes: 64 << 10, EntryBytes: 2, Ways: 0, LineBytes: 128, Policy: LRU}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.EntryBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("snc: sizes must be positive")
	}
	if c.SizeBytes%c.EntryBytes != 0 {
		return fmt.Errorf("snc: size %d not a multiple of entry size %d", c.SizeBytes, c.EntryBytes)
	}
	if c.PIDBits < 0 || c.PIDBits > 16 {
		return fmt.Errorf("snc: pid tag width %d out of range [0,16]", c.PIDBits)
	}
	entries := c.Entries()
	if entries <= 0 {
		return fmt.Errorf("snc: no entries fit %d bytes with %d-bit pid tags", c.SizeBytes, c.PIDBits)
	}
	ways := c.Ways
	if ways == 0 {
		ways = entries
	}
	if entries%ways != 0 {
		return fmt.Errorf("snc: %d entries not divisible by %d ways", entries, ways)
	}
	if sets := entries / ways; bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("snc: set count %d not a power of two", sets)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("snc: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// Entries returns the number of sequence numbers the SNC can hold. PID tag
// bits ride in the same storage, so a tagged SNC holds fewer entries; a
// set-associative tagged SNC additionally rounds down to the hardware's
// power-of-two set structure.
func (c Config) Entries() int {
	if c.PIDBits <= 0 {
		return c.SizeBytes / c.EntryBytes
	}
	raw := c.SizeBytes * 8 / (c.EntryBytes*8 + c.PIDBits)
	if c.Ways <= 0 {
		return raw // fully associative: a single set holds any count
	}
	sets := raw / c.Ways
	if sets <= 0 {
		return 0
	}
	sets = 1 << (bits.Len(uint(sets)) - 1)
	return sets * c.Ways
}

// CoverageBytes returns how much memory the SNC can cover (entries × line).
func (c Config) CoverageBytes() int { return c.Entries() * c.LineBytes }

type entry struct {
	tag uint64
	seq uint16
	// LRU list links within the set (indices into SNC.entries; -1 = none).
	// int32 keeps the entry at 16 bytes — the largest SNC holds 64K
	// entries, far inside the range.
	prev, next int32
}

// set holds the per-set LRU list endpoints and a tag index. Vacant slots
// are handed out by a bump allocator: slots are only freed en masse by
// resetSet, so the next vacancy in [si*ways, (si+1)*ways) is always
// si*ways+bump — no free list to build or maintain.
type set struct {
	head, tail int32 // MRU..LRU (indices into SNC.entries; -1 = empty)
	index      tagIndex
	base       int32 // first entry slot owned by this set (si*ways)
	bump       int32 // slots [base, base+bump) are allocated
}

// SNC is the sequence number cache. Lookups are O(1) via per-set
// open-addressed hash indexes; LRU is maintained with intrusive lists so
// fully associative configurations (a single 32K-way set in the paper's
// default) stay fast.
type SNC struct {
	cfg       Config
	entries   []entry
	sets      []set
	ways      int32
	setMask   uint64
	lineShift uint
	occupied  int

	// flushScratch backs FlushAll's result so steady-state context
	// switches stop allocating.
	flushScratch [][2]uint64

	// Statistics.
	QueryHits    uint64
	QueryMisses  uint64
	UpdateHits   uint64
	UpdateMisses uint64
	Evictions    uint64
	Rejected     uint64 // NoReplacement installs refused because full
	SeqOverflows uint64 // Updates that wrapped a 16-bit sequence number
}

// New builds an SNC, panicking on invalid configuration.
func New(cfg Config) *SNC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	entries := cfg.Entries()
	ways := cfg.Ways
	if ways == 0 {
		ways = entries
	}
	nsets := entries / ways
	s := &SNC{
		cfg:       cfg,
		entries:   make([]entry, entries),
		sets:      make([]set, nsets),
		ways:      int32(ways),
		setMask:   uint64(nsets - 1),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}
	for i := range s.sets {
		s.sets[i].base = int32(i) * s.ways
		s.resetSet(i)
	}
	return s
}

// resetSet empties set si: slots [si*ways, (si+1)*ways) become vacant again
// via the bump allocator. Shared by New and FlushAll so the two construct
// identical vacancy state.
func (s *SNC) resetSet(si int) {
	st := &s.sets[si]
	st.head, st.tail = -1, -1
	st.bump = 0
	st.index.init(int(s.ways))
}

// alloc hands out the set's next vacant slot, or -1 when it is full.
func (st *set) alloc(ways int32) int32 {
	if st.bump >= ways {
		return -1
	}
	slot := st.base + st.bump
	st.bump++
	return slot
}

// unlink removes slot from its set's LRU list.
func (s *SNC) unlink(st *set, slot int32) {
	e := &s.entries[slot]
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		st.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

// pushFront makes slot the MRU of its set.
func (s *SNC) pushFront(st *set, slot int32) {
	e := &s.entries[slot]
	e.prev, e.next = -1, st.head
	if st.head >= 0 {
		s.entries[st.head].prev = slot
	}
	st.head = slot
	if st.tail < 0 {
		st.tail = slot
	}
}

// touch refreshes slot to MRU.
func (s *SNC) touch(st *set, slot int32) {
	if st.head == slot {
		return
	}
	s.unlink(st, slot)
	s.pushFront(st, slot)
}

// Config returns the SNC configuration.
func (s *SNC) Config() Config { return s.cfg }

func (s *SNC) locate(lineVA uint64) (st *set, tag uint64) {
	lineNum := lineVA >> s.lineShift
	return &s.sets[lineNum&s.setMask], lineNum
}

// Query looks up the sequence number for a line being *read* from memory
// (paper: "query" operations fill the seed for decryption). On a hit the
// entry's LRU state is refreshed.
func (s *SNC) Query(lineVA uint64) (seq uint16, hit bool) {
	st, tag := s.locate(lineVA)
	if slot, ok := st.index.find(tag); ok {
		s.QueryHits++
		s.touch(st, slot)
		return s.entries[slot].seq, true
	}
	s.QueryMisses++
	return 0, false
}

// Update increments and returns the sequence number for a line being
// *written back* (paper equation 4: SeqNo_i += 1 before forming the seed).
// On a miss it returns hit=false and the caller applies the policy. wrapped
// reports that the 16-bit counter overflowed back to zero: the (address,
// seq) seed space for the line is exhausted and reusing it would reuse a
// one-time pad, so the caller must re-key — the OTP scheme charges a direct
// re-encryption of the covered line (Section 3.4.2's remedy).
func (s *SNC) Update(lineVA uint64) (seq uint16, hit, wrapped bool) {
	st, tag := s.locate(lineVA)
	if slot, ok := st.index.find(tag); ok {
		s.UpdateHits++
		e := &s.entries[slot]
		if e.seq == math.MaxUint16 {
			s.SeqOverflows++
			wrapped = true
		}
		e.seq++
		s.touch(st, slot)
		return e.seq, true, wrapped
	}
	s.UpdateMisses++
	return 0, false, false
}

// Install places a (line, seq) pair fetched from memory into the SNC,
// evicting the LRU victim if the set is full. It returns the victim so the
// caller can spill it (Algorithm 1 lines 11-12 / 24-25). Install is used by
// the LRU policy.
func (s *SNC) Install(lineVA uint64, seq uint16) (victimVA uint64, victimSeq uint16, evicted bool) {
	st, tag := s.locate(lineVA)
	if slot, ok := st.index.find(tag); ok {
		// Already present (e.g. installed by a racing path): refresh.
		s.entries[slot].seq = seq
		s.touch(st, slot)
		return 0, 0, false
	}
	slot := st.alloc(s.ways)
	if slot >= 0 {
		s.occupied++
	} else {
		// Evict the set's LRU entry.
		slot = st.tail
		victim := &s.entries[slot]
		s.Evictions++
		victimVA, victimSeq, evicted = victim.tag<<s.lineShift, victim.seq, true
		st.index.del(victim.tag)
		s.unlink(st, slot)
	}
	s.entries[slot] = entry{tag: tag, seq: seq, prev: -1, next: -1}
	st.index.put(tag, slot)
	s.pushFront(st, slot)
	return victimVA, victimSeq, evicted
}

// TryInstall installs only if the line's set has a vacancy; it never evicts.
// It returns false when the SNC cannot accept the entry (NoReplacement
// policy, Section 4.1: "when SNC is full ... they should be encrypted
// directly").
func (s *SNC) TryInstall(lineVA uint64, seq uint16) bool {
	st, tag := s.locate(lineVA)
	if slot, ok := st.index.find(tag); ok {
		s.entries[slot].seq = seq
		s.touch(st, slot)
		return true
	}
	if slot := st.alloc(s.ways); slot >= 0 {
		s.occupied++
		s.entries[slot] = entry{tag: tag, seq: seq, prev: -1, next: -1}
		st.index.put(tag, slot)
		s.pushFront(st, slot)
		return true
	}
	s.Rejected++
	return false
}

// Peek returns the stored sequence number without touching LRU state or
// statistics (used by speculative pad-precompute schemes to read the value
// their prediction must track).
func (s *SNC) Peek(lineVA uint64) (seq uint16, ok bool) {
	st, tag := s.locate(lineVA)
	slot, ok := st.index.find(tag)
	if !ok {
		return 0, false
	}
	return s.entries[slot].seq, true
}

// Contains reports presence without touching LRU state or stats.
func (s *SNC) Contains(lineVA uint64) bool {
	st, tag := s.locate(lineVA)
	_, ok := st.index.find(tag)
	return ok
}

// Occupied returns the number of valid entries.
func (s *SNC) Occupied() int { return s.occupied }

// FlushAll invalidates every entry, returning the (lineVA, seq) pairs that
// were held. Used on context switches when the SNC is flushed to memory
// with encryption (Section 4.3 option 1). The returned slice is a scratch
// buffer owned by the SNC, valid only until the next FlushAll call.
func (s *SNC) FlushAll() (spilled [][2]uint64) {
	spilled = s.flushScratch[:0]
	for si := range s.sets {
		st := &s.sets[si]
		for slot := st.head; slot >= 0; slot = s.entries[slot].next {
			e := &s.entries[slot]
			spilled = append(spilled, [2]uint64{e.tag << s.lineShift, uint64(e.seq)}) //secsim:allowalloc flushScratch reuse; stable once the largest flush has been seen
		}
		s.resetSet(si)
	}
	s.occupied = 0
	s.flushScratch = spilled
	return spilled
}

// HitRate returns total hits over total accesses.
func (s *SNC) HitRate() float64 {
	hits := s.QueryHits + s.UpdateHits
	total := hits + s.QueryMisses + s.UpdateMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// ResetStats clears counters but keeps contents.
func (s *SNC) ResetStats() {
	s.QueryHits, s.QueryMisses, s.UpdateHits, s.UpdateMisses = 0, 0, 0, 0
	s.Evictions, s.Rejected, s.SeqOverflows = 0, 0, 0
}
