package api

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error codes. Stable strings a client can switch on; the HTTP status is
// redundant with the code so a caller that only sees the body (a line in a
// log, a forwarded envelope) still knows what happened.
const (
	// CodeBadRequest (400): the request body or spec did not resolve.
	CodeBadRequest = "bad_request"
	// CodeNotFound (404): no such route or figure.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed (405): the route exists under another method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded (429): admission capacity reached; RetryAfterS carries
	// the same estimate as the Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeUnsupportedVersion (400): the X-Secsim-Api-Version header named a
	// contract this server does not speak (mixed-version fleet).
	CodeUnsupportedVersion = "unsupported_version"
	// CodeInternal (500): the simulation failed or panicked.
	CodeInternal = "internal"
)

// Error is the structured error every endpoint returns, wrapped in an
// Envelope. It implements error so service layers can pass one through
// unchanged and clients can surface it directly.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// RetryAfterS, when nonzero, is the server's backoff estimate in whole
	// seconds (set on CodeOverloaded, mirroring the Retry-After header).
	RetryAfterS int64 `json:"retry_after_s,omitempty"`
}

func (e *Error) Error() string {
	if e.RetryAfterS > 0 {
		return fmt.Sprintf("%s: %s (retry after %ds)", e.Code, e.Message, e.RetryAfterS)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an Error with a formatted message.
func Errorf(code string, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Envelope is the wire shape of an error response: {"error":{...}}.
type Envelope struct {
	Err Error `json:"error"`
}

// Status maps an error code to its HTTP status; unknown codes are 500 so
// an unmapped error is loudly a server bug rather than silently a 200.
func Status(code string) int {
	switch code {
	case CodeBadRequest, CodeUnsupportedVersion:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// WriteJSON writes v as indented JSON with the given status. The returned
// error is the encoder's: by the time encoding starts the status line is
// committed, so a failure (in practice: the client hung up mid-body)
// cannot be reported on the wire — callers record it in their metrics
// instead of silently dropping it.
func WriteJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteError writes e as an Envelope with its mapped status. CodeOverloaded
// errors additionally carry the Retry-After header, so the estimate is
// available both to plain HTTP clients (header) and to envelope parsers
// (retry_after_s). The returned error is WriteJSON's.
func WriteError(w http.ResponseWriter, e *Error) error {
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(e.RetryAfterS))
	}
	return WriteJSON(w, Status(e.Code), Envelope{Err: *e})
}

// ErrorFromBody decodes an error envelope from a non-2xx response body.
// Bodies that do not parse as an envelope (a proxy's HTML, a truncated
// read) degrade to CodeInternal with the raw body as the message, so
// callers always get a usable *Error.
func ErrorFromBody(status int, body []byte) *Error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err.Code != "" {
		return &env.Err
	}
	msg := string(body)
	if len(msg) > 256 {
		msg = msg[:256]
	}
	return &Error{Code: CodeInternal, Message: fmt.Sprintf("status %d: %s", status, msg)}
}
