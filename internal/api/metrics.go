package api

import (
	"secureproc/internal/dispatch"
	"secureproc/internal/experiments"
	"secureproc/internal/store"
)

// Metrics is the /metrics payload.
type Metrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests_total"`
	// EncodeFailures counts response bodies that failed to encode after
	// the status line was committed (in practice: the client hung up
	// mid-body), keyed like Requests; endpoints with no failures are
	// absent.
	EncodeFailures map[string]int64 `json:"encode_failures_total"`
	// Simulations counts simulations actually executed (memo misses that
	// ran to completion started; hits and coalesced waiters don't add).
	Simulations int64 `json:"simulations_total"`
	// InFlightSims is the number of simulations executing right now.
	InFlightSims int `json:"in_flight_sims"`
	// ResultMemo and TraceMemo expose the singleflight caches' lifecycle
	// counters (size, capacity, hits, misses, coalesced, evictions).
	ResultMemo experiments.CacheStats `json:"result_memo"`
	TraceMemo  experiments.CacheStats `json:"trace_memo"`
	// ResultStore exposes the persistent warm-start store's counters
	// (hits, misses, corrupt entries, writes); absent when no -store
	// directory is configured.
	ResultStore *store.Stats `json:"result_store,omitempty"`
	// Checkpoints exposes the process-wide post-warmup checkpoint cache.
	Checkpoints experiments.CheckpointStats `json:"checkpoints"`
	// Speculation aggregates the epoch-parallel bookkeeping across every
	// simulation this runner dispatched wide (zero when SimJobs is off or
	// the budget never had slack).
	Speculation experiments.SpeculationTotals `json:"speculation"`
	// EpochSims exposes the process-wide epoch-simulator cache backing the
	// speculative runs.
	EpochSims experiments.EpochCacheStats `json:"epoch_sims"`
	// Dispatch exposes the execution dispatch layer: the admission gate
	// (rejections become 429s) and the weighted-fair queue over the shared
	// worker budget.
	Dispatch DispatchMetrics `json:"dispatch"`
	// Runtime exposes Go runtime gauges so saturation (goroutine pileup,
	// heap growth, GC pressure) is diagnosable from /metrics alone.
	Runtime RuntimeMetrics `json:"runtime"`
	// Cluster exposes the sweep fabric — ring membership, per-peer
	// forwarding counters and the fleet rollup; absent on single-node
	// deployments (no -peers).
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// DispatchMetrics groups the dispatch layer's counters. secsim batch mode
// prints the same struct on stderr, so CLI and service diagnostics read
// identically.
type DispatchMetrics struct {
	Admission dispatch.AdmissionStats `json:"admission"`
	Queue     dispatch.QueueStats     `json:"queue"`
}

// RuntimeMetrics is a point-in-time snapshot of Go runtime gauges.
type RuntimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
}

// NodeStats is one node's cluster-local counter block: what this node
// forwarded, served, and degraded. It is both the "self" entry of
// ClusterMetrics and the GET /v1/cluster/stats payload the rollup sums.
type NodeStats struct {
	// Self is the node's advertised ring address.
	Self string `json:"self"`
	// Simulations mirrors simulations_total, so a fleet rollup can prove
	// exactly-once execution across nodes.
	Simulations int64 `json:"simulations_total"`
	// Forwarded counts requests this node routed to an owning peer.
	Forwarded int64 `json:"forwarded_total"`
	// ServedForwarded counts requests this node executed that arrived via
	// a peer's forward (hop count > 0).
	ServedForwarded int64 `json:"served_forwarded_total"`
	// Fallback counts requests executed locally because the owning peer
	// was down or unreachable — degraded, never failed.
	Fallback int64 `json:"fallback_total"`
	// Retries counts forward attempts retried after a transient failure.
	Retries int64 `json:"retries_total"`
	// HopLimitStops counts requests served locally because the hop budget
	// was exhausted (a misconfigured ring would otherwise loop them).
	HopLimitStops int64 `json:"hop_limit_stops_total"`
	// Batches and BatchedSpecs count the cross-request batching window:
	// BatchedSpecs specs were coalesced into Batches dispatcher entries.
	Batches      int64 `json:"batches_total"`
	BatchedSpecs int64 `json:"batched_specs_total"`
}

// PeerMetrics is one remote peer as seen from this node.
type PeerMetrics struct {
	Addr string `json:"addr"`
	// Healthy is false while the peer is in its failure cooldown (recent
	// forwards failed; traffic falls back locally until it expires).
	Healthy bool `json:"healthy"`
	// Forwarded/Fallback/Retries count this node's traffic toward the peer.
	Forwarded int64 `json:"forwarded_total"`
	Fallback  int64 `json:"fallback_total"`
	Retries   int64 `json:"retries_total"`
}

// FleetRollup sums NodeStats across every reachable ring member — the
// cluster-wide view served from any node's /metrics.
type FleetRollup struct {
	// Nodes is the number of members that answered the rollup poll.
	Nodes int `json:"nodes"`
	// Unreachable lists members that did not answer (their counters are
	// missing from the sums).
	Unreachable []string `json:"unreachable,omitempty"`
	// Simulations is the fleet-wide simulations_total — with consistent
	// routing, N identical requests anywhere in the fleet sum to 1.
	Simulations     int64 `json:"simulations_total"`
	Forwarded       int64 `json:"forwarded_total"`
	ServedForwarded int64 `json:"served_forwarded_total"`
	Fallback        int64 `json:"fallback_total"`
}

// ClusterMetrics is the /metrics "cluster" block.
type ClusterMetrics struct {
	// Self and Peers describe the ring membership from this node's view.
	Self     string `json:"self"`
	HopLimit int    `json:"hop_limit"`
	// Local is this node's own counter block.
	Local NodeStats `json:"local"`
	// Peers lists every other ring member with health and traffic.
	Peers []PeerMetrics `json:"peers"`
	// Fleet is the cross-node rollup; absent when the poll was skipped.
	Fleet *FleetRollup `json:"fleet,omitempty"`
}
