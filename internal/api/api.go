// Package api is the versioned wire contract of the secsim service — the
// single source of truth for every request, response and error payload
// secsimd serves and every client (the bundled CLI, the cluster-forwarding
// fabric, external programs) consumes. All routes live under the /v1
// prefix; Version names the contract and travels on forwarded requests in
// the X-Secsim-Api-Version header so mixed-version fleets fail loudly
// instead of misparsing each other.
//
// # Endpoints
//
//	POST /v1/run              RunRequest  -> RunResponse
//	POST /v1/sweep            SweepRequest -> SweepResponse, or an NDJSON
//	                          stream of StreamLine values ending in a
//	                          StreamTrailer (see SweepRequest.Stream)
//	GET  /v1/figures/{name}   FigureResponse (?format=text for plain text)
//	GET  /v1/schemes          SchemesResponse
//	GET  /v1/benchmarks       BenchmarksResponse
//	GET  /v1/cluster/stats    NodeStats (this node's cluster counters)
//	GET  /healthz             HealthResponse
//	GET  /metrics             Metrics
//
// # Errors
//
// Every error response is an Envelope: a JSON object whose "error" field
// carries a stable machine-readable Code, a human-readable Message, and —
// for CodeOverloaded — the same retry estimate the Retry-After header
// carries, as retry_after_s in the body. See error.go for the code table.
//
// # Requests
//
// A RunRequest names a benchmark and a protection scheme; omitted tuning
// fields default to the paper's standard configuration (64KB fully
// associative SNC, 256KB 4-way L2, 50-cycle crypto). Responses echo the
// fully resolved Spec so callers never have to reimplement defaulting.
package api

import (
	"fmt"

	"secureproc/internal/experiments"
	"secureproc/internal/sim"
)

// Version is the wire-contract version. It is the path prefix of every
// endpoint ("/" + Version + "/run") and the value of the
// HeaderAPIVersion header on forwarded intra-cluster requests.
const Version = "v1"

// Cluster request headers. Hops counts forwards a request has taken
// through the fabric (absent or 0 = came straight from a client);
// HeaderAPIVersion pins the wire contract on forwarded requests.
const (
	HeaderHops       = "X-Secsim-Hops"
	HeaderAPIVersion = "X-Secsim-Api-Version"
	// HeaderClientID tags requests with a fairness owner; the fabric
	// propagates it on forwards so a client keeps one queue fleet-wide.
	HeaderClientID = "X-Client-ID"
)

// RunRequest is the wire form of one simulation request (POST /v1/run) and
// of each entry in a sweep's spec list. Omitted pointer fields default to
// the paper's standard configuration. In sweep requests Bench may also be
// a comma-separated list or "all", expanding to one spec per benchmark.
type RunRequest struct {
	Bench  string  `json:"bench"`
	Scheme string  `json:"scheme"`
	SNCKB  *int    `json:"snc_kb,omitempty"`
	SNCWay *int    `json:"snc_ways,omitempty"`
	L2KB   *int    `json:"l2_kb,omitempty"`
	L2Way  *int    `json:"l2_ways,omitempty"`
	Crypto *uint64 `json:"crypto_lat,omitempty"`
}

// Spec is the canonical echo of a resolved spec in responses: every field
// populated, the scheme in canonical registry form.
type Spec struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	SNCKB  int    `json:"snc_kb"`
	SNCWay int    `json:"snc_ways"`
	L2KB   int    `json:"l2_kb"`
	L2Way  int    `json:"l2_ways"`
	Crypto uint64 `json:"crypto_lat"`
}

// SpecOf renders a resolved experiments.Spec in wire form.
func SpecOf(s experiments.Spec) Spec {
	return Spec{
		Bench:  s.Bench,
		Scheme: s.Scheme.Canonical(),
		SNCKB:  s.SNCKB,
		SNCWay: s.SNCWays,
		L2KB:   s.L2KB,
		L2Way:  s.L2Ways,
		Crypto: s.CryptoLat,
	}
}

// RequestOf renders a resolved spec back into a fully-pinned RunRequest —
// the form the cluster fabric forwards, so the owning peer resolves the
// exact same configuration regardless of its own defaults.
func RequestOf(s experiments.Spec) RunRequest {
	snc, ways, l2, l2w, cl := s.SNCKB, s.SNCWays, s.L2KB, s.L2Ways, s.CryptoLat
	return RunRequest{
		Bench:  s.Bench,
		Scheme: s.Scheme.Canonical(),
		SNCKB:  &snc,
		SNCWay: &ways,
		L2KB:   &l2,
		L2Way:  &l2w,
		Crypto: &cl,
	}
}

// Specs resolves the request against the workload and scheme registries,
// applying paper defaults to omitted fields. With expandBench, the Bench
// field may be a comma-separated list or "all" (one spec per benchmark);
// without it, exactly one benchmark is required — the /v1/run contract.
func (rr RunRequest) Specs(expandBench bool) ([]experiments.Spec, error) {
	if rr.Bench == "" {
		return nil, fmt.Errorf("spec needs a bench")
	}
	if rr.Scheme == "" {
		return nil, fmt.Errorf("spec needs a scheme")
	}
	benches, err := experiments.ExpandBenches(rr.Bench)
	if err != nil {
		return nil, err
	}
	if !expandBench && len(benches) != 1 {
		return nil, fmt.Errorf("run wants exactly one benchmark, got %d (%q); use /v1/sweep for lists", len(benches), rr.Bench)
	}
	ref, err := sim.SchemeByName(rr.Scheme)
	if err != nil {
		return nil, err
	}
	out := make([]experiments.Spec, 0, len(benches))
	for _, b := range benches {
		s := experiments.DefaultSpec(b, ref)
		if rr.SNCKB != nil {
			s.SNCKB = *rr.SNCKB
		}
		if rr.SNCWay != nil {
			s.SNCWays = *rr.SNCWay
		}
		if rr.L2KB != nil {
			s.L2KB = *rr.L2KB
		}
		if rr.L2Way != nil {
			s.L2Ways = *rr.L2Way
		}
		if rr.Crypto != nil {
			s.CryptoLat = *rr.Crypto
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// RunResponse is the /v1/run payload.
type RunResponse struct {
	Spec   Spec       `json:"spec"`
	Result sim.Result `json:"result"`
}

// SweepRequest is the /v1/sweep payload: a list of specs, each expandable
// over benchmarks ("bench": "all" or "gzip,mcf"). Stream, when set,
// overrides the server's streaming default for this request.
type SweepRequest struct {
	Specs  []RunRequest `json:"specs"`
	Stream *bool        `json:"stream,omitempty"`
}

// SweepResponse reports every resolved spec with its result, in request
// order (benchmark expansion preserves benchmark order).
type SweepResponse struct {
	Count   int           `json:"count"`
	Results []RunResponse `json:"results"`
}

// StreamLine is one NDJSON line of a streamed sweep: spec i's outcome,
// emitted the moment its simulation lands. Lines arrive in completion
// order, not request order; Index maps each back to the expanded spec
// list. Exactly one of Result and Error is set.
type StreamLine struct {
	Index  int         `json:"index"`
	Spec   Spec        `json:"spec"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// StreamTrailer terminates a streamed sweep: Count results landed; Error
// reports a failure that shed the remaining specs.
type StreamTrailer struct {
	Done  bool   `json:"done"`
	Count int    `json:"count"`
	Error string `json:"error,omitempty"`
}

// FigureResponse is the /v1/figures/{name} payload.
type FigureResponse struct {
	Name     string `json:"name"`
	ID       string `json:"id"`
	Title    string `json:"title"`
	Rendered string `json:"rendered"`
}

// SchemeInfo is one /v1/schemes entry.
type SchemeInfo struct {
	Name    string   `json:"name"`
	Doc     string   `json:"doc"`
	Aliases []string `json:"aliases,omitempty"`
}

// SchemesResponse is the /v1/schemes payload.
type SchemesResponse struct {
	Schemes []SchemeInfo `json:"schemes"`
}

// BenchmarksResponse is the /v1/benchmarks payload.
type BenchmarksResponse struct {
	Benchmarks []string `json:"benchmarks"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}
