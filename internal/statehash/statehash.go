// Package statehash provides a tiny deterministic word-stream hasher used
// to fingerprint simulator state at epoch boundaries (optimistic parallel
// simulation commits an epoch when the state it speculated from hashes
// identically to the state the previous epoch actually produced).
//
// The hash is FNV-1a lifted from bytes to 64-bit words: quality is far more
// than adequate for comparing deterministic machine states against each
// other (the inputs are never adversarial), and hashing word-at-a-time
// keeps a multi-megabyte checkpoint fingerprint in the microsecond range.
// It is an in-process, run-to-run-stable identity — never persist it.
package statehash

const (
	offset64 = 0xcbf29ce484222325
	prime64  = 0x100000001b3
)

// Hash accumulates a word stream. The zero value is NOT ready to use;
// start from New.
type Hash uint64

// New returns a hasher seeded with the FNV-1a offset basis.
func New() Hash { return offset64 }

// Word folds one 64-bit word into the state.
func (h *Hash) Word(v uint64) { *h = (*h ^ Hash(v)) * prime64 }

// U32 folds a 32-bit value.
func (h *Hash) U32(v uint32) { h.Word(uint64(v)) }

// U16 folds a 16-bit value.
func (h *Hash) U16(v uint16) { h.Word(uint64(v)) }

// Int folds an int.
func (h *Hash) Int(v int) { h.Word(uint64(v)) }

// I32 folds an int32.
func (h *Hash) I32(v int32) { h.Word(uint64(v)) }

// Bool folds a bool.
func (h *Hash) Bool(v bool) {
	if v {
		h.Word(1)
	} else {
		h.Word(0)
	}
}

// Words folds a whole slice, length first (so concatenations of different
// shapes cannot alias).
func (h *Hash) Words(vs []uint64) {
	h.Int(len(vs))
	for _, v := range vs {
		h.Word(v)
	}
}

// Sum returns the accumulated fingerprint.
func (h Hash) Sum() uint64 { return uint64(h) }
