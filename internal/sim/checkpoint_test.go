package sim

import (
	"testing"

	"secureproc/internal/workload"
)

// snapshotSchemes covers every registered scheme family: all of them
// implement core.Snapshottable, so Checkpoint must succeed everywhere.
var snapshotSchemes = []SchemeRef{
	SchemeBaseline, SchemeXOM, SchemeOTPLRU, SchemeOTPNoRepl,
	SchemeOTPMAC, SchemeOTPPrecompute,
}

func newCheckpointSystem(t *testing.T, ref SchemeRef) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = ref
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSplitRunMatchesStraightThrough locks the contract RunWarmup and
// RunMeasured are documented with: splitting a run at the warmup boundary is
// event-for-event identical to the straight-through Run, including the
// degenerate all-warmup and no-warmup splits.
func TestSplitRunMatchesStraightThrough(t *testing.T) {
	recs := allocRecords()
	for _, ref := range snapshotSchemes {
		t.Run(ref.Name, func(t *testing.T) {
			for _, warm := range []int{0, len(recs) / 3, len(recs)} {
				straight := newCheckpointSystem(t, ref)
				want := straight.Run(workload.Replay(recs), warm)

				split := newCheckpointSystem(t, ref)
				split.RunWarmup(workload.Replay(recs[:warm]))
				got := split.RunMeasured(workload.Replay(recs[warm:]))
				if got != want {
					t.Errorf("warm=%d: split run diverged:\n got %+v\nwant %+v", warm, got, want)
				}
			}
		})
	}
}

// TestCheckpointForkMatchesStraightThrough is the tentpole equivalence
// property: a fresh system restored from a post-warmup checkpoint must
// produce the byte-identical Result of a straight-through run — and the
// checkpoint must be reusable, so any number of systems can fork from it.
func TestCheckpointForkMatchesStraightThrough(t *testing.T) {
	recs := allocRecords()
	warm := len(recs) / 3
	for _, ref := range snapshotSchemes {
		t.Run(ref.Name, func(t *testing.T) {
			straight := newCheckpointSystem(t, ref)
			want := straight.Run(workload.Replay(recs), warm)

			warmer := newCheckpointSystem(t, ref)
			warmer.RunWarmup(workload.Replay(recs[:warm]))
			cp, ok := warmer.Checkpoint()
			if !ok {
				t.Fatalf("scheme %s does not checkpoint", ref.Name)
			}
			// The system that took the checkpoint continues unharmed...
			if got := warmer.RunMeasured(workload.Replay(recs[warm:])); got != want {
				t.Errorf("checkpointed system diverged:\n got %+v\nwant %+v", got, want)
			}
			// ...and fresh systems fork from it, repeatedly: the first
			// forked run must not be able to corrupt the checkpoint for the
			// second.
			for i := 0; i < 2; i++ {
				forked := newCheckpointSystem(t, ref)
				if err := forked.Restore(cp); err != nil {
					t.Fatalf("fork %d: %v", i, err)
				}
				if got := forked.RunMeasured(workload.Replay(recs[warm:])); got != want {
					t.Errorf("fork %d diverged:\n got %+v\nwant %+v", i, got, want)
				}
			}
		})
	}
}

// TestCheckpointIsIsolatedFromSource: running the source system past the
// checkpoint must not leak state into snapshots already taken (deep copy,
// not aliasing).
func TestCheckpointIsIsolatedFromSource(t *testing.T) {
	recs := allocRecords()
	warm := len(recs) / 3
	src := newCheckpointSystem(t, SchemeOTPLRU)
	src.RunWarmup(workload.Replay(recs[:warm]))
	cp, ok := src.Checkpoint()
	if !ok {
		t.Fatal("no checkpoint")
	}
	want := src.RunMeasured(workload.Replay(recs[warm:]))

	// src has now mutated far past the boundary; a restore must still see
	// the boundary state.
	forked := newCheckpointSystem(t, SchemeOTPLRU)
	if err := forked.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got := forked.RunMeasured(workload.Replay(recs[warm:])); got != want {
		t.Errorf("checkpoint was mutated by the source system:\n got %+v\nwant %+v", got, want)
	}
}

// TestRestoreRejectsMismatchedConfig: a checkpoint must only ever land in a
// machine built from the same configuration, and a failed restore must leave
// the target untouched (callers fall through to a scratch warmup).
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	recs := allocRecords()
	warm := len(recs) / 4
	src := newCheckpointSystem(t, SchemeOTPLRU)
	src.RunWarmup(workload.Replay(recs[:warm]))
	cp, _ := src.Checkpoint()

	// Different scheme.
	other := newCheckpointSystem(t, SchemeXOM)
	if err := other.Restore(cp); err == nil {
		t.Error("restore into a different scheme accepted")
	}
	// Different geometry, same scheme.
	cfg := DefaultConfig()
	cfg.Scheme = SchemeOTPLRU
	cfg.L2.SizeBytes = 512 << 10
	bigger, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bigger.Restore(cp); err == nil {
		t.Error("restore into a different L2 geometry accepted")
	}
	// The rejected target is unmutated: it still runs from scratch and
	// matches a never-touched system.
	ref := newCheckpointSystem(t, SchemeXOM)
	want := ref.Run(workload.Replay(recs), warm)
	otherRes := other.Run(workload.Replay(recs), warm)
	if otherRes != want {
		t.Errorf("failed restore mutated the target:\n got %+v\nwant %+v", otherRes, want)
	}
}

// TestRestoredStepAllocsZero extends the steady-state zero-alloc guarantee
// to the forked measurement phase: restoring a checkpoint reuses the
// system's allocations, so a settled system steps alloc-free after restore.
func TestRestoredStepAllocsZero(t *testing.T) {
	recs := allocRecords()
	for _, ref := range []SchemeRef{SchemeOTPLRU, SchemeOTPMAC} {
		t.Run(ref.Name, func(t *testing.T) {
			sys := newCheckpointSystem(t, ref)
			// Settle every structure's high-water mark, then checkpoint.
			for pass := 0; pass < 2; pass++ {
				for _, rec := range recs {
					sys.Step(rec)
				}
			}
			sys.cpu.Drain()
			cp, ok := sys.Checkpoint()
			if !ok {
				t.Fatal("no checkpoint")
			}
			if err := sys.Restore(cp); err != nil {
				t.Fatal(err)
			}
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				sys.Step(recs[i%len(recs)])
				i++
			})
			if avg != 0 {
				t.Errorf("scheme %s: %.2f allocs per post-restore Step, want 0", ref.Name, avg)
			}
		})
	}
}
