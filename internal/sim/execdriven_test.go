package sim

import (
	"testing"
)

// memWalker strides through a 1MB buffer ten times — enough repeated L2
// misses that steady-state behaviour dominates the cold first pass (the
// execution-driven path has no fast-forward warmup).
const memWalker = `
	li   s0, 0x100000     # base
	li   s1, 1048576      # 1MB region
	li   s2, 0            # offset
	li   s3, 80000        # accesses (~10 passes)
	li   s4, 0            # checksum
loop:
	beq  s3, r0, done
	add  t0, s0, s2
	lw   t1, 0(t0)
	add  s4, s4, t1
	sw   s4, 0(t0)
	addi s2, s2, 128
	blt  s2, s1, nowrap
	li   s2, 0
nowrap:
	addi s3, s3, -1
	jal  r0, loop
done:
	mv   a0, s4
	li   r1, 0
	sys  r1
`

func runWalker(t *testing.T, scheme SchemeRef) ProgramResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	pr, err := RunProgramSource(cfg, memWalker, 0x1000, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestExecDrivenSchemesAgreeFunctionally: the protection scheme changes
// cycles, never results.
func TestExecDrivenSchemesAgreeFunctionally(t *testing.T) {
	base := runWalker(t, SchemeBaseline)
	xom := runWalker(t, SchemeXOM)
	otp := runWalker(t, SchemeOTPLRU)
	if base.ExitCode != xom.ExitCode || base.ExitCode != otp.ExitCode {
		t.Fatalf("exit codes diverge: %d %d %d", base.ExitCode, xom.ExitCode, otp.ExitCode)
	}
	if base.Instructions != xom.Instructions || base.Instructions != otp.Instructions {
		t.Error("retired instruction counts diverge")
	}
	if !(base.Cycles < otp.Cycles && otp.Cycles < xom.Cycles) {
		t.Errorf("timing ordering violated: base=%d otp=%d xom=%d",
			base.Cycles, otp.Cycles, xom.Cycles)
	}
	// Without a fast-forward warmup the first of the ten passes pays OTP's
	// expensive cold query misses (251 cycles each, Section 4.2 "the most
	// expensive operation"), so OTP lands between baseline and XOM rather
	// than at the near-zero steady state the trace-driven runs show.
	otpExtra := otp.Cycles - base.Cycles
	xomExtra := xom.Cycles - base.Cycles
	if otpExtra*4 > xomExtra*3 {
		t.Errorf("OTP extra (%d) should be clearly below XOM's (%d)", otpExtra, xomExtra)
	}
}

// TestExecDrivenCountsTraffic: the walker's stores produce writebacks; OTP
// produces SNC activity.
func TestExecDrivenCountsTraffic(t *testing.T) {
	otp := runWalker(t, SchemeOTPLRU)
	if otp.L2Misses == 0 {
		t.Fatal("walker generated no L2 misses")
	}
	if otp.Writebacks == 0 {
		t.Error("stores never wrote back")
	}
	if otp.SNCQueryHits+otp.SNCQueryMisses == 0 {
		t.Error("no SNC queries under OTP")
	}
}

// TestExecDrivenSmallProgram: a compute-only program is scheme-insensitive.
func TestExecDrivenSmallProgram(t *testing.T) {
	const fib = `
		li   r1, 25
		li   r2, 0
		li   r3, 1
	loop:
		beq  r1, r0, done
		add  r4, r2, r3
		mv   r2, r3
		mv   r3, r4
		addi r1, r1, -1
		jal  r0, loop
	done:
		mv   a0, r2
		li   r1, 0
		sys  r1
	`
	run := func(k SchemeRef) ProgramResult {
		cfg := DefaultConfig()
		cfg.Scheme = k
		pr, err := RunProgramSource(cfg, fib, 0x1000, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	base := run(SchemeBaseline)
	if base.ExitCode != 75025 {
		t.Errorf("fib(25) = %d, want 75025", base.ExitCode)
	}
	// A tiny program is dominated by its one or two cold instruction
	// fetches: XOM charges +50 cycles on each, while OTP's VA-seeded pads
	// cost +1 — so OTP must sit essentially at baseline even here.
	otp := run(SchemeOTPLRU)
	if slow := Slowdown(otp.Result, base.Result); slow > 3 {
		t.Errorf("compute-bound program slowed %.2f%% under OTP", slow)
	}
	xom := run(SchemeXOM)
	if xom.Cycles < otp.Cycles {
		t.Error("XOM cheaper than OTP on cold fetches")
	}
}

// TestExecDrivenErrors: budget exhaustion and assembly errors propagate.
func TestExecDrivenErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := RunProgramSource(cfg, "loop: jal r0, loop", 0, 1000); err == nil {
		t.Error("infinite loop should exhaust budget")
	}
	if _, err := RunProgramSource(cfg, "bogus r1", 0, 1000); err == nil {
		t.Error("assembly error not propagated")
	}
	bad := cfg
	bad.WriteBufferDepth = 0
	if _, err := RunProgramSource(bad, "halt", 0, 10); err == nil {
		t.Error("invalid config not propagated")
	}
}
