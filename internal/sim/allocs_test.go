package sim

import (
	"testing"

	"secureproc/internal/workload"
)

// allocRecords builds a deterministic cyclic reference mix that exercises
// every hot path: L1/L2 hits, L2 misses, dirty evictions (write-allocate
// writebacks), instruction fetches, and — for OTP schemes — SNC queries,
// updates, installs, evictions and seq-number spills. The footprint spans
// 4MB, far past the 256KB L2, so steady-state stepping keeps missing and
// writing back rather than settling into pure hits.
func allocRecords() []workload.Record {
	var recs []workload.Record
	const lines = 32 << 10 // 32K distinct 128B lines = 4MB
	for i := 0; i < lines; i++ {
		addr := uint64(0x10000000) + uint64(i)*128
		kind := workload.Load
		if i%3 == 0 {
			kind = workload.Store
		}
		recs = append(recs, workload.Record{Gap: uint32(i % 7), Kind: kind, Addr: addr, Depends: i%5 == 0})
		if i%4 == 0 {
			recs = append(recs, workload.Record{Kind: workload.IFetch, Addr: 0x40000000 + uint64(i%512)*64})
		}
	}
	return recs
}

// TestStepSteadyStateAllocsZero locks the tentpole property of the fast
// path: once caches, SNC, sequence tables and the write buffer have seen
// the working set, stepping the machine allocates nothing — no fill
// closures, no miss-queue growth, no map churn.
func TestStepSteadyStateAllocsZero(t *testing.T) {
	recs := allocRecords()
	for _, ref := range []SchemeRef{SchemeBaseline, SchemeXOM, SchemeOTPLRU, SchemeOTPNoRepl} {
		t.Run(ref.Name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = ref
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm every structure with two full passes.
			for pass := 0; pass < 2; pass++ {
				for _, rec := range recs {
					sys.Step(rec)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				sys.Step(recs[i%len(recs)])
				i++
			})
			if avg != 0 {
				t.Errorf("scheme %s: %.2f allocs per steady-state Step, want 0", ref.Name, avg)
			}
		})
	}
}

// TestContextSwitchSteadyStateAllocsZero extends the property to the
// multiprogrammed path: repeated context switches reuse the victim
// scratch, the SNC flush buffer and the seq-number table.
func TestContextSwitchSteadyStateAllocsZero(t *testing.T) {
	recs := allocRecords()
	cfg := DefaultConfig()
	cfg.Scheme = SchemeOTPLRU
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both processes' footprints and the switch scratch high-water
	// marks: the stepping window drifts through the whole record list, so
	// warmup must cover at least one full cycle for every epoch's dirty
	// set to have been seen once.
	next, i := 1, 0
	stepSome := func() {
		for k := 0; k < 4096; k++ {
			sys.Step(recs[i%len(recs)])
			i++
		}
	}
	for s := 0; s < 24; s++ {
		stepSome()
		sys.ContextSwitch(next)
		next = 1 - next
	}
	avg := testing.AllocsPerRun(8, func() {
		stepSome()
		sys.ContextSwitch(next)
		next = 1 - next
	})
	if avg != 0 {
		t.Errorf("%.2f allocs per steady-state switch epoch, want 0", avg)
	}
}
