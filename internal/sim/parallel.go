package sim

import (
	"fmt"
	"sync"

	"secureproc/internal/workload"
)

// This file implements optimistic epoch-parallel simulation: one measured
// trace is cut into K contiguous epochs (workload.Slice) that are simulated
// concurrently, each on its own worker System forked from a *predicted*
// boundary checkpoint, in the style of optimistic parallel discrete-event
// simulation over SMARTS-style checkpoints.
//
// The simulator is deterministic, so the only predictor that can be exactly
// right is history: the predicted start state of epoch i is the actual end
// state epoch i-1 produced the last time this EpochSim ran the same trace.
// The first run therefore executes as a pipeline (each epoch waits for its
// predecessor's true boundary) while recording every boundary; repeat runs
// — a warm service answering the same /v1/run, a perf harness looping, a
// sweep revisiting a config — fork all K epochs at once and verify.
//
// Verification is a state-hash comparison, not a full state diff: when
// epoch i-1 finishes, its actual end-state fingerprint (Checkpoint.
// StateHash, behavior-affecting state only) is compared against the
// fingerprint of the state epoch i speculated from. Equal fingerprints
// commit the speculative epoch's Result delta as-is; a mismatch rolls the
// epoch back and re-simulates it from the true boundary state. Either way
// the merged Result is byte-identical to a serial Run: per-epoch Results
// are deltas of monotone counters over contiguous intervals (Result.Add),
// intermediate epochs never Drain (in-flight misses cross boundaries inside
// the checkpoints), and only the final epoch drains, exactly like the
// serial run.

// boundary carries one epoch's actual end state to its successor. A nil
// checkpoint means the producing epoch failed and the chain must unwind.
type boundary struct {
	cp   *Checkpoint
	hash uint64
}

// WorkerBudget grants execution slots to epoch legs just-in-time. It is
// satisfied by dispatch.Budget; sim depends only on this interface so the
// package graph stays acyclic. Implementations must never block.
type WorkerBudget interface {
	// TryAcquire claims up to want idle slots and returns how many were
	// granted — possibly zero.
	TryAcquire(want int) int
	// Release returns n slots claimed by TryAcquire.
	Release(n int)
}

// EpochSim is a reusable epoch-parallel executor for one machine
// configuration. It owns K worker Systems and double-buffered boundary
// checkpoints (predictions read by the current run, actuals written for the
// next), so repeated runs are allocation-free in steady state. An EpochSim
// runs one trace at a time; concurrent RunMeasured calls serialize on an
// internal mutex. It is NOT safe to share the underlying Systems elsewhere.
type EpochSim struct {
	mu     sync.Mutex
	cfg    Config
	epochs int

	// systems[i] is epoch i's private worker machine.
	systems []*System
	// pristine is the state of a freshly built System, restored into
	// systems[0] before Run's warmup so every Run starts from reset.
	pristine *Checkpoint
	// startCP is Run's scratch for the post-warmup boundary.
	startCP *Checkpoint

	// pred[b] / predHash[b] (b in [1, epochs)) hold the predicted machine
	// state at record boundary b — the actual boundary state of the
	// previous run. next[b] / nextHash[b] receive this run's actuals; the
	// two sets of buffers swap after every successful run so readers and
	// writers never alias.
	pred      []*Checkpoint
	predHash  []uint64
	predValid []bool
	predLen   int // len(recs) the predictions were recorded against
	next      []*Checkpoint
	nextHash  []uint64

	// Per-run scratch.
	results []Result
	spec    []SpecStats
}

// NewEpochSim builds an epoch-parallel executor that splits measured
// streams into `epochs` epochs. It errors when the configuration is invalid
// or the scheme cannot be checkpointed/fingerprinted (speculation would be
// unverifiable); such configurations must run serially.
func NewEpochSim(cfg Config, epochs int) (*EpochSim, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("sim: epoch count must be >= 1, got %d", epochs)
	}
	e := &EpochSim{
		cfg:       cfg,
		epochs:    epochs,
		systems:   make([]*System, epochs),
		pred:      make([]*Checkpoint, epochs),
		predHash:  make([]uint64, epochs),
		predValid: make([]bool, epochs),
		next:      make([]*Checkpoint, epochs),
		nextHash:  make([]uint64, epochs),
		results:   make([]Result, epochs),
		spec:      make([]SpecStats, epochs),
	}
	for i := range e.systems {
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		e.systems[i] = sys
	}
	cp, ok := e.systems[0].Checkpoint()
	if !ok {
		return nil, fmt.Errorf("sim: scheme %s is not checkpointable; epoch-parallel simulation unavailable", cfg.Scheme.Canonical())
	}
	if _, ok := cp.StateHash(); !ok {
		return nil, fmt.Errorf("sim: scheme %s state cannot be fingerprinted; epoch-parallel simulation unavailable", cfg.Scheme.Canonical())
	}
	e.pristine = cp
	return e, nil
}

// Epochs returns the configured epoch count.
func (e *EpochSim) Epochs() int { return e.epochs }

// Run is the epoch-parallel counterpart of System.Run over a materialized
// trace: the first warm records run serially as warmup (from reset state),
// then the measured remainder runs epoch-parallel with up to `workers`
// concurrent epochs. The Result (Speculation aside) is byte-identical to
//
//	sys, _ := New(cfg); sys.Run(workload.Replay(recs), warm)
func (e *EpochSim) Run(recs []workload.Record, warm, workers int) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if warm < 0 {
		warm = 0
	}
	if warm > len(recs) {
		warm = len(recs)
	}
	sys := e.systems[0]
	if err := sys.Restore(e.pristine); err != nil {
		return Result{}, err
	}
	sys.RunWarmup(workload.Replay(recs[:warm]))
	if e.startCP == nil {
		e.startCP = &Checkpoint{}
	}
	sys.CheckpointInto(e.startCP)
	return e.runMeasured(e.startCP, recs[warm:], workers, nil)
}

// RunMeasured runs the measured stream epoch-parallel from a post-warmup
// checkpoint, with up to `workers` epochs simulating concurrently. The
// Result (Speculation aside) is byte-identical to restoring `start` into a
// System and calling RunMeasured(workload.Replay(recs)). The caller keeps
// ownership of start; it is never written.
func (e *EpochSim) RunMeasured(start *Checkpoint, recs []workload.Record, workers int) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runMeasured(start, recs, workers, nil)
}

// RunMeasuredBudget is RunMeasured drawing concurrency from a shared
// worker budget instead of a fixed worker count. The caller's own slot
// guarantees serial progress; each epoch leg additionally tries to claim
// one idle slot from wb just before executing and returns it right after,
// so a saturated budget degrades to serial execution while slack fans the
// run across the machine — slot by slot, re-checked per leg, instead of a
// single up-front reservation for the whole run.
func (e *EpochSim) RunMeasuredBudget(start *Checkpoint, recs []workload.Record, wb WorkerBudget) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runMeasured(start, recs, 1, wb)
}

// acquireSlot claims one execution slot for an epoch leg: an idle slot
// drawn from the shared budget when one exists (returns true), else the
// guaranteed slot modeled by sem (returns false, blocking until free).
func (e *EpochSim) acquireSlot(sem chan struct{}, wb WorkerBudget) bool {
	if wb != nil && wb.TryAcquire(1) == 1 {
		return true
	}
	sem <- struct{}{}
	return false
}

// releaseSlot returns the slot claimed by acquireSlot.
func (e *EpochSim) releaseSlot(sem chan struct{}, wb WorkerBudget, borrowed bool) {
	if borrowed {
		wb.Release(1)
	} else {
		<-sem
	}
}

func (e *EpochSim) runMeasured(start *Checkpoint, recs []workload.Record, workers int, wb WorkerBudget) (Result, error) {
	if !compatible(e.cfg, start.cfg) {
		return Result{}, fmt.Errorf("sim: checkpoint config mismatch (%s vs %s)",
			start.cfg.Scheme.Canonical(), e.cfg.Scheme.Canonical())
	}
	k := e.epochs
	if workers < 1 {
		workers = 1
	}
	if workers > k {
		workers = k
	}
	// Predictions recorded against a different trace length describe
	// different record boundaries; drop them.
	if e.predLen != len(recs) {
		for b := range e.predValid {
			e.predValid[b] = false
		}
	}
	epochRecs := workload.Slice(recs, k)

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		done     = make([]chan boundary, k) // done[i]: epoch i's actual end state
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for i := 0; i < k-1; i++ {
		done[i] = make(chan boundary, 1)
	}
	// endBoundary is what epoch i hands its successor after runEpoch
	// captured its end state.
	endBoundary := func(i int) boundary {
		if i >= k-1 {
			return boundary{}
		}
		return boundary{cp: e.next[i+1], hash: e.nextHash[i+1]}
	}

	worker := func(i int) {
		defer wg.Done()
		published := false
		publish := func(b boundary) {
			if i < k-1 && !published {
				published = true
				done[i] <- b
			}
		}
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("sim: epoch %d panicked: %v", i, r))
				publish(boundary{})
			}
		}()

		// Speculative attempt from the predicted boundary state.
		var specRes Result
		speculated := false
		if i > 0 && e.predValid[i] {
			borrowed := e.acquireSlot(sem, wb)
			r, err := e.runEpoch(i, e.pred[i], epochRecs[i])
			e.releaseSlot(sem, wb, borrowed)
			if err == nil {
				specRes, speculated = r, true
			}
		}

		// Wait for the true boundary state from the predecessor.
		var from *Checkpoint
		var fromHash uint64
		if i > 0 {
			b := <-done[i-1]
			from, fromHash = b.cp, b.hash
			if from == nil {
				publish(boundary{})
				return
			}
		} else {
			from = start
		}

		// Commit: the state we speculated from is the state that actually
		// arrived, so the speculative result (and the end state already
		// captured into e.next) is exact.
		if speculated && fromHash == e.predHash[i] {
			e.spec[i] = SpecStats{Commits: 1}
			e.results[i] = specRes
			publish(endBoundary(i))
			return
		}

		// Serial leg (epoch 0, no prediction, or rollback after a miss):
		// simulate from the true boundary state.
		borrowed := e.acquireSlot(sem, wb)
		r, err := e.runEpoch(i, from, epochRecs[i])
		e.releaseSlot(sem, wb, borrowed)
		if err != nil {
			fail(err)
			publish(boundary{})
			return
		}
		if speculated {
			e.spec[i] = SpecStats{Rollbacks: 1, ResimCycles: r.Cycles}
		} else {
			e.spec[i] = SpecStats{}
		}
		e.results[i] = r
		publish(endBoundary(i))
	}

	for i := 0; i < k; i++ {
		e.spec[i] = SpecStats{}
		e.results[i] = Result{}
		wg.Add(1)
		go worker(i)
	}
	wg.Wait()

	if firstErr != nil {
		// Some e.next entries may describe a half-finished run; nothing
		// recorded this round is trustworthy as a prediction.
		for b := range e.predValid {
			e.predValid[b] = false
		}
		return Result{}, firstErr
	}

	// This run's actual boundaries become the next run's predictions.
	e.pred, e.next = e.next, e.pred
	e.predHash, e.nextHash = e.nextHash, e.predHash
	for b := 1; b < k; b++ {
		e.predValid[b] = true
	}
	e.predLen = len(recs)

	total := e.results[0]
	for i := 1; i < k; i++ {
		total.Add(e.results[i])
	}
	total.Speculation.Epochs += uint64(k)
	for i := range e.spec {
		total.Speculation.Commits += e.spec[i].Commits
		total.Speculation.Rollbacks += e.spec[i].Rollbacks
		total.Speculation.ResimCycles += e.spec[i].ResimCycles
	}
	return total, nil
}

// runEpoch restores epoch i's worker system from a boundary state, steps
// the epoch's records, and either drains (final epoch, exactly like the end
// of a serial run) or captures the end state into e.next[i+1] for the
// successor. Intermediate epochs never drain: in-flight misses cross the
// boundary inside the checkpoint, as they do in a serial run.
func (e *EpochSim) runEpoch(i int, from *Checkpoint, recs []workload.Record) (Result, error) {
	ws := e.systems[i]
	if err := ws.Restore(from); err != nil {
		return Result{}, err
	}
	ws.BeginMeasurement()
	for _, rec := range recs {
		ws.step(rec)
	}
	if i == e.epochs-1 {
		ws.cpu.Drain()
	} else {
		if e.next[i+1] == nil {
			e.next[i+1] = &Checkpoint{}
		}
		ws.CheckpointInto(e.next[i+1])
		h, ok := e.next[i+1].StateHash()
		if !ok {
			return Result{}, fmt.Errorf("sim: epoch %d produced an unfingerprintable state", i)
		}
		e.nextHash[i+1] = h
	}
	return ws.result(), nil
}

// RunParallel is the one-shot convenience form of epoch-parallel execution:
// it builds an EpochSim with `workers` epochs and runs recs through it
// (warmup + measured), returning a Result byte-identical (Speculation
// aside) to a serial System.Run of the same trace. Because predictions come
// from history, a one-shot call executes as a verification pipeline rather
// than achieving full overlap — callers that run the same trace repeatedly
// should hold on to an EpochSim (as experiments.Runner does) so later runs
// commit all epochs in parallel.
func RunParallel(cfg Config, recs []workload.Record, warm, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	es, err := NewEpochSim(cfg, workers)
	if err != nil {
		return Result{}, err
	}
	return es.Run(recs, warm, workers)
}
