package sim

import (
	"testing"

	"secureproc/internal/workload"
)

// parallelTrace materializes a reduced-scale benchmark trace plus its
// warmup boundary.
func parallelTrace(t *testing.T, bench string, scale float64) ([]workload.Record, int) {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	recs, err := workload.Materialize(prof, scale)
	if err != nil {
		t.Fatal(err)
	}
	warm := prof.WarmupRefs()
	if warm > len(recs) {
		warm = len(recs)
	}
	return recs, warm
}

// stripSpec zeroes the speculation bookkeeping so timing results can be
// compared byte-for-byte against serial runs.
func stripSpec(r Result) Result {
	r.Speculation = SpecStats{}
	return r
}

// TestRunParallelMatchesRun is the tentpole equivalence property: for every
// registered scheme, across benchmarks and epoch counts, epoch-parallel
// execution must produce the byte-identical Result of a serial Run — on the
// cold first run (pipeline + record), and again on the warm second run
// (speculate + commit), which must commit every prediction since the
// simulator is deterministic.
func TestRunParallelMatchesRun(t *testing.T) {
	for _, bench := range []string{"mcf", "gzip"} {
		recs, warm := parallelTrace(t, bench, 0.02)
		for _, ref := range snapshotSchemes {
			serial := newCheckpointSystem(t, ref)
			want := serial.Run(workload.Replay(recs), warm)
			for _, k := range []int{1, 2, 4} {
				cfg := DefaultConfig()
				cfg.Scheme = ref
				es, err := NewEpochSim(cfg, k)
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", bench, ref.Name, k, err)
				}
				cold, err := es.Run(recs, warm, k)
				if err != nil {
					t.Fatalf("%s/%s k=%d cold: %v", bench, ref.Name, k, err)
				}
				if stripSpec(cold) != want {
					t.Errorf("%s/%s k=%d: cold parallel run diverged:\n got %+v\nwant %+v",
						bench, ref.Name, k, stripSpec(cold), want)
				}
				if cold.Speculation.Epochs != uint64(k) {
					t.Errorf("%s/%s k=%d: cold run reports %d epochs", bench, ref.Name, k, cold.Speculation.Epochs)
				}
				warmRun, err := es.Run(recs, warm, k)
				if err != nil {
					t.Fatalf("%s/%s k=%d warm: %v", bench, ref.Name, k, err)
				}
				if stripSpec(warmRun) != want {
					t.Errorf("%s/%s k=%d: warm parallel run diverged:\n got %+v\nwant %+v",
						bench, ref.Name, k, stripSpec(warmRun), want)
				}
				// Deterministic simulation: every recorded prediction must
				// verify, so the warm run commits all k-1 speculative epochs.
				if got := warmRun.Speculation; got.Commits != uint64(k-1) || got.Rollbacks != 0 {
					t.Errorf("%s/%s k=%d: warm run speculation %+v, want %d commits / 0 rollbacks",
						bench, ref.Name, k, got, k-1)
				}
			}
		}
	}
}

// TestRunParallelForcedMispredict proves the rollback path executes and
// still converges: corrupt the recorded predictions (swap two boundary
// states, keeping each self-consistent with its hash) and re-run. The
// poisoned epochs must detect the mismatch, re-simulate from the true
// boundary state, and the merged Result must still be byte-identical.
func TestRunParallelForcedMispredict(t *testing.T) {
	recs, warm := parallelTrace(t, "mcf", 0.02)
	const k = 4
	cfg := DefaultConfig()
	cfg.Scheme = SchemeOTPLRU
	es, err := NewEpochSim(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := es.Run(recs, warm, k)
	if err != nil {
		t.Fatal(err)
	}

	// Swap the predictions for boundaries 1 and 2: each is a valid state
	// with a matching hash, but of the wrong boundary, so both epochs 1 and
	// 2 speculate from wrong states and must roll back. Epoch 3's
	// prediction is untouched and must still commit (its predecessor's
	// rollback re-converges onto the recorded boundary).
	es.pred[1], es.pred[2] = es.pred[2], es.pred[1]
	es.predHash[1], es.predHash[2] = es.predHash[2], es.predHash[1]

	got, err := es.Run(recs, warm, k)
	if err != nil {
		t.Fatal(err)
	}
	if stripSpec(got) != stripSpec(want) {
		t.Errorf("mispredicted run diverged:\n got %+v\nwant %+v", stripSpec(got), stripSpec(want))
	}
	if got.Speculation.Rollbacks != 2 || got.Speculation.Commits != 1 {
		t.Errorf("speculation %+v, want 2 rollbacks / 1 commit", got.Speculation)
	}
	if got.Speculation.ResimCycles == 0 {
		t.Error("rollbacks re-simulated zero cycles")
	}

	// The poisoned run re-recorded correct boundaries; the next run must be
	// all commits again.
	again, err := es.Run(recs, warm, k)
	if err != nil {
		t.Fatal(err)
	}
	if stripSpec(again) != stripSpec(want) {
		t.Errorf("post-rollback run diverged:\n got %+v\nwant %+v", stripSpec(again), stripSpec(want))
	}
	if got := again.Speculation; got.Commits != k-1 || got.Rollbacks != 0 {
		t.Errorf("post-rollback speculation %+v, want %d commits / 0 rollbacks", got, k-1)
	}
}

// TestEpochWarmupAccounting locks the warmup/measure boundary against
// off-by-one drift when epochs are introduced: for every warmup split —
// including the degenerate all-warmup and no-warmup cases — the
// epoch-parallel run must attribute exactly the same Retired/Cycles to the
// measured interval as a straight-through serial run.
func TestEpochWarmupAccounting(t *testing.T) {
	recs, _ := parallelTrace(t, "gzip", 0.02)
	cfg := DefaultConfig()
	cfg.Scheme = SchemeOTPLRU
	es, err := NewEpochSim(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, warm := range []int{0, 1, len(recs) / 2, len(recs)} {
		serial := newCheckpointSystem(t, SchemeOTPLRU)
		want := serial.Run(workload.Replay(recs), warm)
		got, err := es.Run(recs, warm, 2)
		if err != nil {
			t.Fatalf("warm=%d: %v", warm, err)
		}
		if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
			t.Errorf("warm=%d: measured attribution diverged: got %d cycles / %d instrs, want %d / %d",
				warm, got.Cycles, got.Instructions, want.Cycles, want.Instructions)
		}
		if stripSpec(got) != want {
			t.Errorf("warm=%d: full result diverged:\n got %+v\nwant %+v", warm, stripSpec(got), want)
		}
	}
}

// TestRunParallelEmptyMeasured: an all-warmup trace leaves every epoch
// empty; the chain must still run through and report the serial (zero)
// measurement.
func TestRunParallelEmptyMeasured(t *testing.T) {
	recs, _ := parallelTrace(t, "gzip", 0.02)
	serial := newCheckpointSystem(t, SchemeOTPLRU)
	want := serial.Run(workload.Replay(recs), len(recs))
	got, err := RunParallel(DefaultConfigFor(SchemeOTPLRU), recs, len(recs), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stripSpec(got) != want {
		t.Errorf("empty-measured parallel run diverged:\n got %+v\nwant %+v", stripSpec(got), want)
	}
}

// DefaultConfigFor is a test convenience: the default machine with ref.
func DefaultConfigFor(ref SchemeRef) Config {
	cfg := DefaultConfig()
	cfg.Scheme = ref
	return cfg
}

// TestCheckpointIntoSteadyStateAllocsZero extends the AllocsPerRun==0
// discipline to boundary snapshots: once a checkpoint's buffers have seen
// the working set, re-capturing into it — and hashing it — allocates
// nothing. This is what keeps per-epoch boundary checkpoints off the
// allocator in steady state.
func TestCheckpointIntoSteadyStateAllocsZero(t *testing.T) {
	recs := allocRecords()
	for _, ref := range []SchemeRef{SchemeOTPLRU, SchemeOTPMAC, SchemeOTPPrecompute} {
		t.Run(ref.Name, func(t *testing.T) {
			sys := newCheckpointSystem(t, ref)
			for pass := 0; pass < 2; pass++ {
				for _, rec := range recs {
					sys.Step(rec)
				}
			}
			cp := &Checkpoint{}
			if !sys.CheckpointInto(cp) {
				t.Fatal("no checkpoint")
			}
			if _, ok := cp.StateHash(); !ok {
				t.Fatal("state not fingerprintable")
			}
			i := 0
			avg := testing.AllocsPerRun(10, func() {
				// Keep mutating between captures so the capture is not
				// trivially idempotent, then re-capture and re-hash.
				for k := 0; k < 64; k++ {
					sys.Step(recs[i%len(recs)])
					i++
				}
				if !sys.CheckpointInto(cp) {
					t.Fatal("no checkpoint")
				}
				if _, ok := cp.StateHash(); !ok {
					t.Fatal("state not fingerprintable")
				}
			})
			if avg != 0 {
				t.Errorf("scheme %s: %.2f allocs per steady-state CheckpointInto+StateHash, want 0", ref.Name, avg)
			}
		})
	}
}

// TestCheckpointStateHashDiscriminates: equal states hash equal (the commit
// rule) and a state a few steps later hashes differently (the rollback
// rule would be vacuous otherwise).
func TestCheckpointStateHashDiscriminates(t *testing.T) {
	recs := allocRecords()
	sys := newCheckpointSystem(t, SchemeOTPLRU)
	for _, rec := range recs[:4096] {
		sys.Step(rec)
	}
	cp1 := &Checkpoint{}
	cp2 := &Checkpoint{}
	sys.CheckpointInto(cp1)
	sys.CheckpointInto(cp2)
	h1, ok1 := cp1.StateHash()
	h2, ok2 := cp2.StateHash()
	if !ok1 || !ok2 {
		t.Fatal("state not fingerprintable")
	}
	if h1 != h2 {
		t.Errorf("identical states hash differently: %x vs %x", h1, h2)
	}
	sys.Step(recs[4096])
	sys.CheckpointInto(cp2)
	h3, _ := cp2.StateHash()
	if h3 == h1 {
		t.Errorf("distinct states hash equal: %x", h1)
	}
}
