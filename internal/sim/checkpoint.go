package sim

import (
	"fmt"

	"secureproc/internal/cache"
	"secureproc/internal/core"
	"secureproc/internal/cpu"
	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/statehash"
	"secureproc/internal/workload"
)

// TimingModelVersion identifies the timing model for persisted results.
// Stored sim.Results are keyed by this string: bump it whenever a change
// alters any Result the simulator can produce (component timing, scheme
// behaviour, workload generation, measurement protocol — anything that moves
// a golden file), so stale entries in a warm-start store become misses
// instead of wrong answers. Adding new output fields that are zero for old
// configurations does not require a bump; changing existing numbers does.
//
// tm-2: Result gained SeqOverflows, nonzero for existing OTP configurations
// — entries stored under tm-1 would silently report it as zero.
const TimingModelVersion = "secsim-tm-2"

// Checkpoint is an architectural snapshot of a System at the
// warmup/measurement boundary, in the SMARTS/SimPoint checkpointing sense:
// the full microarchitectural state (cache contents and LRU recency, SNC
// contents and recency, write buffer, bus and crypto-pipeline reservations,
// core clock and in-flight misses, scheme-internal tables) deep-copied so
// any number of measurement runs can fork from it. A checkpoint shares no
// mutable state with the system it came from or with systems restored from
// it.
type Checkpoint struct {
	cfg    Config
	cpu    cpu.Snapshot
	l1i    cache.Snapshot
	l1d    cache.Snapshot
	l2     cache.Snapshot
	bus    mem.BusSnapshot
	wbuf   mem.WriteBufferSnapshot
	crypto engine.Snapshot
	scheme core.SchemeState
}

// Checkpoint captures the system's architectural state. It returns ok=false
// when the active scheme does not implement core.Snapshottable — such runs
// simply cannot be forked and must warm up from scratch.
func (s *System) Checkpoint() (*Checkpoint, bool) {
	cp := &Checkpoint{}
	if !s.CheckpointInto(cp) {
		return nil, false
	}
	return cp, true
}

// CheckpointInto captures the system's architectural state into cp, reusing
// cp's buffers from a previous capture so that repeated boundary
// checkpoints (epoch-parallel simulation takes one per epoch) are
// allocation-free in steady state. It reports false — leaving cp untouched
// — when the active scheme does not implement core.Snapshottable.
func (s *System) CheckpointInto(cp *Checkpoint) bool {
	sn, ok := s.scheme.(core.Snapshottable)
	if !ok {
		return false
	}
	cp.cfg = s.cfg
	s.cpu.SnapshotInto(&cp.cpu)
	s.l1i.SnapshotInto(&cp.l1i)
	s.l1d.SnapshotInto(&cp.l1d)
	s.l2.SnapshotInto(&cp.l2)
	cp.bus = s.bus.Snapshot()
	s.wbuf.SnapshotInto(&cp.wbuf)
	s.crypto.SnapshotInto(&cp.crypto)
	if si, ok := s.scheme.(core.SnapshottableInto); ok {
		cp.scheme = si.SnapshotStateInto(cp.scheme)
	} else {
		cp.scheme = sn.SnapshotState()
	}
	return true
}

// StateHash fingerprints the checkpoint's behavior-affecting state (clock,
// retirement position, in-flight misses, cache tags/metadata/recency, bus
// and crypto-pipeline reservations, write-buffer occupancy, scheme tables)
// while excluding pure statistics counters. Two checkpoints of a
// deterministic simulation hash identically exactly when continuing from
// them produces identical behaviour, which is what epoch-parallel
// speculation verifies before committing. ok=false means the scheme state's
// kind is unknown to the hasher and the fingerprint must not be trusted.
func (cp *Checkpoint) StateHash() (sum uint64, ok bool) {
	h := statehash.New()
	cp.cpu.HashState(&h)
	cp.l1i.HashState(&h)
	cp.l1d.HashState(&h)
	cp.l2.HashState(&h)
	cp.bus.HashState(&h)
	cp.wbuf.HashState(&h)
	cp.crypto.HashState(&h)
	ok = core.HashSchemeState(cp.scheme, &h)
	return h.Sum(), ok
}

// compatible reports whether two configurations describe the same machine.
// Config as a whole is not comparable (the scheme reference carries a
// parameter map), so the comparable sub-configs are checked directly and the
// scheme by its canonical reference string.
func compatible(a, b Config) bool {
	return a.CPU == b.CPU &&
		a.L1I == b.L1I && a.L1D == b.L1D && a.L2 == b.L2 &&
		a.DRAM == b.DRAM && a.Crypto == b.Crypto && a.SNC == b.SNC &&
		a.WriteBufferDepth == b.WriteBufferDepth &&
		a.Scheme.Canonical() == b.Scheme.Canonical()
}

// Restore reinstates a checkpoint into this system. The system must have
// been built from the same configuration the checkpoint was taken under;
// restoring reuses the system's existing allocations, so a settled system
// stays allocation-free through restore-and-run cycles.
func (s *System) Restore(cp *Checkpoint) error {
	if !compatible(s.cfg, cp.cfg) {
		return fmt.Errorf("sim: checkpoint config mismatch (%s vs %s)",
			cp.cfg.Scheme.Canonical(), s.cfg.Scheme.Canonical())
	}
	sn, ok := s.scheme.(core.Snapshottable)
	if !ok {
		return fmt.Errorf("sim: scheme %s cannot restore checkpoints", s.scheme.Name())
	}
	if err := sn.RestoreState(cp.scheme); err != nil {
		return err
	}
	s.cpu.Restore(cp.cpu)
	s.l1i.Restore(cp.l1i)
	s.l1d.Restore(cp.l1d)
	s.l2.Restore(cp.l2)
	s.bus.Restore(cp.bus)
	s.wbuf.Restore(cp.wbuf)
	s.crypto.Restore(cp.crypto)
	return nil
}

// RunWarmup consumes a warmup-prefix stream and settles the machine at the
// measurement boundary (outstanding misses drained), leaving it ready to be
// checkpointed or to continue into RunMeasured. Together,
//
//	sys.RunWarmup(Replay(recs[:warm]))
//	res := sys.RunMeasured(Replay(recs[warm:]))
//
// is event-for-event identical to sys.Run(Replay(recs), warm): Run drains
// and snapshots at the n == warmupRecords boundary exactly as the split does
// (including the degenerate warm == 0 and empty-measurement cases).
func (s *System) RunWarmup(stream workload.Stream) {
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		s.step(rec)
	}
	s.cpu.Drain()
}

// RunMeasured starts measurement (statistics restart; architectural state —
// warmed or restored from a checkpoint — is kept), consumes the stream to
// exhaustion and returns the result.
func (s *System) RunMeasured(stream workload.Stream) Result {
	s.BeginMeasurement()
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		s.step(rec)
	}
	s.cpu.Drain()
	return s.result()
}
