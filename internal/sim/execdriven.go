package sim

import (
	"fmt"

	"secureproc/internal/isa"
	"secureproc/internal/workload"
)

// This file couples the functional SSA-32 interpreter with the timing
// model: execution-driven simulation, the same methodology as the paper's
// SimpleScalar setup (instructions actually execute, and every fetch and
// data access walks the modelled memory hierarchy under the configured
// protection scheme).

// tracingBus wraps an isa.Bus and records the memory traffic of the
// current instruction.
type tracingBus struct {
	inner   isa.Bus
	fetch   uint64
	hasData bool
	data    workload.Record
}

func (t *tracingBus) Fetch32(addr uint32) (uint32, error) {
	t.fetch = uint64(addr)
	return t.inner.Fetch32(addr)
}

func (t *tracingBus) note(addr uint32, kind workload.Kind) {
	// One data access per instruction in SSA-32.
	t.hasData = true
	t.data = workload.Record{Kind: kind, Addr: uint64(addr)}
}

func (t *tracingBus) Load32(addr uint32) (uint32, error) {
	t.note(addr, workload.Load)
	return t.inner.Load32(addr)
}

func (t *tracingBus) Load8(addr uint32) (byte, error) {
	t.note(addr, workload.Load)
	return t.inner.Load8(addr)
}

func (t *tracingBus) Store32(addr uint32, v uint32) error {
	t.note(addr, workload.Store)
	return t.inner.Store32(addr, v)
}

func (t *tracingBus) Store8(addr uint32, v byte) error {
	t.note(addr, workload.Store)
	return t.inner.Store8(addr, v)
}

// ProgramResult couples the timing Result with the program's functional
// outcome.
type ProgramResult struct {
	Result
	ExitCode   uint32
	Functional *isa.CPU
}

// RunProgram executes a program image on the functional interpreter while
// driving this system's timing model with its fetch and data streams. The
// program runs to halt or maxInstr. Loads are conservatively treated as
// independent (the interval model's dependence bit needs dataflow analysis
// the interpreter does not expose), so absolute cycle counts are slightly
// optimistic; scheme-to-scheme comparisons remain meaningful.
func (s *System) RunProgram(bus isa.Bus, entry uint32, maxInstr uint64) (ProgramResult, error) {
	tb := &tracingBus{inner: bus}
	cpu := isa.NewCPU(tb, entry)
	for !cpu.Halted {
		if cpu.InstrRetired >= maxInstr {
			return ProgramResult{}, fmt.Errorf("sim: instruction budget %d exhausted at pc=%#x", maxInstr, cpu.PC)
		}
		tb.hasData = false
		if err := cpu.Step(); err != nil {
			return ProgramResult{}, err
		}
		// Timing: the fetch walks L1I/L2/scheme; the data access (if any)
		// walks L1D/L2/scheme.
		s.accessInstr(workload.Record{Kind: workload.IFetch, Addr: tb.fetch})
		if tb.hasData {
			s.accessData(tb.data)
		}
	}
	s.cpu.Drain()
	return ProgramResult{Result: s.result(), ExitCode: cpu.ExitCode, Functional: cpu}, nil
}

// RunProgramSource assembles src at base and runs it execution-driven on a
// fresh flat memory, returning both timing and functional results.
func RunProgramSource(cfg Config, src string, base uint32, maxInstr uint64) (ProgramResult, error) {
	sys, err := New(cfg)
	if err != nil {
		return ProgramResult{}, err
	}
	bin, _, err := isa.Assemble(src, base)
	if err != nil {
		return ProgramResult{}, err
	}
	bus := isa.NewFlatBus()
	bus.LoadImage(base, bin)
	return sys.RunProgram(bus, base, maxInstr)
}
