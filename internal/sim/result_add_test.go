package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// fillCounters sets every uint64 field of v (recursing into embedded
// structs) to a distinct pseudorandom value and returns the per-field
// values in walk order.
func fillCounters(v reflect.Value, rng *rand.Rand, out []uint64) []uint64 {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			x := rng.Uint64() >> 2 // headroom: sums must not wrap
			f.SetUint(x)
			out = append(out, x)
		case reflect.Struct:
			out = fillCounters(f, rng, out)
		case reflect.String:
			// Scheme: identity, not a counter.
		default:
			// A new field of an unexpected kind must be audited by hand.
			out = append(out, 0)
		}
	}
	return out
}

// readCounters collects every uint64 field in the same walk order.
func readCounters(v reflect.Value, out []uint64) []uint64 {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			out = append(out, f.Uint())
		case reflect.Struct:
			out = readCounters(f, out)
		}
	}
	return out
}

// TestResultAddCoversEveryField audits the per-epoch delta merge by
// reflection: every uint64 counter in Result (including nested SpecStats)
// must be summed by Add. A future Result field that Add forgets shows up
// here as an unsummed counter instead of silently corrupting epoch-parallel
// totals.
func TestResultAddCoversEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b Result
	av := fillCounters(reflect.ValueOf(&a).Elem(), rng, nil)
	bv := fillCounters(reflect.ValueOf(&b).Elem(), rng, nil)
	if len(av) == 0 || len(av) != len(bv) {
		t.Fatalf("counter walk inconsistent: %d vs %d fields", len(av), len(bv))
	}
	a.Scheme = "x"
	b.Scheme = "y"

	got := a
	got.Add(b)
	sums := readCounters(reflect.ValueOf(&got).Elem(), nil)
	if len(sums) != len(av) {
		t.Fatalf("walk returned %d fields, want %d", len(sums), len(av))
	}
	// Recover field names for readable failures.
	names := counterNames(reflect.TypeOf(Result{}), "", nil)
	if len(names) != len(sums) {
		t.Fatalf("name walk returned %d fields, want %d", len(names), len(sums))
	}
	for i := range sums {
		if want := av[i] + bv[i]; sums[i] != want {
			t.Errorf("Add does not sum %s: got %d, want %d", names[i], sums[i], want)
		}
	}
	if got.Scheme != "x" {
		t.Errorf("Add overwrote Scheme: %q", got.Scheme)
	}
	var empty Result
	empty.Add(b)
	if empty.Scheme != "y" {
		t.Errorf("Add into empty Result dropped Scheme: %q", empty.Scheme)
	}
}

func counterNames(t reflect.Type, prefix string, out []string) []string {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			out = append(out, prefix+f.Name)
		case reflect.Struct:
			out = counterNames(f.Type, prefix+f.Name+".", out)
		}
	}
	return out
}
