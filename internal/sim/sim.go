// Package sim assembles the full system — out-of-order core, split L1s,
// unified L2, write buffer, memory bus, crypto engine and a protection
// scheme — and runs workload traces through it, producing the cycle counts
// and traffic statistics behind every figure in the paper.
package sim

import (
	"fmt"

	"secureproc/internal/cache"
	"secureproc/internal/core"
	"secureproc/internal/cpu"
	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
	"secureproc/internal/workload"
)

// SchemeRef selects the memory-protection scheme: a registry name plus
// optional construction parameters (core.Ref). Schemes are resolved through
// the core registry, so new schemes registered there are immediately
// selectable here without touching this package.
type SchemeRef = core.Ref

// SchemeParams carries free-form scheme parameters inside a SchemeRef.
type SchemeParams = core.Params

// References to the built-in schemes (the four the paper evaluates plus
// the two registry-era extensions); any registered name works equally via
// SchemeByName.
var (
	// SchemeBaseline is the insecure processor.
	SchemeBaseline = SchemeRef{Name: "baseline"}
	// SchemeXOM is direct encryption on the critical path.
	SchemeXOM = SchemeRef{Name: "xom"}
	// SchemeOTPLRU is one-time-pad encryption with an LRU SNC.
	SchemeOTPLRU = SchemeRef{Name: "snc-lru"}
	// SchemeOTPNoRepl is one-time-pad encryption with a no-replacement SNC.
	SchemeOTPNoRepl = SchemeRef{Name: "snc-norepl"}
	// SchemeOTPMAC is snc-lru plus MAC integrity verification.
	SchemeOTPMAC = SchemeRef{Name: "otp-mac"}
	// SchemeOTPPrecompute is snc-lru plus pad precompute/retention.
	SchemeOTPPrecompute = SchemeRef{Name: "otp-precompute"}
)

// SchemeByName resolves a scheme reference string — "snc-lru" or
// "otp-mac:verify=blocking" — against the registry, validating both the
// name (aliases accepted) and the parameters. The error for an unknown
// name lists every registered scheme.
func SchemeByName(s string) (SchemeRef, error) {
	ref, err := core.ParseRef(s)
	if err != nil {
		return SchemeRef{}, err
	}
	d, err := core.LookupRef(ref)
	if err != nil {
		return SchemeRef{}, err
	}
	ref.Name = d.Name // canonicalize aliases
	return ref, nil
}

// SchemeNames lists the registered scheme names in registration order.
func SchemeNames() []string { return core.Names() }

// Config is a full system configuration.
type Config struct {
	CPU    cpu.Config
	L1I    cache.Config
	L1D    cache.Config
	L2     cache.Config
	DRAM   mem.DRAMConfig
	Crypto engine.Config
	SNC    snc.Config
	Scheme SchemeRef
	// WriteBufferDepth is the number of outstanding writebacks tolerated.
	WriteBufferDepth int
}

// DefaultConfig reproduces the paper's Section 5 baseline: 4-issue OoO,
// 32KB 4-way split L1s, 256KB 4-way 128B-line L2, 100-cycle memory,
// 50-cycle crypto, 64KB fully associative SNC.
func DefaultConfig() Config {
	return Config{
		CPU:              cpu.DefaultConfig(),
		L1I:              cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L1D:              cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L2:               cache.Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4, HitLatency: 12},
		DRAM:             mem.DefaultDRAMConfig(),
		Crypto:           engine.DefaultConfig(),
		SNC:              snc.DefaultConfig(),
		Scheme:           SchemeBaseline,
		WriteBufferDepth: 8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Crypto.Validate(); err != nil {
		return err
	}
	d, err := core.LookupRef(c.Scheme)
	if err != nil {
		return fmt.Errorf("sim: invalid scheme: %w", err)
	}
	if d.NeedsSNC {
		if err := c.SNC.Validate(); err != nil {
			return err
		}
		if c.SNC.LineBytes != c.L2.LineBytes {
			return fmt.Errorf("sim: SNC line size %d != L2 line size %d", c.SNC.LineBytes, c.L2.LineBytes)
		}
	}
	if c.WriteBufferDepth <= 0 {
		return fmt.Errorf("sim: write buffer depth must be positive")
	}
	return nil
}

// Result carries the outcome of one run.
type Result struct {
	Scheme       string
	Cycles       uint64
	Instructions uint64

	L1DMisses uint64
	L1IMisses uint64
	L2Misses  uint64
	L2Hits    uint64

	// Bus traffic by source (Figure 9; MAC columns for integrity schemes,
	// Figure I1).
	LineFills     uint64
	Writebacks    uint64
	SeqNumFetches uint64
	SeqNumSpills  uint64
	MACFetches    uint64
	MACUpdates    uint64

	// SNC behaviour (zero for non-OTP schemes).
	SNCQueryHits   uint64
	SNCQueryMisses uint64
	SNCUpdateHits  uint64
	SNCUpdateMiss  uint64
	// SeqOverflows counts 16-bit sequence-number wraparounds, each charged
	// as a direct re-encryption (the cost split-counter schemes attack).
	SeqOverflows uint64

	// Integrity verification (zero for schemes without MACs).
	IntegrityVerified    uint64
	IntegrityStallCycles uint64

	// CPU stall decomposition.
	ROBStallCycles  uint64
	MSHRStallCycles uint64
	DepStallCycles  uint64

	// Speculation reports how epoch-parallel execution produced this result.
	// Always zero for serial runs, and zeroed by JSON omission rules
	// (omitzero) so serial results serialize exactly as before. It is
	// bookkeeping about the execution strategy, not simulated behaviour —
	// byte-identical timing results may carry different Speculation values.
	Speculation SpecStats `json:",omitzero"`
}

// SpecStats counts epoch-parallel speculation outcomes for one run.
type SpecStats struct {
	// Epochs is the number of epochs the measured stream was split into.
	Epochs uint64
	// Commits counts speculative epochs whose predicted start state hashed
	// identically to the actual boundary state and were committed as-is.
	Commits uint64
	// Rollbacks counts speculative epochs whose prediction missed and were
	// re-simulated from the true boundary state.
	Rollbacks uint64
	// ResimCycles is the total simulated cycles re-executed by rollbacks.
	ResimCycles uint64
}

// Add accumulates o's counters into r (per-epoch delta merge: every Result
// field other than Scheme is a monotone counter over the measured interval,
// and Cycles/Instructions are clock deltas, so contiguous epochs sum to
// exactly the serial run's totals). Scheme is kept from r unless empty.
func (r *Result) Add(o Result) {
	if r.Scheme == "" {
		r.Scheme = o.Scheme
	}
	r.Cycles += o.Cycles
	r.Instructions += o.Instructions
	r.L1DMisses += o.L1DMisses
	r.L1IMisses += o.L1IMisses
	r.L2Misses += o.L2Misses
	r.L2Hits += o.L2Hits
	r.LineFills += o.LineFills
	r.Writebacks += o.Writebacks
	r.SeqNumFetches += o.SeqNumFetches
	r.SeqNumSpills += o.SeqNumSpills
	r.MACFetches += o.MACFetches
	r.MACUpdates += o.MACUpdates
	r.SNCQueryHits += o.SNCQueryHits
	r.SNCQueryMisses += o.SNCQueryMisses
	r.SNCUpdateHits += o.SNCUpdateHits
	r.SNCUpdateMiss += o.SNCUpdateMiss
	r.SeqOverflows += o.SeqOverflows
	r.IntegrityVerified += o.IntegrityVerified
	r.IntegrityStallCycles += o.IntegrityStallCycles
	r.ROBStallCycles += o.ROBStallCycles
	r.MSHRStallCycles += o.MSHRStallCycles
	r.DepStallCycles += o.DepStallCycles
	r.Speculation.Epochs += o.Speculation.Epochs
	r.Speculation.Commits += o.Speculation.Commits
	r.Speculation.Rollbacks += o.Speculation.Rollbacks
	r.Speculation.ResimCycles += o.Speculation.ResimCycles
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// DemandTraffic returns fills + writebacks (the Figure 9 denominator).
func (r Result) DemandTraffic() uint64 { return r.LineFills + r.Writebacks }

// SNCTraffic returns seq-number fetches + spills (the Figure 9 numerator).
func (r Result) SNCTraffic() uint64 { return r.SeqNumFetches + r.SeqNumSpills }

// MACTraffic returns integrity-induced extra traffic (MAC fetches +
// updates), the Figure I1 traffic numerator.
func (r Result) MACTraffic() uint64 { return r.MACFetches + r.MACUpdates }

// System is an assembled machine ready to consume a trace.
type System struct {
	cfg    Config
	cpu    *cpu.CPU
	l1i    *cache.Cache
	l1d    *cache.Cache
	l2     *cache.Cache
	bus    *mem.Bus
	wbuf   *mem.WriteBuffer
	crypto *engine.Engine
	scheme core.Scheme

	// fillAccess and fillFn implement the scheme-read callback the CPU
	// model takes on every miss. The closure is bound once at construction
	// and reads its access from fillAccess, so the per-miss path allocates
	// nothing; this is safe because the CPU invokes the callback
	// synchronously, before the next access is staged.
	fillAccess core.Access
	fillFn     func(uint64) uint64

	// Context-switch scratch, reused so steady-state switches don't
	// allocate: the deduplicated dirty-victim list and the L2-line
	// membership set behind it.
	switchVictims [][2]uint64
	switchSeen    map[uint64]struct{}

	// Measurement snapshot taken at the warmup/measurement boundary.
	cycles0, instr0                  uint64
	robStall0, mshrStall0, depStall0 uint64
}

// New assembles a system from cfg. The protection scheme is constructed
// through the core registry from cfg.Scheme, so any registered scheme —
// built-in or externally registered — is selectable by reference.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		cpu:    cpu.New(cfg.CPU),
		l1i:    cache.New(cfg.L1I),
		l1d:    cache.New(cfg.L1D),
		l2:     cache.New(cfg.L2),
		bus:    mem.NewBus(cfg.DRAM),
		wbuf:   mem.NewWriteBuffer(cfg.WriteBufferDepth),
		crypto: engine.New(cfg.Crypto),
	}
	scheme, err := core.Build(cfg.Scheme, core.Resources{
		Bus:       s.bus,
		WBuf:      s.wbuf,
		Crypto:    s.crypto,
		SNC:       cfg.SNC,
		LineBytes: cfg.L2.LineBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.scheme = scheme
	s.fillFn = func(issue uint64) uint64 {
		return s.scheme.ReadLine(issue, s.fillAccess)
	}
	s.switchSeen = make(map[uint64]struct{})
	return s, nil
}

// Scheme returns the active protection scheme.
func (s *System) Scheme() core.Scheme { return s.scheme }

// handleL2Victim routes a dirty L2 eviction through the scheme's writeback
// path and charges any CPU stall (write buffer full).
func (s *System) handleL2Victim(res cache.Result) {
	if !res.WritebackNeeded {
		return
	}
	cpuFree := s.scheme.WritebackLine(s.cpu.Cycles(), core.Access{PA: res.WritebackAddr, VA: res.WritebackVA})
	s.cpu.WaitUntil(cpuFree)
}

// l2FillFor stages a and returns the prebound fill callback for a missing
// L2 line: it asks the scheme when the line is ready.
func (s *System) l2FillFor(a core.Access) func(uint64) uint64 {
	s.fillAccess = a
	return s.fillFn
}

// accessData walks a data reference through L1D and L2.
func (s *System) accessData(rec workload.Record) {
	write := rec.Kind == workload.Store
	l1res := s.l1d.Access(rec.Addr, rec.Addr, write)
	if l1res.Hit {
		if write {
			s.cpu.StoreHit()
		} else {
			s.cpu.LoadHitL1(rec.Depends)
		}
		return
	}
	// L1 dirty victim descends into L2 (write-back).
	if l1res.WritebackNeeded {
		l2res := s.l2.Access(l1res.WritebackAddr, l1res.WritebackVA, true)
		if !l2res.Hit {
			// Write-allocate the victim's line in L2: a background fill.
			s.handleL2Victim(l2res)
			a := core.Access{PA: s.l2.LineAddr(l1res.WritebackAddr), VA: s.l2.LineAddr(l1res.WritebackVA)}
			s.cpu.StoreMiss(s.l2FillFor(a))
		}
	}
	// Demand access in L2. The L1 allocates regardless (already done above).
	l2res := s.l2.Access(rec.Addr, rec.Addr, write)
	if l2res.Hit {
		if write {
			s.cpu.StoreHit()
		} else {
			s.cpu.LoadHitL2(rec.Depends)
		}
		return
	}
	s.handleL2Victim(l2res)
	a := core.Access{PA: s.l2.LineAddr(rec.Addr), VA: s.l2.LineAddr(rec.Addr)}
	if write {
		s.cpu.StoreMiss(s.l2FillFor(a))
	} else {
		s.cpu.LoadMiss(rec.Depends, s.l2FillFor(a))
	}
}

// accessInstr walks an instruction fetch through L1I and L2.
func (s *System) accessInstr(rec workload.Record) {
	if s.l1i.Access(rec.Addr, rec.Addr, false).Hit {
		s.cpu.Compute(1)
		return
	}
	l2res := s.l2.Access(rec.Addr, rec.Addr, false)
	if l2res.Hit {
		s.cpu.LoadHitL2(false) // exposed only to the frontend restart
		return
	}
	s.handleL2Victim(l2res)
	a := core.Access{PA: s.l2.LineAddr(rec.Addr), VA: s.l2.LineAddr(rec.Addr), Instr: true}
	s.cpu.IFetchMiss(s.l2FillFor(a))
}

// step processes one trace record.
func (s *System) step(rec workload.Record) {
	if rec.Gap > 0 {
		s.cpu.Compute(uint64(rec.Gap))
	}
	switch rec.Kind {
	case workload.IFetch:
		s.accessInstr(rec)
	default:
		s.accessData(rec)
	}
}

// Step feeds one trace record through the machine. External drivers (the
// multiprogrammed scheduler in internal/sched) use it to interleave several
// streams on one system; Run remains the single-stream entry point.
func (s *System) Step(rec workload.Record) { s.step(rec) }

// Cycles returns the core's current clock.
func (s *System) Cycles() uint64 { return s.cpu.Cycles() }

// Retired returns the number of instructions retired so far.
func (s *System) Retired() uint64 { return s.cpu.Retired() }

// Drain stalls until all outstanding misses complete (end of a run).
func (s *System) Drain() { s.cpu.Drain() }

// BusDemandTransactions returns fills + writebacks so far (the traffic
// denominator external drivers report percentages against).
func (s *System) BusDemandTransactions() uint64 { return s.bus.DemandTransactions() }

// SwitchCost itemizes what one task switch put on the memory system.
type SwitchCost struct {
	// DirtyWritebacks is the number of dirty lines the cache invalidation
	// pushed out through the scheme's writeback path.
	DirtyWritebacks uint64
	// SeqSpills is the switch-induced SNC spill traffic (nonzero only for
	// the flush policy).
	SeqSpills uint64
	// SchemeDone is the cycle the scheme's switch work has fully drained
	// (== the switch cycle when the scheme has no per-process state).
	SchemeDone uint64
}

// ContextSwitch switches the machine to process next (Section 4.3 put on
// the timing path): every cache level is invalidated, dirty lines are
// written back through the protection scheme under the outgoing process,
// and then the scheme's own context-switch policy runs (SNC flush-encrypt,
// or a PID tag change). The CPU is charged exactly what the components
// charge — writebacks drain through the write buffer and stall the core
// only on buffer pressure.
func (s *System) ContextSwitch(next int) SwitchCost {
	spills0 := s.bus.Transactions[mem.SrcSeqNumSpill]
	var cost SwitchCost

	// Invalidate the hierarchy. L1 lines are smaller than L2 lines; dirty
	// state is written back at L2 granularity, deduplicated so a line dirty
	// in both levels goes out once. Victim list and membership set are
	// reused scratch so repeated switches stop allocating.
	s.l1i.InvalidateAll()
	victims := s.switchVictims[:0]
	clear(s.switchSeen)
	add := func(pa, va uint64) { //secsim:allowalloc non-escaping closure over reused scratch; AllocsPerRun==0 gate in allocs_test.go
		lpa := s.l2.LineAddr(pa)
		if _, ok := s.switchSeen[lpa]; !ok {
			s.switchSeen[lpa] = struct{}{}                               //secsim:allowalloc switchSeen is cleared, not reallocated; stable after first switch
			victims = append(victims, [2]uint64{lpa, s.l2.LineAddr(va)}) //secsim:allowalloc switchVictims scratch reuse; stable after first switch
		}
	}
	for _, d := range s.l1d.InvalidateAll() {
		add(d[0], d[1])
	}
	for _, d := range s.l2.InvalidateAll() {
		add(d[0], d[1])
	}
	for _, v := range victims {
		cpuFree := s.scheme.WritebackLine(s.cpu.Cycles(), core.Access{PA: v[0], VA: v[1]})
		s.cpu.WaitUntil(cpuFree)
	}
	s.switchVictims = victims
	cost.DirtyWritebacks = uint64(len(victims))

	cost.SchemeDone = s.cpu.Cycles()
	if cs, ok := s.scheme.(core.ContextSwitcher); ok {
		cost.SchemeDone = cs.ContextSwitch(s.cpu.Cycles(), next)
	}
	cost.SeqSpills = s.bus.Transactions[mem.SrcSeqNumSpill] - spills0
	return cost
}

// BeginMeasurement marks the warmup/measurement boundary: microarchitectural
// state (cache and SNC contents, LRU recency, clock) is kept, but all
// statistics restart — mirroring the paper's fast-forward protocol.
func (s *System) BeginMeasurement() {
	s.cycles0 = s.cpu.Cycles()
	s.instr0 = s.cpu.Retired()
	s.robStall0 = s.cpu.ROBStallCycles
	s.mshrStall0 = s.cpu.MSHRStallCycles
	s.depStall0 = s.cpu.DepStallCycles
	s.l1i.ResetStats()
	s.l1d.ResetStats()
	s.l2.ResetStats()
	s.bus.ResetStats()
	s.scheme.ResetStats()
}

// Run consumes the stream to exhaustion and returns the result. The first
// warmupRecords records run before the measurement snapshot.
func (s *System) Run(stream workload.Stream, warmupRecords int) Result {
	n := 0
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		if n == warmupRecords {
			s.cpu.Drain() // settle outstanding warmup misses
			s.BeginMeasurement()
		}
		s.step(rec)
		n++
	}
	s.cpu.Drain()
	if n <= warmupRecords {
		s.BeginMeasurement() // trace shorter than warmup: empty measurement
	}
	return s.result()
}

func (s *System) result() Result {
	r := Result{
		Scheme:          s.scheme.Name(),
		Cycles:          s.cpu.Cycles() - s.cycles0,
		Instructions:    s.cpu.Retired() - s.instr0,
		L1DMisses:       s.l1d.Misses,
		L1IMisses:       s.l1i.Misses,
		L2Misses:        s.l2.Misses,
		L2Hits:          s.l2.Hits,
		LineFills:       s.bus.Transactions[mem.SrcLineFill],
		Writebacks:      s.bus.Transactions[mem.SrcWriteback],
		SeqNumFetches:   s.bus.Transactions[mem.SrcSeqNumFetch],
		SeqNumSpills:    s.bus.Transactions[mem.SrcSeqNumSpill],
		MACFetches:      s.bus.Transactions[mem.SrcMACFetch],
		MACUpdates:      s.bus.Transactions[mem.SrcMACUpdate],
		ROBStallCycles:  s.cpu.ROBStallCycles - s.robStall0,
		MSHRStallCycles: s.cpu.MSHRStallCycles - s.mshrStall0,
		DepStallCycles:  s.cpu.DepStallCycles - s.depStall0,
	}
	// Schemes expose optional capability interfaces; the registry keeps
	// sim decoupled from the concrete scheme set.
	if sp, ok := s.scheme.(interface{ SNC() *snc.SNC }); ok {
		sn := sp.SNC()
		r.SNCQueryHits = sn.QueryHits
		r.SNCQueryMisses = sn.QueryMisses
		r.SNCUpdateHits = sn.UpdateHits
		r.SNCUpdateMiss = sn.UpdateMisses
		r.SeqOverflows = sn.SeqOverflows
	}
	if iv, ok := s.scheme.(interface {
		IntegrityCounters() (verified, stallCycles uint64)
	}); ok {
		r.IntegrityVerified, r.IntegrityStallCycles = iv.IntegrityCounters()
	}
	return r
}

// RunProfile is the one-call entry point: build the system, generate the
// trace at the given scale, run it with the profile's warmup boundary.
func RunProfile(cfg Config, prof workload.Profile, scale float64) (Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	stream, err := workload.NewStream(prof, scale)
	if err != nil {
		return Result{}, err
	}
	return sys.Run(stream, prof.WarmupRefs()), nil
}

// Slowdown returns the percent slowdown of r relative to base.
func Slowdown(r, base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return 100 * (float64(r.Cycles)/float64(base.Cycles) - 1)
}

// NormalizedTime returns r's execution time normalized to base (Figure 8).
func NormalizedTime(r, base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(base.Cycles)
}
