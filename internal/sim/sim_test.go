package sim

import (
	"testing"

	"secureproc/internal/workload"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.L2.SizeBytes != 256<<10 || cfg.L2.Ways != 4 || cfg.L2.LineBytes != 128 {
		t.Error("L2 is not the paper's 256KB 4-way 128B")
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1I.SizeBytes != 32<<10 {
		t.Error("L1s are not the paper's 32KB")
	}
	if cfg.DRAM.AccessLatency != 100 || cfg.Crypto.Latency != 50 {
		t.Error("latencies are not the paper's 100/50")
	}
	if cfg.SNC.SizeBytes != 64<<10 {
		t.Error("SNC is not the paper's 64KB default")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := DefaultConfig()
	bad.WriteBufferDepth = 0
	if bad.Validate() == nil {
		t.Error("zero write buffer accepted")
	}
	bad2 := DefaultConfig()
	bad2.Scheme = SchemeOTPLRU
	bad2.SNC.LineBytes = 64 // mismatched with L2
	if bad2.Validate() == nil {
		t.Error("SNC/L2 line mismatch accepted")
	}
	bad3 := DefaultConfig()
	bad3.CPU.IssueWidth = 0
	if bad3.Validate() == nil {
		t.Error("bad CPU config accepted")
	}
	if _, err := New(bad3); err == nil {
		t.Error("New must propagate validation errors")
	}
}

func TestSchemeKindString(t *testing.T) {
	names := map[SchemeKind]string{
		SchemeBaseline:  "baseline",
		SchemeXOM:       "XOM",
		SchemeOTPLRU:    "SNC-LRU",
		SchemeOTPNoRepl: "SNC-NoRepl",
		SchemeKind(99):  "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func runBench(t *testing.T, name string, scheme SchemeKind) Result {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	r, err := RunProfile(cfg, prof, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSchemeOrdering verifies the paper's central inequality on a
// memory-bound benchmark: baseline < OTP-LRU < XOM.
func TestSchemeOrdering(t *testing.T) {
	base := runBench(t, "vpr", SchemeBaseline)
	lru := runBench(t, "vpr", SchemeOTPLRU)
	xom := runBench(t, "vpr", SchemeXOM)
	if !(base.Cycles < lru.Cycles && lru.Cycles < xom.Cycles) {
		t.Errorf("ordering violated: base=%d lru=%d xom=%d", base.Cycles, lru.Cycles, xom.Cycles)
	}
	// Same instruction count everywhere (timing-only schemes).
	if base.Instructions != lru.Instructions || base.Instructions != xom.Instructions {
		t.Error("instruction counts differ between schemes")
	}
}

// TestDeterminism: identical runs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	a := runBench(t, "gzip", SchemeOTPLRU)
	b := runBench(t, "gzip", SchemeOTPLRU)
	if a.Cycles != b.Cycles || a.L2Misses != b.L2Misses {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.L2Misses, b.Cycles, b.L2Misses)
	}
}

func TestGccNoReplStory(t *testing.T) {
	// The paper's sharpest qualitative claim: for gcc a no-replacement SNC
	// is nearly as slow as XOM while LRU is within ~2% of baseline.
	base := runBench(t, "gcc", SchemeBaseline)
	xom := runBench(t, "gcc", SchemeXOM)
	nr := runBench(t, "gcc", SchemeOTPNoRepl)
	lru := runBench(t, "gcc", SchemeOTPLRU)
	sXOM, sNR, sLRU := Slowdown(xom, base), Slowdown(nr, base), Slowdown(lru, base)
	if sNR < sXOM*0.7 {
		t.Errorf("gcc NoRepl (%.1f%%) should be close to XOM (%.1f%%)", sNR, sXOM)
	}
	if sLRU > sXOM*0.25 {
		t.Errorf("gcc LRU (%.1f%%) should be far below XOM (%.1f%%)", sLRU, sXOM)
	}
}

func TestSNCCountersOnlyForOTP(t *testing.T) {
	xom := runBench(t, "vpr", SchemeXOM)
	if xom.SNCQueryHits != 0 || xom.SNCQueryMisses != 0 {
		t.Error("XOM run has SNC counters")
	}
	lru := runBench(t, "vpr", SchemeOTPLRU)
	if lru.SNCQueryHits == 0 {
		t.Error("OTP run has no SNC query hits")
	}
}

func TestTrafficAccounting(t *testing.T) {
	r := runBench(t, "mcf", SchemeOTPLRU)
	if r.DemandTraffic() == 0 {
		t.Fatal("no demand traffic")
	}
	if r.SNCTraffic() == 0 {
		t.Error("mcf under LRU should spill/fetch sequence numbers")
	}
	if r.SeqNumFetches == 0 || r.SeqNumSpills == 0 {
		t.Error("fetches and spills should both be nonzero for mcf")
	}
	nr := runBench(t, "mcf", SchemeOTPNoRepl)
	if nr.SNCTraffic() != 0 {
		t.Error("NoReplacement must not generate sequence-number traffic")
	}
}

func TestIPCPositive(t *testing.T) {
	r := runBench(t, "mesa", SchemeBaseline)
	if ipc := r.IPC(); ipc <= 0 || ipc > 4 {
		t.Errorf("implausible IPC %.2f", ipc)
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Error("zero result IPC should be 0")
	}
}

func TestSlowdownAndNormalizedTime(t *testing.T) {
	base := Result{Cycles: 1000}
	r := Result{Cycles: 1200}
	if got := Slowdown(r, base); got < 19.999 || got > 20.001 {
		t.Errorf("Slowdown = %v, want ~20", got)
	}
	if got := NormalizedTime(r, base); got != 1.2 {
		t.Errorf("NormalizedTime = %v, want 1.2", got)
	}
	if Slowdown(r, Result{}) != 0 || NormalizedTime(r, Result{}) != 0 {
		t.Error("zero base should yield 0")
	}
}

// TestCryptoLatencyInsensitivity reproduces Figure 10's mechanism at the
// unit level: doubling crypto latency should hammer XOM but barely move
// OTP-LRU.
func TestCryptoLatencyInsensitivity(t *testing.T) {
	prof, _ := workload.ByName("art")
	run := func(scheme SchemeKind, lat uint64) Result {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Crypto.Latency = lat
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(SchemeBaseline, 50)
	xom50 := Slowdown(run(SchemeXOM, 50), base)
	xom102 := Slowdown(run(SchemeXOM, 102), base)
	lru50 := Slowdown(run(SchemeOTPLRU, 50), base)
	lru102 := Slowdown(run(SchemeOTPLRU, 102), base)
	if xom102 < xom50*1.5 {
		t.Errorf("XOM should degrade sharply: %.1f%% -> %.1f%%", xom50, xom102)
	}
	if lru102 > lru50+2.0 {
		t.Errorf("OTP-LRU should be insensitive: %.1f%% -> %.1f%%", lru50, lru102)
	}
}

func TestEquakeSNCSizeCliff(t *testing.T) {
	// Figure 6's cliff: equake fits a 64KB SNC (4MB coverage) but not a
	// 32KB one (2MB).
	prof, _ := workload.ByName("equake")
	run := func(kb int) Result {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeOTPLRU
		cfg.SNC.SizeBytes = kb << 10
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := DefaultConfig()
	base, err := RunProfile(cfg, prof, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s32 := Slowdown(run(32), base)
	s64 := Slowdown(run(64), base)
	if s64 > 1.5 {
		t.Errorf("equake at 64KB should be near zero, got %.2f%%", s64)
	}
	if s32 < 3*s64+2 {
		t.Errorf("equake cliff missing: 32KB=%.2f%% vs 64KB=%.2f%%", s32, s64)
	}
}

func TestAmmpAssociativityOutlier(t *testing.T) {
	// Figure 7: ammp degrades at 32 ways, others do not (spot-check art).
	run := func(bench string, ways int) float64 {
		prof, _ := workload.ByName(bench)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeOTPLRU
		cfg.SNC.Ways = ways
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheme = SchemeBaseline
		base, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return Slowdown(r, base)
	}
	ammpFA := run("ammp", 0)
	ammp32 := run("ammp", 32)
	artFA := run("art", 0)
	art32 := run("art", 32)
	if ammp32 < ammpFA*1.5 {
		t.Errorf("ammp should suffer at 32 ways: FA=%.2f%% 32w=%.2f%%", ammpFA, ammp32)
	}
	if art32 > artFA+1 {
		t.Errorf("art should not care about associativity: FA=%.2f%% 32w=%.2f%%", artFA, art32)
	}
}

func TestRunShorterThanWarmup(t *testing.T) {
	// A stream shorter than the declared warmup yields an empty (but
	// well-formed) measurement.
	prof := workload.Profile{
		Name: "tiny",
		Phases: []workload.Phase{
			{Refs: 10, Warmup: true, Regions: []workload.Region{{Size: 1024, Weight: 1}}},
		},
	}
	cfg := DefaultConfig()
	r, err := RunProfile(cfg, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 0 {
		t.Errorf("measured instructions = %d, want 0", r.Instructions)
	}
}

func TestSystemSchemeAccessor(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme() == nil || sys.Scheme().Name() != "baseline" {
		t.Error("Scheme() accessor broken")
	}
	bad := DefaultConfig()
	bad.Scheme = SchemeKind(42)
	if _, err := New(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
}
