package sim

import (
	"strings"
	"testing"

	"secureproc/internal/mem"
	"secureproc/internal/snc"
	"secureproc/internal/workload"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.L2.SizeBytes != 256<<10 || cfg.L2.Ways != 4 || cfg.L2.LineBytes != 128 {
		t.Error("L2 is not the paper's 256KB 4-way 128B")
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1I.SizeBytes != 32<<10 {
		t.Error("L1s are not the paper's 32KB")
	}
	if cfg.DRAM.AccessLatency != 100 || cfg.Crypto.Latency != 50 {
		t.Error("latencies are not the paper's 100/50")
	}
	if cfg.SNC.SizeBytes != 64<<10 {
		t.Error("SNC is not the paper's 64KB default")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := DefaultConfig()
	bad.WriteBufferDepth = 0
	if bad.Validate() == nil {
		t.Error("zero write buffer accepted")
	}
	bad2 := DefaultConfig()
	bad2.Scheme = SchemeOTPLRU
	bad2.SNC.LineBytes = 64 // mismatched with L2
	if bad2.Validate() == nil {
		t.Error("SNC/L2 line mismatch accepted")
	}
	bad3 := DefaultConfig()
	bad3.CPU.IssueWidth = 0
	if bad3.Validate() == nil {
		t.Error("bad CPU config accepted")
	}
	if _, err := New(bad3); err == nil {
		t.Error("New must propagate validation errors")
	}
}

func TestSchemeDisplayNames(t *testing.T) {
	// The display names baked into the paper's figure labels must survive
	// the registry refactor: Result.Scheme comes from the constructed
	// scheme, keyed by the registry reference.
	names := map[string]string{
		SchemeBaseline.Name:      "baseline",
		SchemeXOM.Name:           "XOM",
		SchemeOTPLRU.Name:        "SNC-LRU",
		SchemeOTPNoRepl.Name:     "SNC-NoRepl",
		SchemeOTPMAC.Name:        "OTP+MAC",
		SchemeOTPPrecompute.Name: "OTP-Pre",
	}
	for ref, want := range names {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeRef{Name: ref}
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", ref, err)
		}
		if got := sys.Scheme().Name(); got != want {
			t.Errorf("%s display name = %q, want %q", ref, got, want)
		}
	}
}

func TestSchemeByNameResolvesAliasesAndParams(t *testing.T) {
	for in, want := range map[string]string{
		"baseline": "baseline", "base": "baseline",
		"xom": "xom", "XOM": "xom",
		"snc-lru": "snc-lru", "lru": "snc-lru", "otp": "snc-lru",
		"snc-norepl": "snc-norepl", "norepl": "snc-norepl",
		"otp-mac": "otp-mac", "mac": "otp-mac",
		"otp-precompute": "otp-precompute", "precompute": "otp-precompute",
	} {
		ref, err := SchemeByName(in)
		if err != nil {
			t.Errorf("SchemeByName(%q): %v", in, err)
			continue
		}
		if ref.Name != want {
			t.Errorf("SchemeByName(%q).Name = %q, want %q", in, ref.Name, want)
		}
	}
	ref, err := SchemeByName("otp-mac:verify=blocking,verify_lat=120")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Params["verify"] != "blocking" || ref.Params["verify_lat"] != "120" {
		t.Errorf("params not parsed: %v", ref.Params)
	}
	if _, err := SchemeByName("nosuch"); err == nil {
		t.Error("unknown scheme accepted")
	} else if !strings.Contains(err.Error(), "snc-lru") {
		t.Errorf("unknown-scheme error should list the registry, got: %v", err)
	}
	if _, err := SchemeByName("otp-mac:verify=sometimes"); err == nil {
		t.Error("bad verify policy accepted")
	}
}

func runBench(t *testing.T, name string, scheme SchemeRef) Result {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	r, err := RunProfile(cfg, prof, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSchemeOrdering verifies the paper's central inequality on a
// memory-bound benchmark: baseline < OTP-LRU < XOM.
func TestSchemeOrdering(t *testing.T) {
	base := runBench(t, "vpr", SchemeBaseline)
	lru := runBench(t, "vpr", SchemeOTPLRU)
	xom := runBench(t, "vpr", SchemeXOM)
	if !(base.Cycles < lru.Cycles && lru.Cycles < xom.Cycles) {
		t.Errorf("ordering violated: base=%d lru=%d xom=%d", base.Cycles, lru.Cycles, xom.Cycles)
	}
	// Same instruction count everywhere (timing-only schemes).
	if base.Instructions != lru.Instructions || base.Instructions != xom.Instructions {
		t.Error("instruction counts differ between schemes")
	}
}

// TestDeterminism: identical runs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	a := runBench(t, "gzip", SchemeOTPLRU)
	b := runBench(t, "gzip", SchemeOTPLRU)
	if a.Cycles != b.Cycles || a.L2Misses != b.L2Misses {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.L2Misses, b.Cycles, b.L2Misses)
	}
}

func TestGccNoReplStory(t *testing.T) {
	// The paper's sharpest qualitative claim: for gcc a no-replacement SNC
	// is nearly as slow as XOM while LRU is within ~2% of baseline.
	base := runBench(t, "gcc", SchemeBaseline)
	xom := runBench(t, "gcc", SchemeXOM)
	nr := runBench(t, "gcc", SchemeOTPNoRepl)
	lru := runBench(t, "gcc", SchemeOTPLRU)
	sXOM, sNR, sLRU := Slowdown(xom, base), Slowdown(nr, base), Slowdown(lru, base)
	if sNR < sXOM*0.7 {
		t.Errorf("gcc NoRepl (%.1f%%) should be close to XOM (%.1f%%)", sNR, sXOM)
	}
	if sLRU > sXOM*0.25 {
		t.Errorf("gcc LRU (%.1f%%) should be far below XOM (%.1f%%)", sLRU, sXOM)
	}
}

func TestSNCCountersOnlyForOTP(t *testing.T) {
	xom := runBench(t, "vpr", SchemeXOM)
	if xom.SNCQueryHits != 0 || xom.SNCQueryMisses != 0 {
		t.Error("XOM run has SNC counters")
	}
	lru := runBench(t, "vpr", SchemeOTPLRU)
	if lru.SNCQueryHits == 0 {
		t.Error("OTP run has no SNC query hits")
	}
}

func TestTrafficAccounting(t *testing.T) {
	r := runBench(t, "mcf", SchemeOTPLRU)
	if r.DemandTraffic() == 0 {
		t.Fatal("no demand traffic")
	}
	if r.SNCTraffic() == 0 {
		t.Error("mcf under LRU should spill/fetch sequence numbers")
	}
	if r.SeqNumFetches == 0 || r.SeqNumSpills == 0 {
		t.Error("fetches and spills should both be nonzero for mcf")
	}
	nr := runBench(t, "mcf", SchemeOTPNoRepl)
	if nr.SNCTraffic() != 0 {
		t.Error("NoReplacement must not generate sequence-number traffic")
	}
}

func TestIPCPositive(t *testing.T) {
	r := runBench(t, "mesa", SchemeBaseline)
	if ipc := r.IPC(); ipc <= 0 || ipc > 4 {
		t.Errorf("implausible IPC %.2f", ipc)
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Error("zero result IPC should be 0")
	}
}

func TestSlowdownAndNormalizedTime(t *testing.T) {
	base := Result{Cycles: 1000}
	r := Result{Cycles: 1200}
	if got := Slowdown(r, base); got < 19.999 || got > 20.001 {
		t.Errorf("Slowdown = %v, want ~20", got)
	}
	if got := NormalizedTime(r, base); got != 1.2 {
		t.Errorf("NormalizedTime = %v, want 1.2", got)
	}
	if Slowdown(r, Result{}) != 0 || NormalizedTime(r, Result{}) != 0 {
		t.Error("zero base should yield 0")
	}
}

// TestCryptoLatencyInsensitivity reproduces Figure 10's mechanism at the
// unit level: doubling crypto latency should hammer XOM but barely move
// OTP-LRU.
func TestCryptoLatencyInsensitivity(t *testing.T) {
	prof, _ := workload.ByName("art")
	run := func(scheme SchemeRef, lat uint64) Result {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Crypto.Latency = lat
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(SchemeBaseline, 50)
	xom50 := Slowdown(run(SchemeXOM, 50), base)
	xom102 := Slowdown(run(SchemeXOM, 102), base)
	lru50 := Slowdown(run(SchemeOTPLRU, 50), base)
	lru102 := Slowdown(run(SchemeOTPLRU, 102), base)
	if xom102 < xom50*1.5 {
		t.Errorf("XOM should degrade sharply: %.1f%% -> %.1f%%", xom50, xom102)
	}
	if lru102 > lru50+2.0 {
		t.Errorf("OTP-LRU should be insensitive: %.1f%% -> %.1f%%", lru50, lru102)
	}
}

func TestEquakeSNCSizeCliff(t *testing.T) {
	// Figure 6's cliff: equake fits a 64KB SNC (4MB coverage) but not a
	// 32KB one (2MB).
	prof, _ := workload.ByName("equake")
	run := func(kb int) Result {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeOTPLRU
		cfg.SNC.SizeBytes = kb << 10
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := DefaultConfig()
	base, err := RunProfile(cfg, prof, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s32 := Slowdown(run(32), base)
	s64 := Slowdown(run(64), base)
	if s64 > 1.5 {
		t.Errorf("equake at 64KB should be near zero, got %.2f%%", s64)
	}
	if s32 < 3*s64+2 {
		t.Errorf("equake cliff missing: 32KB=%.2f%% vs 64KB=%.2f%%", s32, s64)
	}
}

func TestAmmpAssociativityOutlier(t *testing.T) {
	// Figure 7: ammp degrades at 32 ways, others do not (spot-check art).
	run := func(bench string, ways int) float64 {
		prof, _ := workload.ByName(bench)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeOTPLRU
		cfg.SNC.Ways = ways
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheme = SchemeBaseline
		base, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return Slowdown(r, base)
	}
	ammpFA := run("ammp", 0)
	ammp32 := run("ammp", 32)
	artFA := run("art", 0)
	art32 := run("art", 32)
	if ammp32 < ammpFA*1.5 {
		t.Errorf("ammp should suffer at 32 ways: FA=%.2f%% 32w=%.2f%%", ammpFA, ammp32)
	}
	if art32 > artFA+1 {
		t.Errorf("art should not care about associativity: FA=%.2f%% 32w=%.2f%%", artFA, art32)
	}
}

func TestRunShorterThanWarmup(t *testing.T) {
	// A stream shorter than the declared warmup yields an empty (but
	// well-formed) measurement.
	prof := workload.Profile{
		Name: "tiny",
		Phases: []workload.Phase{
			{Refs: 10, Warmup: true, Regions: []workload.Region{{Size: 1024, Weight: 1}}},
		},
	}
	cfg := DefaultConfig()
	r, err := RunProfile(cfg, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 0 {
		t.Errorf("measured instructions = %d, want 0", r.Instructions)
	}
}

func TestSystemSchemeAccessor(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme() == nil || sys.Scheme().Name() != "baseline" {
		t.Error("Scheme() accessor broken")
	}
	bad := DefaultConfig()
	bad.Scheme = SchemeRef{Name: "nosuch"}
	if _, err := New(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestValidateSchemeErrors covers the registry-backed validation paths: a
// zero (nil) scheme, an unknown name, and bad parameters must all fail
// with errors that point at the registry, not a silent "unknown" string.
func TestValidateSchemeErrors(t *testing.T) {
	zero := DefaultConfig()
	zero.Scheme = SchemeRef{}
	err := zero.Validate()
	if err == nil {
		t.Fatal("nil scheme descriptor accepted")
	}
	if !strings.Contains(err.Error(), "no scheme selected") || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("nil-scheme error should say so and list the registry, got: %v", err)
	}

	unknown := DefaultConfig()
	unknown.Scheme = SchemeRef{Name: "rot13"}
	err = unknown.Validate()
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "rot13") || !strings.Contains(err.Error(), "otp-mac") {
		t.Errorf("unknown-scheme error should name the scheme and list the registry, got: %v", err)
	}

	badParam := DefaultConfig()
	badParam.Scheme = SchemeRef{Name: "otp-mac", Params: SchemeParams{"verify": "perhaps"}}
	if badParam.Validate() == nil {
		t.Error("bad otp-mac verify policy accepted")
	}
	badParam.Scheme = SchemeRef{Name: "otp-mac", Params: SchemeParams{"verify_lat": "-3"}}
	if badParam.Validate() == nil {
		t.Error("negative verify_lat accepted")
	}
	badParam.Scheme = SchemeRef{Name: "otp-mac", Params: SchemeParams{"frobnicate": "1"}}
	if badParam.Validate() == nil {
		t.Error("unknown otp-mac parameter accepted")
	}
	noParams := DefaultConfig()
	noParams.Scheme = SchemeRef{Name: "baseline", Params: SchemeParams{"x": "1"}}
	if noParams.Validate() == nil {
		t.Error("parameters accepted by a parameterless scheme")
	}

	// The SNC checks apply exactly to the schemes that need one.
	mism := DefaultConfig()
	mism.SNC.LineBytes = 64
	for _, ref := range []SchemeRef{SchemeOTPLRU, SchemeOTPNoRepl, SchemeOTPMAC, SchemeOTPPrecompute} {
		mism.Scheme = ref
		if mism.Validate() == nil {
			t.Errorf("%s: SNC/L2 line mismatch accepted", ref.Name)
		}
	}
	for _, ref := range []SchemeRef{SchemeBaseline, SchemeXOM} {
		mism.Scheme = ref
		if err := mism.Validate(); err != nil {
			t.Errorf("%s: SNC config should not matter: %v", ref.Name, err)
		}
	}
}

// TestNewSchemesRun smoke-tests the two registry-era schemes end to end
// and pins the expected orderings: MAC blocking costs more than overlap,
// which costs more than bare OTP; precompute never costs more than OTP.
func TestNewSchemesRun(t *testing.T) {
	lru := runBench(t, "vpr", SchemeOTPLRU)
	overlap := runBench(t, "vpr", SchemeOTPMAC)
	blocking := runBench(t, "vpr", SchemeRef{Name: "otp-mac", Params: SchemeParams{"verify": "blocking"}})
	pre := runBench(t, "vpr", SchemeOTPPrecompute)

	if overlap.IntegrityVerified == 0 || blocking.IntegrityVerified == 0 {
		t.Error("MAC schemes verified nothing")
	}
	// vpr fits the SNC, so its MACs stay on chip; mcf overflows it and
	// must pay MAC-table traffic on the same misses that fetch sequence
	// numbers.
	mcf := runBench(t, "mcf", SchemeOTPMAC)
	if mcf.MACTraffic() == 0 {
		t.Error("SNC-overflowing MAC scheme generated no MAC-table traffic")
	}
	if mcf.MACFetches == 0 {
		t.Error("expected MAC fetches alongside sequence-number fetches")
	}
	if !(lru.Cycles <= overlap.Cycles && overlap.Cycles < blocking.Cycles) {
		t.Errorf("integrity cost ordering violated: lru=%d overlap=%d blocking=%d",
			lru.Cycles, overlap.Cycles, blocking.Cycles)
	}
	if pre.Cycles > lru.Cycles {
		t.Errorf("precompute (%d cycles) should never cost more than OTP-LRU (%d)", pre.Cycles, lru.Cycles)
	}
	if pre.MACTraffic() != 0 || lru.IntegrityVerified != 0 {
		t.Error("integrity counters leaked into non-MAC schemes")
	}
}

// TestPrecomputeHidesLargeCryptoLatency pins the sensitivity story: with a
// crypto unit slower than the memory round trip, OTP-LRU degrades but
// OTP-Pre's hit path stays flat.
func TestPrecomputeHidesLargeCryptoLatency(t *testing.T) {
	prof, _ := workload.ByName("art")
	run := func(scheme SchemeRef, lat uint64) Result {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Crypto.Latency = lat
		r, err := RunProfile(cfg, prof, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(SchemeBaseline, 300)
	lru := Slowdown(run(SchemeOTPLRU, 300), base)
	pre := Slowdown(run(SchemeOTPPrecompute, 300), base)
	if pre >= lru {
		t.Errorf("300-cycle crypto: precompute (%.2f%%) should beat OTP-LRU (%.2f%%)", pre, lru)
	}
}

// mkStore returns a store record for addr with no leading compute gap.
func mkStore(addr uint64) workload.Record {
	return workload.Record{Kind: workload.Store, Addr: addr}
}

// TestContextSwitchWritesBackDirtyLines pins the invalidation half of a
// task switch on the timing path: dirty lines reach the bus through the
// scheme's writeback path exactly once, and cache stats stay coherent.
func TestContextSwitchWritesBackDirtyLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeOTPLRU
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty 16 distinct L2 lines (128B apart).
	for i := uint64(0); i < 16; i++ {
		sys.Step(mkStore(0x4000_0000 + i*128))
	}
	wb0 := sys.bus.Transactions[mem.SrcWriteback]
	cost := sys.ContextSwitch(1)
	if cost.DirtyWritebacks != 16 {
		t.Errorf("switch wrote back %d lines, want 16", cost.DirtyWritebacks)
	}
	if got := sys.bus.Transactions[mem.SrcWriteback] - wb0; got != 16 {
		t.Errorf("bus saw %d switch writebacks, want 16", got)
	}
	if sys.l2.Probe(0x4000_0000) {
		t.Error("L2 still holds a line after invalidation")
	}
	// A second switch straight after finds nothing dirty.
	if cost := sys.ContextSwitch(0); cost.DirtyWritebacks != 0 {
		t.Errorf("second switch wrote back %d lines, want 0", cost.DirtyWritebacks)
	}
	// Stats remain internally consistent: the invalidation writebacks are
	// counted by the caches too.
	if sys.l2.Writebacks == 0 {
		t.Error("L2 writeback counter missed the invalidation")
	}
}

// TestContextSwitchFlushVsPID pins the two Section 4.3 policies end to end:
// after a switch away and back, the flush policy refetches its sequence
// numbers through query misses while the pid policy still hits — and only
// the flush policy puts spill traffic on the bus.
func TestContextSwitchFlushVsPID(t *testing.T) {
	run := func(schemeRef string) (spills uint64, missesOnResume uint64, hitsOnResume uint64) {
		ref, err := SchemeByName(schemeRef)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Scheme = ref
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Task 0 dirties lines, installing SNC entries via writeback misses
		// and the switch's own writebacks.
		lines := make([]uint64, 32)
		for i := range lines {
			lines[i] = 0x4000_0000 + uint64(i)*128
			sys.Step(mkStore(lines[i]))
		}
		cost := sys.ContextSwitch(1) // away: task 1 runs
		spills = cost.SeqSpills
		// Task 1 does unrelated work at the same VAs (a different address
		// space).
		for i := uint64(0); i < 8; i++ {
			sys.Step(mkStore(0x4000_0000 + i*128))
		}
		sys.ContextSwitch(0) // back to task 0
		sn := sys.Scheme().(interface{ SNC() *snc.SNC }).SNC()
		q0, m0 := sn.QueryHits, sn.QueryMisses
		// Task 0 reloads its lines: every load is an L2 miss (caches were
		// invalidated), so each one queries the SNC.
		for _, a := range lines {
			sys.Step(workload.Record{Kind: workload.Load, Addr: a})
		}
		return spills, sn.QueryMisses - m0, sn.QueryHits - q0
	}

	flushSpills, flushMisses, _ := run("snc-lru:switch=flush")
	pidSpills, _, pidHits := run("snc-lru:switch=pid")

	if flushSpills == 0 {
		t.Error("flush policy must spill SNC contents at the switch")
	}
	if flushMisses == 0 {
		t.Error("flush policy must refetch sequence numbers on resume")
	}
	if pidSpills != 0 {
		t.Errorf("pid policy spilled %d entries at the switch, want 0", pidSpills)
	}
	if pidHits == 0 {
		t.Error("pid policy must hit its surviving entries on resume")
	}
}
