// Package integrity implements memory integrity verification for the
// protected memory: a keyed MAC per line binding (contents, address,
// sequence number), as XOM-class architectures attach to every memory
// block (paper Section 2.2).
//
// The paper explicitly scopes integrity out of its performance work (it
// cites Gassend et al.'s hash trees and concentrates on
// encryption/decryption latency), but the threat model it inherits names
// three attacks this package demonstrates and detects:
//
//   - spoofing: the adversary overwrites a line with chosen bytes;
//   - splicing: the adversary swaps two valid ciphertext lines;
//   - replay: the adversary restores a stale (line, MAC) pair.
//
// Spoofing and splicing are caught by the address-bound MAC alone; replay
// additionally needs the on-chip sequence number (which the SNC conveniently
// already maintains) so a stale MAC no longer verifies.
package integrity

import (
	"encoding/binary"
	"errors"
	"fmt"

	"secureproc/internal/crypto/sha256"
)

// MACSize is the stored MAC width in bytes (truncated SHA-256 HMAC; the
// paper's XOM reference uses a per-block hash of similar width).
const MACSize = 16

// Verifier computes and checks per-line MACs under a chip-internal key.
type Verifier struct {
	key       []byte
	lineBytes int

	// Verified / Failed count check outcomes.
	Verified uint64
	Failed   uint64
}

// ErrTampered is returned when a line fails verification.
var ErrTampered = errors.New("integrity: line MAC mismatch (spoofed, spliced or replayed)")

// NewVerifier creates a verifier for the given line size.
func NewVerifier(key []byte, lineBytes int) (*Verifier, error) {
	if lineBytes <= 0 {
		return nil, fmt.Errorf("integrity: line size must be positive")
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("integrity: empty key")
	}
	return &Verifier{key: append([]byte(nil), key...), lineBytes: lineBytes}, nil
}

// macInput binds ciphertext, address and sequence number.
func (v *Verifier) macInput(lineVA uint64, seq uint16, ct []byte) []byte {
	buf := make([]byte, 0, len(ct)+10)
	buf = append(buf, ct...)
	var meta [10]byte
	binary.LittleEndian.PutUint64(meta[0:], lineVA)
	binary.LittleEndian.PutUint16(meta[8:], seq)
	return append(buf, meta[:]...)
}

// MAC computes the stored MAC for a line's ciphertext at lineVA with the
// given sequence number.
func (v *Verifier) MAC(lineVA uint64, seq uint16, ct []byte) ([MACSize]byte, error) {
	var out [MACSize]byte
	if len(ct) != v.lineBytes {
		return out, fmt.Errorf("integrity: line length %d != %d", len(ct), v.lineBytes)
	}
	full := sha256.HMAC(v.key, v.macInput(lineVA, seq, ct))
	copy(out[:], full[:MACSize])
	return out, nil
}

// Check verifies a fetched line against its stored MAC.
func (v *Verifier) Check(lineVA uint64, seq uint16, ct []byte, mac [MACSize]byte) error {
	want, err := v.MAC(lineVA, seq, ct)
	if err != nil {
		return err
	}
	if !constEq(want[:], mac[:]) {
		v.Failed++
		return fmt.Errorf("%w (line %#x)", ErrTampered, lineVA)
	}
	v.Verified++
	return nil
}

func constEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var d byte
	for i := range a {
		d |= a[i] ^ b[i]
	}
	return d == 0
}

// ProtectedStore couples ciphertext lines with their MACs — the functional
// model of DRAM plus the MAC side table, with an API for mounting the three
// classic attacks against it.
type ProtectedStore struct {
	verifier *Verifier
	lines    map[uint64][]byte
	macs     map[uint64][MACSize]byte
	seqs     map[uint64]uint16 // trusted on-chip sequence numbers
}

// NewProtectedStore creates an empty MAC-protected line store.
func NewProtectedStore(key []byte, lineBytes int) (*ProtectedStore, error) {
	v, err := NewVerifier(key, lineBytes)
	if err != nil {
		return nil, err
	}
	return &ProtectedStore{
		verifier: v,
		lines:    make(map[uint64][]byte),
		macs:     make(map[uint64][MACSize]byte),
		seqs:     make(map[uint64]uint16),
	}, nil
}

// Write stores a ciphertext line, advancing its trusted sequence number and
// recomputing the MAC (what the chip does on every writeback).
func (p *ProtectedStore) Write(lineVA uint64, ct []byte) error {
	p.seqs[lineVA]++
	mac, err := p.verifier.MAC(lineVA, p.seqs[lineVA], ct)
	if err != nil {
		return err
	}
	p.lines[lineVA] = append([]byte(nil), ct...)
	p.macs[lineVA] = mac
	return nil
}

// Read fetches and verifies a line (what the chip does on every fill).
func (p *ProtectedStore) Read(lineVA uint64) ([]byte, error) {
	ct, ok := p.lines[lineVA]
	if !ok {
		return nil, fmt.Errorf("integrity: no line at %#x", lineVA)
	}
	if err := p.verifier.Check(lineVA, p.seqs[lineVA], ct, p.macs[lineVA]); err != nil {
		return nil, err
	}
	return append([]byte(nil), ct...), nil
}

// Stats exposes the verifier counters.
func (p *ProtectedStore) Stats() (verified, failed uint64) {
	return p.verifier.Verified, p.verifier.Failed
}

// --- Adversary interface: mutations an attacker with DRAM access can do ---

// TamperSpoof overwrites line bytes in place (MAC left untouched).
func (p *ProtectedStore) TamperSpoof(lineVA uint64, newBytes []byte) {
	p.lines[lineVA] = append([]byte(nil), newBytes...)
}

// TamperSplice swaps the ciphertext (and MACs — the attacker can move both)
// of two lines.
func (p *ProtectedStore) TamperSplice(a, b uint64) {
	p.lines[a], p.lines[b] = p.lines[b], p.lines[a]
	p.macs[a], p.macs[b] = p.macs[b], p.macs[a]
}

// Snapshot captures a line's current (ciphertext, MAC) for a later replay.
func (p *ProtectedStore) Snapshot(lineVA uint64) (ct []byte, mac [MACSize]byte) {
	return append([]byte(nil), p.lines[lineVA]...), p.macs[lineVA]
}

// TamperReplay restores a previously captured (ciphertext, MAC) pair — both
// were valid once, so only the sequence-number binding can catch it.
func (p *ProtectedStore) TamperReplay(lineVA uint64, ct []byte, mac [MACSize]byte) {
	p.lines[lineVA] = append([]byte(nil), ct...)
	p.macs[lineVA] = mac
}
