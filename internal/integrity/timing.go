package integrity

import "fmt"

// This file is the timing-model face of the package: where MAC
// verification lands on the memory read path, and what the verification
// unit costs. The functional side (Verifier, ProtectedStore, HashTree)
// proves the mechanism detects tampering; these types let the cycle-level
// schemes in internal/core charge for it.

// VerifyPolicy selects where MAC verification sits on the read critical
// path.
type VerifyPolicy int

const (
	// VerifyOverlap retires verification in the background: the pipeline
	// consumes fetched data speculatively and only an (off-critical-path)
	// exception fires on a MAC mismatch — the Gassend et al. (HPCA 2003)
	// cached-tree execution model the paper cites for integrity.
	VerifyOverlap VerifyPolicy = iota
	// VerifyBlocking holds the line until its MAC checks out: no
	// speculation past unverified data, the conservative XOM-class model.
	VerifyBlocking
)

// String names the policy for parameter parsing and docs.
func (p VerifyPolicy) String() string {
	switch p {
	case VerifyOverlap:
		return "overlap"
	case VerifyBlocking:
		return "blocking"
	default:
		return "unknown"
	}
}

// ParseVerifyPolicy parses "overlap" or "blocking".
func ParseVerifyPolicy(s string) (VerifyPolicy, error) {
	switch s {
	case "overlap":
		return VerifyOverlap, nil
	case "blocking":
		return VerifyBlocking, nil
	default:
		return 0, fmt.Errorf("integrity: unknown verify policy %q (overlap, blocking)", s)
	}
}

// DefaultVerifyLatency is the cycles a pipelined MAC unit takes to check
// one line: a SHA-class hash over 128 bytes, comparable to (slightly above)
// the paper's 50-cycle DES-class encryption ASIC.
const DefaultVerifyLatency = 80
