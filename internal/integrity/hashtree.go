package integrity

import (
	"encoding/binary"
	"fmt"

	"secureproc/internal/crypto/sha256"
)

// HashTree is a Merkle tree over protected memory lines — the integrity
// mechanism of Gassend, Suh, Clarke, van Dijk & Devadas (HPCA 2003), which
// the paper cites (Section 6) as the companion solution for replay attacks:
// only the root must stay on chip, so unlike the flat MAC table the trusted
// state is O(1) regardless of memory size.
//
// The tree covers a fixed number of line-granular leaves. Interior nodes
// hash their children; the root is compared against the on-chip copy on
// every verification. Updating a leaf rehashes the path to the root
// (log2(n) hashes), which is exactly the cost profile Gassend et al.
// optimize with cached tree nodes; CachedVerifier below models that cache.
type HashTree struct {
	lineBytes int
	leaves    int      // power of two
	nodes     [][]byte // heap layout: nodes[1] = root, nodes[2i], nodes[2i+1] children
	key       []byte
}

// NewHashTree builds a tree over `leaves` lines (rounded up to a power of
// two) of lineBytes each, all initially zero.
func NewHashTree(key []byte, lineBytes, leaves int) (*HashTree, error) {
	if lineBytes <= 0 || leaves <= 0 {
		return nil, fmt.Errorf("integrity: line size and leaf count must be positive")
	}
	n := 1
	for n < leaves {
		n *= 2
	}
	t := &HashTree{
		lineBytes: lineBytes,
		leaves:    n,
		nodes:     make([][]byte, 2*n),
		key:       append([]byte(nil), key...),
	}
	// Initialize leaf hashes over zero lines, then interior nodes.
	zero := make([]byte, lineBytes)
	for i := 0; i < n; i++ {
		t.nodes[n+i] = t.leafHash(i, zero)
	}
	for i := n - 1; i >= 1; i-- {
		t.nodes[i] = t.interiorHash(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t, nil
}

// Leaves returns the (rounded) leaf capacity.
func (t *HashTree) Leaves() int { return t.leaves }

// Depth returns the number of hash levels from leaf to root.
func (t *HashTree) Depth() int {
	d := 0
	for n := t.leaves; n > 1; n /= 2 {
		d++
	}
	return d
}

// Root returns a copy of the current root hash (the on-chip register).
func (t *HashTree) Root() []byte { return append([]byte(nil), t.nodes[1]...) }

func (t *HashTree) leafHash(index int, line []byte) []byte {
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(index))
	h := sha256.HMAC(t.key, append(append([]byte{0x00}, idx[:]...), line...))
	return h[:]
}

func (t *HashTree) interiorHash(l, r []byte) []byte {
	h := sha256.HMAC(t.key, append(append([]byte{0x01}, l...), r...))
	return h[:]
}

func (t *HashTree) checkIndex(index int) error {
	if index < 0 || index >= t.leaves {
		return fmt.Errorf("integrity: leaf %d out of range [0,%d)", index, t.leaves)
	}
	return nil
}

// Update rehashes the path from leaf `index` (holding `line`) to the root —
// what the chip does on a writeback.
func (t *HashTree) Update(index int, line []byte) error {
	if err := t.checkIndex(index); err != nil {
		return err
	}
	if len(line) != t.lineBytes {
		return fmt.Errorf("integrity: line length %d != %d", len(line), t.lineBytes)
	}
	i := t.leaves + index
	t.nodes[i] = t.leafHash(index, line)
	for i /= 2; i >= 1; i /= 2 {
		t.nodes[i] = t.interiorHash(t.nodes[2*i], t.nodes[2*i+1])
	}
	return nil
}

// Proof returns the sibling path for a leaf (what an untrusted memory
// controller would supply alongside the fetched line).
func (t *HashTree) Proof(index int) ([][]byte, error) {
	if err := t.checkIndex(index); err != nil {
		return nil, err
	}
	var path [][]byte
	for i := t.leaves + index; i > 1; i /= 2 {
		path = append(path, append([]byte(nil), t.nodes[i^1]...))
	}
	return path, nil
}

// Verify recomputes the root from a fetched line plus its sibling path and
// compares it with the trusted root. It returns ErrTampered on mismatch.
func (t *HashTree) Verify(index int, line []byte, proof [][]byte) error {
	if err := t.checkIndex(index); err != nil {
		return err
	}
	if len(proof) != t.Depth() {
		return fmt.Errorf("integrity: proof depth %d != %d", len(proof), t.Depth())
	}
	h := t.leafHash(index, line)
	i := t.leaves + index
	for _, sib := range proof {
		if i%2 == 0 {
			h = t.interiorHash(h, sib)
		} else {
			h = t.interiorHash(sib, h)
		}
		i /= 2
	}
	if !constEq(h, t.nodes[1]) {
		return fmt.Errorf("%w (leaf %d, hash-tree root mismatch)", ErrTampered, index)
	}
	return nil
}

// CachedVerifier wraps a HashTree with the Gassend et al. optimization:
// tree nodes verified recently are cached on chip and act as local roots,
// so verification stops at the first cached ancestor instead of walking to
// the real root. HashesSaved counts the work avoided.
type CachedVerifier struct {
	tree  *HashTree
	cache map[int]bool // node index -> trusted
	cap   int
	// Stats.
	HashesComputed uint64
	HashesSaved    uint64
}

// NewCachedVerifier wraps tree with an on-chip node cache of the given
// capacity (the root is always trusted and does not count).
func NewCachedVerifier(tree *HashTree, capacity int) *CachedVerifier {
	return &CachedVerifier{tree: tree, cache: make(map[int]bool), cap: capacity}
}

// Verify checks a leaf like HashTree.Verify but stops at cached ancestors,
// then marks the verified path as trusted (evicting arbitrarily when over
// capacity, standing in for LRU).
func (c *CachedVerifier) Verify(index int, line []byte, proof [][]byte) error {
	if err := c.tree.checkIndex(index); err != nil {
		return err
	}
	h := c.tree.leafHash(index, line)
	c.HashesComputed++
	i := c.tree.leaves + index
	level := 0
	for i > 1 {
		if c.cache[i] {
			// Cached ancestor: compare against its stored value directly.
			c.HashesSaved += uint64(len(proof) - level)
			if !constEq(h, c.tree.nodes[i]) {
				return fmt.Errorf("%w (leaf %d, cached node %d)", ErrTampered, index, i)
			}
			c.markPath(index, level)
			return nil
		}
		if level >= len(proof) {
			return fmt.Errorf("integrity: proof too short")
		}
		sib := proof[level]
		if i%2 == 0 {
			h = c.tree.interiorHash(h, sib)
		} else {
			h = c.tree.interiorHash(sib, h)
		}
		c.HashesComputed++
		i /= 2
		level++
	}
	if !constEq(h, c.tree.nodes[1]) {
		return fmt.Errorf("%w (leaf %d, root mismatch)", ErrTampered, index)
	}
	c.markPath(index, len(proof))
	return nil
}

// markPath caches the verified ancestors of a leaf up to `levels` deep.
func (c *CachedVerifier) markPath(index, levels int) {
	i := c.tree.leaves + index
	for l := 0; l < levels && i > 1; l++ {
		if len(c.cache) >= c.cap {
			for k := range c.cache { // arbitrary eviction
				delete(c.cache, k)
				break
			}
		}
		c.cache[i] = true
		i /= 2
	}
}

// Invalidate drops cached trust for a leaf's path (needed after Update).
func (c *CachedVerifier) Invalidate(index int) {
	for i := c.tree.leaves + index; i > 1; i /= 2 {
		delete(c.cache, i)
	}
}
