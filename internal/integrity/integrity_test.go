package integrity

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *ProtectedStore {
	t.Helper()
	p, err := NewProtectedStore([]byte("chip-internal-key"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func line(fill byte) []byte {
	d := make([]byte, 128)
	for i := range d {
		d[i] = fill
	}
	return d
}

func TestNewVerifierValidation(t *testing.T) {
	if _, err := NewVerifier(nil, 128); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewVerifier([]byte("k"), 0); err == nil {
		t.Error("zero line size accepted")
	}
	v, err := NewVerifier([]byte("k"), 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.MAC(0, 0, make([]byte, 64)); err == nil {
		t.Error("short line accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := newStore(t)
	data := line(0x42)
	if err := p.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	verified, failed := p.Stats()
	if verified != 1 || failed != 0 {
		t.Errorf("stats %d/%d", verified, failed)
	}
}

func TestReadMissingLine(t *testing.T) {
	p := newStore(t)
	if _, err := p.Read(0x9000); err == nil {
		t.Error("missing line should error")
	}
}

func TestSpoofingDetected(t *testing.T) {
	p := newStore(t)
	p.Write(0x1000, line(0x11))
	p.TamperSpoof(0x1000, line(0xEE))
	_, err := p.Read(0x1000)
	if !errors.Is(err, ErrTampered) {
		t.Errorf("spoofing not detected: %v", err)
	}
}

func TestSplicingDetected(t *testing.T) {
	// Both lines hold valid (ciphertext, MAC) pairs; swapping them must
	// still fail because the MAC binds the address.
	p := newStore(t)
	p.Write(0x1000, line(0x11))
	p.Write(0x2000, line(0x22))
	p.TamperSplice(0x1000, 0x2000)
	if _, err := p.Read(0x1000); !errors.Is(err, ErrTampered) {
		t.Errorf("splice at 0x1000 not detected: %v", err)
	}
	if _, err := p.Read(0x2000); !errors.Is(err, ErrTampered) {
		t.Errorf("splice at 0x2000 not detected: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	// Snapshot an old balance, let the program overwrite it, replay the
	// snapshot: the sequence-number binding must reject it.
	p := newStore(t)
	p.Write(0x1000, line(100)) // balance = 100
	oldCT, oldMAC := p.Snapshot(0x1000)
	p.Write(0x1000, line(5)) // balance = 5
	p.TamperReplay(0x1000, oldCT, oldMAC)
	if _, err := p.Read(0x1000); !errors.Is(err, ErrTampered) {
		t.Errorf("replay not detected: %v", err)
	}
}

func TestReplayWithoutSeqWouldPass(t *testing.T) {
	// Demonstrate *why* the sequence number matters: the replayed pair
	// verifies under its original sequence number.
	p := newStore(t)
	p.Write(0x1000, line(100))
	oldCT, oldMAC := p.Snapshot(0x1000)
	v, _ := NewVerifier([]byte("chip-internal-key"), 128)
	if err := v.Check(0x1000, 1, oldCT, oldMAC); err != nil {
		t.Errorf("stale pair should verify under its stale seq: %v", err)
	}
}

func TestLegitimateRewritesKeepVerifying(t *testing.T) {
	p := newStore(t)
	for i := 0; i < 10; i++ {
		if err := p.Write(0x3000, line(byte(i))); err != nil {
			t.Fatal(err)
		}
		got, err := p.Read(0x3000)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("iteration %d: wrong data", i)
		}
	}
}

// TestMACBindsEverything: flipping any single input bit (data, address or
// seq) changes the MAC.
func TestMACBindsEverything(t *testing.T) {
	v, _ := NewVerifier([]byte("k2"), 128)
	base, _ := v.MAC(0x1000, 7, line(0x33))
	d := line(0x33)
	d[64] ^= 1
	m1, _ := v.MAC(0x1000, 7, d)
	m2, _ := v.MAC(0x1080, 7, line(0x33))
	m3, _ := v.MAC(0x1000, 8, line(0x33))
	for i, m := range [][MACSize]byte{m1, m2, m3} {
		if m == base {
			t.Errorf("variant %d did not change the MAC", i)
		}
	}
}

// TestRandomTamperAlwaysDetected is a property test: any random byte flip
// in a stored line is caught.
func TestRandomTamperAlwaysDetected(t *testing.T) {
	p := newStore(t)
	p.Write(0x4000, line(0x5A))
	f := func(pos uint8, flip byte) bool {
		if flip == 0 {
			flip = 1
		}
		ct, _ := p.Snapshot(0x4000)
		ct[int(pos)%128] ^= flip
		p.TamperSpoof(0x4000, ct)
		_, err := p.Read(0x4000)
		// Restore for the next iteration.
		orig := line(0x5A)
		p.TamperSpoof(0x4000, orig)
		return errors.Is(err, ErrTampered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
