package integrity

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newTree(t *testing.T, leaves int) *HashTree {
	t.Helper()
	tr, err := NewHashTree([]byte("root-key"), 128, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHashTreeConstruction(t *testing.T) {
	tr := newTree(t, 5) // rounds up to 8
	if tr.Leaves() != 8 {
		t.Errorf("leaves = %d, want 8", tr.Leaves())
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
	if len(tr.Root()) == 0 {
		t.Error("empty root")
	}
	if _, err := NewHashTree(nil, 0, 4); err == nil {
		t.Error("zero line size accepted")
	}
	if _, err := NewHashTree(nil, 128, 0); err == nil {
		t.Error("zero leaves accepted")
	}
}

func TestVerifyFreshTree(t *testing.T) {
	tr := newTree(t, 8)
	zero := make([]byte, 128)
	for i := 0; i < 8; i++ {
		proof, err := tr.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Verify(i, zero, proof); err != nil {
			t.Errorf("leaf %d: %v", i, err)
		}
	}
}

func TestUpdateChangesRoot(t *testing.T) {
	tr := newTree(t, 8)
	before := tr.Root()
	if err := tr.Update(3, bytes.Repeat([]byte{9}, 128)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, tr.Root()) {
		t.Error("root unchanged after update")
	}
	// The updated leaf verifies with a fresh proof.
	proof, _ := tr.Proof(3)
	if err := tr.Verify(3, bytes.Repeat([]byte{9}, 128), proof); err != nil {
		t.Error(err)
	}
	// Other leaves still verify.
	proof0, _ := tr.Proof(0)
	if err := tr.Verify(0, make([]byte, 128), proof0); err != nil {
		t.Error(err)
	}
}

func TestVerifyDetectsWrongLine(t *testing.T) {
	tr := newTree(t, 8)
	proof, _ := tr.Proof(2)
	bad := bytes.Repeat([]byte{0xFF}, 128)
	if err := tr.Verify(2, bad, proof); !errors.Is(err, ErrTampered) {
		t.Errorf("wrong line accepted: %v", err)
	}
}

func TestVerifyDetectsForgedProof(t *testing.T) {
	tr := newTree(t, 8)
	tr.Update(1, bytes.Repeat([]byte{7}, 128))
	proof, _ := tr.Proof(1)
	proof[1][0] ^= 1
	if err := tr.Verify(1, bytes.Repeat([]byte{7}, 128), proof); !errors.Is(err, ErrTampered) {
		t.Errorf("forged proof accepted: %v", err)
	}
}

func TestVerifyDetectsLeafSwap(t *testing.T) {
	// The index-bound leaf hash prevents presenting leaf A's data at leaf
	// B's position even with B's valid proof.
	tr := newTree(t, 8)
	a := bytes.Repeat([]byte{1}, 128)
	b := bytes.Repeat([]byte{2}, 128)
	tr.Update(0, a)
	tr.Update(1, b)
	proof1, _ := tr.Proof(1)
	if err := tr.Verify(1, a, proof1); !errors.Is(err, ErrTampered) {
		t.Errorf("spliced leaf accepted: %v", err)
	}
}

func TestVerifyErrors(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.Verify(99, nil, nil); err == nil {
		t.Error("out-of-range leaf accepted")
	}
	if err := tr.Verify(0, make([]byte, 128), [][]byte{{1}}); err == nil {
		t.Error("short proof accepted")
	}
	if err := tr.Update(99, make([]byte, 128)); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := tr.Update(0, make([]byte, 4)); err == nil {
		t.Error("short line accepted")
	}
	if _, err := tr.Proof(-1); err == nil {
		t.Error("negative index accepted")
	}
}

// TestRandomizedUpdateVerify exercises interleaved updates/verifies on a
// larger tree against a reference model.
func TestRandomizedUpdateVerify(t *testing.T) {
	tr := newTree(t, 64)
	rng := rand.New(rand.NewSource(4))
	model := make(map[int][]byte)
	for i := 0; i < 200; i++ {
		leaf := rng.Intn(64)
		if rng.Intn(2) == 0 {
			line := make([]byte, 128)
			rng.Read(line)
			if err := tr.Update(leaf, line); err != nil {
				t.Fatal(err)
			}
			model[leaf] = line
		} else {
			want, ok := model[leaf]
			if !ok {
				want = make([]byte, 128)
			}
			proof, err := tr.Proof(leaf)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Verify(leaf, want, proof); err != nil {
				t.Fatalf("leaf %d should verify: %v", leaf, err)
			}
		}
	}
}

func TestCachedVerifierSavesHashes(t *testing.T) {
	tr := newTree(t, 64)
	cv := NewCachedVerifier(tr, 128)
	zero := make([]byte, 128)
	proof, _ := tr.Proof(5)
	if err := cv.Verify(5, zero, proof); err != nil {
		t.Fatal(err)
	}
	first := cv.HashesComputed
	// Second verification of the same leaf hits the cached path
	// immediately.
	if err := cv.Verify(5, zero, proof); err != nil {
		t.Fatal(err)
	}
	if cv.HashesSaved == 0 {
		t.Error("no hashes saved on repeat verification")
	}
	if cv.HashesComputed-first >= uint64(tr.Depth()) {
		t.Errorf("repeat verification recomputed the full path (%d new hashes)", cv.HashesComputed-first)
	}
}

func TestCachedVerifierDetectsTamper(t *testing.T) {
	tr := newTree(t, 16)
	cv := NewCachedVerifier(tr, 64)
	zero := make([]byte, 128)
	proof, _ := tr.Proof(3)
	if err := cv.Verify(3, zero, proof); err != nil {
		t.Fatal(err)
	}
	// Tampered line against a cached ancestor.
	if err := cv.Verify(3, bytes.Repeat([]byte{1}, 128), proof); !errors.Is(err, ErrTampered) {
		t.Errorf("cached verifier accepted tampered line: %v", err)
	}
}

func TestCachedVerifierInvalidate(t *testing.T) {
	tr := newTree(t, 16)
	cv := NewCachedVerifier(tr, 64)
	zero := make([]byte, 128)
	proof, _ := tr.Proof(7)
	if err := cv.Verify(7, zero, proof); err != nil {
		t.Fatal(err)
	}
	// Update the leaf; cached trust must be dropped before re-verifying.
	line := bytes.Repeat([]byte{3}, 128)
	tr.Update(7, line)
	cv.Invalidate(7)
	proof2, _ := tr.Proof(7)
	if err := cv.Verify(7, line, proof2); err != nil {
		t.Errorf("post-update verification failed: %v", err)
	}
}

func TestCachedVerifierCapacity(t *testing.T) {
	tr := newTree(t, 64)
	cv := NewCachedVerifier(tr, 2) // tiny cache forces evictions
	zero := make([]byte, 128)
	for leaf := 0; leaf < 64; leaf += 8 {
		proof, _ := tr.Proof(leaf)
		if err := cv.Verify(leaf, zero, proof); err != nil {
			t.Fatalf("leaf %d: %v", leaf, err)
		}
	}
	if len(cv.cache) > 2 {
		t.Errorf("cache grew past capacity: %d", len(cv.cache))
	}
}
