package xom

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"secureproc/internal/isa"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newRand(seed int64) detRand { return detRand{rand.New(rand.NewSource(seed))} }

const helloSrc = `
	li   s0, msg
loop:
	lbu  a0, 0(s0)
	beq  a0, r0, done
	li   r1, 1
	sys  r1
	addi s0, s0, 1
	jal  r0, loop
done:
	li   a0, 0
	li   r1, 0
	sys  r1
msg:
	.asciiz "secure!"
`

func buildPackage(t *testing.T, proc *Processor, src string) *Package {
	t.Helper()
	const base = 0x10000
	bin, _, err := isa.Assemble(src, base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ks := []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}
	pkg, err := VendorEncrypt(bin, base, base, ks, proc.PublicKey(), newRand(5))
	if err != nil {
		t.Fatalf("vendor encrypt: %v", err)
	}
	return pkg
}

func TestEndToEndProtectedExecution(t *testing.T) {
	proc, err := NewProcessor(newRand(1))
	if err != nil {
		t.Fatal(err)
	}
	pkg := buildPackage(t, proc, helloSrc)

	// The ciphertext image must not contain the plaintext string.
	if bytes.Contains(pkg.Image, []byte("secure!")) {
		t.Fatal("vendor image leaks plaintext")
	}

	ctx, err := proc.Load(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var console bytes.Buffer
	ctx.CPU.Console = &console
	if err := ctx.CPU.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if console.String() != "secure!" {
		t.Errorf("console = %q", console.String())
	}
	// External memory holds only ciphertext.
	raw, err := ctx.RawMemoryLine(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("secure")) {
		t.Error("external memory line contains plaintext")
	}
}

func TestPackageOnlyRunsOnTargetProcessor(t *testing.T) {
	procA, err := NewProcessor(newRand(2))
	if err != nil {
		t.Fatal(err)
	}
	procB, err := NewProcessor(newRand(3))
	if err != nil {
		t.Fatal(err)
	}
	pkg := buildPackage(t, procA, helloSrc)
	// Loading on the wrong processor must fail (or decrypt garbage): the
	// anti-piracy property.
	if ctx, err := procB.Load(pkg); err == nil {
		// RSA padding usually rejects; if not, execution must trap on
		// garbage instructions.
		runErr := ctx.CPU.Run(10_000)
		if runErr == nil && ctx.CPU.ExitCode == 0 {
			t.Error("package ran successfully on a non-target processor")
		}
	}
}

func TestStoreReEncryptsWithFreshPad(t *testing.T) {
	proc, err := NewProcessor(newRand(4))
	if err != nil {
		t.Fatal(err)
	}
	// Program writes 0 to a data word twice with a flush in between.
	src := `
	li  s0, 0x20000
	sw  r0, 0(s0)
	halt
	`
	pkg := buildPackage(t, proc, src)
	ctx, err := proc.Load(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := ctx.FlushCaches(); err != nil {
		t.Fatal(err)
	}
	ct1, _ := ctx.RawMemoryLine(0x20000)
	// Store the same value again; flush; ciphertext must differ (fresh
	// sequence number).
	if err := ctx.Store32(0x20000, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.FlushCaches(); err != nil {
		t.Fatal(err)
	}
	ct2, _ := ctx.RawMemoryLine(0x20000)
	if bytes.Equal(ct1, ct2) {
		t.Error("rewriting the same value produced identical ciphertext (pad not mutating)")
	}
	// And the plaintext view is still 0.
	v, err := ctx.Load32(0x20000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("value = %d, want 0", v)
	}
}

func TestRegisterFileTagging(t *testing.T) {
	m := NewManager()
	a := m.Enter([]byte("keyA-keyA"))
	b := m.Enter([]byte("keyB-keyB"))
	rf := &RegisterFile{}
	rf.Write(a, 5, 1234)
	if v, err := rf.Read(a, 5); err != nil || v != 1234 {
		t.Fatalf("owner read: %d, %v", v, err)
	}
	if _, err := rf.Read(b, 5); err == nil {
		t.Error("cross-compartment register read must fault")
	}
	var viol ErrCompartmentViolation
	_, err := rf.Read(b, 5)
	if e, ok := err.(ErrCompartmentViolation); ok {
		viol = e
	} else {
		t.Fatalf("wrong error type: %v", err)
	}
	if viol.Accessor != b || viol.Owner != a || viol.Reg != 5 {
		t.Errorf("violation details: %+v", viol)
	}
	if !strings.Contains(viol.Error(), "compartment") {
		t.Error("error message")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	m := NewManager()
	id := m.Enter([]byte("program-key"))
	rf := &RegisterFile{}
	for r := 0; r < 32; r++ {
		rf.Write(id, r, uint32(r*r+7))
	}
	sealed, err := m.SealRegisters(id, rf)
	if err != nil {
		t.Fatal(err)
	}
	// After sealing, the OS owns the physical registers.
	if rf.Owner(5) != OSCompartment {
		t.Error("registers not scrubbed after seal")
	}
	if err := m.UnsealRegisters(sealed, rf); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		v, err := rf.Read(id, r)
		if err != nil || v != uint32(r*r+7) {
			t.Fatalf("r%d = %d, %v", r, v, err)
		}
	}
}

func TestSealedRegsMutate(t *testing.T) {
	// Two saves of identical register state must differ (the paper's
	// mutating-seed requirement for interrupt saves).
	m := NewManager()
	id := m.Enter([]byte("program-key"))
	rf := &RegisterFile{}
	rf.Write(id, 1, 42)
	s1, err := m.SealRegisters(id, rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UnsealRegisters(s1, rf); err != nil {
		t.Fatal(err)
	}
	s2, err := m.SealRegisters(id, rf)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cipher == s2.Cipher {
		t.Error("identical ciphertexts across interrupt saves")
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	m := NewManager()
	id := m.Enter([]byte("program-key"))
	rf := &RegisterFile{}
	rf.Write(id, 1, 42)
	sealed, err := m.SealRegisters(id, rf)
	if err != nil {
		t.Fatal(err)
	}
	bad := sealed
	bad.Cipher[1] ^= 1
	if err := m.UnsealRegisters(bad, rf); err == nil {
		t.Error("tampered register save accepted")
	}
}

func TestUnsealRejectsReplay(t *testing.T) {
	m := NewManager()
	id := m.Enter([]byte("program-key"))
	rf := &RegisterFile{}
	rf.Write(id, 1, 100) // balance := 100
	old, err := m.SealRegisters(id, rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UnsealRegisters(old, rf); err != nil {
		t.Fatal(err)
	}
	rf.Write(id, 1, 5) // balance := 5
	if _, err := m.SealRegisters(id, rf); err != nil {
		t.Fatal(err)
	}
	// Malicious OS replays the old save (balance 100): must be rejected.
	if err := m.UnsealRegisters(old, rf); err == nil {
		t.Error("replayed register save accepted")
	}
}

func TestCompartmentLifecycle(t *testing.T) {
	m := NewManager()
	id := m.Enter([]byte("k"))
	if !m.Active(id) {
		t.Error("compartment should be active")
	}
	m.Exit(id)
	if m.Active(id) {
		t.Error("compartment should be gone")
	}
	rf := &RegisterFile{}
	if _, err := m.SealRegisters(id, rf); err == nil {
		t.Error("sealing for a dead compartment must fail")
	}
	if err := m.UnsealRegisters(SealedRegs{Compartment: id}, rf); err == nil {
		t.Error("unsealing for a dead compartment must fail")
	}
	if _, err := m.SealRegisters(OSCompartment, rf); err == nil {
		t.Error("the OS compartment has no key to seal with")
	}
}

func TestVendorEncryptValidation(t *testing.T) {
	proc, err := NewProcessor(newRand(7))
	if err != nil {
		t.Fatal(err)
	}
	ks := make([]byte, 8)
	if _, err := VendorEncrypt([]byte{1, 2, 3, 4}, 0x10001, 0, ks, proc.PublicKey(), newRand(8)); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := VendorEncrypt([]byte{1}, 0x10000, 0x10000, []byte{1, 2}, proc.PublicKey(), newRand(8)); err == nil {
		t.Error("bad DES key accepted")
	}
}
