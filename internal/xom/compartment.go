package xom

import (
	"encoding/binary"
	"fmt"

	"secureproc/internal/crypto/sha256"
)

// This file models XOM's internal protection for multi-tasking (paper
// Section 2.3): each active task runs in a "compartment" with its own ID
// and key; register values and cache lines are tagged with the owning
// compartment, so no program (including a hijacked OS, compartment 0) can
// read another's data. On interrupts the OS sees only encrypted register
// state, sealed with a mutating counter so identical register files never
// produce identical ciphertexts (the same counter-mode idea as the memory
// path).

// CompartmentID identifies a protection domain. ID 0 is the (untrusted)
// operating system, the "null compartment".
type CompartmentID uint16

// OSCompartment is the null compartment the OS runs in.
const OSCompartment CompartmentID = 0

// ErrCompartmentViolation is returned when a task touches data tagged for
// another compartment; the paper's hardware raises an exception and halts
// the offender.
type ErrCompartmentViolation struct {
	Accessor, Owner CompartmentID
	Reg             int
}

func (e ErrCompartmentViolation) Error() string {
	return fmt.Sprintf("xom: compartment %d accessed register r%d owned by compartment %d",
		e.Accessor, e.Reg, e.Owner)
}

// taggedReg is a register value with its ownership tag.
type taggedReg struct {
	value uint32
	owner CompartmentID
}

// RegisterFile is the tagged architectural register file shared by all
// compartments (the hardware has one physical file; tags enforce
// isolation).
type RegisterFile struct {
	regs [32]taggedReg
}

// Write stores v into register r on behalf of compartment id, claiming the
// tag.
func (rf *RegisterFile) Write(id CompartmentID, r int, v uint32) {
	rf.regs[r] = taggedReg{value: v, owner: id}
}

// Read returns register r for compartment id, faulting if the tag belongs
// to a different compartment (reading your own or untagged-zero registers
// is fine).
func (rf *RegisterFile) Read(id CompartmentID, r int) (uint32, error) {
	tr := rf.regs[r]
	if tr.owner != id && tr.owner != OSCompartment {
		return 0, ErrCompartmentViolation{Accessor: id, Owner: tr.owner, Reg: r}
	}
	if tr.owner != id {
		// Untouched (OS-tagged zero) registers read as zero for tasks.
		return tr.value, nil
	}
	return tr.value, nil
}

// Owner returns the compartment tag of register r.
func (rf *RegisterFile) Owner(r int) CompartmentID { return rf.regs[r].owner }

// SealedRegs is the encrypted register state the OS holds across an
// interrupt: ciphertext plus a MAC binding it to the compartment and the
// save counter (so replaying an old save is detected).
type SealedRegs struct {
	Compartment CompartmentID
	Counter     uint64
	Cipher      [32]uint32
	MAC         [32]byte
}

// Manager tracks active compartments and their session keys.
type Manager struct {
	next CompartmentID
	keys map[CompartmentID][]byte
	ctr  map[CompartmentID]uint64
}

// NewManager creates a compartment manager; compartment 0 (the OS) always
// exists.
func NewManager() *Manager {
	return &Manager{
		next: 1,
		keys: map[CompartmentID][]byte{OSCompartment: nil},
		ctr:  map[CompartmentID]uint64{},
	}
}

// Enter creates a new compartment around a program key (the paper's
// "enter XOM mode" instruction): the hardware derives the session secrets
// from the unwrapped program key.
func (m *Manager) Enter(programKey []byte) CompartmentID {
	id := m.next
	m.next++
	key := append([]byte(nil), programKey...)
	m.keys[id] = key
	return id
}

// Exit destroys a compartment and its key material.
func (m *Manager) Exit(id CompartmentID) {
	delete(m.keys, id)
	delete(m.ctr, id)
}

// Active reports whether id exists.
func (m *Manager) Active(id CompartmentID) bool {
	_, ok := m.keys[id]
	return ok
}

// padWord derives the keystream word for register r at counter c — the
// mutating-seed construction of Section 3.4 applied to the register-save
// path ("a mutating value for varying the XOM ID is employed for
// encrypting register values on each interrupt event").
func padWord(key []byte, id CompartmentID, ctr uint64, r int) uint32 {
	var seed [16]byte
	binary.LittleEndian.PutUint16(seed[0:], uint16(id))
	binary.LittleEndian.PutUint64(seed[2:], ctr)
	binary.LittleEndian.PutUint32(seed[10:], uint32(r))
	h := sha256.HMAC(key, seed[:])
	return binary.LittleEndian.Uint32(h[:4])
}

// SealRegisters encrypts the register file slice owned by id for delivery
// to the OS on an interrupt. Each save uses a fresh counter: saving the
// same registers twice yields different ciphertexts.
func (m *Manager) SealRegisters(id CompartmentID, rf *RegisterFile) (SealedRegs, error) {
	key, ok := m.keys[id]
	if !ok || id == OSCompartment {
		return SealedRegs{}, fmt.Errorf("xom: cannot seal for compartment %d", id)
	}
	m.ctr[id]++
	ctr := m.ctr[id]
	out := SealedRegs{Compartment: id, Counter: ctr}
	var macInput [32*4 + 10]byte
	for r := 0; r < 32; r++ {
		v := rf.regs[r].value
		out.Cipher[r] = v ^ padWord(key, id, ctr, r)
		binary.LittleEndian.PutUint32(macInput[4*r:], out.Cipher[r])
	}
	binary.LittleEndian.PutUint16(macInput[128:], uint16(id))
	binary.LittleEndian.PutUint64(macInput[130:], ctr)
	out.MAC = sha256.HMAC(key, macInput[:])
	// The OS now owns the physical registers.
	for r := 0; r < 32; r++ {
		rf.regs[r] = taggedReg{owner: OSCompartment}
	}
	return out, nil
}

// UnsealRegisters verifies and restores a sealed register save. It rejects
// tampered ciphertexts, MACs from other compartments, and replays of stale
// counters.
func (m *Manager) UnsealRegisters(sealed SealedRegs, rf *RegisterFile) error {
	key, ok := m.keys[sealed.Compartment]
	if !ok || sealed.Compartment == OSCompartment {
		return fmt.Errorf("xom: no such compartment %d", sealed.Compartment)
	}
	var macInput [32*4 + 10]byte
	for r := 0; r < 32; r++ {
		binary.LittleEndian.PutUint32(macInput[4*r:], sealed.Cipher[r])
	}
	binary.LittleEndian.PutUint16(macInput[128:], uint16(sealed.Compartment))
	binary.LittleEndian.PutUint64(macInput[130:], sealed.Counter)
	want := sha256.HMAC(key, macInput[:])
	if want != sealed.MAC {
		return fmt.Errorf("xom: register save MAC mismatch (tampered or spliced)")
	}
	if sealed.Counter != m.ctr[sealed.Compartment] {
		return fmt.Errorf("xom: register save replay detected (counter %d, expected %d)",
			sealed.Counter, m.ctr[sealed.Compartment])
	}
	for r := 0; r < 32; r++ {
		rf.regs[r] = taggedReg{
			value: sealed.Cipher[r] ^ padWord(key, sealed.Compartment, sealed.Counter, r),
			owner: sealed.Compartment,
		}
	}
	return nil
}
