// Package xom implements the XOM-style execution environment around the
// functional secure memory: vendor-side program packaging (Section 2.1),
// processor-side key unwrapping and loading, the decrypting fetch path for
// the SSA-32 interpreter, and the compartment model for multi-tasking
// (Section 2.3).
package xom

import (
	"errors"
	"fmt"
	"io"

	"secureproc/internal/core"
	"secureproc/internal/crypto/des"
	"secureproc/internal/crypto/rsa"
	"secureproc/internal/isa"
	"secureproc/internal/mem"
)

// Package is what a vendor ships: the program encrypted under a symmetric
// key, and that key wrapped under the target processor's public key. Only
// the processor holding the private key can recover the symmetric key —
// the software cannot run anywhere else (the paper's anti-piracy property).
type Package struct {
	// Entry is the program entry point (virtual address).
	Entry uint32
	// Base is the load address the vendor encrypted against (Section
	// 3.4.1: instruction seeds are virtual addresses, so the image is
	// position-dependent).
	Base uint32
	// Image is the OTP-encrypted program text+data.
	Image []byte
	// WrappedKey is E_Kp(Ks): the DES program key under the CPU's RSA
	// public key.
	WrappedKey []byte
}

// LineBytes is the protected-memory line size used by the loader.
const LineBytes = 128

// VendorEncrypt packages an assembled binary for one target processor:
// generate the pad stream exactly as the processor will (seed = virtual
// address, sequence number 0) and wrap the program key.
func VendorEncrypt(binary []byte, base, entry uint32, programKey []byte, cpuPub *rsa.PublicKey, rand io.Reader) (*Package, error) {
	if base%LineBytes != 0 {
		return nil, fmt.Errorf("xom: load base %#x not line aligned", base)
	}
	// Pad to whole lines.
	img := append([]byte(nil), binary...)
	for len(img)%LineBytes != 0 {
		img = append(img, 0)
	}
	cipher, err := des.NewCipher(programKey)
	if err != nil {
		return nil, err
	}
	// The vendor uses the same pad construction as the chip: reuse
	// SecureMemory against a scratch image to produce the ciphertext.
	scratch := mem.NewMemory()
	sm, err := core.NewSecureMemory(scratch, cipher, LineBytes)
	if err != nil {
		return nil, err
	}
	if err := sm.InstallOTPImage(uint64(base), img); err != nil {
		return nil, err
	}
	ct := make([]byte, len(img))
	scratch.Read(uint64(base), ct)

	wrapped, err := cpuPub.Encrypt(rand, programKey)
	if err != nil {
		return nil, fmt.Errorf("xom: wrapping program key: %w", err)
	}
	return &Package{Entry: entry, Base: base, Image: ct, WrappedKey: wrapped}, nil
}

// Processor is the trusted chip: it holds the RSA private key and executes
// protected packages. Everything outside it (the Memory field) is
// adversary-visible ciphertext.
type Processor struct {
	priv *rsa.PrivateKey
	// Memory is the external DRAM image (ciphertext); exported so demos
	// can show the adversary's view.
	Memory *mem.Memory
}

// NewProcessor mints a processor with a fresh key pair burned in.
func NewProcessor(rand io.Reader) (*Processor, error) {
	priv, err := rsa.GenerateKey(rand, 512)
	if err != nil {
		return nil, err
	}
	return &Processor{priv: priv, Memory: mem.NewMemory()}, nil
}

// PublicKey returns the processor's public key (printed on the box; vendors
// encrypt against it).
func (p *Processor) PublicKey() *rsa.PublicKey { return &p.priv.PublicKey }

// Load unwraps the program key, installs the ciphertext image in external
// memory, and returns a running context. The image bytes are stored
// verbatim — decryption happens at fetch time inside the chip.
func (p *Processor) Load(pkg *Package) (*Context, error) {
	ks, err := p.priv.Decrypt(pkg.WrappedKey)
	if err != nil {
		return nil, fmt.Errorf("xom: cannot unwrap program key (wrong processor?): %w", err)
	}
	cipher, err := des.NewCipher(ks)
	if err != nil {
		return nil, fmt.Errorf("xom: unwrapped key invalid: %w", err)
	}
	sm, err := core.NewSecureMemory(p.Memory, cipher, LineBytes)
	if err != nil {
		return nil, err
	}
	// Adopt the vendor ciphertext: write it raw and mark the lines as
	// OTP-mode with sequence number 0 (the vendor's convention).
	p.Memory.Write(uint64(pkg.Base), pkg.Image)
	if err := adoptOTPLines(sm, uint64(pkg.Base), len(pkg.Image)); err != nil {
		return nil, err
	}
	ctx := &Context{
		sm:    sm,
		cache: make(map[uint64][]byte),
	}
	ctx.CPU = isa.NewCPU(ctx, pkg.Entry)
	return ctx, nil
}

// adoptOTPLines marks pre-written ciphertext lines as OTP seq-0 without
// re-encrypting them.
func adoptOTPLines(sm *core.SecureMemory, base uint64, n int) error {
	for off := 0; off < n; off += LineBytes {
		if err := sm.AdoptOTPLine(base + uint64(off)); err != nil {
			return err
		}
	}
	return nil
}

// Context is one protected program mid-execution: an SSA-32 interpreter
// whose memory bus decrypts through the secure memory. It caches decrypted
// lines, standing in for the on-chip caches (plaintext inside the security
// boundary, paper Section 2.2).
type Context struct {
	// CPU is the interpreter; callers drive it via Run/Step.
	CPU *isa.CPU

	sm    *core.SecureMemory
	cache map[uint64][]byte // decrypted lines (the "on-chip" plaintext)
	dirty map[uint64]bool
}

var errNilContext = errors.New("xom: nil context")

func (c *Context) line(addr uint32) ([]byte, uint64, error) {
	if c == nil {
		return nil, 0, errNilContext
	}
	lineVA := uint64(addr) &^ (LineBytes - 1)
	if l, ok := c.cache[lineVA]; ok {
		return l, lineVA, nil
	}
	l, err := c.sm.ReadLine(lineVA)
	if err != nil {
		return nil, 0, err
	}
	c.cache[lineVA] = l
	return l, lineVA, nil
}

func (c *Context) markDirty(lineVA uint64) {
	if c.dirty == nil {
		c.dirty = make(map[uint64]bool)
	}
	c.dirty[lineVA] = true
}

// Fetch32 implements isa.Bus: instruction fetch through the decrypting
// path.
func (c *Context) Fetch32(addr uint32) (uint32, error) { return c.Load32(addr) }

// Load32 implements isa.Bus.
func (c *Context) Load32(addr uint32) (uint32, error) {
	l, lineVA, err := c.line(addr)
	if err != nil {
		return 0, err
	}
	o := addr - uint32(lineVA)
	if int(o)+4 > LineBytes {
		// Unaligned across lines: byte-compose.
		var v uint32
		for i := uint32(0); i < 4; i++ {
			b, err := c.Load8(addr + i)
			if err != nil {
				return 0, err
			}
			v |= uint32(b) << (8 * i)
		}
		return v, nil
	}
	return uint32(l[o]) | uint32(l[o+1])<<8 | uint32(l[o+2])<<16 | uint32(l[o+3])<<24, nil
}

// Load8 implements isa.Bus.
func (c *Context) Load8(addr uint32) (byte, error) {
	l, lineVA, err := c.line(addr)
	if err != nil {
		return 0, err
	}
	return l[addr-uint32(lineVA)], nil
}

// Store32 implements isa.Bus.
func (c *Context) Store32(addr uint32, v uint32) error {
	for i := uint32(0); i < 4; i++ {
		if err := c.Store8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Store8 implements isa.Bus.
func (c *Context) Store8(addr uint32, v byte) error {
	l, lineVA, err := c.line(addr)
	if err != nil {
		return err
	}
	l[addr-uint32(lineVA)] = v
	c.markDirty(lineVA)
	return nil
}

// FlushCaches writes every dirty cached line back to external memory with a
// fresh one-time pad (sequence number increment), then drops the cache —
// what the hardware does on evictions and context switches.
func (c *Context) FlushCaches() error {
	for lineVA := range c.dirty {
		if err := c.sm.WriteLineOTP(lineVA, c.cache[lineVA]); err != nil {
			return err
		}
	}
	c.cache = make(map[uint64][]byte)
	c.dirty = nil
	return nil
}

// RawMemoryLine exposes the adversary's view of one external line.
func (c *Context) RawMemoryLine(lineVA uint64) ([]byte, error) {
	return c.sm.RawLine(lineVA)
}
