package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultDRAMConfig(t *testing.T) {
	cfg := DefaultDRAMConfig()
	if cfg.AccessLatency != 100 || cfg.BusCyclesPerLine != 8 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	if err := (DRAMConfig{}).Validate(); err == nil {
		t.Error("zero config should be invalid")
	}
	if err := (DRAMConfig{AccessLatency: 100}).Validate(); err == nil {
		t.Error("zero bus cycles should be invalid")
	}
}

func TestBusReadLatency(t *testing.T) {
	b := NewBus(DefaultDRAMConfig())
	if done := b.Read(0, SrcLineFill); done != 108 {
		t.Errorf("Read(0) = %d, want 108 (100 latency + 8 transfer)", done)
	}
	if b.Transactions[SrcLineFill] != 1 {
		t.Error("line fill not counted")
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus(DefaultDRAMConfig())
	d1 := b.Read(0, SrcLineFill)   // bus 0..8
	d2 := b.Read(0, SrcLineFill)   // bus 8..16
	d3 := b.Write(0, SrcWriteback) // waits for in-progress reads, then 8 cycles
	if d1 != 108 || d2 != 116 || d3 != 24 {
		t.Errorf("got %d,%d,%d want 108,116,24", d1, d2, d3)
	}
	// A later demand read is NOT delayed by the deferred write (writes
	// steal idle cycles rather than reserving slots).
	if d4 := b.Read(16, SrcLineFill); d4 != 16+108 {
		t.Errorf("read after write = %d, want 124", d4)
	}
	if b.BusyCycles != 32 {
		t.Errorf("BusyCycles = %d, want 32 (3 transfers + trailing read)", b.BusyCycles)
	}
}

func TestBusWritesSerialize(t *testing.T) {
	// Two writebacks issued at the same cycle occupy the single bus one
	// after the other; they must not overlap for free.
	b := NewBus(DefaultDRAMConfig())
	d1 := b.Write(0, SrcWriteback)
	d2 := b.Write(0, SrcWriteback)
	d3 := b.Write(0, SrcSeqNumSpill)
	if d1 != 8 || d2 != 16 || d3 != 24 {
		t.Errorf("write burst = %d,%d,%d want 8,16,24", d1, d2, d3)
	}
	// Writes still do not reserve the bus against future demand reads.
	if d4 := b.Read(0, SrcLineFill); d4 != 108 {
		t.Errorf("read alongside write burst = %d, want 108", d4)
	}
	// But a write issued later still queues behind the earlier writes.
	if d5 := b.Write(10, SrcWriteback); d5 != 32 {
		t.Errorf("late write = %d, want 32 (queued behind the burst)", d5)
	}
}

func TestBusTrafficAccounting(t *testing.T) {
	b := NewBus(DefaultDRAMConfig())
	b.Read(0, SrcLineFill)
	b.Write(0, SrcWriteback)
	b.Read(0, SrcSeqNumFetch)
	b.Write(0, SrcSeqNumSpill)
	if b.TotalTransactions() != 4 {
		t.Errorf("total = %d", b.TotalTransactions())
	}
	if b.DemandTransactions() != 2 {
		t.Errorf("demand = %d", b.DemandTransactions())
	}
	if b.SNCTransactions() != 2 {
		t.Errorf("snc = %d", b.SNCTransactions())
	}
	b.ResetStats()
	if b.TotalTransactions() != 0 || b.BusyCycles != 0 {
		t.Error("ResetStats failed")
	}
}

func TestTrafficSourceString(t *testing.T) {
	names := map[TrafficSource]string{
		SrcLineFill:       "linefill",
		SrcWriteback:      "writeback",
		SrcSeqNumFetch:    "seqnum-fetch",
		SrcSeqNumSpill:    "seqnum-spill",
		TrafficSource(99): "unknown",
	}
	for src, want := range names {
		if got := src.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", src, got, want)
		}
	}
}

func TestWriteBufferNoStallWhenEmpty(t *testing.T) {
	b := NewBus(DefaultDRAMConfig())
	w := NewWriteBuffer(4)
	free := w.Insert(10, 10, func(start uint64) uint64 { return b.Write(start, SrcWriteback) })
	if free != 10 {
		t.Errorf("cpuFree = %d, want 10 (no stall)", free)
	}
	if w.Inserted != 1 {
		t.Error("insert not counted")
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	// Drains take 1000 cycles each; depth 2. The third insert at t=0 must
	// wait for the first drain.
	w := NewWriteBuffer(2)
	slow := func(start uint64) uint64 { return start + 1000 }
	w.Insert(0, 0, slow) // drains at 1000
	w.Insert(0, 0, slow) // drains at 2000 (sequenced by caller's bus; here both 1000)
	free := w.Insert(0, 0, slow)
	if free != 1000 {
		t.Errorf("cpuFree = %d, want 1000", free)
	}
	if w.FullStalls != 1 {
		t.Errorf("FullStalls = %d, want 1", w.FullStalls)
	}
}

func TestWriteBufferRetiresDrained(t *testing.T) {
	w := NewWriteBuffer(1)
	fast := func(start uint64) uint64 { return start + 5 }
	w.Insert(0, 0, fast) // drains at 5
	// At t=100 the previous entry has drained; no stall.
	if free := w.Insert(100, 100, fast); free != 100 {
		t.Errorf("cpuFree = %d, want 100", free)
	}
	if w.FullStalls != 0 {
		t.Error("unexpected stall")
	}
}

func TestWriteBufferOccupancy(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Insert(0, 0, func(start uint64) uint64 { return start + 50 })
	w.Insert(0, 0, func(start uint64) uint64 { return start + 70 })
	if got := w.Occupancy(60); got != 1 {
		t.Errorf("Occupancy(60) = %d, want 1", got)
	}
	if got := w.Occupancy(80); got != 0 {
		t.Errorf("Occupancy(80) = %d, want 0", got)
	}
	if w.Depth() != 4 {
		t.Error("Depth mismatch")
	}
}

func TestWriteBufferInvalidDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for depth 0")
		}
	}()
	NewWriteBuffer(0)
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("the quick brown fox")
	m.Write(0x1000, data)
	got := make([]byte, len(data))
	m.Read(0x1000, got)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: %q != %q", got, data)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.Write(4096-100, data) // spans 3 pages
	got := make([]byte, len(data))
	m.Read(4096-100, got)
	if !bytes.Equal(got, data) {
		t.Error("cross-page round trip failed")
	}
	if m.PagesAllocated() != 3 {
		t.Errorf("pages = %d, want 3", m.PagesAllocated())
	}
}

func TestMemoryUnwrittenReadsZero(t *testing.T) {
	m := NewMemory()
	got := make([]byte, 16)
	for i := range got {
		got[i] = 0xFF
	}
	m.Read(0x99999000, got)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if m.PagesAllocated() != 0 {
		t.Error("read must not allocate pages")
	}
}

func TestMemoryWordAccessors(t *testing.T) {
	m := NewMemory()
	m.WriteU64(0x10, 0x1122334455667788)
	if got := m.ReadU64(0x10); got != 0x1122334455667788 {
		t.Errorf("ReadU64 = %#x", got)
	}
	m.WriteU32(0x20, 0xDEADBEEF)
	if got := m.ReadU32(0x20); got != 0xDEADBEEF {
		t.Errorf("ReadU32 = %#x", got)
	}
	// Little-endian layout check.
	var b [4]byte
	m.Read(0x20, b[:])
	if b[0] != 0xEF || b[3] != 0xDE {
		t.Errorf("not little-endian: % x", b)
	}
}

// TestMemoryQuickRoundTrip is a property test over random offsets/lengths,
// including page-boundary spans.
func TestMemoryQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory()
		type chunk struct {
			addr uint64
			data []byte
		}
		var chunks []chunk
		base := uint64(rng.Intn(1 << 20))
		for i := 0; i < 10; i++ {
			n := rng.Intn(5000) + 1
			d := make([]byte, n)
			rng.Read(d)
			// Non-overlapping ascending chunks.
			chunks = append(chunks, chunk{base, d})
			m.Write(base, d)
			base += uint64(n) + uint64(rng.Intn(100))
		}
		for _, c := range chunks {
			got := make([]byte, len(c.data))
			m.Read(c.addr, got)
			if !bytes.Equal(got, c.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
