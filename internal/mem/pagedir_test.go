package mem

import (
	"math/rand"
	"testing"
)

// TestPageDirectoryMatchesMapModel drives the two-level page-directory
// Memory and a plain map[addr]byte model through the same random write/read
// sequence and demands byte-identical contents — including reads of
// never-written (zero) memory, writes spanning page and chunk boundaries,
// and far-flung addresses that land in different directory chunks.
func TestPageDirectoryMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMemory()
	model := make(map[uint64]byte)

	// Address bases mix dense locality (one chunk), chunk-boundary
	// straddles, and sparse high addresses (distinct chunks).
	bases := []uint64{
		0x0,
		0x1000,
		1<<22 - 17, // straddles a 4MB chunk boundary
		3 << 22,
		0x7FFF_F000,
		0xDEAD_0000_0000,
		1<<52 + 12345,
	}
	for op := 0; op < 20000; op++ {
		addr := bases[rng.Intn(len(bases))] + uint64(rng.Intn(1<<14))
		n := 1 + rng.Intn(300) // spans page boundaries regularly
		if rng.Intn(2) == 0 {
			buf := make([]byte, n)
			rng.Read(buf)
			m.Write(addr, buf)
			for i, b := range buf {
				model[addr+uint64(i)] = b
			}
		} else {
			got := make([]byte, n)
			m.Read(addr, got)
			for i := range got {
				if want := model[addr+uint64(i)]; got[i] != want {
					t.Fatalf("op %d: Read(%#x)[%d] = %#x, want %#x", op, addr, i, got[i], want)
				}
			}
		}
	}

	// The directory must have materialized exactly the written pages.
	pages := make(map[uint64]bool)
	for a := range model {
		pages[a>>pageBits] = true
	}
	if got := m.PagesAllocated(); got != len(pages) {
		t.Errorf("PagesAllocated = %d, want %d", got, len(pages))
	}
}

// TestPageDirectoryWordHelpers locks the typed accessors across chunk
// boundaries and the last-page cache (read-after-write on alternating
// far-apart pages).
func TestPageDirectoryWordHelpers(t *testing.T) {
	m := NewMemory()
	a := uint64(1<<22 - 4) // U64 straddles the chunk boundary
	b := uint64(5 << 22)
	m.WriteU64(a, 0x1122334455667788)
	m.WriteU32(b, 0xCAFEBABE)
	for i := 0; i < 3; i++ { // alternate to exercise cache replacement
		if got := m.ReadU64(a); got != 0x1122334455667788 {
			t.Fatalf("ReadU64 = %#x", got)
		}
		if got := m.ReadU32(b); got != 0xCAFEBABE {
			t.Fatalf("ReadU32 = %#x", got)
		}
	}
}
