// Package mem models the off-chip memory system: a fixed-latency DRAM, a
// shared memory bus with contention, a write buffer, and a functional
// (byte-accurate) physical memory image.
//
// The paper assumes a typical 100-cycle memory access latency (Section 5)
// and a write buffer that "steals idle bus cycles efficiently" (Section 3.4)
// so that writes are off the critical path. Figure 9 measures the extra bus
// traffic induced by SNC replacements, so the bus tracks per-source
// transaction counts.
package mem

import (
	"fmt"
	"sort"

	"secureproc/internal/statehash"
)

// DRAMConfig describes main memory timing.
type DRAMConfig struct {
	// AccessLatency is the cycles from request issue to first data back
	// (the paper's 100).
	AccessLatency uint64
	// BusCyclesPerLine is how long one line transfer occupies the bus.
	BusCyclesPerLine uint64
}

// DefaultDRAMConfig is the paper's memory: 100-cycle latency; a 128-byte
// line at 16 bytes/cycle occupies the bus for 8 cycles.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{AccessLatency: 100, BusCyclesPerLine: 8}
}

// Validate reports configuration errors.
func (c DRAMConfig) Validate() error {
	if c.AccessLatency == 0 {
		return fmt.Errorf("mem: access latency must be positive")
	}
	if c.BusCyclesPerLine == 0 {
		return fmt.Errorf("mem: bus cycles per line must be positive")
	}
	return nil
}

// TrafficSource labels bus transactions for the Figure 9 accounting.
type TrafficSource int

const (
	// SrcLineFill is a demand line read from DRAM.
	SrcLineFill TrafficSource = iota
	// SrcWriteback is a dirty-line write to DRAM.
	SrcWriteback
	// SrcSeqNumFetch is an SNC-miss read of a sequence number from DRAM.
	SrcSeqNumFetch
	// SrcSeqNumSpill is an SNC replacement writing a sequence number out.
	SrcSeqNumSpill
	// SrcMACFetch is an integrity-scheme read of a line's MAC from the
	// off-chip MAC table.
	SrcMACFetch
	// SrcMACUpdate is an integrity-scheme write refreshing a line's MAC
	// after a writeback.
	SrcMACUpdate
	numSources
)

// String names the traffic source.
func (s TrafficSource) String() string {
	switch s {
	case SrcLineFill:
		return "linefill"
	case SrcWriteback:
		return "writeback"
	case SrcSeqNumFetch:
		return "seqnum-fetch"
	case SrcSeqNumSpill:
		return "seqnum-spill"
	case SrcMACFetch:
		return "mac-fetch"
	case SrcMACUpdate:
		return "mac-update"
	default:
		return "unknown"
	}
}

// Bus models a single shared memory bus. Demand reads reserve slots in
// request order; writebacks opportunistically use idle slots.
type Bus struct {
	cfg      DRAMConfig
	nextFree uint64
	// writeFree is when the last write transfer ends: writes serialize
	// against each other even though they never reserve the bus against
	// future reads.
	writeFree uint64
	// Transactions counts bus uses by source.
	Transactions [numSources]uint64
	// BusyCycles is total bus occupancy.
	BusyCycles uint64
}

// NewBus builds the bus model.
func NewBus(cfg DRAMConfig) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{cfg: cfg}
}

// Read performs a demand line read issued at `now`, returning the cycle the
// full line is available on chip: bus grant + DRAM latency + transfer.
func (b *Bus) Read(now uint64, src TrafficSource) (done uint64) {
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + b.cfg.BusCyclesPerLine
	b.BusyCycles += b.cfg.BusCyclesPerLine
	b.Transactions[src]++
	return start + b.cfg.AccessLatency + b.cfg.BusCyclesPerLine
}

// Write performs a line write issued at `now` (from the write buffer),
// returning when the transfer completes. Following the paper's write-buffer
// model ("write buffers ... steal idle bus cycles efficiently", Section
// 3.4), writes yield to demand reads: they wait for any in-progress read
// transfer but do not reserve the bus against future reads. They do occupy
// the single bus while transferring, so writes serialize against each other
// — a burst of writebacks issued at the same cycle drains one line-time
// apart, not for free in parallel.
func (b *Bus) Write(now uint64, src TrafficSource) (done uint64) {
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	if b.writeFree > start {
		start = b.writeFree
	}
	b.writeFree = start + b.cfg.BusCyclesPerLine
	b.BusyCycles += b.cfg.BusCyclesPerLine
	b.Transactions[src]++
	return start + b.cfg.BusCyclesPerLine
}

// TotalTransactions sums all sources.
func (b *Bus) TotalTransactions() uint64 {
	var t uint64
	for _, v := range b.Transactions {
		t += v
	}
	return t
}

// DemandTransactions returns fills + writebacks (the paper's "L2 cache
// memory traffic" denominator for Figure 9).
func (b *Bus) DemandTransactions() uint64 {
	return b.Transactions[SrcLineFill] + b.Transactions[SrcWriteback]
}

// SNCTransactions returns the SNC-induced extra traffic (Figure 9
// numerator).
func (b *Bus) SNCTransactions() uint64 {
	return b.Transactions[SrcSeqNumFetch] + b.Transactions[SrcSeqNumSpill]
}

// MACTransactions returns the integrity-induced extra traffic (MAC fetches
// plus MAC table updates).
func (b *Bus) MACTransactions() uint64 {
	return b.Transactions[SrcMACFetch] + b.Transactions[SrcMACUpdate]
}

// Config returns the bus/DRAM configuration.
func (b *Bus) Config() DRAMConfig { return b.cfg }

// ResetStats clears counters (keeps timing state).
func (b *Bus) ResetStats() {
	b.Transactions = [numSources]uint64{}
	b.BusyCycles = 0
}

// BusSnapshot is a copy of the bus's mutable state (timing reservations and
// per-source transaction counters), taken with Snapshot and reinstated with
// Restore.
type BusSnapshot struct {
	nextFree     uint64
	writeFree    uint64
	transactions [numSources]uint64
	busyCycles   uint64
}

// Snapshot captures the bus's full mutable state.
func (b *Bus) Snapshot() BusSnapshot {
	return BusSnapshot{
		nextFree:     b.nextFree,
		writeFree:    b.writeFree,
		transactions: b.Transactions,
		busyCycles:   b.BusyCycles,
	}
}

// HashState folds the snapshot's behavior-affecting state into h: the read
// and write reservation horizons. Transaction counters and busy cycles are
// statistics and deliberately excluded.
func (s *BusSnapshot) HashState(h *statehash.Hash) {
	h.Word(s.nextFree)
	h.Word(s.writeFree)
}

// Restore reinstates a snapshot taken from a bus with the same configuration.
func (b *Bus) Restore(s BusSnapshot) {
	b.nextFree = s.nextFree
	b.writeFree = s.writeFree
	b.Transactions = s.transactions
	b.BusyCycles = s.busyCycles
}

// WriteBuffer models the deferred-write queue between L2 and memory
// (paper Figure 2/4). Evicted lines wait here while being encrypted; entries
// drain to the bus in FIFO order. The CPU only stalls when the buffer is
// full.
type WriteBuffer struct {
	depth   int
	pending []uint64 // completion times of in-flight drains, sorted

	// Stats.
	Inserted   uint64
	FullStalls uint64
}

// NewWriteBuffer creates a buffer with the given capacity.
func NewWriteBuffer(depth int) *WriteBuffer {
	if depth <= 0 {
		panic("mem: write buffer depth must be positive")
	}
	return &WriteBuffer{depth: depth}
}

// Insert queues a writeback at time `now` whose data becomes eligible to
// drain at `ready` (e.g. after encryption finishes). It returns the time the
// CPU may proceed: `now` unless the buffer was full, in which case the CPU
// waits for the oldest entry to drain.
func (w *WriteBuffer) Insert(now, ready uint64, drain func(uint64) uint64) (cpuFree uint64) {
	w.Inserted++
	// Retire entries that have drained by now. Compact in place rather than
	// re-slicing so the backing array's capacity is stable and the sorted
	// insert below stops allocating once the buffer has warmed up.
	i := 0
	for i < len(w.pending) && w.pending[i] <= now {
		i++
	}
	if i > 0 {
		n := copy(w.pending, w.pending[i:])
		w.pending = w.pending[:n]
	}
	cpuFree = now
	if len(w.pending) >= w.depth {
		w.FullStalls++
		cpuFree = w.pending[0]
		n := copy(w.pending, w.pending[1:])
		w.pending = w.pending[:n]
	}
	done := drain(maxU64(cpuFree, ready))
	// Insert keeping sorted order (drains can complete out of order when
	// ready times differ).
	pos := sort.Search(len(w.pending), func(j int) bool { return w.pending[j] > done }) //secsim:allowalloc non-escaping search closure; inlined by the compiler
	w.pending = append(w.pending, 0)                                                    //secsim:allowalloc in-place compaction keeps capacity stable; append stops allocating once warm
	copy(w.pending[pos+1:], w.pending[pos:])
	w.pending[pos] = done
	return cpuFree
}

// Occupancy returns the number of entries still draining at time now.
func (w *WriteBuffer) Occupancy(now uint64) int {
	n := 0
	for _, t := range w.pending {
		if t > now {
			n++
		}
	}
	return n
}

// Depth returns the configured capacity.
func (w *WriteBuffer) Depth() int { return w.depth }

// WriteBufferSnapshot is a deep copy of the buffer's mutable state (pending
// drain completion times and stats), taken with Snapshot and reinstated with
// Restore. It shares nothing with the buffer it came from.
type WriteBufferSnapshot struct {
	pending    []uint64
	inserted   uint64
	fullStalls uint64
}

// Snapshot captures the buffer's full mutable state.
func (w *WriteBuffer) Snapshot() WriteBufferSnapshot {
	var s WriteBufferSnapshot
	w.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the buffer's state into s, reusing s's pending
// array when its capacity suffices, so repeated boundary checkpoints into
// the same snapshot are allocation-free in steady state.
func (w *WriteBuffer) SnapshotInto(s *WriteBufferSnapshot) {
	s.pending = append(s.pending[:0], w.pending...)
	s.inserted = w.Inserted
	s.fullStalls = w.FullStalls
}

// HashState folds the snapshot's behavior-affecting state into h: the
// pending drain completion times (kept sorted by the buffer). Inserted and
// FullStalls are statistics and deliberately excluded.
func (s *WriteBufferSnapshot) HashState(h *statehash.Hash) {
	h.Words(s.pending)
}

// Restore reinstates a snapshot taken from a buffer with the same depth. The
// existing backing array is reused when large enough, so a restored buffer
// keeps its steady-state (allocation-free) capacity.
func (w *WriteBuffer) Restore(s WriteBufferSnapshot) {
	w.pending = append(w.pending[:0], s.pending...)
	w.Inserted = s.inserted
	w.FullStalls = s.fullStalls
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Memory page geometry: 4KB pages gathered into directory chunks of 1024
// pages, so one chunk spans 4MB of address space.
const (
	pageBits  = 12
	chunkBits = 10
	chunkMask = (1 << chunkBits) - 1
)

// memChunk is the second level of the page directory: a dense array of
// page frames covering one aligned 4MB span.
type memChunk struct {
	pages [1 << chunkBits][]byte
}

// Memory is the functional byte-accurate physical memory image, backed by a
// two-level page directory: a sparse chunk map on top (touched only when an
// access crosses into a new 4MB span) and dense page arrays below, fronted
// by a last-page cache so the common same-page access is two compares and
// an array load. The secure schemes store real ciphertext here so that
// tampering experiments operate on actual bytes.
type Memory struct {
	chunks map[uint64]*memChunk

	// Last-chunk and last-page caches. lastPage == nil / lastChunk == nil
	// mean "no cached entry" (never a valid cached value, since pages and
	// chunks are non-nil once allocated).
	lastCN    uint64
	lastChunk *memChunk
	lastPN    uint64
	lastPage  []byte

	allocated int
}

// NewMemory creates an empty sparse memory with 4KB pages.
func NewMemory() *Memory {
	return &Memory{chunks: make(map[uint64]*memChunk)}
}

func (m *Memory) page(addr uint64, create bool) ([]byte, uint64) {
	off := addr & ((1 << pageBits) - 1)
	pn := addr >> pageBits
	if pn == m.lastPN && m.lastPage != nil {
		return m.lastPage, off
	}
	cn := pn >> chunkBits
	ch := m.lastChunk
	if ch == nil || cn != m.lastCN {
		ch = m.chunks[cn]
		if ch == nil {
			if !create {
				return nil, off
			}
			ch = new(memChunk)
			m.chunks[cn] = ch
		}
		m.lastCN, m.lastChunk = cn, ch
	}
	p := ch.pages[pn&chunkMask]
	if p == nil {
		if !create {
			return nil, off
		}
		p = make([]byte, 1<<pageBits)
		ch.pages[pn&chunkMask] = p
		m.allocated++
	}
	m.lastPN, m.lastPage = pn, p
	return p, off
}

// Read copies len(dst) bytes starting at addr into dst. Unwritten memory
// reads as zero.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p, off := m.page(addr, false)
		n := int(uint64(1)<<pageBits - off)
		if n > len(dst) {
			n = len(dst)
		}
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write stores src at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		p, off := m.page(addr, true)
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadU64 reads a little-endian 64-bit word.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// WriteU64 writes a little-endian 64-bit word.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	b := [8]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)}
	m.Write(addr, b[:])
}

// ReadU32 reads a little-endian 32-bit word.
func (m *Memory) ReadU32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// WriteU32 writes a little-endian 32-bit word.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	m.Write(addr, b[:])
}

// PagesAllocated returns the number of backing pages (test/diagnostic aid).
func (m *Memory) PagesAllocated() int { return m.allocated }
