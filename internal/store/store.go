// Package store persists completed simulation results across process
// restarts: a small content-addressed file store that the experiments
// Runner's result memo falls through to on miss.
//
// Entries are keyed by (model, key) — the caller's canonical run key plus a
// timing-model version string — so results computed by an older simulator
// never answer for a newer one: after a model bump every old entry is simply
// a miss. Each entry is one JSON envelope carrying a CRC over its payload;
// anything unreadable, truncated, mismatched or checksum-failing is counted
// as corrupt and treated as a miss, never surfaced as data. Writes go
// through a temp file + rename so a crash mid-write leaves either the old
// entry or none, not a torn one.
//
// The store is deliberately generic (any JSON-serializable payload) and
// self-contained: it knows nothing about sim.Result, and failures are
// counted, not returned — a warm-start cache must degrade to recompute, not
// take the service down.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// format identifies the envelope layout; bump on incompatible change.
const format = 1

// envelope is the on-disk shape of one entry.
type envelope struct {
	Format int `json:"format"`
	// Model and Key echo the addressing so a hash collision (or a stray
	// file) can never serve the wrong payload.
	Model string `json:"model"`
	Key   string `json:"key"`
	// CRC is an IEEE CRC-32 over the raw payload bytes.
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// Stats is a point-in-time snapshot of the store's counters, exported for
// the secsimd /metrics endpoint.
type Stats struct {
	// Hits counts loads answered from a valid entry.
	Hits int64 `json:"hits"`
	// Misses counts loads with no entry (including model-version misses).
	Misses int64 `json:"misses"`
	// Corrupt counts loads that found an unreadable, truncated or
	// checksum-failing entry and fell back to recompute.
	Corrupt int64 `json:"corrupt"`
	// Writes counts entries persisted.
	Writes int64 `json:"writes"`
	// WriteErrors counts failed persistence attempts (the result is still
	// served from memory; only the warm start is lost).
	WriteErrors int64 `json:"write_errors"`
}

// Store is a directory of persisted results for one timing-model version.
// All methods are safe for concurrent use.
type Store struct {
	dir   string
	model string

	hits        atomic.Int64
	misses      atomic.Int64
	corrupt     atomic.Int64
	writes      atomic.Int64
	writeErrors atomic.Int64
}

// Open prepares dir (creating it if needed) as a result store for the given
// model version string.
func Open(dir, model string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if model == "" {
		return nil, fmt.Errorf("store: empty model version")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, model: model}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// path derives the entry file for key: a hash of (model, key) keeps
// arbitrary key strings out of filenames.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(s.model + "\x00" + key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])[:32]+".json")
}

// Load reads the entry for key into out (a JSON-unmarshal target),
// reporting whether a valid entry was found. Damaged entries are counted as
// corrupt and report false — the caller recomputes.
func (s *Store) Load(key string, out any) bool {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			s.corrupt.Add(1)
		}
		return false
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil || env.Format != format ||
		env.CRC != crc32.ChecksumIEEE(env.Payload) {
		s.corrupt.Add(1)
		return false
	}
	if env.Model != s.model || env.Key != key {
		// A different (model, key) landing on this file is an address
		// collision or a stale directory, not damage: a plain miss.
		s.misses.Add(1)
		return false
	}
	if json.Unmarshal(env.Payload, out) != nil {
		s.corrupt.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Save persists v as the entry for key, atomically (temp file + rename).
// Failures are counted, not returned: losing a warm start is acceptable,
// failing the run that produced the result is not.
func (s *Store) Save(key string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	env := envelope{
		Format:  format,
		Model:   s.model,
		Key:     key,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	data, err := json.Marshal(env)
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	final := s.path(key)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), final) != nil {
		os.Remove(tmp.Name())
		s.writeErrors.Add(1)
		return
	}
	s.writes.Add(1)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
	}
}
