package store

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name   string
	Cycles uint64
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), "model-1")
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Name: "gzip", Cycles: 12345}
	var got payload
	if s.Load("k1", &got) {
		t.Fatal("hit on an empty store")
	}
	s.Save("k1", want)
	if !s.Load("k1", &got) || got != want {
		t.Fatalf("Load after Save = %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 || st.WriteErrors != 0 {
		t.Errorf("stats = %+v, want hits=1 misses=1 writes=1", st)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, "model-1")
	if err != nil {
		t.Fatal(err)
	}
	s1.Save("k", payload{Name: "mcf", Cycles: 7})
	s2, err := Open(dir, "model-1")
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s2.Load("k", &got) || got.Cycles != 7 {
		t.Fatalf("reopened store: Load = (%+v), want cycles=7", got)
	}
}

// TestModelVersionIsolation: entries written under one timing-model version
// must be misses (not corrupt, not hits) under another.
func TestModelVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, "model-1")
	s1.Save("k", payload{Cycles: 1})
	s2, _ := Open(dir, "model-2")
	var got payload
	if s2.Load("k", &got) {
		t.Fatal("entry from model-1 served under model-2")
	}
	if st := s2.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want a plain miss", st)
	}
}

// entryFiles lists the store's persisted entries (excluding temp files).
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestCorruptEntriesFallBackToMiss(t *testing.T) {
	cases := map[string]func(data []byte) []byte{
		"truncated": func(d []byte) []byte { return d[:len(d)/2] },
		"bitflip":   func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d },
		"garbage":   func(d []byte) []byte { return []byte("not json at all") },
		"empty":     func(d []byte) []byte { return nil },
	}
	for name, damage := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := Open(dir, "model-1")
			s.Save("k", payload{Name: "art", Cycles: 99})
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected 1 entry file, found %d", len(files))
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], damage(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			if s.Load("k", &got) {
				t.Fatalf("damaged entry served as a hit: %+v", got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("stats = %+v, want corrupt=1", st)
			}
			// Recompute-and-save repairs the entry.
			s.Save("k", payload{Name: "art", Cycles: 99})
			if !s.Load("k", &got) || got.Cycles != 99 {
				t.Errorf("entry not repaired after re-save: %+v", got)
			}
		})
	}
}

func TestOpenRejectsBadArgs(t *testing.T) {
	if _, err := Open("", "m"); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Error("empty model accepted")
	}
}

func TestDistinctKeysDistinctEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "m")
	s.Save("a", payload{Cycles: 1})
	s.Save("b", payload{Cycles: 2})
	var got payload
	if !s.Load("a", &got) || got.Cycles != 1 {
		t.Errorf("a = %+v", got)
	}
	if !s.Load("b", &got) || got.Cycles != 2 {
		t.Errorf("b = %+v", got)
	}
	if n := len(entryFiles(t, dir)); n != 2 {
		t.Errorf("entry files = %d, want 2", n)
	}
}
