package core

import (
	"fmt"
	"math/bits"
	"slices"

	"secureproc/internal/crypto/engine"
	"secureproc/internal/snc"
	"secureproc/internal/statehash"
)

// SchemeState is an opaque snapshot of a scheme's mutable state. A state is
// produced by Snapshottable.SnapshotState, shares nothing with the scheme it
// came from, and may be handed to RestoreState any number of times — forked
// runs never see each other through a shared state.
type SchemeState interface {
	schemeState()
}

// Snapshottable is an optional Scheme capability: schemes that can checkpoint
// their mutable state implement it so the simulator can fork measurement runs
// from a post-warmup snapshot. Schemes without it simply aren't checkpointed
// and their runs fall back to a full warmup.
type Snapshottable interface {
	// SnapshotState captures a deep copy of the scheme's mutable state.
	SnapshotState() SchemeState
	// RestoreState reinstates a state previously captured from a scheme
	// with the same configuration. It errors when handed a state of the
	// wrong kind.
	RestoreState(SchemeState) error
}

// SnapshottableInto is an optional extension of Snapshottable for schemes
// that can capture into a previously returned state, reusing its
// allocations. Epoch-parallel simulation checkpoints at every epoch
// boundary, so this is what keeps boundary snapshots allocation-free in
// steady state.
type SnapshottableInto interface {
	Snapshottable
	// SnapshotStateInto captures the scheme's mutable state, reusing prev's
	// storage when prev is a state of the right kind (pass nil to allocate
	// fresh). The returned state may or may not be prev; callers must use
	// the return value.
	SnapshotStateInto(prev SchemeState) SchemeState
}

// HashSchemeState folds a scheme state's behavior-affecting contents into h,
// excluding pure statistics counters (two states that will simulate
// identically must hash identically). It reports false for state kinds it
// does not know, in which case h is unchanged and the caller must not rely
// on the hash for equality.
func HashSchemeState(s SchemeState, h *statehash.Hash) bool {
	switch st := s.(type) {
	case baselineState:
		h.Word(1)
	case xomState:
		h.Word(2)
	case *otpState:
		h.Word(3)
		st.hashInto(h)
	case *otpMACState:
		h.Word(4)
		st.otp.hashInto(h)
		st.macUnit.HashState(h)
	case *otpPreState:
		h.Word(5)
		st.otp.hashInto(h)
		st.padFor.hashInto(h)
		st.instrPad.hashInto(h)
	default:
		return false
	}
	return true
}

// hashInto folds the OTP state's behavior-affecting portion: SNC contents,
// the architectural sequence-number table, and the running process ID.
func (st *otpState) hashInto(h *statehash.Hash) {
	st.snc.HashState(h)
	st.seqMem.hashInto(h)
	h.Int(st.pid)
}

// clone deep-copies a sequence-number table. The last-chunk cache is left
// cold; it repopulates on first access.
func (t *seqTable) clone() *seqTable {
	return t.cloneInto(nil)
}

// cloneInto deep-copies t into dst (allocating one when dst is nil),
// returning dst. Chunks already present in dst are overwritten in place and
// stale ones deleted, so repeated clones between the same pair of tables
// are allocation-free once the working set stabilizes. The last-chunk cache
// is left cold; it repopulates on first access.
func (t *seqTable) cloneInto(dst *seqTable) *seqTable {
	if dst == nil {
		dst = &seqTable{chunks: make(map[uint64]*seqChunk, len(t.chunks))}
	}
	dst.lineShift = t.lineShift
	dst.lastCN, dst.lastChunk = 0, nil
	for cn := range dst.chunks {
		if _, ok := t.chunks[cn]; !ok {
			delete(dst.chunks, cn)
		}
	}
	for cn, ch := range t.chunks {
		d := dst.chunks[cn]
		if d == nil {
			d = new(seqChunk)
			dst.chunks[cn] = d
		}
		*d = *ch
	}
	return dst
}

// hashInto folds the table's contents into h in deterministic order (chunk
// numbers sorted via the table's scratch buffer): per chunk, the presence
// bitmap and the present sequence numbers. Absent cells may hold stale
// values from deleted entries and are excluded so logically equal tables
// hash equal.
func (t *seqTable) hashInto(h *statehash.Hash) {
	t.hashScratch = t.hashScratch[:0]
	for cn := range t.chunks {
		t.hashScratch = append(t.hashScratch, cn)
	}
	slices.Sort(t.hashScratch)
	h.Int(len(t.hashScratch))
	for _, cn := range t.hashScratch {
		ch := t.chunks[cn]
		h.Word(cn)
		for w, bm := range ch.present {
			h.Word(bm)
			for bm != 0 {
				b := bm & -bm
				h.U16(ch.seq[w*64+bits.TrailingZeros64(bm)])
				bm ^= b
			}
		}
	}
}

// baselineState is the (empty) snapshot of the insecure baseline: the scheme
// itself holds no mutable state — the bus and write buffer it drives are
// checkpointed by their own packages.
type baselineState struct{}

func (baselineState) schemeState() {}

// SnapshotState implements Snapshottable.
func (b *Baseline) SnapshotState() SchemeState { return baselineState{} }

// RestoreState implements Snapshottable.
func (b *Baseline) RestoreState(s SchemeState) error {
	if _, ok := s.(baselineState); !ok {
		return fmt.Errorf("core: baseline cannot restore %T", s)
	}
	return nil
}

// xomState snapshots the XOM scheme's counters.
type xomState struct {
	reads      uint64
	writebacks uint64
}

func (xomState) schemeState() {}

// SnapshotState implements Snapshottable.
func (x *XOM) SnapshotState() SchemeState {
	return xomState{reads: x.reads, writebacks: x.writebacks}
}

// RestoreState implements Snapshottable.
func (x *XOM) RestoreState(s SchemeState) error {
	st, ok := s.(xomState)
	if !ok {
		return fmt.Errorf("core: XOM cannot restore %T", s)
	}
	x.reads, x.writebacks = st.reads, st.writebacks
	return nil
}

// otpState snapshots the one-time-pad scheme: SNC contents, the architectural
// in-memory sequence-number table, the running process ID, and the counters.
type otpState struct {
	snc    *snc.Snapshot
	seqMem *seqTable
	pid    int

	instrReads   uint64
	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	directReads  uint64
	directWrites uint64
	spills       uint64
	seqFetches   uint64
	reencrypts   uint64
	switches     uint64
}

func (*otpState) schemeState() {}

// captureOTP builds the shared OTP portion of a snapshot (also used by the
// wrapping schemes). prev's storage is reused when non-nil.
func (o *OTP) captureOTP(prev *otpState) *otpState {
	st := prev
	if st == nil {
		st = &otpState{snc: &snc.Snapshot{}}
	}
	o.snc.SnapshotInto(st.snc)
	st.seqMem = o.seqMem.cloneInto(st.seqMem)
	st.pid = o.pid
	st.instrReads = o.instrReads
	st.queryHits = o.queryHits
	st.queryMisses = o.queryMisses
	st.updateHits = o.updateHits
	st.updateMisses = o.updateMisses
	st.directReads = o.directReads
	st.directWrites = o.directWrites
	st.spills = o.spills
	st.seqFetches = o.seqFetches
	st.reencrypts = o.reencrypts
	st.switches = o.switches
	return st
}

// restoreOTP reinstates the shared OTP portion. The sequence table is cloned
// again (into the live table, reusing its chunks) so the state stays
// pristine for further restores; the SNC snapshot is copied into the live
// SNC by its own Restore.
func (o *OTP) restoreOTP(st *otpState) {
	o.snc.Restore(st.snc)
	o.seqMem = st.seqMem.cloneInto(o.seqMem)
	o.pid = st.pid
	o.instrReads = st.instrReads
	o.queryHits = st.queryHits
	o.queryMisses = st.queryMisses
	o.updateHits = st.updateHits
	o.updateMisses = st.updateMisses
	o.directReads = st.directReads
	o.directWrites = st.directWrites
	o.spills = st.spills
	o.seqFetches = st.seqFetches
	o.reencrypts = st.reencrypts
	o.switches = st.switches
}

// SnapshotState implements Snapshottable.
func (o *OTP) SnapshotState() SchemeState { return o.captureOTP(nil) }

// SnapshotStateInto implements SnapshottableInto.
func (o *OTP) SnapshotStateInto(prev SchemeState) SchemeState {
	st, _ := prev.(*otpState)
	return o.captureOTP(st)
}

// RestoreState implements Snapshottable.
func (o *OTP) RestoreState(s SchemeState) error {
	st, ok := s.(*otpState)
	if !ok {
		return fmt.Errorf("core: OTP cannot restore %T", s)
	}
	o.restoreOTP(st)
	return nil
}

// otpMACState adds the MAC unit's pipeline occupancy and the verification
// counters to the OTP state.
type otpMACState struct {
	otp     *otpState
	macUnit engine.Snapshot

	macFetches  uint64
	macUpdates  uint64
	verified    uint64
	stallCycles uint64
}

func (*otpMACState) schemeState() {}

// SnapshotState implements Snapshottable.
func (m *OTPMAC) SnapshotState() SchemeState { return m.SnapshotStateInto(nil) }

// SnapshotStateInto implements SnapshottableInto.
func (m *OTPMAC) SnapshotStateInto(prev SchemeState) SchemeState {
	st, _ := prev.(*otpMACState)
	if st == nil {
		st = &otpMACState{}
	}
	st.otp = m.captureOTP(st.otp)
	m.macUnit.SnapshotInto(&st.macUnit)
	st.macFetches = m.macFetches
	st.macUpdates = m.macUpdates
	st.verified = m.verified
	st.stallCycles = m.stallCycles
	return st
}

// RestoreState implements Snapshottable.
func (m *OTPMAC) RestoreState(s SchemeState) error {
	st, ok := s.(*otpMACState)
	if !ok {
		return fmt.Errorf("core: OTP+MAC cannot restore %T", s)
	}
	m.restoreOTP(st.otp)
	m.macUnit.Restore(st.macUnit)
	m.macFetches = st.macFetches
	m.macUpdates = st.macUpdates
	m.verified = st.verified
	m.stallCycles = st.stallCycles
	return nil
}

// otpPreState adds the pad-buffer tables and prediction counters to the OTP
// state.
type otpPreState struct {
	otp      *otpState
	padFor   *seqTable
	instrPad *seqTable

	padHits      uint64
	padMisses    uint64
	hiddenCycles uint64
}

func (*otpPreState) schemeState() {}

// SnapshotState implements Snapshottable.
func (p *OTPPre) SnapshotState() SchemeState { return p.SnapshotStateInto(nil) }

// SnapshotStateInto implements SnapshottableInto.
func (p *OTPPre) SnapshotStateInto(prev SchemeState) SchemeState {
	st, _ := prev.(*otpPreState)
	if st == nil {
		st = &otpPreState{}
	}
	st.otp = p.captureOTP(st.otp)
	st.padFor = p.padFor.cloneInto(st.padFor)
	st.instrPad = p.instrPad.cloneInto(st.instrPad)
	st.padHits = p.padHits
	st.padMisses = p.padMisses
	st.hiddenCycles = p.hiddenCycles
	return st
}

// RestoreState implements Snapshottable.
func (p *OTPPre) RestoreState(s SchemeState) error {
	st, ok := s.(*otpPreState)
	if !ok {
		return fmt.Errorf("core: OTP-Pre cannot restore %T", s)
	}
	p.restoreOTP(st.otp)
	p.padFor = st.padFor.cloneInto(p.padFor)
	p.instrPad = st.instrPad.cloneInto(p.instrPad)
	p.padHits = st.padHits
	p.padMisses = st.padMisses
	p.hiddenCycles = st.hiddenCycles
	return nil
}
