package core

import (
	"fmt"

	"secureproc/internal/crypto/engine"
	"secureproc/internal/snc"
)

// SchemeState is an opaque snapshot of a scheme's mutable state. A state is
// produced by Snapshottable.SnapshotState, shares nothing with the scheme it
// came from, and may be handed to RestoreState any number of times — forked
// runs never see each other through a shared state.
type SchemeState interface {
	schemeState()
}

// Snapshottable is an optional Scheme capability: schemes that can checkpoint
// their mutable state implement it so the simulator can fork measurement runs
// from a post-warmup snapshot. Schemes without it simply aren't checkpointed
// and their runs fall back to a full warmup.
type Snapshottable interface {
	// SnapshotState captures a deep copy of the scheme's mutable state.
	SnapshotState() SchemeState
	// RestoreState reinstates a state previously captured from a scheme
	// with the same configuration. It errors when handed a state of the
	// wrong kind.
	RestoreState(SchemeState) error
}

// clone deep-copies a sequence-number table. The last-chunk cache is left
// cold; it repopulates on first access.
func (t *seqTable) clone() *seqTable {
	c := &seqTable{
		chunks:    make(map[uint64]*seqChunk, len(t.chunks)),
		lineShift: t.lineShift,
	}
	for cn, ch := range t.chunks {
		dup := *ch
		c.chunks[cn] = &dup
	}
	return c
}

// baselineState is the (empty) snapshot of the insecure baseline: the scheme
// itself holds no mutable state — the bus and write buffer it drives are
// checkpointed by their own packages.
type baselineState struct{}

func (baselineState) schemeState() {}

// SnapshotState implements Snapshottable.
func (b *Baseline) SnapshotState() SchemeState { return baselineState{} }

// RestoreState implements Snapshottable.
func (b *Baseline) RestoreState(s SchemeState) error {
	if _, ok := s.(baselineState); !ok {
		return fmt.Errorf("core: baseline cannot restore %T", s)
	}
	return nil
}

// xomState snapshots the XOM scheme's counters.
type xomState struct {
	reads      uint64
	writebacks uint64
}

func (xomState) schemeState() {}

// SnapshotState implements Snapshottable.
func (x *XOM) SnapshotState() SchemeState {
	return xomState{reads: x.reads, writebacks: x.writebacks}
}

// RestoreState implements Snapshottable.
func (x *XOM) RestoreState(s SchemeState) error {
	st, ok := s.(xomState)
	if !ok {
		return fmt.Errorf("core: XOM cannot restore %T", s)
	}
	x.reads, x.writebacks = st.reads, st.writebacks
	return nil
}

// otpState snapshots the one-time-pad scheme: SNC contents, the architectural
// in-memory sequence-number table, the running process ID, and the counters.
type otpState struct {
	snc    *snc.Snapshot
	seqMem *seqTable
	pid    int

	instrReads   uint64
	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	directReads  uint64
	directWrites uint64
	spills       uint64
	seqFetches   uint64
	reencrypts   uint64
	switches     uint64
}

func (*otpState) schemeState() {}

// captureOTP builds the shared OTP portion of a snapshot (also used by the
// wrapping schemes).
func (o *OTP) captureOTP() *otpState {
	return &otpState{
		snc:          o.snc.Snapshot(),
		seqMem:       o.seqMem.clone(),
		pid:          o.pid,
		instrReads:   o.instrReads,
		queryHits:    o.queryHits,
		queryMisses:  o.queryMisses,
		updateHits:   o.updateHits,
		updateMisses: o.updateMisses,
		directReads:  o.directReads,
		directWrites: o.directWrites,
		spills:       o.spills,
		seqFetches:   o.seqFetches,
		reencrypts:   o.reencrypts,
		switches:     o.switches,
	}
}

// restoreOTP reinstates the shared OTP portion. The sequence table is cloned
// again so the state stays pristine for further restores; the SNC snapshot is
// copied into the live SNC by its own Restore.
func (o *OTP) restoreOTP(st *otpState) {
	o.snc.Restore(st.snc)
	o.seqMem = st.seqMem.clone()
	o.pid = st.pid
	o.instrReads = st.instrReads
	o.queryHits = st.queryHits
	o.queryMisses = st.queryMisses
	o.updateHits = st.updateHits
	o.updateMisses = st.updateMisses
	o.directReads = st.directReads
	o.directWrites = st.directWrites
	o.spills = st.spills
	o.seqFetches = st.seqFetches
	o.reencrypts = st.reencrypts
	o.switches = st.switches
}

// SnapshotState implements Snapshottable.
func (o *OTP) SnapshotState() SchemeState { return o.captureOTP() }

// RestoreState implements Snapshottable.
func (o *OTP) RestoreState(s SchemeState) error {
	st, ok := s.(*otpState)
	if !ok {
		return fmt.Errorf("core: OTP cannot restore %T", s)
	}
	o.restoreOTP(st)
	return nil
}

// otpMACState adds the MAC unit's pipeline occupancy and the verification
// counters to the OTP state.
type otpMACState struct {
	otp     *otpState
	macUnit engine.Snapshot

	macFetches  uint64
	macUpdates  uint64
	verified    uint64
	stallCycles uint64
}

func (*otpMACState) schemeState() {}

// SnapshotState implements Snapshottable.
func (m *OTPMAC) SnapshotState() SchemeState {
	return &otpMACState{
		otp:         m.captureOTP(),
		macUnit:     m.macUnit.Snapshot(),
		macFetches:  m.macFetches,
		macUpdates:  m.macUpdates,
		verified:    m.verified,
		stallCycles: m.stallCycles,
	}
}

// RestoreState implements Snapshottable.
func (m *OTPMAC) RestoreState(s SchemeState) error {
	st, ok := s.(*otpMACState)
	if !ok {
		return fmt.Errorf("core: OTP+MAC cannot restore %T", s)
	}
	m.restoreOTP(st.otp)
	m.macUnit.Restore(st.macUnit)
	m.macFetches = st.macFetches
	m.macUpdates = st.macUpdates
	m.verified = st.verified
	m.stallCycles = st.stallCycles
	return nil
}

// otpPreState adds the pad-buffer tables and prediction counters to the OTP
// state.
type otpPreState struct {
	otp      *otpState
	padFor   *seqTable
	instrPad *seqTable

	padHits      uint64
	padMisses    uint64
	hiddenCycles uint64
}

func (*otpPreState) schemeState() {}

// SnapshotState implements Snapshottable.
func (p *OTPPre) SnapshotState() SchemeState {
	return &otpPreState{
		otp:          p.captureOTP(),
		padFor:       p.padFor.clone(),
		instrPad:     p.instrPad.clone(),
		padHits:      p.padHits,
		padMisses:    p.padMisses,
		hiddenCycles: p.hiddenCycles,
	}
}

// RestoreState implements Snapshottable.
func (p *OTPPre) RestoreState(s SchemeState) error {
	st, ok := s.(*otpPreState)
	if !ok {
		return fmt.Errorf("core: OTP-Pre cannot restore %T", s)
	}
	p.restoreOTP(st.otp)
	p.padFor = st.padFor.clone()
	p.instrPad = st.instrPad.clone()
	p.padHits = st.padHits
	p.padMisses = st.padMisses
	p.hiddenCycles = st.hiddenCycles
	return nil
}
