package core

import (
	"fmt"

	"secureproc/internal/integrity"
	"secureproc/internal/snc"
)

// The built-in schemes: the four the paper evaluates plus the two
// extensions this reproduction adds on top of the registry seam. External
// packages can Register more; these are the ones every CLI and figure spec
// can count on.

// newOTPWith builds the OTP substrate with the given SNC policy forced.
func newOTPWith(res Resources, policy snc.Policy) *OTP {
	sncCfg := res.SNC
	sncCfg.Policy = policy
	return NewOTP(res.Bus, res.WBuf, res.Crypto, snc.New(sncCfg))
}

// otpMACParams validates the otp-mac parameter set.
func otpMACParams(p Params) (integrity.VerifyPolicy, uint64, error) {
	for k := range p {
		if k != "verify" && k != "verify_lat" {
			return 0, 0, fmt.Errorf("core: otp-mac: unknown parameter %q (verify, verify_lat)", k)
		}
	}
	policy, err := integrity.ParseVerifyPolicy(p.Str("verify", integrity.VerifyOverlap.String()))
	if err != nil {
		return 0, 0, err
	}
	lat, err := p.Int("verify_lat", integrity.DefaultVerifyLatency)
	if err != nil {
		return 0, 0, err
	}
	if lat <= 0 {
		return 0, 0, fmt.Errorf("core: otp-mac: verify_lat must be positive (got %d)", lat)
	}
	return policy, uint64(lat), nil
}

func init() {
	MustRegister(Descriptor{
		Name: "baseline",
		Doc:  "insecure processor: no memory encryption (the paper's reference)",
		Aliases: []string{
			"base",
		},
		New: func(res Resources, _ Params) (Scheme, error) {
			return NewBaseline(res.Bus, res.WBuf), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "xom",
		Doc:     "direct encryption on the memory critical path (Lie et al., ASPLOS 2000)",
		Aliases: []string{},
		New: func(res Resources, _ Params) (Scheme, error) {
			return NewXOM(res.Bus, res.WBuf, res.Crypto), nil
		},
	})
	MustRegister(Descriptor{
		Name:     "snc-norepl",
		Doc:      "one-time-pad encryption, no-replacement SNC; uncovered lines fall back to XOM",
		Aliases:  []string{"norepl", "otp-norepl"},
		NeedsSNC: true,
		New: func(res Resources, _ Params) (Scheme, error) {
			return newOTPWith(res, snc.NoReplacement), nil
		},
	})
	MustRegister(Descriptor{
		Name:     "snc-lru",
		Doc:      "one-time-pad encryption, LRU SNC (the paper's best scheme)",
		Aliases:  []string{"lru", "otp"},
		NeedsSNC: true,
		New: func(res Resources, _ Params) (Scheme, error) {
			return newOTPWith(res, snc.LRU), nil
		},
	})
	MustRegister(Descriptor{
		Name: "otp-mac",
		Doc: "snc-lru plus per-line MAC integrity verification " +
			"(verify=overlap|blocking, verify_lat=N; what the paper scopes out)",
		Aliases:  []string{"mac"},
		NeedsSNC: true,
		CheckParams: func(p Params) error {
			_, _, err := otpMACParams(p)
			return err
		},
		New: func(res Resources, p Params) (Scheme, error) {
			policy, lat, err := otpMACParams(p)
			if err != nil {
				return nil, err
			}
			return NewOTPMAC(newOTPWith(res, snc.LRU), policy, lat), nil
		},
	})
	MustRegister(Descriptor{
		Name: "otp-precompute",
		Doc: "snc-lru plus pad retention and sequence-number prediction: " +
			"SNC hits hide crypto latency entirely (sensitivity upper bound)",
		Aliases:  []string{"precompute", "otp-pre"},
		NeedsSNC: true,
		New: func(res Resources, _ Params) (Scheme, error) {
			return NewOTPPre(newOTPWith(res, snc.LRU)), nil
		},
	})
}
