package core

import (
	"fmt"
	"strings"

	"secureproc/internal/integrity"
	"secureproc/internal/snc"
)

// The built-in schemes: the four the paper evaluates plus the two
// extensions this reproduction adds on top of the registry seam. External
// packages can Register more; these are the ones every CLI and figure spec
// can count on.

// DefaultPIDBits is the per-entry process-ID tag width used by switch=pid
// when no pidbits parameter is given: 8 bits distinguishes 256 concurrent
// address spaces, the right order for a time-sliced machine.
const DefaultPIDBits = 8

// checkKeys rejects parameters outside the scheme's accepted set.
func checkKeys(scheme string, p Params, allowed ...string) error {
	for k := range p {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: %s: unknown parameter %q (%s)",
				scheme, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// otpSwitchParams reads the multiprogramming parameters shared by every
// OTP-based scheme: switch selects the Section 4.3 context-switch policy,
// pidbits the per-entry tag width for switch=pid.
func otpSwitchParams(p Params) (SwitchPolicy, int, error) {
	policy, err := ParseSwitchPolicy(p.Str("switch", SwitchFlush.String()))
	if err != nil {
		return 0, 0, err
	}
	bits, err := p.Int("pidbits", DefaultPIDBits)
	if err != nil {
		return 0, 0, err
	}
	if bits <= 0 || bits > 16 {
		return 0, 0, fmt.Errorf("core: pidbits must be in [1,16] (got %d)", bits)
	}
	if _, given := p["pidbits"]; given && policy != SwitchPID {
		return 0, 0, fmt.Errorf("core: pidbits is only meaningful with switch=pid")
	}
	return policy, bits, nil
}

// newOTPWith builds the OTP substrate with the given SNC policy forced and
// the multiprogramming parameters applied: switch=pid grows each SNC entry
// by the tag width (shrinking capacity) before construction.
func newOTPWith(res Resources, policy snc.Policy, p Params) (*OTP, error) {
	swPolicy, pidBits, err := otpSwitchParams(p)
	if err != nil {
		return nil, err
	}
	sncCfg := res.SNC
	sncCfg.Policy = policy
	if swPolicy == SwitchPID {
		sncCfg.PIDBits = pidBits
	}
	if err := sncCfg.Validate(); err != nil {
		return nil, err
	}
	o := NewOTP(res.Bus, res.WBuf, res.Crypto, snc.New(sncCfg))
	o.switchPolicy = swPolicy
	if swPolicy == SwitchPID {
		o.pidBits = pidBits
	}
	return o, nil
}

// checkOTPParams is the CheckParams body shared by snc-lru, snc-norepl and
// otp-precompute (otp-mac adds its verify keys on top).
func checkOTPParams(scheme string) func(Params) error {
	return func(p Params) error {
		if err := checkKeys(scheme, p, "switch", "pidbits"); err != nil {
			return err
		}
		_, _, err := otpSwitchParams(p)
		return err
	}
}

// otpMACParams validates the otp-mac parameter set (on top of the shared
// switch parameters).
func otpMACParams(p Params) (integrity.VerifyPolicy, uint64, error) {
	if err := checkKeys("otp-mac", p, "verify", "verify_lat", "switch", "pidbits"); err != nil {
		return 0, 0, err
	}
	policy, err := integrity.ParseVerifyPolicy(p.Str("verify", integrity.VerifyOverlap.String()))
	if err != nil {
		return 0, 0, err
	}
	lat, err := p.Int("verify_lat", integrity.DefaultVerifyLatency)
	if err != nil {
		return 0, 0, err
	}
	if lat <= 0 {
		return 0, 0, fmt.Errorf("core: otp-mac: verify_lat must be positive (got %d)", lat)
	}
	if _, _, err := otpSwitchParams(p); err != nil {
		return 0, 0, err
	}
	return policy, uint64(lat), nil
}

func init() {
	MustRegister(Descriptor{
		Name: "baseline",
		Doc:  "insecure processor: no memory encryption (the paper's reference)",
		Aliases: []string{
			"base",
		},
		New: func(res Resources, _ Params) (Scheme, error) {
			return NewBaseline(res.Bus, res.WBuf), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "xom",
		Doc:     "direct encryption on the memory critical path (Lie et al., ASPLOS 2000)",
		Aliases: []string{},
		New: func(res Resources, _ Params) (Scheme, error) {
			return NewXOM(res.Bus, res.WBuf, res.Crypto), nil
		},
	})
	MustRegister(Descriptor{
		Name: "snc-norepl",
		Doc: "one-time-pad encryption, no-replacement SNC; uncovered lines fall back to XOM " +
			"(switch=flush|pid, pidbits=N for multiprogramming)",
		Aliases:     []string{"norepl", "otp-norepl"},
		NeedsSNC:    true,
		CheckParams: checkOTPParams("snc-norepl"),
		New: func(res Resources, p Params) (Scheme, error) {
			return newOTPWith(res, snc.NoReplacement, p)
		},
	})
	MustRegister(Descriptor{
		Name: "snc-lru",
		Doc: "one-time-pad encryption, LRU SNC (the paper's best scheme; " +
			"switch=flush|pid, pidbits=N for multiprogramming)",
		Aliases:     []string{"lru", "otp"},
		NeedsSNC:    true,
		CheckParams: checkOTPParams("snc-lru"),
		New: func(res Resources, p Params) (Scheme, error) {
			return newOTPWith(res, snc.LRU, p)
		},
	})
	MustRegister(Descriptor{
		Name: "otp-mac",
		Doc: "snc-lru plus per-line MAC integrity verification " +
			"(verify=overlap|blocking, verify_lat=N; what the paper scopes out)",
		Aliases:  []string{"mac"},
		NeedsSNC: true,
		CheckParams: func(p Params) error {
			_, _, err := otpMACParams(p)
			return err
		},
		New: func(res Resources, p Params) (Scheme, error) {
			policy, lat, err := otpMACParams(p)
			if err != nil {
				return nil, err
			}
			otp, err := newOTPWith(res, snc.LRU, p)
			if err != nil {
				return nil, err
			}
			return NewOTPMAC(otp, policy, lat), nil
		},
	})
	MustRegister(Descriptor{
		Name: "otp-precompute",
		Doc: "snc-lru plus pad retention and sequence-number prediction: " +
			"SNC hits hide crypto latency entirely (sensitivity upper bound)",
		Aliases:     []string{"precompute", "otp-pre"},
		NeedsSNC:    true,
		CheckParams: checkOTPParams("otp-precompute"),
		New: func(res Resources, p Params) (Scheme, error) {
			otp, err := newOTPWith(res, snc.LRU, p)
			if err != nil {
				return nil, err
			}
			return NewOTPPre(otp), nil
		},
	})
}
