package core

import (
	"bytes"
	"testing"

	"secureproc/internal/crypto/aes"
	"secureproc/internal/crypto/des"
	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
)

func newMemSys() (*mem.Bus, *mem.WriteBuffer) {
	return mem.NewBus(mem.DefaultDRAMConfig()), mem.NewWriteBuffer(8)
}

func newEngine() *engine.Engine { return engine.New(engine.DefaultConfig()) }

func dataAccess(va uint64) Access  { return Access{PA: va, VA: va} }
func instrAccess(va uint64) Access { return Access{PA: va, VA: va, Instr: true} }

// The memory system returns a line at 108 (100 latency + 8 transfer).
const lineArrival = 108

func TestBaselineReadLatency(t *testing.T) {
	bus, wbuf := newMemSys()
	b := NewBaseline(bus, wbuf)
	if got := b.ReadLine(0, dataAccess(0x1000)); got != lineArrival {
		t.Errorf("baseline read = %d, want %d", got, lineArrival)
	}
	if b.Name() != "baseline" {
		t.Error("name")
	}
}

func TestXOMReadSerializesCrypto(t *testing.T) {
	bus, wbuf := newMemSys()
	x := NewXOM(bus, wbuf, newEngine())
	// mem (108) + crypto (50): the Figure 2 critical path.
	if got := x.ReadLine(0, dataAccess(0x1000)); got != lineArrival+50 {
		t.Errorf("XOM read = %d, want %d", got, lineArrival+50)
	}
	if x.Stats().Get("xom.reads") != 1 {
		t.Error("read not counted")
	}
}

func TestXOMWritebackOffCriticalPath(t *testing.T) {
	bus, wbuf := newMemSys()
	x := NewXOM(bus, wbuf, newEngine())
	if got := x.WritebackLine(5, dataAccess(0x1000)); got != 5 {
		t.Errorf("XOM writeback cpuFree = %d, want 5", got)
	}
	if bus.Transactions[mem.SrcWriteback] != 1 {
		t.Error("writeback transaction missing")
	}
}

func newOTP(policy snc.Policy) (*OTP, *mem.Bus) {
	bus, wbuf := newMemSys()
	cfg := snc.Config{SizeBytes: 64, EntryBytes: 2, Ways: 0, LineBytes: 128, Policy: policy}
	return NewOTP(bus, wbuf, newEngine(), snc.New(cfg)), bus
}

func TestOTPInstructionReadParallel(t *testing.T) {
	o, _ := newOTP(snc.LRU)
	// MAX(108, 50) + 1 = 109: Section 3.2's headline result.
	if got := o.ReadLine(0, instrAccess(0x400000)); got != lineArrival+1 {
		t.Errorf("OTP instr read = %d, want %d", got, lineArrival+1)
	}
	if o.Stats().Get("otp.instr_reads") != 1 {
		t.Error("instr read not counted")
	}
}

func TestOTPQueryHitParallel(t *testing.T) {
	o, _ := newOTP(snc.LRU)
	o.SNC().Install(0x2000, 3)
	if got := o.ReadLine(0, dataAccess(0x2000)); got != lineArrival+1 {
		t.Errorf("OTP hit read = %d, want %d", got, lineArrival+1)
	}
	if o.Stats().Get("otp.query_hits") != 1 {
		t.Error("query hit not counted")
	}
}

func TestOTPQueryMissLRU(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	// Line fill issued at 0 (arrives 108); seq fetch queues behind it on
	// the bus (starts 8, arrives 116); decrypt 166; pad 216; +1 = 217.
	got := o.ReadLine(0, dataAccess(0x2000))
	if got != 217 {
		t.Errorf("OTP LRU query miss = %d, want 217", got)
	}
	if bus.Transactions[mem.SrcSeqNumFetch] != 1 {
		t.Error("seq fetch transaction missing")
	}
	// The fetched number must now be installed.
	if !o.SNC().Contains(0x2000) {
		t.Error("sequence number not installed after miss")
	}
}

func TestOTPQueryMissNoReplFallsBackToXOM(t *testing.T) {
	o, bus := newOTP(snc.NoReplacement)
	if got := o.ReadLine(0, dataAccess(0x2000)); got != lineArrival+50 {
		t.Errorf("NoRepl uncovered read = %d, want %d (XOM path)", got, lineArrival+50)
	}
	if o.Stats().Get("otp.direct_reads") != 1 {
		t.Error("direct read not counted")
	}
	if bus.Transactions[mem.SrcSeqNumFetch] != 0 {
		t.Error("NoRepl must not fetch sequence numbers")
	}
}

func TestOTPWritebackHit(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	o.SNC().Install(0x2000, 1)
	if got := o.WritebackLine(7, dataAccess(0x2000)); got != 7 {
		t.Errorf("writeback cpuFree = %d, want 7", got)
	}
	if o.Stats().Get("otp.update_hits") != 1 {
		t.Error("update hit not counted")
	}
	if bus.Transactions[mem.SrcWriteback] != 1 {
		t.Error("writeback transaction missing")
	}
	// The sequence number must have been incremented.
	seq, hit := o.SNC().Query(0x2000)
	if !hit || seq != 2 {
		t.Errorf("seq after writeback = %d (hit=%v), want 2", seq, hit)
	}
}

func TestOTPWritebackMissLRUFetchesAndSpills(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	// Fill the tiny SNC (32 entries) so an install causes a spill.
	for i := uint64(0); i < 32; i++ {
		o.SNC().Install(i*128, 1)
	}
	if got := o.WritebackLine(0, dataAccess(0x800000)); got != 0 {
		t.Errorf("writeback stalled CPU: %d", got)
	}
	if o.Stats().Get("otp.update_misses") != 1 {
		t.Error("update miss not counted")
	}
	if o.Stats().Get("otp.spills") != 1 {
		t.Error("victim spill not counted")
	}
	if bus.Transactions[mem.SrcSeqNumFetch] != 1 || bus.Transactions[mem.SrcSeqNumSpill] != 1 {
		t.Errorf("traffic: fetch=%d spill=%d, want 1,1",
			bus.Transactions[mem.SrcSeqNumFetch], bus.Transactions[mem.SrcSeqNumSpill])
	}
}

func TestOTPWritebackMissNoReplInstallsWhileVacant(t *testing.T) {
	o, bus := newOTP(snc.NoReplacement)
	o.WritebackLine(0, dataAccess(0x2000))
	if !o.SNC().Contains(0x2000) {
		t.Error("vacant NoRepl SNC should accept the line")
	}
	if o.Stats().Get("otp.direct_writes") != 0 {
		t.Error("should not fall back while vacant")
	}
	// Fill it up, then write an uncovered line: direct encryption.
	for i := uint64(1); i < 64; i++ {
		o.WritebackLine(0, dataAccess(i*128))
	}
	before := bus.Transactions[mem.SrcWriteback]
	o.WritebackLine(0, dataAccess(0x900000))
	if o.Stats().Get("otp.direct_writes") == 0 {
		t.Error("full NoRepl SNC must use direct encryption")
	}
	if bus.Transactions[mem.SrcWriteback] != before+1 {
		t.Error("direct write must still go to memory")
	}
}

func TestOTPSpilledSeqSurvivesRoundTrip(t *testing.T) {
	// Evict a sequence number, then query-miss it back in: the value must
	// be preserved through the in-memory table.
	o, _ := newOTP(snc.LRU)
	o.SNC().Install(0x0, 0)
	// Three writebacks to line 0 -> seq 3.
	for i := 0; i < 3; i++ {
		o.WritebackLine(0, dataAccess(0x0))
	}
	// Force eviction of line 0 by writing 32 other lines through the
	// scheme, so the victim spill goes through the in-memory table.
	for i := uint64(1); i <= 32; i++ {
		o.WritebackLine(0, dataAccess(i*128))
	}
	if o.SNC().Contains(0) {
		t.Fatal("line 0 should have been evicted")
	}
	// Query miss fetches it back.
	o.ReadLine(0, dataAccess(0x0))
	seq, hit := o.SNC().Query(0)
	if !hit || seq != 3 {
		t.Errorf("restored seq = %d (hit=%v), want 3", seq, hit)
	}
}

func TestOTPNames(t *testing.T) {
	lru, _ := newOTP(snc.LRU)
	nr, _ := newOTP(snc.NoReplacement)
	if lru.Name() != "SNC-LRU" || nr.Name() != "SNC-NoRepl" {
		t.Errorf("names: %q, %q", lru.Name(), nr.Name())
	}
}

func TestOTPResetStats(t *testing.T) {
	o, _ := newOTP(snc.LRU)
	o.ReadLine(0, dataAccess(0))
	o.ResetStats()
	s := o.Stats()
	for _, n := range s.Names() {
		if s.Get(n) != 0 {
			t.Errorf("%s = %d after reset", n, s.Get(n))
		}
	}
}

func TestOTPContextSwitchFlush(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	// Populate the (32-entry) SNC.
	for i := uint64(0); i < 32; i++ {
		o.SNC().Install(i*128, uint16(i+1))
	}
	done := o.ContextSwitch(1000, 1)
	if done <= 1000 {
		t.Error("flush of a populated SNC should take time")
	}
	if o.SNC().Occupied() != 0 {
		t.Error("SNC not empty after context switch")
	}
	if bus.Transactions[mem.SrcSeqNumSpill] != 32 {
		t.Errorf("spill transactions = %d, want 32", bus.Transactions[mem.SrcSeqNumSpill])
	}
	// The original task resumes: its sequence numbers come back from the
	// in-memory table with their exact values.
	o.ContextSwitch(done, 0)
	o.ReadLine(done, dataAccess(5*128))
	seq, hit := o.SNC().Query(5 * 128)
	if !hit || seq != 6 {
		t.Errorf("restored seq = %d (hit=%v), want 6", seq, hit)
	}
	// Empty flush is free.
	o2, _ := newOTP(snc.LRU)
	if got := o2.ContextSwitch(50, 1); got != 50 {
		t.Errorf("empty flush took time: %d", got)
	}
}

func TestOTPContextSwitchPID(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	o.switchPolicy = SwitchPID
	for i := uint64(0); i < 8; i++ {
		o.SNC().Install(i*128, uint16(i+1))
	}
	// A PID switch moves no state off chip and costs no bus traffic.
	if done := o.ContextSwitch(1000, 1); done != 1000 {
		t.Errorf("pid switch took time: %d", done)
	}
	if o.SNC().Occupied() != 8 {
		t.Error("pid switch must keep SNC contents")
	}
	if bus.Transactions[mem.SrcSeqNumSpill] != 0 {
		t.Error("pid switch must not spill")
	}
	// Process 1 writes its own line 0: a fresh entry, not process 0's.
	o.WritebackLine(1000, dataAccess(0))
	o.ContextSwitch(2000, 0)
	// Process 0's entry for line 0 is untouched.
	if seq, hit := o.SNC().Query(o.tagged(0)); !hit || seq != 1 {
		t.Errorf("process 0 seq = %d (hit=%v), want 1 true", seq, hit)
	}
}

func TestOTPNoReplContinuesSeqAcrossFlush(t *testing.T) {
	// A flushed NoRepl SNC must not restart a line's pad space at 1 when
	// the line re-enters coverage — that would reuse one-time pads.
	o, bus := newOTP(snc.NoReplacement)
	for i := 0; i < 5; i++ {
		o.WritebackLine(0, dataAccess(0x2000)) // installs seq 1, then 2..5
	}
	o.ContextSwitch(10_000, 1)
	if o.SNC().Contains(0x2000) {
		t.Fatal("flush left the entry resident")
	}
	o.ContextSwitch(20_000, 0)
	// Resumed read: the line is still pad-encrypted, so it must take the
	// seq-fetch path, not the XOM fallback.
	fetches := bus.Transactions[mem.SrcSeqNumFetch]
	o.ReadLine(30_000, dataAccess(0x2000))
	if bus.Transactions[mem.SrcSeqNumFetch] != fetches+1 {
		t.Error("resumed read of a flushed covered line must fetch its sequence number")
	}
	if seq, ok := o.SNC().Peek(0x2000); !ok || seq != 5 {
		t.Errorf("restored seq = %d (ok=%v), want 5", seq, ok)
	}
	// The next writeback continues the sequence: 6, never 1 again.
	o.WritebackLine(40_000, dataAccess(0x2000))
	if seq, _ := o.SNC().Peek(0x2000); seq != 6 {
		t.Errorf("post-flush writeback seq = %d, want 6 (continuation)", seq)
	}
}

func TestOTPPIDSwitchOverflowFlushes(t *testing.T) {
	// PIDs beyond the tag width cannot be told apart by the hardware, so
	// entering or leaving such a process must flush.
	o, bus := newOTP(snc.LRU)
	o.switchPolicy = SwitchPID
	o.pidBits = 1 // tags distinguish pids 0 and 1 only
	o.SNC().Install(0, 1)
	if o.ContextSwitch(100, 1); bus.Transactions[mem.SrcSeqNumSpill] != 0 {
		t.Fatal("in-range pid switch must not flush")
	}
	if o.SNC().Occupied() != 1 {
		t.Fatal("in-range switch dropped entries")
	}
	o.ContextSwitch(200, 2) // 2 needs 2 bits: entering flushes
	if bus.Transactions[mem.SrcSeqNumSpill] == 0 || o.SNC().Occupied() != 0 {
		t.Error("out-of-range pid must flush on entry")
	}
	o.WritebackLine(300, dataAccess(0x4000)) // pid 2 covers a line
	spills := bus.Transactions[mem.SrcSeqNumSpill]
	o.ContextSwitch(400, 0) // leaving the out-of-range pid flushes too
	if bus.Transactions[mem.SrcSeqNumSpill] == spills || o.SNC().Occupied() != 0 {
		t.Error("out-of-range pid must flush on exit")
	}
}

func TestOTPSeqOverflowRekeys(t *testing.T) {
	o, bus := newOTP(snc.LRU)
	o.SNC().Install(0, 0xFFFF)
	fills := bus.Transactions[mem.SrcWriteback]
	// The wrapping writeback pays direct re-encryption, not the pad XOR.
	o.WritebackLine(0, dataAccess(0))
	if got := o.Stats().Get("otp.reencrypts"); got != 1 {
		t.Errorf("reencrypts = %d, want 1", got)
	}
	if got := o.Stats().Get("otp.seq_overflows"); got != 1 {
		t.Errorf("seq_overflows = %d, want 1", got)
	}
	if bus.Transactions[mem.SrcWriteback] != fills+1 {
		t.Error("re-encrypted line must still be written back")
	}
	// The next writeback of the re-keyed line is a normal pad write.
	o.WritebackLine(0, dataAccess(0))
	if got := o.Stats().Get("otp.reencrypts"); got != 1 {
		t.Errorf("reencrypts after re-key = %d, want 1", got)
	}
}

// --- Functional SecureMemory tests ---

func newSecureMem(t *testing.T, cipher BlockCipher) *SecureMemory {
	t.Helper()
	sm, err := NewSecureMemory(mem.NewMemory(), cipher, 128)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func desCipher(t *testing.T) BlockCipher {
	t.Helper()
	c, err := des.NewCipher([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func aesCipher(t *testing.T) BlockCipher {
	t.Helper()
	c, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func line(fill byte) []byte {
	d := make([]byte, 128)
	for i := range d {
		d[i] = fill
	}
	return d
}

func TestSecureMemoryOTPRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cipher func(*testing.T) BlockCipher
	}{{"des", desCipher}, {"aes", aesCipher}} {
		t.Run(tc.name, func(t *testing.T) {
			sm := newSecureMem(t, tc.cipher(t))
			data := line(0x42)
			if err := sm.WriteLineOTP(0x1000, data); err != nil {
				t.Fatal(err)
			}
			got, err := sm.ReadLine(0x1000)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Error("OTP round trip failed")
			}
			raw, _ := sm.RawLine(0x1000)
			if bytes.Equal(raw, data) {
				t.Error("ciphertext equals plaintext")
			}
		})
	}
}

func TestSecureMemoryFreshPadPerWrite(t *testing.T) {
	// Paper Section 3.4 "Disadvantage": with a constant seed, rewrites leak
	// XOR patterns. The sequence number must yield different ciphertexts
	// for the same (value, address) pair across writes.
	sm := newSecureMem(t, desCipher(t))
	data := line(0x00)
	sm.WriteLineOTP(0x1000, data)
	ct1, _ := sm.RawLine(0x1000)
	sm.WriteLineOTP(0x1000, data)
	ct2, _ := sm.RawLine(0x1000)
	if bytes.Equal(ct1, ct2) {
		t.Error("same ciphertext for consecutive writes: seed not mutating")
	}
	if sm.Seq(0x1000) != 2 {
		t.Errorf("seq = %d, want 2", sm.Seq(0x1000))
	}
}

func TestSecureMemorySpatialDecorrelation(t *testing.T) {
	// Paper Section 3.4 "Advantage": the same value at different locations
	// must produce different OTP ciphertexts...
	sm := newSecureMem(t, desCipher(t))
	data := line(0x77)
	sm.WriteLineOTP(0x1000, data)
	sm.WriteLineOTP(0x2000, data)
	a, _ := sm.RawLine(0x1000)
	b, _ := sm.RawLine(0x2000)
	if bytes.Equal(a, b) {
		t.Error("identical OTP ciphertexts at different addresses")
	}
	// ...whereas XOM-style direct (ECB) encryption leaks the repetition —
	// the motivating weakness.
	sm2 := newSecureMem(t, desCipher(t))
	sm2.WriteLineDirect(0x1000, data)
	sm2.WriteLineDirect(0x2000, data)
	a2, _ := sm2.RawLine(0x1000)
	b2, _ := sm2.RawLine(0x2000)
	if !bytes.Equal(a2, b2) {
		t.Error("direct encryption should repeat for repeated values (that is XOM's leak)")
	}
}

func TestSecureMemoryDirectRoundTrip(t *testing.T) {
	sm := newSecureMem(t, aesCipher(t))
	data := line(0x5A)
	if err := sm.WriteLineDirect(0x3000, data); err != nil {
		t.Fatal(err)
	}
	got, err := sm.ReadLine(0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("direct round trip failed")
	}
	if sm.Mode(0x3000) != ModeDirect {
		t.Error("mode not direct")
	}
}

func TestSecureMemoryPlain(t *testing.T) {
	sm := newSecureMem(t, desCipher(t))
	data := line(0x11)
	sm.WriteLinePlain(0x4000, data)
	raw, _ := sm.RawLine(0x4000)
	if !bytes.Equal(raw, data) {
		t.Error("plain line must be stored as-is")
	}
	got, _ := sm.ReadLine(0x4000)
	if !bytes.Equal(got, data) {
		t.Error("plain read failed")
	}
}

func TestSecureMemoryInstallOTPImage(t *testing.T) {
	// Vendor-side instruction encryption (Section 3.4.1): seq 0, VA seeds.
	sm := newSecureMem(t, desCipher(t))
	prog := make([]byte, 512)
	for i := range prog {
		prog[i] = byte(i)
	}
	if err := sm.InstallOTPImage(0x10000, prog); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 512; off += 128 {
		got, err := sm.ReadLine(0x10000 + off)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, prog[off:off+128]) {
			t.Fatalf("line at +%#x decrypts wrong", off)
		}
	}
}

func TestSecureMemoryErrors(t *testing.T) {
	sm := newSecureMem(t, desCipher(t))
	if err := sm.WriteLineOTP(0x1001, line(0)); err == nil {
		t.Error("unaligned address accepted")
	}
	if err := sm.WriteLineOTP(0x1000, make([]byte, 64)); err == nil {
		t.Error("short line accepted")
	}
	if err := sm.InstallOTPImage(0x1000, make([]byte, 100)); err == nil {
		t.Error("non-multiple image accepted")
	}
	if err := sm.InstallOTPImage(0x1001, make([]byte, 128)); err == nil {
		t.Error("unaligned image accepted")
	}
	if _, err := NewSecureMemory(mem.NewMemory(), desCipher(t), 100); err == nil {
		t.Error("line not multiple of block accepted")
	}
}

func TestSeedUniqueness(t *testing.T) {
	// (line, seq, block) triples must map to distinct seeds for realistic
	// parameters.
	seen := make(map[uint64][3]uint64)
	for _, lineVA := range []uint64{0, 128, 1 << 20, 1 << 40} {
		for _, seq := range []uint16{0, 1, 255, 65535} {
			for blk := 0; blk < 16; blk++ {
				s := Seed(lineVA, seq, blk, 8)
				key := [3]uint64{lineVA, uint64(seq), uint64(blk)}
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %v and %v -> %#x", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestEncModeString(t *testing.T) {
	if ModePlain.String() != "plain" || ModeOTP.String() != "otp" ||
		ModeDirect.String() != "direct" || EncMode(9).String() != "unknown" {
		t.Error("mode names")
	}
}
