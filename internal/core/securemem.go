package core

import (
	"fmt"
)

// BlockCipher is the pad/direct-encryption primitive (internal/crypto/des
// and internal/crypto/aes both satisfy it; so does crypto/cipher.Block).
type BlockCipher interface {
	BlockSize() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}

// Seed builds the per-block pad seed. Following Sections 3.4.1/3.4.2, the
// seed is derived from the virtual address of the cipher block (so
// neighbouring blocks get unrelated pads) and mutated by the line's
// sequence number on every write (so rewrites of the same location get
// fresh pads). Virtual addresses are assumed < 2^48, so folding the 16-bit
// sequence number into the top bits keeps (line, seq, block) → seed unique.
func Seed(lineVA uint64, seq uint16, blockIdx, blockSize int) uint64 {
	return lineVA + uint64(blockIdx*blockSize) + uint64(seq)<<48
}

// EncMode records how a line is currently represented in external memory.
type EncMode int

const (
	// ModePlain: not encrypted (shared libraries, program inputs —
	// Section 4.3).
	ModePlain EncMode = iota
	// ModeOTP: ciphertext = plaintext XOR E_K(seed) (Section 3.2).
	ModeOTP
	// ModeDirect: ciphertext = E_K(plaintext) per block, XOM-style.
	ModeDirect
)

// String names the mode.
func (m EncMode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeOTP:
		return "otp"
	case ModeDirect:
		return "direct"
	default:
		return "unknown"
	}
}

// memoryImage is the minimal functional backing store SecureMemory needs.
// internal/mem.Memory satisfies it.
type memoryImage interface {
	Read(addr uint64, dst []byte)
	Write(addr uint64, src []byte)
}

// SecureMemory is the functional (byte-accurate) view of protected external
// memory: it stores real ciphertext and reproduces the paper's encryption
// equations exactly. The timing schemes above model *when* these operations
// complete; SecureMemory models *what* the bytes are, so the examples and
// attack demos operate on genuine ciphertext.
type SecureMemory struct {
	mem       memoryImage
	cipher    BlockCipher
	lineBytes int

	// seq holds the current sequence number per line VA — architecturally
	// this is the union of the SNC and the in-memory table; the functional
	// layer does not care where the number currently lives.
	seq map[uint64]uint16
	// mode tracks the current encryption mode per line VA.
	mode map[uint64]EncMode
}

// NewSecureMemory wraps a memory image with line-granular encryption.
func NewSecureMemory(m memoryImage, cipher BlockCipher, lineBytes int) (*SecureMemory, error) {
	if lineBytes <= 0 || lineBytes%cipher.BlockSize() != 0 {
		return nil, fmt.Errorf("core: line size %d not a multiple of cipher block %d", lineBytes, cipher.BlockSize())
	}
	return &SecureMemory{
		mem:       m,
		cipher:    cipher,
		lineBytes: lineBytes,
		seq:       make(map[uint64]uint16),
		mode:      make(map[uint64]EncMode),
	}, nil
}

// LineBytes returns the configured line size.
func (s *SecureMemory) LineBytes() int { return s.lineBytes }

// Mode returns the current encryption mode of the line containing va.
func (s *SecureMemory) Mode(va uint64) EncMode { return s.mode[s.lineAddr(va)] }

// Seq returns the current sequence number of the line containing va.
func (s *SecureMemory) Seq(va uint64) uint16 { return s.seq[s.lineAddr(va)] }

func (s *SecureMemory) lineAddr(va uint64) uint64 {
	return va &^ uint64(s.lineBytes-1)
}

// pad produces the one-time pad for a whole line: E_K(seed_i) for every
// cipher block i. The seed occupies the first 8 bytes of the cipher input;
// wider blocks zero-pad (the unused bytes are constant, uniqueness comes
// from the seed).
func (s *SecureMemory) pad(lineVA uint64, seq uint16) []byte {
	bs := s.cipher.BlockSize()
	out := make([]byte, s.lineBytes)
	in := make([]byte, bs)
	for i := 0; i < s.lineBytes/bs; i++ {
		seed := Seed(lineVA, seq, i, bs)
		for j := 0; j < 8; j++ {
			in[j] = byte(seed >> (8 * j))
		}
		for j := 8; j < bs; j++ {
			in[j] = 0
		}
		s.cipher.Encrypt(out[i*bs:(i+1)*bs], in)
	}
	return out
}

func xorInto(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

func (s *SecureMemory) checkLine(va uint64, data []byte) error {
	if va%uint64(s.lineBytes) != 0 {
		return fmt.Errorf("core: address %#x not line aligned", va)
	}
	if data != nil && len(data) != s.lineBytes {
		return fmt.Errorf("core: data length %d != line size %d", len(data), s.lineBytes)
	}
	return nil
}

// WriteLineOTP encrypts data with a fresh one-time pad (incrementing the
// line's sequence number, paper equations 4-6) and stores the ciphertext.
func (s *SecureMemory) WriteLineOTP(lineVA uint64, data []byte) error {
	if err := s.checkLine(lineVA, data); err != nil {
		return err
	}
	s.seq[lineVA]++
	ct := make([]byte, s.lineBytes)
	xorInto(ct, data, s.pad(lineVA, s.seq[lineVA]))
	s.mem.Write(lineVA, ct)
	s.mode[lineVA] = ModeOTP
	return nil
}

// WriteLineDirect encrypts data block-by-block with the cipher itself
// (XOM-style ECB) and stores the ciphertext. Used for uncovered lines under
// the no-replacement policy and for spilled sequence numbers.
func (s *SecureMemory) WriteLineDirect(lineVA uint64, data []byte) error {
	if err := s.checkLine(lineVA, data); err != nil {
		return err
	}
	bs := s.cipher.BlockSize()
	ct := make([]byte, s.lineBytes)
	for i := 0; i < s.lineBytes/bs; i++ {
		s.cipher.Encrypt(ct[i*bs:(i+1)*bs], data[i*bs:(i+1)*bs])
	}
	s.mem.Write(lineVA, ct)
	s.mode[lineVA] = ModeDirect
	return nil
}

// WriteLinePlain stores data unencrypted (shared library code, program
// inputs — Section 4.3).
func (s *SecureMemory) WriteLinePlain(lineVA uint64, data []byte) error {
	if err := s.checkLine(lineVA, data); err != nil {
		return err
	}
	s.mem.Write(lineVA, data)
	s.mode[lineVA] = ModePlain
	return nil
}

// InstallOTPImage stores a vendor-prepared OTP ciphertext for an
// instruction region: the vendor encrypted it against virtual addresses
// with sequence number 0 (Section 3.4.1). data is plaintext; it is
// encrypted here as the vendor tool would.
func (s *SecureMemory) InstallOTPImage(baseVA uint64, data []byte) error {
	if baseVA%uint64(s.lineBytes) != 0 {
		return fmt.Errorf("core: base %#x not line aligned", baseVA)
	}
	if len(data)%s.lineBytes != 0 {
		return fmt.Errorf("core: image length %d not line multiple", len(data))
	}
	for off := 0; off < len(data); off += s.lineBytes {
		lineVA := baseVA + uint64(off)
		ct := make([]byte, s.lineBytes)
		xorInto(ct, data[off:off+s.lineBytes], s.pad(lineVA, 0))
		s.mem.Write(lineVA, ct)
		s.mode[lineVA] = ModeOTP
		s.seq[lineVA] = 0
	}
	return nil
}

// AdoptOTPLine marks an externally installed ciphertext line (e.g. a
// vendor-encrypted image copied into memory by an untrusted loader) as
// OTP-encrypted with sequence number 0, without touching the stored bytes.
func (s *SecureMemory) AdoptOTPLine(lineVA uint64) error {
	if err := s.checkLine(lineVA, nil); err != nil {
		return err
	}
	s.mode[lineVA] = ModeOTP
	s.seq[lineVA] = 0
	return nil
}

// ReadLine fetches and decrypts the line at lineVA according to its current
// mode.
func (s *SecureMemory) ReadLine(lineVA uint64) ([]byte, error) {
	if err := s.checkLine(lineVA, nil); err != nil {
		return nil, err
	}
	raw := make([]byte, s.lineBytes)
	s.mem.Read(lineVA, raw)
	switch s.mode[lineVA] {
	case ModePlain:
		return raw, nil
	case ModeOTP:
		pt := make([]byte, s.lineBytes)
		xorInto(pt, raw, s.pad(lineVA, s.seq[lineVA]))
		return pt, nil
	case ModeDirect:
		bs := s.cipher.BlockSize()
		pt := make([]byte, s.lineBytes)
		for i := 0; i < s.lineBytes/bs; i++ {
			s.cipher.Decrypt(pt[i*bs:(i+1)*bs], raw[i*bs:(i+1)*bs])
		}
		return pt, nil
	default:
		return nil, fmt.Errorf("core: line %#x has unknown mode", lineVA)
	}
}

// RawLine returns the stored (cipher)text without decryption — the
// adversary's view of the bus/memory.
func (s *SecureMemory) RawLine(lineVA uint64) ([]byte, error) {
	if err := s.checkLine(lineVA, nil); err != nil {
		return nil, err
	}
	raw := make([]byte, s.lineBytes)
	s.mem.Read(lineVA, raw)
	return raw, nil
}
