package core

import (
	"secureproc/internal/crypto/engine"
	"secureproc/internal/integrity"
	"secureproc/internal/mem"
	"secureproc/internal/stats"
)

// OTPMAC layers integrity verification (a keyed per-line MAC binding
// contents, address and sequence number — internal/integrity's Verifier,
// sized by integrity.MACSize) on top of the one-time-pad scheme, answering
// the question the paper scopes out: what does integrity checking cost on
// the timing path?
//
// The model, per Gassend et al.'s cached-tree observation that hot
// integrity metadata lives on chip:
//
//   - SNC query hit  -> the line's MAC is co-resident in the on-chip
//     metadata cache: verification hashes the line as it arrives, no extra
//     traffic.
//   - SNC query miss -> the MAC is fetched from the off-chip MAC table
//     alongside the sequence number (one SrcMACFetch bus read);
//     verification starts when both line and MAC are in.
//   - Writeback with covered metadata -> MAC recomputed in the write
//     buffer's shadow, no extra traffic.
//   - Writeback with uncovered metadata -> the refreshed MAC drains to the
//     MAC table through the write buffer (one SrcMACUpdate bus write).
//
// The verify policy decides whether reads wait for the check
// (VerifyBlocking) or retire it in the background while the pipeline
// consumes the data speculatively (VerifyOverlap, Gassend-style). Both
// policies charge identical traffic and MAC-unit occupancy; only the
// read-ready cycle differs. Verification itself always happens, so the
// verified counter and the would-be stall cycles are reported either way.
type OTPMAC struct {
	*OTP
	policy  integrity.VerifyPolicy
	macUnit *engine.Engine // pipelined hash unit checking/producing MACs

	// drainMACUpdate is bound once at construction so steady-state MAC
	// refreshes pass a preallocated closure to the write buffer.
	drainMACUpdate func(uint64) uint64

	macFetches  uint64
	macUpdates  uint64
	verified    uint64
	stallCycles uint64 // cycles verification extends past the OTP-ready cycle
}

// NewOTPMAC wraps an OTP scheme with MAC verification under the given
// policy; verifyLatency is the MAC unit's per-line hash latency.
func NewOTPMAC(otp *OTP, policy integrity.VerifyPolicy, verifyLatency uint64) *OTPMAC {
	m := &OTPMAC{
		OTP:    otp,
		policy: policy,
		macUnit: engine.New(engine.Config{
			Latency:            verifyLatency,
			InitiationInterval: 1,
			Ports:              1,
		}),
	}
	m.drainMACUpdate = func(start uint64) uint64 {
		return m.bus.Write(start, mem.SrcMACUpdate)
	}
	return m
}

// Name implements Scheme.
func (m *OTPMAC) Name() string {
	if m.policy == integrity.VerifyBlocking {
		return "OTP+MAC-blk"
	}
	return "OTP+MAC"
}

// VerifyPolicy returns the configured verification policy.
func (m *OTPMAC) VerifyPolicy() integrity.VerifyPolicy { return m.policy }

// ReadLine implements Scheme: OTP timing plus MAC fetch and verification.
//
//secsim:hotpath
func (m *OTPMAC) ReadLine(now uint64, a Access) uint64 {
	// Whether the metadata (seq number + MAC) is on chip must be decided
	// before the OTP read installs the entry. Instruction lines use
	// VA-derived constant seeds and a static MAC, always resident.
	covered := a.Instr || m.snc.Contains(m.tagged(a.VA))
	ready, arrival := m.readLine(now, a)
	macAvail := arrival
	if !covered {
		m.macFetches++
		macArrival := m.bus.Read(now, mem.SrcMACFetch)
		macAvail = max64(arrival, macArrival)
	}
	verifyDone := m.macUnit.Issue(macAvail)
	m.verified++
	if verifyDone > ready {
		m.stallCycles += verifyDone - ready
		if m.policy == integrity.VerifyBlocking {
			ready = verifyDone
		}
	}
	return ready
}

// WritebackLine implements Scheme: OTP writeback plus the MAC refresh. The
// hash happens in the write buffer's shadow; only an uncovered MAC-table
// entry costs bus traffic.
//
//secsim:hotpath
func (m *OTPMAC) WritebackLine(now uint64, a Access) uint64 {
	if a.Instr {
		return m.OTP.WritebackLine(now, a)
	}
	covered := m.snc.Contains(m.tagged(a.VA))
	cpuFree := m.OTP.WritebackLine(now, a)
	macDone := m.macUnit.Issue(now)
	if !covered {
		m.macUpdates++
		free := m.wbuf.Insert(now, macDone, m.drainMACUpdate)
		cpuFree = max64(cpuFree, free)
	}
	return cpuFree
}

// IntegrityCounters reports verification work for the Result plumbing.
func (m *OTPMAC) IntegrityCounters() (verified, stallCycles uint64) {
	return m.verified, m.stallCycles
}

// Stats implements Scheme.
func (m *OTPMAC) Stats() *stats.Set {
	s := m.OTP.Stats()
	s.Add("mac.fetches", m.macFetches)
	s.Add("mac.updates", m.macUpdates)
	s.Add("mac.verified", m.verified)
	s.Add("mac.stall_cycles", m.stallCycles)
	return s
}

// ResetStats implements Scheme.
func (m *OTPMAC) ResetStats() {
	m.OTP.ResetStats()
	m.macFetches, m.macUpdates, m.verified, m.stallCycles = 0, 0, 0, 0
}
