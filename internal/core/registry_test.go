package core

import (
	"strings"
	"testing"

	"secureproc/internal/crypto/engine"
	"secureproc/internal/integrity"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
)

func testResources() Resources {
	return Resources{
		Bus:       mem.NewBus(mem.DefaultDRAMConfig()),
		WBuf:      mem.NewWriteBuffer(8),
		Crypto:    engine.New(engine.DefaultConfig()),
		SNC:       snc.DefaultConfig(),
		LineBytes: 128,
	}
}

func TestBuiltinRegistrations(t *testing.T) {
	want := []string{"baseline", "xom", "snc-norepl", "snc-lru", "otp-mac", "otp-precompute"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("registry too small: %v", got)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("registration order: got %v, want prefix %v", got, want)
		}
	}
	if len(Descriptors()) != len(got) {
		t.Error("Descriptors/Names length mismatch")
	}
	for _, d := range Descriptors() {
		if d.Doc == "" {
			t.Errorf("%s: no doc line", d.Name)
		}
	}
}

func TestLookupAliasesAndErrors(t *testing.T) {
	for alias, want := range map[string]string{
		"LRU": "snc-lru", "otp": "snc-lru", "Base": "baseline",
		"MAC": "otp-mac", "otp-pre": "otp-precompute", " xom ": "xom",
	} {
		d, err := Lookup(alias)
		if err != nil {
			t.Errorf("Lookup(%q): %v", alias, err)
			continue
		}
		if d.Name != want {
			t.Errorf("Lookup(%q) = %q, want %q", alias, d.Name, want)
		}
	}
	_, err := Lookup("enigma")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-name error should list %q: %v", n, err)
		}
	}
}

func TestRegisterRejectsDuplicatesAndZeroValues(t *testing.T) {
	if err := Register(Descriptor{}); err == nil {
		t.Error("empty descriptor accepted")
	}
	dup := Descriptor{Name: "XOM", New: func(Resources, Params) (Scheme, error) { return nil, nil }}
	if err := Register(dup); err == nil {
		t.Error("duplicate name (case-insensitive) accepted")
	}
	aliasDup := Descriptor{
		Name:    "brand-new",
		Aliases: []string{"lru"},
		New:     func(Resources, Params) (Scheme, error) { return nil, nil },
	}
	if err := Register(aliasDup); err == nil {
		t.Error("duplicate alias accepted")
	}
	if _, err := Lookup("brand-new"); err == nil {
		t.Error("failed registration leaked into the registry")
	}
}

func TestRefParseAndCanonical(t *testing.T) {
	for in, want := range map[string]string{
		"snc-lru":                                "snc-lru",
		"otp-mac:verify=blocking":                "otp-mac:verify=blocking",
		"otp-mac:verify_lat=90, verify=blocking": "otp-mac:verify=blocking,verify_lat=90",
		"otp-mac:":                               "otp-mac",
	} {
		ref, err := ParseRef(in)
		if err != nil {
			t.Errorf("ParseRef(%q): %v", in, err)
			continue
		}
		if ref.Canonical() != want {
			t.Errorf("ParseRef(%q).Canonical() = %q, want %q", in, ref.Canonical(), want)
		}
		back, err := ParseRef(ref.Canonical())
		if err != nil || back.Canonical() != want {
			t.Errorf("canonical form %q does not round-trip", want)
		}
	}
	for _, bad := range []string{"", ":x=1", "name:broken"} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) accepted", bad)
		}
	}
}

func TestLookupRefValidatesParams(t *testing.T) {
	if _, err := LookupRef(Ref{}); err == nil || !strings.Contains(err.Error(), "no scheme selected") {
		t.Errorf("zero Ref: %v", err)
	}
	if _, err := LookupRef(Ref{Name: "baseline", Params: Params{"k": "v"}}); err == nil {
		t.Error("params accepted by parameterless scheme")
	}
	if _, err := LookupRef(Ref{Name: "otp-mac", Params: Params{"verify": "blocking", "verify_lat": "64"}}); err != nil {
		t.Errorf("valid otp-mac params rejected: %v", err)
	}
	if _, err := LookupRef(Ref{Name: "otp-mac", Params: Params{"verify_lat": "zero"}}); err == nil {
		t.Error("non-integer verify_lat accepted")
	}
}

func TestSwitchParamsValidate(t *testing.T) {
	good := []Ref{
		{Name: "snc-lru", Params: Params{"switch": "flush"}},
		{Name: "snc-lru", Params: Params{"switch": "pid"}},
		{Name: "snc-lru", Params: Params{"switch": "pid", "pidbits": "4"}},
		{Name: "snc-norepl", Params: Params{"switch": "pid"}},
		{Name: "otp-mac", Params: Params{"verify": "blocking", "switch": "pid"}},
		{Name: "otp-precompute", Params: Params{"switch": "flush"}},
	}
	for _, r := range good {
		if _, err := LookupRef(r); err != nil {
			t.Errorf("%s rejected: %v", r, err)
		}
	}
	bad := []Ref{
		{Name: "snc-lru", Params: Params{"switch": "drop"}},
		{Name: "snc-lru", Params: Params{"switch": "pid", "pidbits": "0"}},
		{Name: "snc-lru", Params: Params{"switch": "pid", "pidbits": "17"}},
		{Name: "snc-lru", Params: Params{"pidbits": "8"}}, // pidbits without pid
		{Name: "xom", Params: Params{"switch": "flush"}},  // no per-process state
	}
	for _, r := range bad {
		if _, err := LookupRef(r); err == nil {
			t.Errorf("%s accepted", r)
		}
	}
	// The built scheme carries the policy and the shrunken SNC.
	s, err := Build(Ref{Name: "snc-lru", Params: Params{"switch": "pid"}}, testResources())
	if err != nil {
		t.Fatal(err)
	}
	otp := s.(*OTP)
	if otp.SwitchPolicy() != SwitchPID {
		t.Errorf("policy = %v, want pid", otp.SwitchPolicy())
	}
	untagged := testResources().SNC.Entries()
	if got := otp.SNC().Config().Entries(); got >= untagged {
		t.Errorf("tagged SNC holds %d entries, want fewer than %d", got, untagged)
	}
}

func TestBuildConstructsEveryBuiltin(t *testing.T) {
	wantName := map[string]string{
		"baseline": "baseline", "xom": "XOM",
		"snc-norepl": "SNC-NoRepl", "snc-lru": "SNC-LRU",
		"otp-mac": "OTP+MAC", "otp-precompute": "OTP-Pre",
	}
	for _, n := range Names() {
		s, err := Build(Ref{Name: n}, testResources())
		if err != nil {
			t.Errorf("Build(%s): %v", n, err)
			continue
		}
		if want := wantName[n]; s.Name() != want {
			t.Errorf("Build(%s).Name() = %q, want %q", n, s.Name(), want)
		}
	}
	s, err := Build(Ref{Name: "otp-mac", Params: Params{"verify": "blocking"}}, testResources())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "OTP+MAC-blk" {
		t.Errorf("blocking variant name = %q", s.Name())
	}
}

// TestOTPMACTiming pins the unit-level integrity timing model: blocking
// verification delays a read by the MAC check, overlap does not, and
// uncovered lines cost a MAC fetch on the bus.
func TestOTPMACTiming(t *testing.T) {
	build := func(policy integrity.VerifyPolicy) (*OTPMAC, *mem.Bus) {
		res := testResources()
		otp, err := newOTPWith(res, snc.LRU, nil)
		if err != nil {
			t.Fatal(err)
		}
		return NewOTPMAC(otp, policy, 80), res.Bus
	}
	a := Access{PA: 0x1000, VA: 0x1000}

	blk, _ := build(integrity.VerifyBlocking)
	// Warm the SNC entry so the read is a query hit (covered metadata).
	blk.snc.TryInstall(a.VA, 1)
	ready := blk.ReadLine(0, a)
	// Covered hit: line at 108 (100 + 8 transfer), pad at 50, OTP ready at
	// 109; the 80-cycle MAC check starts at arrival → 188.
	if ready != 188 {
		t.Errorf("blocking covered read ready at %d, want 188", ready)
	}
	if v, stall := blk.IntegrityCounters(); v != 1 || stall != 79 {
		t.Errorf("counters = (%d, %d), want (1, 79)", v, stall)
	}

	ovl, bus := build(integrity.VerifyOverlap)
	ovl.snc.TryInstall(a.VA, 1)
	ready = ovl.ReadLine(0, a)
	if ready != 109 {
		t.Errorf("overlap covered read ready at %d, want 109 (OTP timing)", ready)
	}
	if v, stall := ovl.IntegrityCounters(); v != 1 || stall != 79 {
		t.Errorf("overlap still verifies in background: (%d, %d), want (1, 79)", v, stall)
	}
	if bus.MACTransactions() != 0 {
		t.Error("covered read should not fetch a MAC")
	}

	// Uncovered read: the MAC rides the bus with the sequence number.
	ovl2, bus2 := build(integrity.VerifyOverlap)
	ovl2.ReadLine(0, Access{PA: 0x2000, VA: 0x2000})
	if bus2.Transactions[mem.SrcMACFetch] != 1 {
		t.Errorf("uncovered read made %d MAC fetches, want 1", bus2.Transactions[mem.SrcMACFetch])
	}
}

// TestOTPPrePadRetention pins the precompute model: a second read of a line
// (no intervening writeback) and a read after a writeback both find the
// pad buffered, so only the XOR cycle shows; readiness never exceeds plain
// OTP's.
func TestOTPPrePadRetention(t *testing.T) {
	res := testResources()
	// A slow crypto unit makes the hidden latency visible.
	res.Crypto = engine.New(engine.Config{Latency: 300, InitiationInterval: 1, Ports: 1})
	otp, err := newOTPWith(res, snc.LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewOTPPre(otp)
	a := Access{PA: 0x1000, VA: 0x1000}
	p.snc.TryInstall(a.VA, 5)

	first := p.ReadLine(0, a)
	if first <= 109 {
		t.Errorf("cold read at %d should expose the 300-cycle pad", first)
	}
	second := p.ReadLine(1000, a)
	if second != 1000+108+1 {
		t.Errorf("warm read ready at %d, want %d (arrival+XOR)", second, 1000+108+1)
	}

	// Writeback increments the seq; its encryption pad doubles as the next
	// read's decryption pad.
	p.WritebackLine(2000, a)
	third := p.ReadLine(3000, a)
	if third != 3000+108+1 {
		t.Errorf("post-writeback read ready at %d, want %d", third, 3000+108+1)
	}
	if hits, _ := p.PadPredictions(); hits < 2 {
		t.Errorf("expected ≥2 pad-buffer hits, got %d", hits)
	}
}
