// Scheme registry: protection schemes are described by Descriptors and
// constructed by name, so adding a scheme is a registration, not a switch
// arm. The four paper schemes and the two integrity/precompute extensions
// register themselves in builtin.go; external packages may Register more.

package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
)

// Params carries free-form scheme parameters (e.g. "verify" -> "blocking").
// A nil map means "no parameters". Params travel inside Refs and must be
// treated as immutable once a Ref is built.
type Params map[string]string

// Canonical renders the parameters as a sorted "k=v,k=v" string — the
// stable identity used for memo keys and round-trippable through ParseRef.
func (p Params) Canonical() string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + p[k]
	}
	return strings.Join(parts, ",")
}

// Int reads an integer parameter, falling back to def when absent.
func (p Params) Int(key string, def int) (int, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("core: parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

// Str reads a string parameter, falling back to def when absent.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Ref names a registered scheme plus its construction parameters. The zero
// Ref is invalid (no scheme selected); build one from a descriptor name or
// via ParseRef.
type Ref struct {
	// Name is the registry name ("baseline", "snc-lru", "otp-mac", ...).
	Name string
	// Params tunes the scheme's constructor; nil for defaults.
	Params Params
}

// Canonical renders the Ref as "name" or "name:k=v,k=v" (params sorted) —
// a stable, comparable identity accepted back by ParseRef.
func (r Ref) Canonical() string {
	if ps := r.Params.Canonical(); ps != "" {
		return r.Name + ":" + ps
	}
	return r.Name
}

// String implements fmt.Stringer as the canonical form.
func (r Ref) String() string { return r.Canonical() }

// ParseRef parses "name" or "name:k=v,k=v" into a Ref. It does not consult
// the registry; pair it with Lookup to validate the name.
func ParseRef(s string) (Ref, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Ref{}, fmt.Errorf("core: empty scheme reference")
	}
	r := Ref{Name: name}
	if !hasParams {
		return r, nil
	}
	r.Params = make(Params)
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return Ref{}, fmt.Errorf("core: malformed scheme parameter %q (want k=v)", kv)
		}
		r.Params[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	if len(r.Params) == 0 {
		r.Params = nil
	}
	return r, nil
}

// Resources bundles the shared machine components a scheme constructor may
// wire into: the memory bus, the write buffer, the crypto engine, the SNC
// configuration (the scheme decides whether to instantiate an SNC) and the
// L2 line size.
type Resources struct {
	Bus    *mem.Bus
	WBuf   *mem.WriteBuffer
	Crypto *engine.Engine
	// SNC is the sequence-number-cache configuration from the system
	// config; schemes that use an SNC call snc.New on (a copy of) it.
	SNC snc.Config
	// LineBytes is the L2 line size the scheme protects.
	LineBytes int
}

// Descriptor describes one registrable protection scheme.
type Descriptor struct {
	// Name is the canonical registry name (lower-case, hyphenated).
	Name string
	// Doc is a one-line description printed by CLI listings.
	Doc string
	// Aliases are alternative lookup names ("lru" for "snc-lru").
	Aliases []string
	// NeedsSNC marks schemes whose configuration validation must include
	// the SNC (size, line-size match with L2).
	NeedsSNC bool
	// CheckParams validates construction parameters without building the
	// scheme. A nil CheckParams means the scheme accepts no parameters.
	CheckParams func(Params) error
	// New constructs the scheme over the shared resources.
	New func(Resources, Params) (Scheme, error)
}

// checkParams applies CheckParams, defaulting to "no parameters accepted".
func (d Descriptor) checkParams(p Params) error {
	if d.CheckParams != nil {
		return d.CheckParams(p)
	}
	if len(p) > 0 {
		return fmt.Errorf("core: scheme %q accepts no parameters (got %s)", d.Name, p.Canonical())
	}
	return nil
}

var (
	regMu      sync.RWMutex
	regOrder   []string              // canonical names in registration order
	regByName  = map[string]string{} // lower-cased name/alias -> canonical name
	regSchemes = map[string]Descriptor{}
)

// Register adds a scheme descriptor to the registry. Names and aliases are
// case-insensitive and must be unique across the registry.
func Register(d Descriptor) error {
	if d.Name == "" || d.New == nil {
		return fmt.Errorf("core: descriptor needs a name and a constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	keys := append([]string{d.Name}, d.Aliases...)
	for _, k := range keys {
		if prev, ok := regByName[strings.ToLower(k)]; ok {
			return fmt.Errorf("core: scheme name %q already registered (by %q)", k, prev)
		}
	}
	for _, k := range keys {
		regByName[strings.ToLower(k)] = d.Name
	}
	regSchemes[d.Name] = d
	regOrder = append(regOrder, d.Name)
	return nil
}

// MustRegister is Register that panics on error, for package init time.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Lookup resolves a scheme name or alias (case-insensitive) to its
// descriptor. The error for an unknown name lists the registry contents.
func Lookup(name string) (Descriptor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	canon, ok := regByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Descriptor{}, fmt.Errorf("core: unknown scheme %q (registered: %s)",
			name, strings.Join(regOrder, ", "))
	}
	return regSchemes[canon], nil
}

// LookupRef resolves and validates a full scheme reference: the name must
// be registered and the parameters must pass the descriptor's checks.
func LookupRef(r Ref) (Descriptor, error) {
	if r.Name == "" {
		regMu.RLock()
		names := strings.Join(regOrder, ", ")
		regMu.RUnlock()
		return Descriptor{}, fmt.Errorf("core: no scheme selected (registered: %s)", names)
	}
	d, err := Lookup(r.Name)
	if err != nil {
		return Descriptor{}, err
	}
	if err := d.checkParams(r.Params); err != nil {
		return Descriptor{}, err
	}
	return d, nil
}

// Build constructs the scheme a Ref describes over the given resources.
func Build(r Ref, res Resources) (Scheme, error) {
	d, err := LookupRef(r)
	if err != nil {
		return nil, err
	}
	return d.New(res, r.Params)
}

// Names lists the registered canonical scheme names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// Descriptors lists the registered descriptors in registration order.
func Descriptors() []Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Descriptor, 0, len(regOrder))
	for _, n := range regOrder {
		out = append(out, regSchemes[n])
	}
	return out
}
