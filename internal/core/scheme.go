// Package core implements the paper's primary contribution: one-time-pad
// (counter-mode) memory encryption with a sequence number cache, plus the
// XOM direct-encryption baseline and the insecure baseline it is evaluated
// against.
//
// A Scheme sits between the L2 cache and the memory bus (paper Figures 2
// and 4) and answers two questions for every off-chip transaction:
//
//   - ReadLine: at what cycle is a missing line usable by the pipeline?
//   - WritebackLine: when may the CPU proceed past a dirty eviction?
//
// The three schemes differ only in how much cryptographic latency lands on
// the read critical path:
//
//	baseline:  mem
//	XOM:       mem + crypto                      (serial, Figure 2)
//	OTP:       MAX(mem, crypto) + 1              (parallel, Section 3.2)
//	OTP+SNC miss (LRU):    seqfetch + decrypt, then MAX(mem, crypto) + 1
//	OTP+SNC uncovered (NoRepl): mem + crypto     (XOM fallback)
package core

import (
	"fmt"
	"math"

	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
	"secureproc/internal/stats"
)

// Access identifies one line-granular off-chip transaction.
type Access struct {
	// PA is the physical line address (what the bus sees).
	PA uint64
	// VA is the virtual line address (what seeds and the SNC see,
	// paper Section 4).
	VA uint64
	// Instr marks instruction fetches, which use constant VA-derived
	// seeds and never need the SNC (Section 3.4.1).
	Instr bool
}

// Scheme is a memory-protection state machine between L2 and memory.
type Scheme interface {
	// Name returns the figure label for this scheme.
	Name() string
	// ReadLine is called for every L2 read miss issued at cycle now; it
	// returns the cycle at which the plaintext line is available to the
	// pipeline.
	ReadLine(now uint64, a Access) (ready uint64)
	// WritebackLine is called for every dirty L2 eviction at cycle now; it
	// returns the cycle at which the CPU may proceed (usually now; later
	// only when the write buffer is full).
	WritebackLine(now uint64, a Access) (cpuFree uint64)
	// Stats returns scheme-internal counters for reporting.
	Stats() *stats.Set
	// ResetStats clears counters after warmup.
	ResetStats()
}

// ContextSwitcher is an optional Scheme capability: schemes holding
// per-process security state implement it so a multiprogrammed machine can
// charge each task switch its real cost (Section 4.3). now is the cycle the
// switch happens; next is the incoming process ID. done is the cycle any
// switch-induced scheme work (e.g. an SNC flush burst) has fully drained —
// the new task may start issuing earlier, but the bus sees the traffic.
// Schemes without per-process state (baseline, XOM) simply don't implement
// it: their seeds never depend on the running process.
type ContextSwitcher interface {
	ContextSwitch(now uint64, next int) (done uint64)
}

// SwitchPolicy selects how an OTP scheme protects SNC contents across a
// task switch (the two options of Section 4.3).
type SwitchPolicy int

const (
	// SwitchFlush is option 1: every valid entry is encrypted and flushed
	// to memory at each switch; the resuming task refetches its sequence
	// numbers through query misses.
	SwitchFlush SwitchPolicy = iota
	// SwitchPID is option 2: entries carry process-ID tags and survive
	// switches. No flush traffic, but the tag bits shrink the SNC's
	// effective capacity and tasks contend for the remaining entries.
	SwitchPID
)

// String names the policy as accepted by the registry's switch= parameter.
func (p SwitchPolicy) String() string {
	switch p {
	case SwitchFlush:
		return "flush"
	case SwitchPID:
		return "pid"
	default:
		return "unknown"
	}
}

// ParseSwitchPolicy parses a switch= parameter value.
func ParseSwitchPolicy(s string) (SwitchPolicy, error) {
	switch s {
	case "flush":
		return SwitchFlush, nil
	case "pid":
		return SwitchPID, nil
	default:
		return 0, fmt.Errorf("core: unknown switch policy %q (flush, pid)", s)
	}
}

// Baseline is the insecure processor: no cryptography at all.
type Baseline struct {
	bus  *mem.Bus
	wbuf *mem.WriteBuffer

	// drainWriteback is bound once at construction so the steady-state
	// writeback path passes a preallocated closure to the write buffer.
	drainWriteback func(uint64) uint64
}

// NewBaseline builds the insecure baseline over the given memory system.
func NewBaseline(bus *mem.Bus, wbuf *mem.WriteBuffer) *Baseline {
	b := &Baseline{bus: bus, wbuf: wbuf}
	b.drainWriteback = func(start uint64) uint64 {
		return b.bus.Write(start, mem.SrcWriteback)
	}
	return b
}

// Name implements Scheme.
func (b *Baseline) Name() string { return "baseline" }

// ReadLine implements Scheme: just the memory access.
//
//secsim:hotpath
func (b *Baseline) ReadLine(now uint64, a Access) uint64 {
	return b.bus.Read(now, mem.SrcLineFill)
}

// WritebackLine implements Scheme: queue in the write buffer.
//
//secsim:hotpath
func (b *Baseline) WritebackLine(now uint64, a Access) uint64 {
	return b.wbuf.Insert(now, now, b.drainWriteback)
}

// Stats implements Scheme.
func (b *Baseline) Stats() *stats.Set { return stats.NewSet() }

// ResetStats implements Scheme.
func (b *Baseline) ResetStats() {}

// XOM models the direct-encryption architecture of [Lie et al.]: every line
// is decrypted after it arrives and encrypted before it leaves (Figure 2).
type XOM struct {
	bus    *mem.Bus
	wbuf   *mem.WriteBuffer
	crypto *engine.Engine

	drainWriteback func(uint64) uint64

	reads      uint64
	writebacks uint64
}

// NewXOM builds the XOM baseline over the given memory system and crypto
// unit.
func NewXOM(bus *mem.Bus, wbuf *mem.WriteBuffer, crypto *engine.Engine) *XOM {
	x := &XOM{bus: bus, wbuf: wbuf, crypto: crypto}
	x.drainWriteback = func(start uint64) uint64 {
		return x.bus.Write(start, mem.SrcWriteback)
	}
	return x
}

// Name implements Scheme.
func (x *XOM) Name() string { return "XOM" }

// ReadLine implements Scheme: decryption starts only after the line arrives
// — the serial critical path the paper attacks.
//
//secsim:hotpath
func (x *XOM) ReadLine(now uint64, a Access) uint64 {
	x.reads++
	arrival := x.bus.Read(now, mem.SrcLineFill)
	return x.crypto.Issue(arrival)
}

// WritebackLine implements Scheme: encryption happens while the line sits in
// the write buffer (Section 2.2), so only buffer pressure stalls the CPU.
//
//secsim:hotpath
func (x *XOM) WritebackLine(now uint64, a Access) uint64 {
	x.writebacks++
	ready := x.crypto.Issue(now)
	return x.wbuf.Insert(now, ready, x.drainWriteback)
}

// Stats implements Scheme.
func (x *XOM) Stats() *stats.Set {
	s := stats.NewSet()
	s.Add("xom.reads", x.reads)
	s.Add("xom.writebacks", x.writebacks)
	return s
}

// ResetStats implements Scheme.
func (x *XOM) ResetStats() { x.reads, x.writebacks = 0, 0 }

// OTP is the paper's scheme: pads are computed from address-derived seeds in
// parallel with the memory access; data lines carry per-line sequence
// numbers cached in the SNC.
type OTP struct {
	bus    *mem.Bus
	wbuf   *mem.WriteBuffer
	crypto *engine.Engine
	snc    *snc.SNC
	policy snc.Policy

	// switchPolicy selects the Section 4.3 context-switch option; pid is
	// the currently running process (0 until the first switch, so
	// single-program runs are untouched); pidBits is the tag width the
	// SwitchPID hardware can distinguish.
	switchPolicy SwitchPolicy
	pid          int
	pidBits      int

	// Drain closures bound once at construction (see Baseline).
	drainWriteback func(uint64) uint64
	drainSpill     func(uint64) uint64

	// seqMem is the architectural sequence-number table in (encrypted)
	// memory used by the LRU policy for spilled entries. It is the
	// functional mirror of what the timing model charges traffic for,
	// keyed by process-tagged virtual line address.
	seqMem *seqTable

	// Counters.
	instrReads   uint64
	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	directReads  uint64 // NoRepl fallback reads
	directWrites uint64 // NoRepl fallback writes
	spills       uint64
	seqFetches   uint64
	reencrypts   uint64 // seq-overflow re-keys (direct re-encryption)
	switches     uint64
}

// pidTagShift places the process ID above every virtual line address the
// workloads generate; SNC keys and seqMem keys both carry the tag so that
// identical VAs from different address spaces never alias.
const pidTagShift = 48

// tagged composes the SNC/seqMem key for a virtual line address under the
// current process. With pid 0 (single-program operation) the key is the VA
// itself.
func (o *OTP) tagged(va uint64) uint64 {
	return va | uint64(o.pid)<<pidTagShift
}

// NewOTP builds the one-time-pad scheme. The SNC's configured policy
// selects LRU vs no-replacement behaviour.
func NewOTP(bus *mem.Bus, wbuf *mem.WriteBuffer, crypto *engine.Engine, s *snc.SNC) *OTP {
	o := &OTP{
		bus:     bus,
		wbuf:    wbuf,
		crypto:  crypto,
		snc:     s,
		policy:  s.Config().Policy,
		pidBits: 16, // registry construction narrows this for switch=pid
		seqMem:  newSeqTable(s.Config().LineBytes),
	}
	o.drainWriteback = func(start uint64) uint64 {
		return o.bus.Write(start, mem.SrcWriteback)
	}
	o.drainSpill = func(start uint64) uint64 {
		return o.bus.Write(start, mem.SrcSeqNumSpill)
	}
	return o
}

// Name implements Scheme, matching the paper's figure labels.
func (o *OTP) Name() string { return o.policy.String() }

// SNC exposes the underlying sequence number cache (for reporting).
func (o *OTP) SNC() *snc.SNC { return o.snc }

// ReadLine implements Scheme.
//
//secsim:hotpath
func (o *OTP) ReadLine(now uint64, a Access) uint64 {
	ready, _ := o.readLine(now, a)
	return ready
}

// readLine is ReadLine plus the raw line-arrival cycle, which integrity
// wrappers need to time MAC verification against.
func (o *OTP) readLine(now uint64, a Access) (ready, arrival uint64) {
	if a.Instr {
		// Instructions: seed is derived from the VA alone (they are never
		// written back), so the pad always starts with the read.
		o.instrReads++
		pad := o.crypto.Issue(now)
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return max64(arrival, pad) + 1, arrival
	}
	va := o.tagged(a.VA)
	seq, hit := o.snc.Query(va)
	_ = seq
	if hit {
		o.queryHits++
		pad := o.crypto.Issue(now)
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return max64(arrival, pad) + 1, arrival
	}
	o.queryMisses++
	switch o.policy {
	case snc.LRU:
		// Algorithm 1, query-miss arm: fetch the encrypted sequence number
		// (a full memory round trip), decrypt it, then generate pads; the
		// demand line fetch proceeds in parallel.
		arrival = o.bus.Read(now, mem.SrcLineFill)
		seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
		o.seqFetches++
		seqPlain := o.crypto.Issue(seqArrival) // decrypt the seq number
		pad := o.crypto.Issue(seqPlain)        // encrypt the seeds
		o.installFetched(now, va)
		return max64(arrival, pad) + 1, arrival
	default: // NoReplacement
		if seq, ok := o.seqMem.lookup(va); ok {
			// The line was covered before a context-switch flush spilled
			// its number: its data is still pad-encrypted in memory, so the
			// read takes the LRU-style path — fetch + decrypt the spilled
			// number, then generate the pad. Re-cover the line if a vacancy
			// exists.
			arrival = o.bus.Read(now, mem.SrcLineFill)
			seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
			o.seqFetches++
			seqPlain := o.crypto.Issue(seqArrival)
			pad := o.crypto.Issue(seqPlain)
			if o.snc.TryInstall(va, seq) {
				o.seqMem.del(va)
			}
			return max64(arrival, pad) + 1, arrival
		}
		// Uncovered line: it was encrypted directly (XOM-style), so the
		// read pays the serial decrypt.
		o.directReads++
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return o.crypto.Issue(arrival), arrival
	}
}

// installFetched moves the line's sequence number from the in-memory table
// into the SNC, spilling the LRU victim back to memory (off the critical
// path, through the write buffer).
func (o *OTP) installFetched(now uint64, lineVA uint64) {
	seq := o.seqMem.get(lineVA)
	victimVA, victimSeq, evicted := o.snc.Install(lineVA, seq)
	if evicted {
		o.spill(now, victimVA, victimSeq)
	}
}

func (o *OTP) spill(now uint64, victimVA uint64, victimSeq uint16) {
	o.spills++
	o.seqMem.set(victimVA, victimSeq)
	// The spilled number is encrypted directly (Section 4.1: "we choose to
	// use encryption on the sequence numbers directly, just as the XOM
	// solution") and drains through the write buffer.
	ready := o.crypto.Issue(now)
	o.wbuf.Insert(now, ready, o.drainSpill)
}

// WritebackLine implements Scheme.
//
//secsim:hotpath
func (o *OTP) WritebackLine(now uint64, a Access) uint64 {
	if a.Instr {
		// Instruction lines are never dirty; nothing to do.
		return now
	}
	va := o.tagged(a.VA)
	if _, hit, wrapped := o.snc.Update(va); hit {
		o.updateHits++
		if wrapped {
			// The 16-bit sequence space for this line is exhausted: using
			// the wrapped number would reuse a one-time pad. The paper's
			// remedy is to re-encrypt the covered line under fresh keying
			// material, so this writeback pays a direct (serial) encryption
			// instead of the pad XOR.
			o.reencrypts++
			ready := o.crypto.Issue(now)
			return o.wbuf.Insert(now, ready, o.drainWriteback)
		}
		// Pad generation and XOR happen while the line sits in the write
		// buffer; one extra cycle for the XOR vs XOM (Section 4.2).
		pad := o.crypto.Issue(now)
		return o.wbuf.Insert(now, pad+1, o.drainWriteback)
	}
	o.updateMisses++
	switch o.policy {
	case snc.LRU:
		// Algorithm 1, update-miss arm: fetch + decrypt the stored number,
		// increment, pad, encrypt, install, spill the victim. All in the
		// write buffer's shadow.
		seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
		o.seqFetches++
		seqPlain := o.crypto.Issue(seqArrival)
		wrapped := o.seqMem.get(va) == math.MaxUint16
		o.seqMem.inc(va) // increment the architectural copy
		o.installFetched(now, va)
		if wrapped {
			// Same pad-space exhaustion as the hit path, caught on the
			// in-memory copy: count it with the SNC-observed wraps so the
			// stat covers every exhaustion, and charge the re-encryption.
			o.snc.SeqOverflows++
			o.reencrypts++
			ready := o.crypto.Issue(seqPlain)
			return o.wbuf.Insert(now, ready, o.drainWriteback)
		}
		pad := o.crypto.Issue(seqPlain)
		return o.wbuf.Insert(now, pad+1, o.drainWriteback)
	default: // NoReplacement
		if prev, ok := o.seqMem.lookup(va); ok {
			// Covered before a context-switch flush: the pad space for
			// this line continues from the spilled number — restarting at
			// 1 would reuse pads. Fetch + decrypt the stored number (write
			// buffer's shadow), increment, re-cover if possible.
			seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
			o.seqFetches++
			seqPlain := o.crypto.Issue(seqArrival)
			wrapped := prev == math.MaxUint16
			next := prev + 1
			if o.snc.TryInstall(va, next) {
				o.seqMem.del(va)
			} else {
				o.seqMem.set(va, next)
			}
			if wrapped {
				o.snc.SeqOverflows++
				o.reencrypts++
				ready := o.crypto.Issue(seqPlain)
				return o.wbuf.Insert(now, ready, o.drainWriteback)
			}
			pad := o.crypto.Issue(seqPlain)
			return o.wbuf.Insert(now, pad+1, o.drainWriteback)
		}
		if o.snc.TryInstall(va, 1) {
			// Vacancy: the line joins the one-time-pad world with a fresh
			// sequence number.
			pad := o.crypto.Issue(now)
			return o.wbuf.Insert(now, pad+1, o.drainWriteback)
		}
		// Full: direct encryption, exactly like XOM.
		o.directWrites++
		ready := o.crypto.Issue(now)
		return o.wbuf.Insert(now, ready, o.drainWriteback)
	}
}

// SwitchPolicy returns the configured Section 4.3 context-switch policy.
func (o *OTP) SwitchPolicy() SwitchPolicy { return o.switchPolicy }

// ContextSwitch implements ContextSwitcher with the configured Section 4.3
// policy.
//
// Under SwitchFlush (option 1) every valid entry is flushed to memory with
// (direct) encryption: the sequence numbers stream through the crypto unit
// and the write buffer, and the returned cycle is when the flush has fully
// drained — the new task can start issuing earlier, but the bus sees the
// spill burst. The flushed numbers land in the in-memory table under the
// outgoing process's keys, so the original task finds them again via query
// misses when it resumes.
//
// Under SwitchPID (option 2) entries are process-tagged and nothing leaves
// the chip: the switch only changes the tag every subsequent SNC key
// carries. The cost shows up as capacity, not traffic — tag bits shrink the
// SNC and co-scheduled tasks evict each other's entries through normal LRU
// pressure.
//
//secsim:hotpath
func (o *OTP) ContextSwitch(now uint64, next int) (done uint64) {
	o.switches++
	done = now
	flush := o.switchPolicy != SwitchPID
	if !flush {
		// A process ID beyond the tag width cannot be distinguished from
		// an earlier process sharing its truncated tag, so the hardware
		// must purge whenever such a process enters or leaves — option 2
		// degenerates to a flush on those edges.
		if limit := 1 << o.pidBits; o.pid >= limit || next >= limit {
			flush = true
		}
	}
	if flush {
		for _, pair := range o.snc.FlushAll() {
			lineVA, seq := pair[0], uint16(pair[1])
			o.seqMem.set(lineVA, seq)
			o.spills++
			ready := o.crypto.Issue(now)
			d := o.wbuf.Insert(now, ready, o.drainSpill)
			if d > done {
				done = d
			}
		}
	}
	o.pid = next
	return done
}

// Stats implements Scheme.
func (o *OTP) Stats() *stats.Set {
	s := stats.NewSet()
	s.Add("otp.instr_reads", o.instrReads)
	s.Add("otp.query_hits", o.queryHits)
	s.Add("otp.query_misses", o.queryMisses)
	s.Add("otp.update_hits", o.updateHits)
	s.Add("otp.update_misses", o.updateMisses)
	s.Add("otp.direct_reads", o.directReads)
	s.Add("otp.direct_writes", o.directWrites)
	s.Add("otp.spills", o.spills)
	s.Add("otp.seq_fetches", o.seqFetches)
	s.Add("otp.reencrypts", o.reencrypts)
	s.Add("otp.seq_overflows", o.snc.SeqOverflows)
	s.Add("otp.switches", o.switches)
	return s
}

// ResetStats implements Scheme.
func (o *OTP) ResetStats() {
	o.instrReads, o.queryHits, o.queryMisses = 0, 0, 0
	o.updateHits, o.updateMisses = 0, 0
	o.directReads, o.directWrites, o.spills, o.seqFetches = 0, 0, 0, 0
	o.reencrypts, o.switches = 0, 0
	o.snc.ResetStats()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
