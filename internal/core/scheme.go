// Package core implements the paper's primary contribution: one-time-pad
// (counter-mode) memory encryption with a sequence number cache, plus the
// XOM direct-encryption baseline and the insecure baseline it is evaluated
// against.
//
// A Scheme sits between the L2 cache and the memory bus (paper Figures 2
// and 4) and answers two questions for every off-chip transaction:
//
//   - ReadLine: at what cycle is a missing line usable by the pipeline?
//   - WritebackLine: when may the CPU proceed past a dirty eviction?
//
// The three schemes differ only in how much cryptographic latency lands on
// the read critical path:
//
//	baseline:  mem
//	XOM:       mem + crypto                      (serial, Figure 2)
//	OTP:       MAX(mem, crypto) + 1              (parallel, Section 3.2)
//	OTP+SNC miss (LRU):    seqfetch + decrypt, then MAX(mem, crypto) + 1
//	OTP+SNC uncovered (NoRepl): mem + crypto     (XOM fallback)
package core

import (
	"secureproc/internal/crypto/engine"
	"secureproc/internal/mem"
	"secureproc/internal/snc"
	"secureproc/internal/stats"
)

// Access identifies one line-granular off-chip transaction.
type Access struct {
	// PA is the physical line address (what the bus sees).
	PA uint64
	// VA is the virtual line address (what seeds and the SNC see,
	// paper Section 4).
	VA uint64
	// Instr marks instruction fetches, which use constant VA-derived
	// seeds and never need the SNC (Section 3.4.1).
	Instr bool
}

// Scheme is a memory-protection state machine between L2 and memory.
type Scheme interface {
	// Name returns the figure label for this scheme.
	Name() string
	// ReadLine is called for every L2 read miss issued at cycle now; it
	// returns the cycle at which the plaintext line is available to the
	// pipeline.
	ReadLine(now uint64, a Access) (ready uint64)
	// WritebackLine is called for every dirty L2 eviction at cycle now; it
	// returns the cycle at which the CPU may proceed (usually now; later
	// only when the write buffer is full).
	WritebackLine(now uint64, a Access) (cpuFree uint64)
	// Stats returns scheme-internal counters for reporting.
	Stats() *stats.Set
	// ResetStats clears counters after warmup.
	ResetStats()
}

// Baseline is the insecure processor: no cryptography at all.
type Baseline struct {
	bus  *mem.Bus
	wbuf *mem.WriteBuffer
}

// NewBaseline builds the insecure baseline over the given memory system.
func NewBaseline(bus *mem.Bus, wbuf *mem.WriteBuffer) *Baseline {
	return &Baseline{bus: bus, wbuf: wbuf}
}

// Name implements Scheme.
func (b *Baseline) Name() string { return "baseline" }

// ReadLine implements Scheme: just the memory access.
func (b *Baseline) ReadLine(now uint64, a Access) uint64 {
	return b.bus.Read(now, mem.SrcLineFill)
}

// WritebackLine implements Scheme: queue in the write buffer.
func (b *Baseline) WritebackLine(now uint64, a Access) uint64 {
	return b.wbuf.Insert(now, now, func(start uint64) uint64 {
		return b.bus.Write(start, mem.SrcWriteback)
	})
}

// Stats implements Scheme.
func (b *Baseline) Stats() *stats.Set { return stats.NewSet() }

// ResetStats implements Scheme.
func (b *Baseline) ResetStats() {}

// XOM models the direct-encryption architecture of [Lie et al.]: every line
// is decrypted after it arrives and encrypted before it leaves (Figure 2).
type XOM struct {
	bus    *mem.Bus
	wbuf   *mem.WriteBuffer
	crypto *engine.Engine

	reads      uint64
	writebacks uint64
}

// NewXOM builds the XOM baseline over the given memory system and crypto
// unit.
func NewXOM(bus *mem.Bus, wbuf *mem.WriteBuffer, crypto *engine.Engine) *XOM {
	return &XOM{bus: bus, wbuf: wbuf, crypto: crypto}
}

// Name implements Scheme.
func (x *XOM) Name() string { return "XOM" }

// ReadLine implements Scheme: decryption starts only after the line arrives
// — the serial critical path the paper attacks.
func (x *XOM) ReadLine(now uint64, a Access) uint64 {
	x.reads++
	arrival := x.bus.Read(now, mem.SrcLineFill)
	return x.crypto.Issue(arrival)
}

// WritebackLine implements Scheme: encryption happens while the line sits in
// the write buffer (Section 2.2), so only buffer pressure stalls the CPU.
func (x *XOM) WritebackLine(now uint64, a Access) uint64 {
	x.writebacks++
	ready := x.crypto.Issue(now)
	return x.wbuf.Insert(now, ready, func(start uint64) uint64 {
		return x.bus.Write(start, mem.SrcWriteback)
	})
}

// Stats implements Scheme.
func (x *XOM) Stats() *stats.Set {
	s := stats.NewSet()
	s.Add("xom.reads", x.reads)
	s.Add("xom.writebacks", x.writebacks)
	return s
}

// ResetStats implements Scheme.
func (x *XOM) ResetStats() { x.reads, x.writebacks = 0, 0 }

// OTP is the paper's scheme: pads are computed from address-derived seeds in
// parallel with the memory access; data lines carry per-line sequence
// numbers cached in the SNC.
type OTP struct {
	bus    *mem.Bus
	wbuf   *mem.WriteBuffer
	crypto *engine.Engine
	snc    *snc.SNC
	policy snc.Policy

	// seqMem is the architectural sequence-number table in (encrypted)
	// memory used by the LRU policy for spilled entries. It is the
	// functional mirror of what the timing model charges traffic for.
	seqMem map[uint64]uint16

	// Counters.
	instrReads   uint64
	queryHits    uint64
	queryMisses  uint64
	updateHits   uint64
	updateMisses uint64
	directReads  uint64 // NoRepl fallback reads
	directWrites uint64 // NoRepl fallback writes
	spills       uint64
	seqFetches   uint64
}

// NewOTP builds the one-time-pad scheme. The SNC's configured policy
// selects LRU vs no-replacement behaviour.
func NewOTP(bus *mem.Bus, wbuf *mem.WriteBuffer, crypto *engine.Engine, s *snc.SNC) *OTP {
	return &OTP{
		bus:    bus,
		wbuf:   wbuf,
		crypto: crypto,
		snc:    s,
		policy: s.Config().Policy,
		seqMem: make(map[uint64]uint16),
	}
}

// Name implements Scheme, matching the paper's figure labels.
func (o *OTP) Name() string { return o.policy.String() }

// SNC exposes the underlying sequence number cache (for reporting).
func (o *OTP) SNC() *snc.SNC { return o.snc }

// ReadLine implements Scheme.
func (o *OTP) ReadLine(now uint64, a Access) uint64 {
	ready, _ := o.readLine(now, a)
	return ready
}

// readLine is ReadLine plus the raw line-arrival cycle, which integrity
// wrappers need to time MAC verification against.
func (o *OTP) readLine(now uint64, a Access) (ready, arrival uint64) {
	if a.Instr {
		// Instructions: seed is derived from the VA alone (they are never
		// written back), so the pad always starts with the read.
		o.instrReads++
		pad := o.crypto.Issue(now)
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return max64(arrival, pad) + 1, arrival
	}
	seq, hit := o.snc.Query(a.VA)
	_ = seq
	if hit {
		o.queryHits++
		pad := o.crypto.Issue(now)
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return max64(arrival, pad) + 1, arrival
	}
	o.queryMisses++
	switch o.policy {
	case snc.LRU:
		// Algorithm 1, query-miss arm: fetch the encrypted sequence number
		// (a full memory round trip), decrypt it, then generate pads; the
		// demand line fetch proceeds in parallel.
		arrival = o.bus.Read(now, mem.SrcLineFill)
		seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
		o.seqFetches++
		seqPlain := o.crypto.Issue(seqArrival) // decrypt the seq number
		pad := o.crypto.Issue(seqPlain)        // encrypt the seeds
		o.installFetched(now, a.VA)
		return max64(arrival, pad) + 1, arrival
	default: // NoReplacement
		// Uncovered line: it was encrypted directly (XOM-style), so the
		// read pays the serial decrypt.
		o.directReads++
		arrival = o.bus.Read(now, mem.SrcLineFill)
		return o.crypto.Issue(arrival), arrival
	}
}

// installFetched moves the line's sequence number from the in-memory table
// into the SNC, spilling the LRU victim back to memory (off the critical
// path, through the write buffer).
func (o *OTP) installFetched(now uint64, lineVA uint64) {
	seq := o.seqMem[lineVA]
	victimVA, victimSeq, evicted := o.snc.Install(lineVA, seq)
	if evicted {
		o.spill(now, victimVA, victimSeq)
	}
}

func (o *OTP) spill(now uint64, victimVA uint64, victimSeq uint16) {
	o.spills++
	o.seqMem[victimVA] = victimSeq
	// The spilled number is encrypted directly (Section 4.1: "we choose to
	// use encryption on the sequence numbers directly, just as the XOM
	// solution") and drains through the write buffer.
	ready := o.crypto.Issue(now)
	o.wbuf.Insert(now, ready, func(start uint64) uint64 {
		return o.bus.Write(start, mem.SrcSeqNumSpill)
	})
}

// WritebackLine implements Scheme.
func (o *OTP) WritebackLine(now uint64, a Access) uint64 {
	if a.Instr {
		// Instruction lines are never dirty; nothing to do.
		return now
	}
	if _, hit := o.snc.Update(a.VA); hit {
		o.updateHits++
		// Pad generation and XOR happen while the line sits in the write
		// buffer; one extra cycle for the XOR vs XOM (Section 4.2).
		pad := o.crypto.Issue(now)
		return o.wbuf.Insert(now, pad+1, func(start uint64) uint64 {
			return o.bus.Write(start, mem.SrcWriteback)
		})
	}
	o.updateMisses++
	switch o.policy {
	case snc.LRU:
		// Algorithm 1, update-miss arm: fetch + decrypt the stored number,
		// increment, pad, encrypt, install, spill the victim. All in the
		// write buffer's shadow.
		seqArrival := o.bus.Read(now, mem.SrcSeqNumFetch)
		o.seqFetches++
		seqPlain := o.crypto.Issue(seqArrival)
		pad := o.crypto.Issue(seqPlain)
		o.seqMem[a.VA]++ // increment the architectural copy
		o.installFetched(now, a.VA)
		return o.wbuf.Insert(now, pad+1, func(start uint64) uint64 {
			return o.bus.Write(start, mem.SrcWriteback)
		})
	default: // NoReplacement
		if o.snc.TryInstall(a.VA, 1) {
			// Vacancy: the line joins the one-time-pad world with a fresh
			// sequence number.
			pad := o.crypto.Issue(now)
			return o.wbuf.Insert(now, pad+1, func(start uint64) uint64 {
				return o.bus.Write(start, mem.SrcWriteback)
			})
		}
		// Full: direct encryption, exactly like XOM.
		o.directWrites++
		ready := o.crypto.Issue(now)
		return o.wbuf.Insert(now, ready, func(start uint64) uint64 {
			return o.bus.Write(start, mem.SrcWriteback)
		})
	}
}

// ContextSwitch models Section 4.3's option 1 for protecting SNC contents
// across a task switch: every valid entry is flushed to memory with (direct)
// encryption. The sequence numbers stream through the crypto unit and the
// write buffer; the returned cycle is when the flush has fully drained —
// the new task can start issuing earlier, but the bus sees the spill burst.
// The flushed numbers land in the in-memory table, so the original task
// finds them again via query misses when it resumes.
func (o *OTP) ContextSwitch(now uint64) (flushDone uint64) {
	flushDone = now
	for _, pair := range o.snc.FlushAll() {
		lineVA, seq := pair[0], uint16(pair[1])
		o.seqMem[lineVA] = seq
		o.spills++
		ready := o.crypto.Issue(now)
		done := o.wbuf.Insert(now, ready, func(start uint64) uint64 {
			return o.bus.Write(start, mem.SrcSeqNumSpill)
		})
		if done > flushDone {
			flushDone = done
		}
	}
	return flushDone
}

// Stats implements Scheme.
func (o *OTP) Stats() *stats.Set {
	s := stats.NewSet()
	s.Add("otp.instr_reads", o.instrReads)
	s.Add("otp.query_hits", o.queryHits)
	s.Add("otp.query_misses", o.queryMisses)
	s.Add("otp.update_hits", o.updateHits)
	s.Add("otp.update_misses", o.updateMisses)
	s.Add("otp.direct_reads", o.directReads)
	s.Add("otp.direct_writes", o.directWrites)
	s.Add("otp.spills", o.spills)
	s.Add("otp.seq_fetches", o.seqFetches)
	return s
}

// ResetStats implements Scheme.
func (o *OTP) ResetStats() {
	o.instrReads, o.queryHits, o.queryMisses = 0, 0, 0
	o.updateHits, o.updateMisses = 0, 0
	o.directReads, o.directWrites, o.spills, o.seqFetches = 0, 0, 0, 0
	o.snc.ResetStats()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
