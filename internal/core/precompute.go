package core

import (
	"secureproc/internal/mem"
	"secureproc/internal/stats"
)

// OTPPre is the sequence-number-prediction variant of the one-time-pad
// scheme: because the pad for (address, seq) is deterministic, the chip can
// retain the pad it just computed and precompute the next-expected one —
// after a writeback increments a line's sequence number, the encryption pad
// it just generated is exactly the decryption pad the next read needs. With
// the pad already sitting in the pad buffer, an SNC hit exposes only the
// one-cycle XOR: crypto latency vanishes from the hit path entirely, making
// OTPPre the sensitivity knob for "how much of OTP's residual cost is pad
// generation?" (With the paper's 50-cycle unit against a 100-cycle memory
// the pad is usually hidden anyway; crank Crypto.Latency past the memory
// round trip and the difference appears.)
//
// On an SNC miss the true sequence number still has to be fetched and
// decrypted before the prediction can be checked; a correct prediction
// skips the dependent pad generation (one crypto latency off the miss
// chain), a wrong one falls back to the full Algorithm 1 path.
//
// The pad buffer is modelled as unbounded — an idealization that makes
// OTPPre the upper bound of what prediction can buy, which is what a
// sensitivity knob should measure.
type OTPPre struct {
	*OTP

	// padFor holds, per line VA, the sequence number whose pad is
	// precomputed and buffered for that line; absence means no prediction.
	padFor *seqTable
	// instrPad marks instruction lines whose (constant-seed) pad has been
	// generated once and retained (presence-only use of the same chunked
	// table that backs padFor).
	instrPad *seqTable

	padHits      uint64
	padMisses    uint64
	hiddenCycles uint64 // crypto cycles the buffered pads took off the critical path
}

// NewOTPPre wraps an OTP scheme with pad retention and sequence-number
// prediction.
func NewOTPPre(otp *OTP) *OTPPre {
	return &OTPPre{
		OTP:      otp,
		padFor:   newSeqTable(otp.snc.Config().LineBytes),
		instrPad: newSeqTable(otp.snc.Config().LineBytes),
	}
}

// Name implements Scheme.
func (p *OTPPre) Name() string { return "OTP-Pre" }

// ReadLine implements Scheme.
//
//secsim:hotpath
func (p *OTPPre) ReadLine(now uint64, a Access) uint64 {
	if a.Instr {
		p.instrReads++
		key := p.tagged(a.PA)
		if _, ok := p.instrPad.lookup(key); ok {
			// Constant-seed pad already buffered: only the XOR remains.
			p.padHits++
			arrival := p.bus.Read(now, mem.SrcLineFill)
			return arrival + 1
		}
		// Cold instruction line: generate and retain the pad.
		p.padMisses++
		p.instrPad.set(key, 1)
		pad := p.crypto.Issue(now)
		arrival := p.bus.Read(now, mem.SrcLineFill)
		if pad > arrival {
			p.hiddenCycles += pad - arrival // future reads of this line save this
		}
		return max64(arrival, pad) + 1
	}
	va := p.tagged(a.VA)
	seq, hit := p.snc.Query(va)
	if hit {
		p.queryHits++
		arrival := p.bus.Read(now, mem.SrcLineFill)
		if want, ok := p.padFor.lookup(va); ok && want == seq {
			// Predicted pad is buffered: the read is ready at arrival+XOR
			// no matter the crypto latency.
			p.padHits++
			return arrival + 1
		}
		// No (or stale) prediction: generate the pad now, retain it.
		p.padMisses++
		p.padFor.set(va, seq)
		pad := p.crypto.Issue(now)
		if pad > arrival {
			p.hiddenCycles += pad - arrival
		}
		return max64(arrival, pad) + 1
	}
	// SNC miss (LRU policy underneath): Algorithm 1's query-miss arm, with
	// the final pad generation skipped when the fetched sequence number
	// confirms the prediction.
	p.queryMisses++
	arrival := p.bus.Read(now, mem.SrcLineFill)
	seqArrival := p.bus.Read(now, mem.SrcSeqNumFetch)
	p.seqFetches++
	seqPlain := p.crypto.Issue(seqArrival) // decrypt the stored seq number
	trueSeq := p.seqMem.get(va)
	p.installFetched(now, va)
	if want, ok := p.padFor.lookup(va); ok && want == trueSeq {
		p.padHits++
		return max64(arrival, seqPlain) + 1
	}
	p.padMisses++
	p.padFor.set(va, trueSeq)
	pad := p.crypto.Issue(seqPlain) // generate (and retain) the pad
	if pad > max64(arrival, seqPlain) {
		p.hiddenCycles += pad - max64(arrival, seqPlain)
	}
	return max64(arrival, pad) + 1
}

// WritebackLine implements Scheme: normal OTP writeback, then record that
// the encryption pad for the incremented sequence number doubles as the
// precomputed decryption pad for the line's next read.
//
//secsim:hotpath
func (p *OTPPre) WritebackLine(now uint64, a Access) uint64 {
	cpuFree := p.OTP.WritebackLine(now, a)
	if !a.Instr {
		va := p.tagged(a.VA)
		if seq, ok := p.snc.Peek(va); ok {
			p.padFor.set(va, seq)
		} else {
			// Uncovered writeback (entry not resident): any buffered pad
			// is stale now.
			p.padFor.del(va)
		}
	}
	return cpuFree
}

// PadPredictions reports hit/miss counts of the pad buffer (diagnostics).
func (p *OTPPre) PadPredictions() (hits, misses uint64) { return p.padHits, p.padMisses }

// Stats implements Scheme.
func (p *OTPPre) Stats() *stats.Set {
	s := p.OTP.Stats()
	s.Add("pre.pad_hits", p.padHits)
	s.Add("pre.pad_misses", p.padMisses)
	s.Add("pre.hidden_cycles", p.hiddenCycles)
	return s
}

// ResetStats implements Scheme.
func (p *OTPPre) ResetStats() {
	p.OTP.ResetStats()
	p.padHits, p.padMisses, p.hiddenCycles = 0, 0, 0
}
