package core

import "math/bits"

// seqTable is the architectural in-memory sequence-number table: line VA →
// 16-bit sequence number, with explicit presence (a stored zero is distinct
// from "never spilled"). It replaces a map[uint64]uint16 on the SNC-miss
// path with a two-level structure mirroring internal/mem's page directory:
// a sparse chunk map on top, dense per-chunk arrays plus a presence bitmap
// below, and a last-chunk cache so the streaky line addresses the workloads
// generate resolve in two compares and two array loads.
type seqTable struct {
	chunks    map[uint64]*seqChunk
	lastCN    uint64
	lastChunk *seqChunk
	lineShift uint

	// hashScratch holds the sorted chunk numbers during hashInto so that
	// repeated boundary-state hashing is allocation-free in steady state.
	hashScratch []uint64
}

// seqChunkBits is the log2 of lines per chunk: 512 lines × 128B span 64KB
// of address space per chunk.
const seqChunkBits = 9

type seqChunk struct {
	present [1 << seqChunkBits / 64]uint64
	seq     [1 << seqChunkBits]uint16
}

// newSeqTable builds an empty table for the given line size (a power of
// two; the chunk index is taken above the line offset).
func newSeqTable(lineBytes int) *seqTable {
	return &seqTable{
		chunks:    make(map[uint64]*seqChunk),
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
	}
}

// chunk returns the chunk covering va (creating it if create), plus va's
// line index within it.
func (t *seqTable) chunk(va uint64, create bool) (*seqChunk, uint64) {
	line := va >> t.lineShift
	idx := line & (1<<seqChunkBits - 1)
	cn := line >> seqChunkBits
	if t.lastChunk != nil && cn == t.lastCN {
		return t.lastChunk, idx
	}
	ch := t.chunks[cn]
	if ch == nil {
		if !create {
			return nil, idx
		}
		ch = new(seqChunk) //secsim:allowalloc one-time chunk fault per 4MB region; steady state touches no new chunks
		t.chunks[cn] = ch  //secsim:allowalloc chunk directory grows only on first touch of a region
	}
	t.lastCN, t.lastChunk = cn, ch
	return ch, idx
}

// lookup returns the stored number and whether va has one.
func (t *seqTable) lookup(va uint64) (uint16, bool) {
	ch, idx := t.chunk(va, false)
	if ch == nil || ch.present[idx>>6]&(1<<(idx&63)) == 0 {
		return 0, false
	}
	return ch.seq[idx], true
}

// get returns the stored number, zero when absent (map-read semantics).
func (t *seqTable) get(va uint64) uint16 {
	v, _ := t.lookup(va)
	return v
}

// set stores v for va, marking it present.
func (t *seqTable) set(va uint64, v uint16) {
	ch, idx := t.chunk(va, true)
	ch.present[idx>>6] |= 1 << (idx & 63)
	ch.seq[idx] = v
}

// inc adds one to va's number (installing 1 when absent, like a map's
// self-increment of a missing key — the array cell may hold a stale value
// from a deleted entry, so absence must reset it, not increment it).
func (t *seqTable) inc(va uint64) {
	ch, idx := t.chunk(va, true)
	if ch.present[idx>>6]&(1<<(idx&63)) == 0 {
		ch.present[idx>>6] |= 1 << (idx & 63)
		ch.seq[idx] = 1
		return
	}
	ch.seq[idx]++
}

// del removes va's number.
func (t *seqTable) del(va uint64) {
	ch, idx := t.chunk(va, false)
	if ch != nil {
		ch.present[idx>>6] &^= 1 << (idx & 63)
	}
}
