package workload

import (
	"sync"
	"testing"
)

func TestAllProfilesValidate(t *testing.T) {
	profs := Profiles()
	if len(profs) != 11 {
		t.Fatalf("got %d profiles, want 11 (the paper's benchmark set)", len(profs))
	}
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestBenchmarkNamesMatchProfiles(t *testing.T) {
	for _, name := range BenchmarkNames {
		p, ok := ByName(name)
		if !ok {
			t.Errorf("no profile for %q", name)
			continue
		}
		if p.Name != name {
			t.Errorf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should fail for unknown names")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	region := Region{Base: 0, Size: 1024, Pattern: RandomPattern, Weight: 1}
	bad := []Profile{
		{},          // no name
		{Name: "x"}, // no phases
		{Name: "x", Phases: []Phase{{Refs: 0, Regions: []Region{region}}}},
		{Name: "x", Phases: []Phase{{Refs: 1}}}, // no regions
		{Name: "x", Phases: []Phase{{Refs: 1, Regions: []Region{{Size: 0, Weight: 1}}}}},
		{Name: "x", Phases: []Phase{{Refs: 1, Regions: []Region{{Size: 8, Weight: -1}}}}},
		{Name: "x", Phases: []Phase{{Refs: 1, Regions: []Region{{Size: 8, Weight: 0}}}}},
		{Name: "x", IFetchFrac: 0.1, Phases: []Phase{{Refs: 1, Regions: []Region{region}}}}, // no code size
		{Name: "x", Phases: []Phase{ // warmup after measured
			{Refs: 1, Regions: []Region{region}},
			{Refs: 1, Regions: []Region{region}, Warmup: true},
		}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] validated", i)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	p, _ := ByName("gzip")
	s1, err := NewStream(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewStream(p, 0.05)
	r1 := Collect(s1)
	r2 := Collect(s2)
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("lengths %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestStreamScale(t *testing.T) {
	p, _ := ByName("vpr")
	small := Collect(mustStream(t, p, 0.1))
	large := Collect(mustStream(t, p, 0.2))
	// Warmup is fixed; measured refs double.
	w := p.WarmupRefs()
	smallMeasured := len(small) - w
	largeMeasured := len(large) - w
	if largeMeasured < smallMeasured*3/2 {
		t.Errorf("scale did not grow measured refs: %d vs %d", smallMeasured, largeMeasured)
	}
	if _, err := NewStream(p, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func mustStream(t *testing.T, p Profile, scale float64) Stream {
	t.Helper()
	s, err := NewStream(p, scale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWarmupRefsCountsOnlyWarmupPhases(t *testing.T) {
	p := Profile{
		Name: "t",
		Phases: []Phase{
			{Refs: 100, Warmup: true, Regions: []Region{{Size: 1024, Weight: 1}}},
			{Refs: 50, Regions: []Region{{Size: 1024, Weight: 1}}},
		},
	}
	if got := p.WarmupRefs(); got != 100 {
		t.Errorf("WarmupRefs = %d, want 100", got)
	}
}

func TestRecordsLandInDeclaredRegions(t *testing.T) {
	for _, p := range Profiles() {
		// Collect region+code bounds.
		type bound struct{ lo, hi uint64 }
		var bounds []bound
		for _, ph := range p.Phases {
			for _, r := range ph.Regions {
				bounds = append(bounds, bound{r.Base, r.Base + r.Size})
			}
		}
		if p.CodeSize > 0 {
			bounds = append(bounds, bound{p.CodeBase, p.CodeBase + p.CodeSize})
		}
		s := mustStream(t, p, 0.02)
		n := 0
		for {
			rec, ok := s.Next()
			if !ok {
				break
			}
			n++
			found := false
			for _, b := range bounds {
				if rec.Addr >= b.lo && rec.Addr < b.hi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: record addr %#x outside all regions", p.Name, rec.Addr)
			}
		}
		if n == 0 {
			t.Fatalf("%s: empty stream", p.Name)
		}
	}
}

func TestPointerChaseRecordsDependent(t *testing.T) {
	p := Profile{
		Name: "chase",
		Seed: 1,
		Phases: []Phase{{
			Refs: 1000,
			Regions: []Region{
				{Base: 0, Size: 1 << 20, Pattern: PointerChasePattern, Weight: 1},
			},
		}},
	}
	s := mustStream(t, p, 1)
	deps, loads := 0, 0
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if rec.Kind == Load {
			loads++
			if rec.Depends {
				deps++
			}
		}
	}
	if loads == 0 || deps != loads {
		t.Errorf("pointer chase: %d/%d loads dependent", deps, loads)
	}
}

func TestSequentialPatternStrides(t *testing.T) {
	p := Profile{
		Name: "seq",
		Seed: 2,
		Phases: []Phase{{
			Refs: 10,
			Regions: []Region{
				{Base: 0x1000, Size: 4096, Pattern: SequentialPattern, Stride: 128, Weight: 1},
			},
		}},
	}
	s := mustStream(t, p, 1)
	want := uint64(0x1000)
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if rec.Addr != want {
			t.Fatalf("addr %#x, want %#x", rec.Addr, want)
		}
		want += 128
	}
}

func TestStoreFractionRoughlyHonored(t *testing.T) {
	p := Profile{
		Name: "st",
		Seed: 3,
		Phases: []Phase{{
			Refs: 20000,
			Regions: []Region{
				{Base: 0, Size: 1 << 20, Pattern: RandomPattern, Weight: 1, StoreFrac: 0.5},
			},
		}},
	}
	s := mustStream(t, p, 1)
	stores, total := 0, 0
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		total++
		if rec.Kind == Store {
			stores++
		}
	}
	frac := float64(stores) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("store fraction %.3f, want ~0.5", frac)
	}
}

func TestIFetchEmission(t *testing.T) {
	p, _ := ByName("gcc")
	s := mustStream(t, p, 0.2)
	ifetches := 0
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if rec.Kind == IFetch {
			ifetches++
			if rec.Addr < p.CodeBase || rec.Addr >= p.CodeBase+p.CodeSize {
				t.Fatalf("ifetch outside code region: %#x", rec.Addr)
			}
		}
	}
	if ifetches == 0 {
		t.Error("gcc should emit instruction fetches")
	}
}

// TestByNameReturnsIndependentProfiles asserts the profile constructors
// hand out fully independent values: the experiment layer's worker pool
// calls ByName concurrently, and a shared Phase/Region slice would let one
// worker's stream corrupt another's trace.
func TestByNameReturnsIndependentProfiles(t *testing.T) {
	a, _ := ByName("mcf")
	b, _ := ByName("mcf")
	if &a.Phases[0] == &b.Phases[0] {
		t.Fatal("ByName returned aliased Phases slices")
	}
	a.Phases[0].Refs = -1
	a.Phases[0].Regions[0].Weight = -1
	if b.Phases[0].Refs == -1 || b.Phases[0].Regions[0].Weight == -1 {
		t.Error("mutating one profile leaked into a second ByName result")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("second profile invalid after mutating the first: %v", err)
	}
}

// TestConcurrentStreamsDeterministic generates the same profile's trace
// from several goroutines at once and checks every stream sees the
// identical deterministic record sequence (run under -race this also
// proves NewStream/Next share no mutable state across streams).
func TestConcurrentStreamsDeterministic(t *testing.T) {
	prof, _ := ByName("mcf")
	want := Collect(mustStream(t, prof, 0.02))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _ := ByName("mcf")
			s, err := NewStream(p, 0.02)
			if err != nil {
				t.Error(err)
				return
			}
			got := Collect(s)
			if len(got) != len(want) {
				t.Errorf("trace length %d, want %d", len(got), len(want))
				return
			}
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("record %d = %+v, want %+v", j, got[j], want[j])
					return
				}
			}
		}()
	}
	wg.Wait()
}
