// Package workload generates synthetic memory-reference traces that stand
// in for the paper's SPEC CPU2000 benchmarks.
//
// We cannot run SPEC binaries under a Go reproduction, so each benchmark is
// modelled as a mixture of access patterns calibrated on the four axes that
// drive every figure in the paper:
//
//  1. L2 miss density (how many misses per instruction reach the bus),
//  2. miss dependence (pointer chasing exposes full latency; streaming
//     overlaps),
//  3. L2-miss footprint vs. SNC coverage (whether sequence numbers fit in
//     32/64/128KB SNCs),
//  4. hot/cold reuse split (whether a no-replacement SNC captures the lines
//     that matter).
//
// See DESIGN.md for the per-benchmark stories behind the parameters.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind is the type of a trace record.
type Kind uint8

const (
	// Load is a data read.
	Load Kind = iota
	// Store is a data write.
	Store
	// IFetch is an instruction-stream access (distinct line address space).
	IFetch
)

// Record is one memory reference plus the compute work preceding it.
type Record struct {
	// Gap is the number of non-memory instructions issued before this
	// reference.
	Gap uint32
	// Kind classifies the reference.
	Kind Kind
	// Addr is the virtual byte address.
	Addr uint64
	// Depends marks a load that consumes the previous load's value
	// (pointer chasing).
	Depends bool
}

// Stream produces trace records until exhaustion.
type Stream interface {
	// Next returns the next record; ok=false at end of trace.
	Next() (rec Record, ok bool)
}

// Pattern selects how a region generates addresses.
type Pattern int

const (
	// SequentialPattern streams through the region with a fixed stride,
	// wrapping around (array sweeps; art, equake).
	SequentialPattern Pattern = iota
	// RandomPattern picks uniform random line-granular addresses (hash
	// tables, allocators).
	RandomPattern
	// PointerChasePattern picks random addresses with every load dependent
	// on the previous one (mcf's linked structures).
	PointerChasePattern
	// StridedPattern walks with a large power-of-two stride, wrapping —
	// pathological for set-associative SNCs (ammp in Figure 7).
	StridedPattern
)

// Region is one address range with an access behaviour.
type Region struct {
	// Base and Size delimit the region (bytes).
	Base, Size uint64
	// Pattern selects address generation.
	Pattern Pattern
	// Stride is the step for Sequential/Strided patterns (bytes).
	Stride uint64
	// Weight is the relative probability of this region being chosen for
	// a reference within its phase.
	Weight float64
	// StoreFrac is the fraction of references that are stores.
	StoreFrac float64
	// DependFrac is the fraction of loads that depend on the previous
	// load (PointerChasePattern forces 1.0).
	DependFrac float64
}

// Phase is a stretch of execution with a fixed region mixture.
type Phase struct {
	// Refs is the number of memory references the phase emits at scale 1.
	Refs int
	// Gap is the mean number of non-memory instructions between
	// references.
	Gap int
	// Regions is the mixture (weights need not sum to 1).
	Regions []Region
	// Warmup marks the phase as warm-up: the simulator runs it but
	// excludes it from measurement, mirroring the paper's 10-billion
	// instruction fast-forward. Warmup phases must precede measured ones.
	Warmup bool
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC benchmark this profile stands in for.
	Name string
	// Seed makes the trace deterministic.
	Seed int64
	// Phases run in order.
	Phases []Phase
	// CodeBase/CodeSize delimit the instruction footprint; IFetchFrac of
	// references are instruction-stream accesses walking it.
	CodeBase, CodeSize uint64
	// IFetchFrac is the fraction of references that touch the code
	// region.
	IFetchFrac float64
}

// Validate reports profile construction errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Refs <= 0 {
			return fmt.Errorf("workload %s phase %d: refs must be positive", p.Name, i)
		}
		if len(ph.Regions) == 0 {
			return fmt.Errorf("workload %s phase %d: no regions", p.Name, i)
		}
		total := 0.0
		for j, r := range ph.Regions {
			if r.Size == 0 {
				return fmt.Errorf("workload %s phase %d region %d: zero size", p.Name, i, j)
			}
			if r.Weight < 0 {
				return fmt.Errorf("workload %s phase %d region %d: negative weight", p.Name, i, j)
			}
			total += r.Weight
		}
		if total <= 0 {
			return fmt.Errorf("workload %s phase %d: zero total weight", p.Name, i)
		}
	}
	if p.IFetchFrac > 0 && p.CodeSize == 0 {
		return fmt.Errorf("workload %s: ifetch fraction without code size", p.Name)
	}
	seenMeasured := false
	for i, ph := range p.Phases {
		if !ph.Warmup {
			seenMeasured = true
		} else if seenMeasured {
			return fmt.Errorf("workload %s phase %d: warmup phase after measured phase", p.Name, i)
		}
	}
	return nil
}

// WarmupRefs returns the number of references in warmup phases. Warmup
// phases always run at full size regardless of the stream scale: they exist
// to establish cache/SNC state, which is size-dependent, not time-dependent.
func (p Profile) WarmupRefs() int {
	n := 0
	for _, ph := range p.Phases {
		if ph.Warmup {
			n += ph.Refs
		}
	}
	return n
}

// regionState holds per-region cursors.
type regionState struct {
	spec   Region
	cursor uint64
}

// generator implements Stream for a Profile.
type generator struct {
	prof    Profile
	rng     *rand.Rand
	scale   float64
	phase   int
	emitted int // refs emitted in current phase
	regions []regionState
	weights []float64
	codePos uint64
	// cursors persists sequential/strided positions across phases keyed by
	// region base, so a region revisited in a later phase continues its
	// walk instead of artificially rewinding (which would fabricate short
	// reuse distances at the warmup/measurement boundary).
	cursors map[uint64]uint64
}

// NewStream builds a deterministic trace stream for the profile. scale
// multiplies each phase's reference count (1.0 = the profile's native
// length).
func NewStream(p Profile, scale float64) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload %s: scale must be positive", p.Name)
	}
	g := &generator{
		prof:    p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		scale:   scale,
		cursors: make(map[uint64]uint64),
	}
	g.loadPhase(0)
	return g, nil
}

func (g *generator) loadPhase(i int) {
	// Save outgoing cursors before switching mixtures.
	for _, st := range g.regions {
		g.cursors[st.spec.Base] = st.cursor
	}
	g.phase = i
	g.emitted = 0
	ph := g.prof.Phases[i]
	g.regions = g.regions[:0]
	g.weights = g.weights[:0]
	sum := 0.0
	for _, r := range ph.Regions {
		g.regions = append(g.regions, regionState{spec: r, cursor: g.cursors[r.Base]})
		sum += r.Weight
		g.weights = append(g.weights, sum)
	}
	for j := range g.weights {
		g.weights[j] /= sum
	}
}

func (g *generator) phaseRefs() int {
	ph := g.prof.Phases[g.phase]
	if ph.Warmup {
		return ph.Refs // warmup establishes state; never scaled
	}
	return int(float64(ph.Refs) * g.scale)
}

// Next implements Stream.
func (g *generator) Next() (Record, bool) {
	for g.emitted >= g.phaseRefs() {
		if g.phase+1 >= len(g.prof.Phases) {
			return Record{}, false
		}
		g.loadPhase(g.phase + 1)
	}
	g.emitted++
	ph := g.prof.Phases[g.phase]

	gap := uint32(0)
	if ph.Gap > 0 {
		// Geometric-ish jitter around the mean keeps the issue stream from
		// beating against cache geometry.
		gap = uint32(g.rng.Intn(ph.Gap*2 + 1))
	}

	// Instruction-stream references walk the code region sequentially with
	// occasional jumps (function calls).
	if g.prof.IFetchFrac > 0 && g.rng.Float64() < g.prof.IFetchFrac {
		if g.rng.Float64() < 0.05 {
			g.codePos = uint64(g.rng.Int63n(int64(g.prof.CodeSize)))
		}
		addr := g.prof.CodeBase + g.codePos
		g.codePos = (g.codePos + 64) % g.prof.CodeSize
		return Record{Gap: gap, Kind: IFetch, Addr: addr}, true
	}

	// Pick a region by weight.
	x := g.rng.Float64()
	ri := len(g.weights) - 1
	for j, w := range g.weights {
		if x < w {
			ri = j
			break
		}
	}
	st := &g.regions[ri]
	spec := st.spec

	var addr uint64
	depends := false
	switch spec.Pattern {
	case SequentialPattern:
		addr = spec.Base + st.cursor
		st.cursor = (st.cursor + spec.Stride) % spec.Size
	case StridedPattern:
		addr = spec.Base + st.cursor
		st.cursor += spec.Stride
		if st.cursor >= spec.Size {
			// Wrap with a small offset so successive sweeps touch
			// neighbouring lines.
			st.cursor = (st.cursor + 8) % spec.Stride
		}
	case RandomPattern:
		addr = spec.Base + uint64(g.rng.Int63n(int64(spec.Size)))&^7
	case PointerChasePattern:
		addr = spec.Base + uint64(g.rng.Int63n(int64(spec.Size)))&^7
		depends = true
	}

	kind := Load
	if g.rng.Float64() < spec.StoreFrac {
		kind = Store
	}
	if kind == Load && !depends && spec.DependFrac > 0 {
		depends = g.rng.Float64() < spec.DependFrac
	}
	return Record{Gap: gap, Kind: kind, Addr: addr, Depends: depends}, true
}

// Collect drains a stream into a slice (test helper and small demos).
func Collect(s Stream) []Record { return collectInto(nil, s) }

// collectInto drains s appending to recs (which may carry preallocated
// capacity) — the shared body of Collect and Materialize.
func collectInto(recs []Record, s Stream) []Record {
	for {
		r, ok := s.Next()
		if !ok {
			return recs
		}
		recs = append(recs, r)
	}
}

// replay is a Stream over pre-materialized records: a cursor and a slice.
type replay struct {
	recs []Record
	i    int
}

// Next implements Stream.
func (r *replay) Next() (Record, bool) {
	if r.i >= len(r.recs) {
		return Record{}, false
	}
	rec := r.recs[r.i]
	r.i++
	return rec, true
}

// Replay wraps pre-materialized records as a Stream. Several Replay streams
// may share one record slice concurrently: the cursor is per-stream and the
// records are never written.
func Replay(recs []Record) Stream { return &replay{recs: recs} }

// Slice cuts a materialized trace into k contiguous epochs of near-equal
// length (differing by at most one record), returned as subslices of recs —
// no records are copied, and replaying the epochs in order is
// record-for-record identical to replaying recs. k greater than len(recs)
// yields empty epochs; k < 1 is treated as 1.
func Slice(recs []Record, k int) [][]Record {
	if k < 1 {
		k = 1
	}
	epochs := make([][]Record, k)
	n := len(recs)
	for i := 0; i < k; i++ {
		epochs[i] = recs[i*n/k : (i+1)*n/k]
	}
	return epochs
}

// Materialize generates the profile's full trace into a slice, producing
// exactly the records NewStream would emit at the same scale. Sweeps that
// run one benchmark under many configurations materialize the trace once
// and Replay it per run, taking trace generation (and its RNG) off the
// simulation hot path.
func Materialize(p Profile, scale float64) ([]Record, error) {
	stream, err := NewStream(p, scale)
	if err != nil {
		return nil, err
	}
	refs := p.WarmupRefs()
	for _, ph := range p.Phases {
		if !ph.Warmup {
			refs += int(float64(ph.Refs) * scale)
		}
	}
	return collectInto(make([]Record, 0, refs), stream), nil
}
