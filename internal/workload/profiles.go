package workload

// This file defines the 11 synthetic stand-ins for the paper's SPEC CPU2000
// benchmarks. Region sizes are chosen against the paper's fixed geometry:
//
//	L2:            256KB 4-way (Figure 8 grows it to 384KB 6-way)
//	SNC coverage:  2MB (32KB), 4MB (64KB), 8MB (128KB)
//
// Miss fractions are derived from the paper's measured XOM slowdowns via
// the interval model's dominant relation for dependent misses:
//
//	slowdown ≈ 50·f / ((gap+1)/4 + 100·f)
//
// where f is the L2 misses per reference; footprints are placed against the
// SNC coverage thresholds to reproduce each benchmark's Figure 5-7
// behaviour, and warmup/install ordering encodes the no-replacement
// stories. See DESIGN.md for the per-benchmark rationale.

// Address-space layout: distinct bases per logical region.
const (
	hotBase    = 0x4000_0000 // primary miss-generating working set
	hotBBase   = 0x4800_0000 // second half of a split working set
	coldBase   = 0x6000_0000 // large cold/transient footprint
	junkBase   = 0x7000_0000 // init-phase junk that poisons NoRepl SNCs
	onchipBase = 0x8000_0000 // small always-hitting state
	codeBase   = 0x0040_0000
	kb         = 1 << 10
	mb         = 1 << 20
)

// onchip returns the small hot region that absorbs the given weight with L2
// hits (models the register/L1-resident majority of references).
func onchip(weight float64) Region {
	return Region{Base: onchipBase, Size: 96 * kb, Pattern: RandomPattern, Weight: weight, StoreFrac: 0.3}
}

// fillPhase returns a warmup phase that writes every line of the region
// once, in order — used for allocator/init behaviour and to control which
// lines a no-replacement SNC captures (writebacks install SNC entries).
func fillPhase(base, size uint64) Phase {
	return Phase{
		Refs:   int(size / 128),
		Gap:    8,
		Warmup: true,
		Regions: []Region{
			{Base: base, Size: size, Pattern: SequentialPattern, Stride: 128, Weight: 1, StoreFrac: 1},
		},
	}
}

// touchPhase returns a warmup phase that reads every line of the region
// once: under the LRU policy each first read installs the line's sequence
// number, so measurement starts from SNC steady state.
func touchPhase(base, size uint64) Phase {
	return Phase{
		Refs:   int(size / 128),
		Gap:    8,
		Warmup: true,
		Regions: []Region{
			{Base: base, Size: size, Pattern: SequentialPattern, Stride: 128, Weight: 1},
		},
	}
}

// steadyPhases returns a warmup copy plus the measured phase for the same
// mixture: the warmup pass populates L2, SNC and the LRU recency state.
func steadyPhases(warmRefs, refs, gap int, regions []Region) []Phase {
	return []Phase{
		{Refs: warmRefs, Gap: gap, Warmup: true, Regions: regions},
		{Refs: refs, Gap: gap, Regions: regions},
	}
}

// BenchmarkNames lists the paper's benchmarks in figure order.
var BenchmarkNames = []string{
	"ammp", "art", "bzip2", "equake", "gcc", "gzip",
	"mcf", "mesa", "parser", "vortex", "vpr",
}

// ByName returns the profile for a paper benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Profiles returns all 11 benchmark profiles.
func Profiles() []Profile {
	return []Profile{
		ammp(), art(), bzip2(), equake(), gcc(), gzip(),
		mcf(), mesa(), parser(), vortex(), vpr(),
	}
}

// ammp: molecular dynamics. A ~3MB random working set (covered by the 64KB
// SNC, not by 32KB) plus a 128KB-strided neighbour walk whose lines all map
// to one SNC set — harmless fully associative, pathological at 32 ways
// (Figure 7's outlier). A long cold tail keeps a small LRU residual.
func ammp() Profile {
	main := []Region{
		{Base: hotBase, Size: 1800 * kb, Pattern: RandomPattern, Weight: 0.013, StoreFrac: 0.2, DependFrac: 0.8},
		{Base: hotBBase, Size: 1200 * kb, Pattern: RandomPattern, Weight: 0.004, StoreFrac: 0.2, DependFrac: 0.8},
		// 128KB stride: every line lands in SNC set 0 when the SNC is
		// 32-way (and in one L2 set, so every access misses L2).
		{Base: coldBase, Size: 6 * mb, Pattern: StridedPattern, Stride: 128 * kb, Weight: 0.005, StoreFrac: 0.2, DependFrac: 0.8},
		{Base: junkBase, Size: 5 * mb, Pattern: RandomPattern, Weight: 0.0009, StoreFrac: 0.2, DependFrac: 0.8},
		onchip(0.977),
	}
	return Profile{
		Name: "ammp",
		Seed: 101,
		Phases: append([]Phase{
			fillPhase(hotBase, 1800*kb),
			fillPhase(hotBBase, 1200*kb),
			touchPhase(junkBase, 5*mb),
			touchPhase(hotBBase, 1200*kb),
			touchPhase(hotBase, 1800*kb),
		}, steadyPhases(30_000, 200_000, 14, main)...),
	}
}

// art: neural-net image recognition. Streams repeatedly over a ~1.7MB
// weight array: the worst XOM slowdown, but the footprint fits even the
// 32KB SNC's 2MB coverage, so every SNC variant fixes it completely.
func art() Profile {
	main := []Region{
		{Base: hotBase, Size: 1700 * kb, Pattern: SequentialPattern, Stride: 128, Weight: 0.065, StoreFrac: 0.15, DependFrac: 0.85},
		onchip(0.935),
	}
	return Profile{
		Name: "art",
		Seed: 102,
		Phases: append([]Phase{
			fillPhase(hotBase, 1700*kb),
		}, steadyPhases(30_000, 200_000, 10, main)...),
	}
}

// bzip2: compression. A hot ~330KB block-sorting working set just over the
// 256KB L2 (Figure 8's 384KB L2 nearly erases its misses), written early so
// both SNC policies cover it, plus a mild 2.6MB history tail.
func bzip2() Profile {
	main := []Region{
		{Base: hotBase, Size: 460 * kb, Pattern: RandomPattern, Weight: 0.028, StoreFrac: 0.3, DependFrac: 0.8},
		{Base: coldBase, Size: 2600 * kb, Pattern: RandomPattern, Weight: 0.0006, StoreFrac: 0.3, DependFrac: 0.8},
		onchip(0.963),
	}
	return Profile{
		Name: "bzip2",
		Seed: 103,
		Phases: append([]Phase{
			fillPhase(hotBase, 460*kb),
			fillPhase(coldBase, 2600*kb),
			touchPhase(hotBase, 460*kb),
		}, steadyPhases(40_000, 200_000, 14, main)...),
	}
}

// equake: seismic FEM. Initialises a ~2.6MB mesh with writes (so a
// no-replacement SNC captures exactly the right lines), then random
// element updates over it: covered at 4MB (≈0% residual), ~23% uncovered
// at the 32KB SNC's 2MB — Figure 6's cliff.
func equake() Profile {
	main := []Region{
		{Base: hotBase, Size: 2600 * kb, Pattern: RandomPattern, Weight: 0.015, StoreFrac: 0.25, DependFrac: 0.8},
		onchip(0.985),
	}
	return Profile{
		Name: "equake",
		Seed: 104,
		Phases: append([]Phase{
			fillPhase(hotBase, 2600*kb),
		}, steadyPhases(40_000, 200_000, 14, main)...),
	}
}

// gcc: compilation. An allocation-heavy init phase writes 6MB of junk that
// permanently occupies a no-replacement SNC before the hot ~330KB working
// set exists — which is why the paper measures SNC-NoRepl ≈ XOM for gcc
// while SNC-LRU is ~1%. Figure 8: the hot set fits a 384KB L2, making
// XOM-384K *faster* than the insecure 256KB baseline.
func gcc() Profile {
	main := []Region{
		{Base: hotBase, Size: 360 * kb, Pattern: RandomPattern, Weight: 0.038, StoreFrac: 0.35, DependFrac: 0.8},
		{Base: coldBase, Size: 8 * mb, Pattern: RandomPattern, Weight: 0.0005, StoreFrac: 0.3, DependFrac: 0.8},
		onchip(0.957),
	}
	return Profile{
		Name:       "gcc",
		Seed:       105,
		CodeBase:   codeBase,
		CodeSize:   512 * kb,
		IFetchFrac: 0.004,
		Phases: append([]Phase{
			fillPhase(junkBase, 6*mb),
			touchPhase(coldBase, 8*mb),
			touchPhase(hotBase, 360*kb),
		}, steadyPhases(40_000, 200_000, 14, main)...),
	}
}

// gzip: compression with a compact working set: almost everything fits on
// chip, so all schemes are within ~1%. A sparse region just over the 64KB
// SNC's coverage produces the occasional spill/fetch pair that makes
// gzip's *relative* extra traffic the largest in Figure 9.
func gzip() Profile {
	main := []Region{
		{Base: hotBase, Size: 300 * kb, Pattern: RandomPattern, Weight: 0.0009, StoreFrac: 0.3, DependFrac: 0.8},
		{Base: coldBase, Size: 3300 * kb, Pattern: RandomPattern, Weight: 0.0004, StoreFrac: 0.4, DependFrac: 0.5},
		// Sparse scratch area: the occasional fetch/spill pair behind
		// gzip's chart-topping *relative* traffic in Figure 9.
		{Base: junkBase, Size: 16 * mb, Pattern: RandomPattern, Weight: 0.00002, StoreFrac: 0.5},
		onchip(0.9987),
	}
	return Profile{
		Name: "gzip",
		Seed: 106,
		Phases: append([]Phase{
			fillPhase(hotBase, 300*kb),
			touchPhase(coldBase, 3300*kb),
			touchPhase(hotBase, 300*kb),
		}, steadyPhases(40_000, 220_000, 14, main)...),
	}
}

// mcf: single-depot vehicle scheduling — the canonical pointer chaser.
// Hot arcs (2.2MB, written before the junk so even NoRepl covers them),
// warm nodes (1.2MB, written after the junk: LRU recovers them, NoRepl
// cannot), and a 6MB cold tail that only the 128KB SNC approaches.
func mcf() Profile {
	main := []Region{
		{Base: hotBase, Size: 1400 * kb, Pattern: PointerChasePattern, Weight: 0.026, StoreFrac: 0.15},
		{Base: hotBBase, Size: 600 * kb, Pattern: PointerChasePattern, Weight: 0.013, StoreFrac: 0.15},
		{Base: coldBase, Size: 5 * mb, Pattern: PointerChasePattern, Weight: 0.0028, StoreFrac: 0.15},
		onchip(0.9595),
	}
	return Profile{
		Name: "mcf",
		Seed: 107,
		Phases: append([]Phase{
			fillPhase(hotBase, 1400*kb), // arcs allocated first
			fillPhase(junkBase, 5*mb),   // rest of the network (junk)
			fillPhase(hotBBase, 600*kb),
			touchPhase(coldBase, 5*mb),
			touchPhase(hotBBase, 600*kb),
			touchPhase(hotBase, 1400*kb),
		}, steadyPhases(40_000, 200_000, 8, main)...),
	}
}

// mesa: software OpenGL. Nearly everything fits on chip; the paper's
// smallest slowdowns, with occasional texture misses over a region just
// past SNC coverage giving it nonzero Figure 9 relative traffic.
func mesa() Profile {
	main := []Region{
		{Base: hotBase, Size: 290 * kb, Pattern: RandomPattern, Weight: 0.0005, StoreFrac: 0.35, DependFrac: 0.7},
		{Base: coldBase, Size: 3300 * kb, Pattern: RandomPattern, Weight: 0.0002, StoreFrac: 0.5, DependFrac: 0.4},
		// Texture streaming scratch: Figure 9 relative-traffic source.
		{Base: junkBase, Size: 16 * mb, Pattern: RandomPattern, Weight: 0.00002, StoreFrac: 0.5},
		onchip(0.9992),
	}
	return Profile{
		Name: "mesa",
		Seed: 108,
		Phases: append([]Phase{
			fillPhase(hotBase, 290*kb),
			touchPhase(coldBase, 3300*kb),
			touchPhase(hotBase, 290*kb),
		}, steadyPhases(40_000, 220_000, 14, main)...),
	}
}

// parser: dictionary NLP. Half the hot parse tables are allocated before
// the dictionary junk (NoRepl covers them), half after (only LRU recovers
// them) — reproducing NoRepl ≈ half of XOM with LRU under 1%.
func parser() Profile {
	main := []Region{
		{Base: hotBase, Size: 220 * kb, Pattern: RandomPattern, Weight: 0.0115, StoreFrac: 0.3, DependFrac: 0.8},
		{Base: hotBBase, Size: 220 * kb, Pattern: RandomPattern, Weight: 0.0115, StoreFrac: 0.3, DependFrac: 0.8},
		{Base: coldBase, Size: 2500 * kb, Pattern: RandomPattern, Weight: 0.0004, StoreFrac: 0.2, DependFrac: 0.8},
		onchip(0.969),
	}
	return Profile{
		Name: "parser",
		Seed: 109,
		Phases: append([]Phase{
			fillPhase(hotBase, 220*kb),
			fillPhase(junkBase, 5*mb),
			fillPhase(hotBBase, 220*kb),
			touchPhase(coldBase, 2500*kb),
			touchPhase(hotBBase, 220*kb),
			touchPhase(hotBase, 220*kb),
		}, steadyPhases(40_000, 200_000, 14, main)...),
	}
}

// vortex: object database. A modest miss rate into a hot ~300KB store
// (Figure 8: 384KB L2 turns vortex's slowdown into a speedup), 70% of it
// allocated after the big object-heap load, so a no-replacement SNC keeps
// most of XOM's pain while LRU does well.
func vortex() Profile {
	main := []Region{
		{Base: hotBase, Size: 110 * kb, Pattern: RandomPattern, Weight: 0.0026, StoreFrac: 0.35, DependFrac: 0.8},
		{Base: hotBBase, Size: 230 * kb, Pattern: RandomPattern, Weight: 0.0065, StoreFrac: 0.35, DependFrac: 0.8},
		{Base: coldBase, Size: 3 * mb, Pattern: RandomPattern, Weight: 0.0002, StoreFrac: 0.3, DependFrac: 0.8},
		onchip(0.9905),
	}
	return Profile{
		Name:       "vortex",
		Seed:       110,
		CodeBase:   codeBase,
		CodeSize:   256 * kb,
		IFetchFrac: 0.006,
		Phases: append([]Phase{
			fillPhase(hotBase, 110*kb),
			fillPhase(junkBase, 6*mb),
			fillPhase(hotBBase, 230*kb),
			touchPhase(coldBase, 3*mb),
			touchPhase(hotBBase, 230*kb),
			touchPhase(hotBase, 110*kb),
		}, steadyPhases(40_000, 200_000, 14, main)...),
	}
}

// vpr: FPGA place & route. A stable ~340KB routing working set written
// early: high L2 miss rate that every SNC configuration covers — the paper
// measures identical slowdowns for LRU and NoRepl and a large Figure 8
// gain from the 384KB L2.
func vpr() Profile {
	main := []Region{
		{Base: hotBase, Size: 460 * kb, Pattern: RandomPattern, Weight: 0.039, StoreFrac: 0.35, DependFrac: 0.8},
		onchip(0.949),
	}
	return Profile{
		Name: "vpr",
		Seed: 111,
		Phases: append([]Phase{
			fillPhase(hotBase, 460*kb),
		}, steadyPhases(40_000, 200_000, 12, main)...),
	}
}
