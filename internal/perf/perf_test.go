package perf

import (
	"flag"
	"path/filepath"
	"testing"
)

// perfOut, when set, makes TestPerfSnapshot write the collected snapshot
// to the given path:
//
//	go test ./internal/perf -run TestPerfSnapshot -perf.out=BENCH_PR4.json
var perfOut = flag.String("perf.out", "", "write the perf snapshot to this file")

// TestPerfSnapshot runs the full harness once. It never fails on speed —
// regression gating is CI's Compare step — but it validates that every
// benchmark produced sane measurements, and optionally persists them.
func TestPerfSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("perf snapshot is not a -short test")
	}
	s := Collect()
	if len(s) == 0 {
		t.Fatal("empty snapshot")
	}
	for _, name := range s.Names() {
		m := s[name]
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", name, m.NsPerOp)
		}
		if m.AllocsPerOp < 0 {
			t.Errorf("%s: allocs/op = %v, want >= 0", name, m.AllocsPerOp)
		}
	}
	if m := s["figure-sweep"]; m.SimsPerSec <= 0 {
		t.Errorf("figure-sweep: sims/sec = %v, want > 0", m.SimsPerSec)
	}
	t.Logf("\n%s", s)
	if *perfOut != "" {
		if err := s.WriteFile(*perfOut); err != nil {
			t.Fatal(err)
		}
		t.Logf("snapshot written to %s", *perfOut)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := Snapshot{
		"a": {NsPerOp: 100, AllocsPerOp: 2, SimsPerSec: 10},
		"b": {NsPerOp: 200, AllocsPerOp: 0, SimsPerSec: 5, InstrsPerSec: 1e6},
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) || got["a"] != s["a"] || got["b"] != s["b"] {
		t.Errorf("round trip mismatch: %+v != %+v", got, s)
	}
}

func TestCompareGates(t *testing.T) {
	base := Snapshot{
		"sweep": {NsPerOp: 1000, AllocsPerOp: 50},
		"probe": {NsPerOp: 100, AllocsPerOp: 0},
	}
	// Within tolerance, fewer allocs: clean.
	cur := Snapshot{
		"sweep": {NsPerOp: 1050, AllocsPerOp: 40},
		"probe": {NsPerOp: 95, AllocsPerOp: 0},
		"new":   {NsPerOp: 9999, AllocsPerOp: 9999}, // no baseline: skipped
	}
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Errorf("clean compare flagged: %v", regs)
	}
	// 20% slower: ns/op gate trips.
	cur["sweep"] = Metric{NsPerOp: 1200, AllocsPerOp: 50}
	regs := Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Field != "ns/op" || regs[0].Name != "sweep" {
		t.Fatalf("want one sweep ns/op regression, got %v", regs)
	}
	if regs[0].Pct < 19 || regs[0].Pct > 21 {
		t.Errorf("pct = %v, want ~20", regs[0].Pct)
	}
	// One extra alloc: zero-tolerance gate trips even inside the ns window.
	cur["sweep"] = Metric{NsPerOp: 1000, AllocsPerOp: 51}
	regs = Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Field != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
	// Alloc growth from a zero baseline still trips.
	cur["sweep"] = Metric{NsPerOp: 1000, AllocsPerOp: 50}
	cur["probe"] = Metric{NsPerOp: 100, AllocsPerOp: 1}
	regs = Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Name != "probe" || regs[0].Field != "allocs/op" {
		t.Fatalf("want probe allocs/op regression, got %v", regs)
	}
}
