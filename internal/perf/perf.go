// Package perf is the repository's performance harness: it runs a fixed,
// reduced-scale slice of the paper's figure sweep plus targeted
// single-simulation probes, measures wall-clock, simulation throughput,
// instruction throughput and allocations, and emits a machine-readable
// snapshot (benchmark name → {ns/op, allocs/op, sims/sec}).
//
// The snapshot has two consumers:
//
//   - developers, via `go test ./internal/perf -run TestPerfSnapshot
//     -perf.out=BENCH.json` or `secsim -perf`, to record where the
//     simulator's speed stands;
//   - CI, which collects one snapshot on the merge-base and one on the PR
//     head and fails the build when ns/op regresses beyond a threshold or
//     allocs/op grows at all (Compare).
//
// Workloads, scales and iteration counts are fixed constants so that two
// snapshots of the same code differ only by machine noise; ns/op is taken
// as the best of Rounds runs to damp that noise further.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"secureproc/internal/dispatch"
	"secureproc/internal/experiments"
	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// Metric is one benchmark's measurement.
type Metric struct {
	// NsPerOp is the best-of-Rounds wall-clock for one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of one operation (measured
	// once, after warmup: allocation counts are deterministic).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SimsPerSec is complete simulations per second during the best round
	// (zero for benchmarks that aren't simulation-granular).
	SimsPerSec float64 `json:"sims_per_sec"`
	// InstrsPerSec is simulated instructions retired per wall-clock second
	// during the best round (zero where not meaningful).
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
}

// Snapshot maps benchmark name → measurement.
type Snapshot map[string]Metric

// Rounds is how many times each timed operation runs; NsPerOp keeps the
// fastest, which is the standard way to strip scheduler noise from a
// deterministic workload.
const Rounds = 3

// sweepScale is the workload scale of the figure-sweep benchmark — the
// same reduced scale the golden figures are generated at.
const sweepScale = 0.05

// probeScale is the workload scale of the single-simulation probes.
const probeScale = 0.1

// latencyScale is the workload scale of the end-to-end latency probes. Full
// scale, deliberately: intra-sim parallelism exists to cut the latency of
// exactly one uncached full-length request, so the probe measures that.
const latencyScale = 1.0

// latencyWorkers is the epoch/worker count of the parallel latency probe.
const latencyWorkers = 4

// Collect runs the full harness and returns the snapshot.
func Collect() Snapshot {
	s := make(Snapshot)
	s["figure-sweep"] = measureSweep()
	for _, p := range []struct {
		name   string
		scheme sim.SchemeRef
		bench  string
	}{
		{"sim-baseline-mcf", sim.SchemeBaseline, "mcf"},
		{"sim-snc-lru-mcf", sim.SchemeOTPLRU, "mcf"},
		{"sim-snc-lru-gcc", sim.SchemeOTPLRU, "gcc"},
		{"sim-xom-art", sim.SchemeXOM, "art"},
	} {
		s[p.name] = measureSim(p.scheme, p.bench)
	}
	serial, parallel := measureLatencyPair()
	s["latency-snc-lru-mcf-serial"] = serial
	s[fmt.Sprintf("latency-snc-lru-mcf-simjobs%d", latencyWorkers)] = parallel
	s["dispatch-overhead"] = measureDispatch()
	return s
}

// dispatchJobs is the batch size of the dispatch-overhead probe.
const dispatchJobs = 1024

// measureDispatch prices the dispatch layer itself: dispatchJobs trivial
// jobs from two owners pushed through a fresh Dispatcher over a
// GOMAXPROCS-slot budget, measuring pure scheduling cost (queueing,
// weighted-fair picks, slot accounting, goroutine hand-off) with no
// simulation work attached. This is the overhead every dispatched request
// pays on top of its simulation; the batch figure-sweep path never
// constructs a Dispatcher and is separately gated by figure-sweep staying
// flat.
func measureDispatch() Metric {
	return measureOp(func() (int, uint64) {
		b := dispatch.NewBudget(runtime.GOMAXPROCS(0))
		d := dispatch.NewDispatcher(b)
		ctx := context.Background() //secsim:detach perf harness runs are never cancelled
		var wg sync.WaitGroup
		wg.Add(dispatchJobs)
		for i := 0; i < dispatchJobs; i++ {
			owner := "bulk"
			if i%2 == 1 {
				owner = "interactive"
			}
			d.Submit(ctx, owner, 1+i%2, func(context.Context) { wg.Done() })
		}
		wg.Wait()
		return 0, 0
	})
}

// measureOp times op() Rounds times (after one untimed warmup for the
// allocation count) and fills the shared Metric fields. op reports how many
// simulations and simulated instructions it performed.
func measureOp(op func() (sims int, instrs uint64)) Metric {
	var m Metric
	var ms0, ms1 runtime.MemStats

	op() // untimed warmup: one-time lazy initialization must not count

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sims, instrs := op()
	runtime.ReadMemStats(&ms1)
	m.AllocsPerOp = float64(ms1.Mallocs - ms0.Mallocs)

	best := time.Duration(0)
	for r := 0; r < Rounds; r++ {
		start := time.Now()
		sims, instrs = op()
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
	}
	m.NsPerOp = float64(best.Nanoseconds())
	sec := best.Seconds()
	if sec > 0 {
		m.SimsPerSec = float64(sims) / sec
		m.InstrsPerSec = float64(instrs) / sec
	}
	return m
}

// measureSweep regenerates every figure at the golden scale with a fresh
// Runner per op, so nothing is answered from a previous round's result
// memo. The runs do fork from the process-wide post-warmup checkpoint
// cache, deliberately: the untimed warmup op populates it, so the timed
// rounds measure the forked steady state a long-lived service settles
// into — warmup simulated once per configuration, measurement phases
// re-run in full.
func measureSweep() Metric {
	return measureOp(func() (int, uint64) {
		r := experiments.NewRunner(sweepScale)
		r.Jobs = 1 // sequential: comparable across machines with any core count
		r.All()
		return int(r.Simulations()), 0
	})
}

// measureSim runs one benchmark/scheme pair end to end.
func measureSim(scheme sim.SchemeRef, bench string) Metric {
	prof, ok := workload.ByName(bench)
	if !ok {
		panic("perf: unknown benchmark " + bench)
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	return measureOp(func() (int, uint64) {
		res, err := sim.RunProfile(cfg, prof, probeScale)
		if err != nil {
			panic(err)
		}
		return 1, res.Instructions
	})
}

// measureLatencyPair times one full-scale measured phase forked from a
// shared post-warmup checkpoint — the wall-clock a long-lived service pays
// for one uncached request — twice: serially (restore + RunMeasured on one
// settled system) and epoch-parallel (a persistent sim.EpochSim with
// latencyWorkers workers). The EpochSim survives across ops, so measureOp's
// untimed warmup op doubles as the recording run and the timed rounds
// measure the warm speculation path where every predicted boundary commits.
// On a single-core machine the two probes land near parity (the epochs
// serialize); the speedup shows on multi-core runners, which is where the
// CI gate compares them.
func measureLatencyPair() (serial, parallel Metric) {
	prof, ok := workload.ByName("mcf")
	if !ok {
		panic("perf: unknown benchmark mcf")
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeOTPLRU
	recs, err := workload.Materialize(prof, latencyScale)
	if err != nil {
		panic(err)
	}
	warm := prof.WarmupRefs()
	if warm > len(recs) {
		warm = len(recs)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		panic(err)
	}
	sys.RunWarmup(workload.Replay(recs[:warm]))
	cp, ok := sys.Checkpoint()
	if !ok {
		panic("perf: snc-lru checkpoint unavailable")
	}
	serial = measureOp(func() (int, uint64) {
		if err := sys.Restore(cp); err != nil {
			panic(err)
		}
		res := sys.RunMeasured(workload.Replay(recs[warm:]))
		return 1, res.Instructions
	})
	es, err := sim.NewEpochSim(cfg, latencyWorkers)
	if err != nil {
		panic(err)
	}
	parallel = measureOp(func() (int, uint64) {
		res, err := es.RunMeasured(cp, recs[warm:], latencyWorkers)
		if err != nil {
			panic(err)
		}
		return 1, res.Instructions
	})
	return serial, parallel
}

// WriteFile stores the snapshot as deterministic, indented JSON.
func (s Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a snapshot written by WriteFile.
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return s, nil
}

// Names returns the snapshot's benchmark names, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the snapshot as a fixed-width table.
func (s Snapshot) String() string {
	out := fmt.Sprintf("%-18s %14s %12s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "sims/sec", "instrs/sec")
	for _, name := range s.Names() {
		m := s[name]
		out += fmt.Sprintf("%-18s %14.0f %12.0f %12.1f %14.0f\n",
			name, m.NsPerOp, m.AllocsPerOp, m.SimsPerSec, m.InstrsPerSec)
	}
	return out
}

// Regression is one benchmark metric that got worse than the gate allows.
type Regression struct {
	Name  string  // benchmark
	Field string  // "ns/op" or "allocs/op"
	Base  float64 // merge-base value
	Cur   float64 // PR value
	Pct   float64 // relative change in percent
}

// String renders the regression for CI logs.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f -> %.0f (%+.1f%%)", r.Name, r.Field, r.Base, r.Cur, r.Pct)
}

// Compare gates cur against base: ns/op may grow by at most nsTol
// (fractional, e.g. 0.10 for ±10%), allocs/op may not grow at all.
// Benchmarks present only on one side are skipped — they have no
// comparable baseline. The result is sorted by benchmark name.
func Compare(base, cur Snapshot, nsTol float64) []Regression {
	var regs []Regression
	for _, name := range cur.Names() {
		b, ok := base[name]
		if !ok {
			continue
		}
		c := cur[name]
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsTol) {
			regs = append(regs, Regression{
				Name: name, Field: "ns/op", Base: b.NsPerOp, Cur: c.NsPerOp,
				Pct: 100 * (c.NsPerOp/b.NsPerOp - 1),
			})
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			pct := 0.0
			if b.AllocsPerOp > 0 {
				pct = 100 * (c.AllocsPerOp/b.AllocsPerOp - 1)
			}
			regs = append(regs, Regression{
				Name: name, Field: "allocs/op", Base: b.AllocsPerOp, Cur: c.AllocsPerOp, Pct: pct,
			})
		}
	}
	return regs
}
