// Package secureproc is a full reproduction of "Fast Secure Processor for
// Inhibiting Software Piracy and Tampering" (Yang, Zhang, Gao — MICRO-36,
// 2003): one-time-pad (counter-mode) memory encryption with an on-chip
// Sequence Number Cache, evaluated against the XOM direct-encryption
// baseline on a trace-driven out-of-order processor simulator.
//
// Protection schemes live in an open registry: the four the paper
// evaluates (baseline, xom, snc-norepl, snc-lru) plus two extensions the
// registry seam enables — otp-mac, which puts MAC integrity verification
// on the timing path (the cost the paper scopes out, citing Gassend et
// al.), and otp-precompute, which bounds what sequence-number prediction
// and pad retention can recover. Any registered scheme is addressable by
// name (Schemes, SchemeByName) with optional parameters, e.g.
// "otp-mac:verify=blocking".
//
// The package is a facade over the internal packages:
//
//   - Simulation: Run one benchmark under one protection scheme and get
//     cycles, traffic, SNC and integrity statistics (RunBenchmark,
//     Compare).
//   - Experiments: regenerate any of the paper's figures — plus the
//     integrity-overhead Figure I1 — with paper-vs-measured tables
//     (Figure, AllFigures).
//   - Functional encryption: byte-accurate protected memory with real
//     DES/AES pads for end-to-end demos (NewProtectedMemory).
//
// # Quickstart
//
//	base, _ := secureproc.RunBenchmark("mcf", secureproc.Baseline, 0.3)
//	otp, _ := secureproc.RunBenchmark("mcf", secureproc.OTPLRU, 0.3)
//	fmt.Printf("slowdown: %.2f%%\n", secureproc.Slowdown(otp, base))
package secureproc

import (
	"fmt"

	"secureproc/internal/core"
	"secureproc/internal/crypto/aes"
	"secureproc/internal/crypto/des"
	"secureproc/internal/experiments"
	"secureproc/internal/mem"
	"secureproc/internal/sim"
	"secureproc/internal/workload"
)

// Scheme selects a memory-protection scheme: a registry reference (name +
// optional parameters). Use the package variables below, or resolve any
// registered name with SchemeByName.
type Scheme = sim.SchemeRef

// References to the registered schemes: the four the paper evaluates plus
// the two registry-era extensions.
var (
	// Baseline is the insecure processor (no memory encryption).
	Baseline = sim.SchemeBaseline
	// XOM is direct encryption on the memory critical path.
	XOM = sim.SchemeXOM
	// OTPLRU is one-time-pad encryption with an LRU sequence number cache
	// (the paper's best configuration).
	OTPLRU = sim.SchemeOTPLRU
	// OTPNoRepl is one-time-pad encryption with a no-replacement SNC.
	OTPNoRepl = sim.SchemeOTPNoRepl
	// OTPMAC is OTPLRU plus per-line MAC integrity verification
	// (parameters: verify=overlap|blocking, verify_lat=N cycles).
	OTPMAC = sim.SchemeOTPMAC
	// OTPPrecompute is OTPLRU plus pad retention and sequence-number
	// prediction: SNC hits hide crypto latency entirely.
	OTPPrecompute = sim.SchemeOTPPrecompute
)

// Schemes lists the registered scheme names in registration order.
func Schemes() []string { return sim.SchemeNames() }

// SchemeByName resolves a scheme reference string like "snc-lru" or
// "otp-mac:verify=blocking" against the registry (aliases accepted); the
// error for an unknown name lists every registered scheme.
func SchemeByName(name string) (Scheme, error) { return sim.SchemeByName(name) }

// Result is the outcome of one simulation run.
type Result = sim.Result

// Config is a full system configuration; see DefaultConfig.
type Config = sim.Config

// DefaultConfig returns the paper's Section 5 system: 4-issue out-of-order
// core, 32KB split L1s, 256KB 4-way 128B-line L2, 100-cycle memory,
// 50-cycle crypto unit, 64KB fully associative SNC.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Benchmarks returns the names of the 11 SPEC2000-like workloads.
func Benchmarks() []string {
	out := make([]string, len(workload.BenchmarkNames))
	copy(out, workload.BenchmarkNames)
	return out
}

// RunBenchmark simulates one benchmark under the given scheme. scale
// multiplies the measured trace length (1.0 ≈ 200K memory references;
// warmup always runs in full).
func RunBenchmark(name string, scheme Scheme, scale float64) (Result, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return Result{}, fmt.Errorf("secureproc: unknown benchmark %q (have %v)", name, workload.BenchmarkNames)
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	return sim.RunProfile(cfg, prof, scale)
}

// RunBenchmarkConfig simulates one benchmark under an explicit
// configuration.
func RunBenchmarkConfig(name string, cfg Config, scale float64) (Result, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return Result{}, fmt.Errorf("secureproc: unknown benchmark %q", name)
	}
	return sim.RunProfile(cfg, prof, scale)
}

// Slowdown returns the percent slowdown of r relative to base.
func Slowdown(r, base Result) float64 { return sim.Slowdown(r, base) }

// Comparison is the outcome of running one benchmark under every
// registered scheme.
type Comparison struct {
	Benchmark string
	Baseline  Result
	// ByScheme maps each non-baseline scheme's display name ("XOM",
	// "SNC-LRU", "OTP+MAC", ...) to its result.
	ByScheme map[string]Result
}

// SlowdownOf returns the percent slowdown for a scheme display name
// ("XOM", "SNC-LRU", "SNC-NoRepl", "OTP+MAC", "OTP-Pre").
func (c Comparison) SlowdownOf(scheme string) float64 {
	r, ok := c.ByScheme[scheme]
	if !ok {
		return 0
	}
	return sim.Slowdown(r, c.Baseline)
}

// Compare runs one benchmark under every registered scheme — the paper's
// Figure 5 for a single workload, extended to whatever the registry holds.
func Compare(name string, scale float64) (Comparison, error) {
	base, err := RunBenchmark(name, Baseline, scale)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{Benchmark: name, Baseline: base, ByScheme: make(map[string]Result)}
	for _, sn := range Schemes() {
		if sn == Baseline.Name {
			continue
		}
		r, err := RunBenchmark(name, Scheme{Name: sn}, scale)
		if err != nil {
			return Comparison{}, err
		}
		c.ByScheme[r.Scheme] = r
	}
	return c, nil
}

// FigureResult is a regenerated paper figure with paper-vs-measured series.
type FigureResult = experiments.FigureResult

// Figures lists the regenerable paper figures.
func Figures() []string { return experiments.Names() }

// Figure regenerates one figure ("fig3" … "fig10", "figI1" for the
// integrity-overhead extension, or "figC1" for the multiprogrammed
// context-switch extension) at the given workload scale.
func Figure(name string, scale float64) (FigureResult, error) {
	return experiments.NewRunner(scale).ByName(name)
}

// AllFigures regenerates the paper's complete evaluation, sharing
// simulation runs between figures.
func AllFigures(scale float64) []FigureResult {
	return experiments.NewRunner(scale).All()
}

// CipherKind selects the pad-generating block cipher for functional
// protected memory.
type CipherKind int

const (
	// CipherDES uses the from-scratch DES (8-byte blocks), the paper's
	// Section 3.4.1 choice.
	CipherDES CipherKind = iota
	// CipherAES uses the from-scratch AES-128 (16-byte blocks).
	CipherAES
)

// ProtectedMemory is a byte-accurate protected external memory implementing
// the paper's encryption equations with real ciphers. See
// internal/core.SecureMemory for the method set.
type ProtectedMemory = core.SecureMemory

// NewProtectedMemory builds a functional protected memory with the given
// pad cipher, key and line size (the paper uses 128-byte lines).
func NewProtectedMemory(kind CipherKind, key []byte, lineBytes int) (*ProtectedMemory, error) {
	var cipher core.BlockCipher
	switch kind {
	case CipherDES:
		c, err := des.NewCipher(key)
		if err != nil {
			return nil, err
		}
		cipher = c
	case CipherAES:
		c, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		cipher = c
	default:
		return nil, fmt.Errorf("secureproc: unknown cipher kind %d", kind)
	}
	return core.NewSecureMemory(mem.NewMemory(), cipher, lineBytes)
}
