package secureproc_test

import (
	"bytes"
	"testing"

	"secureproc"
)

const apiScale = 0.1

func TestBenchmarksList(t *testing.T) {
	names := secureproc.Benchmarks()
	if len(names) != 11 {
		t.Fatalf("got %d benchmarks", len(names))
	}
	if names[0] != "ammp" || names[10] != "vpr" {
		t.Errorf("unexpected order: %v", names)
	}
}

func TestRunBenchmark(t *testing.T) {
	r, err := secureproc.RunBenchmark("gzip", secureproc.Baseline, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Error("empty result")
	}
	if _, err := secureproc.RunBenchmark("nope", secureproc.Baseline, apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkConfig(t *testing.T) {
	cfg := secureproc.DefaultConfig()
	cfg.Scheme = secureproc.XOM
	cfg.Crypto.Latency = 102
	r, err := secureproc.RunBenchmarkConfig("art", cfg, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	base, err := secureproc.RunBenchmark("art", secureproc.Baseline, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	if secureproc.Slowdown(r, base) < 20 {
		t.Error("102-cycle XOM on art should be a large slowdown")
	}
	if _, err := secureproc.RunBenchmarkConfig("nope", cfg, apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCompare(t *testing.T) {
	c, err := secureproc.Compare("vpr", apiScale)
	if err != nil {
		t.Fatal(err)
	}
	if c.Benchmark != "vpr" || len(c.ByScheme) != 3 {
		t.Fatalf("comparison malformed: %+v", c)
	}
	if c.SlowdownOf("XOM") <= c.SlowdownOf("SNC-LRU") {
		t.Error("XOM should be slower than SNC-LRU for vpr")
	}
	if c.SlowdownOf("bogus") != 0 {
		t.Error("unknown scheme should yield 0")
	}
	if _, err := secureproc.Compare("nope", apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFigureAPI(t *testing.T) {
	if len(secureproc.Figures()) != 7 {
		t.Error("seven figures expected")
	}
	fr, err := secureproc.Figure("fig3", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID != "Figure 3" {
		t.Errorf("ID = %q", fr.ID)
	}
	if _, err := secureproc.Figure("fig99", 0.05); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestProtectedMemoryAPI(t *testing.T) {
	for _, tc := range []struct {
		kind secureproc.CipherKind
		key  int
	}{
		{secureproc.CipherDES, 8},
		{secureproc.CipherAES, 16},
	} {
		pm, err := secureproc.NewProtectedMemory(tc.kind, make([]byte, tc.key), 128)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xAB}, 128)
		if err := pm.WriteLineOTP(0x1000, data); err != nil {
			t.Fatal(err)
		}
		got, err := pm.ReadLine(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip failed")
		}
		raw, _ := pm.RawLine(0x1000)
		if bytes.Equal(raw, data) {
			t.Error("not encrypted")
		}
	}
	if _, err := secureproc.NewProtectedMemory(secureproc.CipherDES, make([]byte, 3), 128); err == nil {
		t.Error("bad DES key accepted")
	}
	if _, err := secureproc.NewProtectedMemory(secureproc.CipherKind(9), nil, 128); err == nil {
		t.Error("unknown cipher accepted")
	}
}
