package secureproc_test

import (
	"bytes"
	"testing"

	"secureproc"
)

const apiScale = 0.1

func TestBenchmarksList(t *testing.T) {
	names := secureproc.Benchmarks()
	if len(names) != 11 {
		t.Fatalf("got %d benchmarks", len(names))
	}
	if names[0] != "ammp" || names[10] != "vpr" {
		t.Errorf("unexpected order: %v", names)
	}
}

func TestRunBenchmark(t *testing.T) {
	r, err := secureproc.RunBenchmark("gzip", secureproc.Baseline, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Error("empty result")
	}
	if _, err := secureproc.RunBenchmark("nope", secureproc.Baseline, apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkConfig(t *testing.T) {
	cfg := secureproc.DefaultConfig()
	cfg.Scheme = secureproc.XOM
	cfg.Crypto.Latency = 102
	r, err := secureproc.RunBenchmarkConfig("art", cfg, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	base, err := secureproc.RunBenchmark("art", secureproc.Baseline, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	if secureproc.Slowdown(r, base) < 20 {
		t.Error("102-cycle XOM on art should be a large slowdown")
	}
	if _, err := secureproc.RunBenchmarkConfig("nope", cfg, apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSchemesRegistry(t *testing.T) {
	names := secureproc.Schemes()
	if len(names) != 6 {
		t.Fatalf("got %d schemes: %v", len(names), names)
	}
	if names[0] != "baseline" {
		t.Errorf("baseline must register first, got %v", names)
	}
	for _, n := range names {
		if _, err := secureproc.SchemeByName(n); err != nil {
			t.Errorf("SchemeByName(%q): %v", n, err)
		}
	}
	if _, err := secureproc.SchemeByName("vigenere"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestRunBenchmarkEveryScheme drives the facade across the full registry,
// including both new schemes, at small scale.
func TestRunBenchmarkEveryScheme(t *testing.T) {
	base, err := secureproc.RunBenchmark("gcc", secureproc.Baseline, apiScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range secureproc.Schemes() {
		ref, err := secureproc.SchemeByName(n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := secureproc.RunBenchmark("gcc", ref, apiScale)
		if err != nil {
			t.Fatalf("RunBenchmark(gcc, %s): %v", n, err)
		}
		if r.Cycles == 0 || r.Instructions != base.Instructions {
			t.Errorf("%s: malformed result (cycles=%d instrs=%d)", n, r.Cycles, r.Instructions)
		}
		if r.Cycles < base.Cycles {
			t.Errorf("%s: faster than the insecure baseline (%d < %d)", n, r.Cycles, base.Cycles)
		}
	}
	if _, err := secureproc.RunBenchmark("gcc", secureproc.Scheme{Name: "nosuch"}, apiScale); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestCompare(t *testing.T) {
	c, err := secureproc.Compare("vpr", apiScale)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered scheme except the baseline, keyed by display name.
	if c.Benchmark != "vpr" || len(c.ByScheme) != len(secureproc.Schemes())-1 {
		t.Fatalf("comparison malformed: %+v", c)
	}
	for _, display := range []string{"XOM", "SNC-NoRepl", "SNC-LRU", "OTP+MAC", "OTP-Pre"} {
		if _, ok := c.ByScheme[display]; !ok {
			t.Errorf("comparison missing %q (have %v)", display, c.ByScheme)
		}
	}
	if c.SlowdownOf("XOM") <= c.SlowdownOf("SNC-LRU") {
		t.Error("XOM should be slower than SNC-LRU for vpr")
	}
	if c.SlowdownOf("OTP-Pre") > c.SlowdownOf("SNC-LRU") {
		t.Error("pad precompute should never cost more than plain OTP")
	}
	if c.SlowdownOf("bogus") != 0 {
		t.Error("unknown scheme should yield 0")
	}
	if _, err := secureproc.Compare("nope", apiScale); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFigureAPI(t *testing.T) {
	if len(secureproc.Figures()) != 9 {
		t.Error("nine figures expected (seven paper figures + figI1 + figC1)")
	}
	fr, err := secureproc.Figure("fig3", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID != "Figure 3" {
		t.Errorf("ID = %q", fr.ID)
	}
	if _, err := secureproc.Figure("fig99", 0.05); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestProtectedMemoryAPI(t *testing.T) {
	for _, tc := range []struct {
		kind secureproc.CipherKind
		key  int
	}{
		{secureproc.CipherDES, 8},
		{secureproc.CipherAES, 16},
	} {
		pm, err := secureproc.NewProtectedMemory(tc.kind, make([]byte, tc.key), 128)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xAB}, 128)
		if err := pm.WriteLineOTP(0x1000, data); err != nil {
			t.Fatal(err)
		}
		got, err := pm.ReadLine(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip failed")
		}
		raw, _ := pm.RawLine(0x1000)
		if bytes.Equal(raw, data) {
			t.Error("not encrypted")
		}
	}
	if _, err := secureproc.NewProtectedMemory(secureproc.CipherDES, make([]byte, 3), 128); err == nil {
		t.Error("bad DES key accepted")
	}
	if _, err := secureproc.NewProtectedMemory(secureproc.CipherKind(9), nil, 128); err == nil {
		t.Error("unknown cipher accepted")
	}
}
